"""Tests for the profiling helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.perf.profiling import Hotspot, profile_call


def test_returns_result_and_hotspots():
    result, hotspots = profile_call(lambda: sum(range(100)))
    assert result == 4950
    assert len(hotspots) >= 1
    assert all(isinstance(h, Hotspot) for h in hotspots)


def test_top_limits_output():
    _, hotspots = profile_call(lambda: [str(i) for i in range(50)], top=3)
    assert len(hotspots) <= 3


def test_sorted_by_tottime():
    _, hotspots = profile_call(lambda: np.sort(np.random.default_rng(0).random(10000)))
    times = [h.total_seconds for h in hotspots]
    assert times == sorted(times, reverse=True)


def test_validation():
    with pytest.raises(ValidationError):
        profile_call(lambda: None, top=0)
    with pytest.raises(ValidationError):
        profile_call(lambda: None, sort="wallclock")


def test_exception_propagates():
    with pytest.raises(RuntimeError):
        profile_call(lambda: (_ for _ in ()).throw(RuntimeError("boom")))


def test_kernel_hotspot_is_plausible():
    """Profiling the reference kernel at high d must show dot/matmul-
    class work near the top — the T_gemm dominance of Table 5."""
    from repro.core.ref_kernel import ref_knn

    rng = np.random.default_rng(0)
    X = rng.random((512, 256))
    _, hotspots = profile_call(
        lambda: ref_knn(X, np.arange(256), np.arange(512), 8), top=10
    )
    names = " ".join(h.name for h in hotspots)
    assert "matmul" in names or "dot" in names or "ref_knn" in names
