"""Amortized repeated queries — kernel plans vs the one-shot kernel.

The paper amortizes gather/pack *inside* one kernel call (§2.2); the
plan engine (`repro.core.plan`, docs/PERF.md) amortizes it *across*
calls: cached reference panels, a reusable workspace arena, memoized
variant/blocking decisions, and warm-started selection. This bench
measures exactly what that buys on the repeated-query pattern every
driver in this repo exhibits, at the paper's kernel sweet spot
(m = n = 8192, d = 16, k = 16 — the regime Table 1's strongest column
comes from):

* ``one_shot_seconds`` — the historical cost: ``gsknn()`` from scratch
  per call (gather + norms + allocation every time);
* ``cold_plan_seconds`` — plan construction + first execute, what a
  driver pays on first contact with a reference set;
* ``warm_plan_seconds`` — steady-state repeats of the same queries
  (auto-warm seeding engaged, results discarded);
* ``warm_fresh_queries_seconds`` — repeats with ``warm_start=False``:
  panel/arena reuse only, no result seeding — the honest lower bound a
  driver sees when its queries change every call;
* the Table-1 all-NN configuration (N = 16384, leaf = 2048, 2 trees,
  d = 16, k = 16) solved with ``plan_reuse`` on vs off.

Bit-identity of the plan path against the one-shot kernel is asserted
before anything is timed. All numbers land in
``results/BENCH_amortized_queries.json``; CI gates them against the
committed baseline in ``benchmarks/baselines/`` via ``compare_runs.py``.
"""

from __future__ import annotations

import numpy as np

from repro.core.gsknn import gsknn
from repro.core.plan import GsknnPlan, PlanCache
from repro.data import embedded_gaussian
from repro.trees import all_nearest_neighbors

from .conftest import best_time, run_report, uniform_problem

# The kernel section runs at the acceptance size regardless of
# REPRO_BENCH_SCALE: the amortization claim is about this regime.
M = N = 8192
D, K = 16, 16

ALLKNN_N = 16384
ALLKNN_LEAF = 2048
ALLKNN_ITERS = 2


def test_amortized_queries_report(benchmark, report):
    def _run():
        rep = report(
            "amortized_queries",
            f"Amortized repeated queries (m=n={M}, d={D}, k={K})\n"
            f"{'mode':>28} {'seconds':>9}   (lower is better)",
        )
        rep.problem(
            m=M, n=N, d=D, k=K,
            allknn_n=ALLKNN_N, allknn_leaf=ALLKNN_LEAF,
            allknn_iters=ALLKNN_ITERS,
        )
        X, q, r = uniform_problem(M, N, D, seed=7)

        # correctness first: the plan path must be bit-identical to the
        # one-shot kernel before its timings mean anything
        plan = GsknnPlan(X, r)
        want = gsknn(X, q, r, K)
        got = plan.execute(q, K)
        assert np.array_equal(got.distances, want.distances)
        assert np.array_equal(got.indices, want.indices)
        rep.row(f"{'bit-identity plan vs gsknn':>28}  asserted")

        one_shot = best_time(lambda: gsknn(X, q, r, K), repeats=3)
        rep.row(f"{'one-shot gsknn':>28} {one_shot:>9.3f}")
        rep.metric("one_shot_seconds", one_shot)

        def _cold():
            GsknnPlan(X, r).execute(q, K)

        cold = best_time(_cold, repeats=2)
        rep.row(f"{'cold plan (build + execute)':>28} {cold:>9.3f}")
        rep.metric("cold_plan_seconds", cold)

        plan.execute(q, K)  # ensure the warm path is seeded
        warm = best_time(lambda: plan.execute(q, K), repeats=5)
        rep.row(f"{'warm plan (same queries)':>28} {warm:>9.3f}")
        rep.metric("warm_plan_seconds", warm)

        warm_fresh = best_time(
            lambda: plan.execute(q, K, warm_start=False), repeats=3
        )
        rep.row(f"{'warm plan (no result seed)':>28} {warm_fresh:>9.3f}")
        rep.metric("warm_fresh_queries_seconds", warm_fresh)

        rep.metric("warm_vs_one_shot_speedup", one_shot / warm)
        rep.metric("warm_vs_cold_speedup", cold / warm)
        rep.metric("warm_fresh_vs_one_shot_speedup", one_shot / warm_fresh)
        rep.row(
            f"{'warm vs one-shot':>28} {one_shot / warm:>8.2f}x  "
            f"(no result seed: {one_shot / warm_fresh:.2f}x; "
            f"vs cold plan: {cold / warm:.2f}x)"
        )

        # Table 1's strongest column, solved end-to-end. A fixed seed
        # regrows the same trees every solve, so a persistent PlanCache
        # turns repeated solves into the cross-call amortization case:
        # every leaf group hits its cached reference panels and the
        # already-grown workspace arenas.
        del plan  # release the kernel section's arena before timing
        points = embedded_gaussian(
            ALLKNN_N, D, intrinsic_dim=10, seed=0
        ).points
        plans = PlanCache(max_plans=64)

        def _solve(plan_reuse):
            return all_nearest_neighbors(
                points, K, leaf_size=ALLKNN_LEAF, iterations=ALLKNN_ITERS,
                kernel="gsknn", seed=7, tol=0.0,
                plan_reuse=plans if plan_reuse else False,
            )

        base = _solve(False)
        reused = _solve(True)
        assert np.array_equal(
            base.result.indices, reused.result.indices
        )  # same trees, same answers
        # interleave the two modes so drift on a shared host hits both
        # measurements equally, and take best-of-4 per mode
        t_no = np.inf
        t_plan = np.inf
        for _ in range(4):
            t_no = min(t_no, best_time(lambda: _solve(False), repeats=1))
            t_plan = min(t_plan, best_time(lambda: _solve(True), repeats=1))
        rep.row(
            f"{'all-NN, plan_reuse=False':>28} {t_no:>9.3f}   "
            f"(N={ALLKNN_N}, leaf={ALLKNN_LEAF}, {ALLKNN_ITERS} trees)"
        )
        rep.row(f"{'all-NN, plan_reuse=True':>28} {t_plan:>9.3f}")
        rep.metric("allknn_no_plan_seconds", t_no)
        rep.metric("allknn_plan_seconds", t_plan)
        rep.metric("allknn_plan_speedup", t_no / t_plan)
        rep.row(f"{'all-NN plan-reuse speedup':>28} {t_no / t_plan:>8.2f}x")

    run_report(benchmark, _run)
