"""Unit tests for the cosine metric (the GEMM expansion's other metric)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.spatial.distance import cdist

from repro.core.gsknn import gsknn, gsknn_exact_loops
from repro.core.norms import Norm, pairwise_cosine, resolve_norm
from repro.core.ref_kernel import ref_knn, ref_knn_timed


class TestNormCosine:
    def test_resolve(self):
        norm = resolve_norm("cosine")
        assert norm.is_cosine
        assert not norm.is_l2

    def test_factory(self):
        assert Norm.cosine().is_cosine

    def test_distinct_from_l2(self):
        assert Norm.cosine() != Norm(2.0)
        assert hash(Norm.cosine()) != hash(Norm(2.0))

    def test_repr(self):
        assert "cosine" in repr(Norm.cosine())


class TestPairwiseCosine:
    def test_matches_scipy(self, rng):
        Q, R = rng.normal(size=(7, 5)), rng.normal(size=(9, 5))
        got = pairwise_cosine(Q, R)
        np.testing.assert_allclose(got, cdist(Q, R, "cosine"), atol=1e-10)

    def test_self_distance_zero(self, rng):
        Q = rng.normal(size=(6, 4))
        np.testing.assert_allclose(np.diag(pairwise_cosine(Q, Q)), 0.0, atol=1e-12)

    def test_range_bounded(self, rng):
        Q, R = rng.normal(size=(20, 3)), rng.normal(size=(20, 3))
        got = pairwise_cosine(Q, R)
        assert (got >= 0.0).all() and (got <= 2.0).all()

    def test_zero_vectors_finite(self, rng):
        Q = rng.normal(size=(3, 4))
        Q[1] = 0.0
        got = pairwise_cosine(Q, Q)
        assert np.isfinite(got).all()
        # a zero vector is maximally dissimilar (similarity 0 -> distance 1)
        np.testing.assert_allclose(got[1, 0], 1.0)

    def test_scale_invariance(self, rng):
        Q, R = rng.normal(size=(4, 6)), rng.normal(size=(5, 6))
        a = pairwise_cosine(Q, R)
        b = pairwise_cosine(Q * 7.5, R * 0.01)
        np.testing.assert_allclose(a, b, atol=1e-10)


class TestCosineKernels:
    @pytest.fixture
    def problem(self, rng):
        X = rng.normal(size=(200, 10))
        q = rng.integers(0, 200, 25)
        r = rng.permutation(200)[:100]
        truth = np.sort(cdist(X[q], X[r], "cosine"), axis=1)[:, :5]
        return X, q, r, truth

    def test_gsknn_fast_path(self, problem):
        X, q, r, truth = problem
        res = gsknn(X, q, r, 5, norm="cosine", block_m=7, block_n=13)
        np.testing.assert_allclose(res.distances, truth, atol=1e-9)

    @pytest.mark.parametrize("variant", [1, 5, 6])
    def test_all_variants(self, problem, variant):
        X, q, r, truth = problem
        res = gsknn(X, q, r, 5, norm="cosine", variant=variant)
        np.testing.assert_allclose(res.distances, truth, atol=1e-9)

    def test_ref_kernel(self, problem):
        X, q, r, truth = problem
        res = ref_knn(X, q, r, 5, norm="cosine")
        np.testing.assert_allclose(res.distances, truth, atol=1e-9)

    def test_ref_kernel_phases(self, problem):
        X, q, r, _ = problem
        _, timer = ref_knn_timed(X, q, r, 5, norm="cosine")
        b = timer.breakdown()
        assert b.gemm > 0 and b.sq2d > 0  # GEMM + normalization pass

    def test_exact_loops(self, problem):
        X, q, r, truth = problem
        res = gsknn_exact_loops(X, q, r, 5, norm="cosine")
        np.testing.assert_allclose(res.distances, truth, atol=1e-9)

    def test_precomputed_x2(self, problem):
        X, q, r, truth = problem
        X2 = (X**2).sum(axis=1)
        res = gsknn(X, q, r, 5, norm="cosine", X2=X2)
        np.testing.assert_allclose(res.distances, truth, atol=1e-9)
