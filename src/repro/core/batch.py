"""Batch kNN: many independent kernels, model-scheduled (§2.5).

The approximate solvers generate exactly this workload — hundreds of
small (m, n, k) kernels with no dependencies — and §2.5 prescribes the
treatment: estimate each kernel's runtime with the §2.6 model, sort
descending, and greedily assign to the least-loaded worker (LPT). This
module makes that a public API instead of driver-internal machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError
from ..model.perf_model import PerformanceModel
from ..obs import trace as _trace
from ..parallel.scheduler import ScheduledTask, execute_schedule, lpt_schedule
from ..validation import as_coordinate_table, check_finite
from .gsknn import gsknn
from .neighbors import KnnResult
from .norm_cache import cached_squared_norms
from .norms import Norm

__all__ = ["KnnProblem", "gsknn_batch"]

#: Shared across batches: a later call over the same table and reference
#: sets reuses the earlier call's plans (panels + arenas). Lazy so the
#: plan module only loads when batching is actually used.
_PLAN_CACHE = None


def _get_plan_cache():
    global _PLAN_CACHE
    if _PLAN_CACHE is None:
        from .plan import PlanCache

        _PLAN_CACHE = PlanCache(max_plans=32)
    return _PLAN_CACHE


@dataclass(frozen=True)
class KnnProblem:
    """One kernel invocation of a batch: indices into the shared table."""

    q_idx: np.ndarray
    r_idx: np.ndarray
    k: int

    def __post_init__(self) -> None:
        q = np.asarray(self.q_idx, dtype=np.intp)
        r = np.asarray(self.r_idx, dtype=np.intp)
        if q.ndim != 1 or r.ndim != 1 or q.size == 0 or r.size == 0:
            raise ValidationError("q_idx and r_idx must be non-empty 1-D")
        if not 1 <= self.k <= r.size:
            raise ValidationError(
                f"k={self.k} out of range for {r.size} references"
            )
        object.__setattr__(self, "q_idx", q)
        object.__setattr__(self, "r_idx", r)


def gsknn_batch(
    X: np.ndarray,
    problems: list[KnnProblem],
    *,
    p: int | str = 1,
    norm: str | float | Norm = "l2",
    variant: int | str = "auto",
    backend: str = "threads",
    plan_reuse: bool = True,
    request=None,
) -> list[KnnResult]:
    """Solve a batch of independent kNN kernels over one coordinate table.

    Results are returned in problem order. With ``p > 1`` the kernels
    are LPT-scheduled by model-estimated runtime onto ``p`` workers of
    the chosen execution ``backend`` (``"threads"`` or ``"serial"``);
    the squared-norm side table is shared across the batch *and across
    batches* — repeated calls over the same table hit the identity-keyed
    norm cache instead of recomputing the O(N d) pass. With
    ``plan_reuse`` (default) each problem additionally runs through a
    module-shared :class:`~repro.core.plan.PlanCache`: problems that
    repeat a reference set — within this batch or a later one — reuse
    its gathered panels, and every kernel in the batch shares one
    workspace arena pool. Results are identical either way.

    ``request`` (a :class:`~repro.obs.context.RequestContext` or bare
    request-id string) tags every span and metric the batch produces;
    without it the ambient request scope (if any) is inherited.
    """
    from ..obs.context import coerce_request, current_request, request_scope
    from ..parallel.chunking import resolve_workers

    p = resolve_workers(p)
    if not problems:
        return []
    ctx = coerce_request(request) or current_request()
    X = as_coordinate_table(X)
    check_finite(X)
    for prob in problems:
        if prob.q_idx.max() >= X.shape[0] or prob.r_idx.max() >= X.shape[0]:
            raise ValidationError("problem indices exceed the table size")

    norm_obj = norm
    X2 = cached_squared_norms(X)
    plans = _get_plan_cache() if plan_reuse else None

    def solve(prob: KnnProblem) -> KnnResult:
        if plans is not None:
            plan = plans.get(
                X, prob.r_idx, norm=norm_obj, variant=variant, X2=X2
            )
            return plan.execute(prob.q_idx, prob.k)
        return gsknn(
            X, prob.q_idx, prob.r_idx, prob.k, norm=norm_obj,
            variant=variant, X2=X2,
        )

    with request_scope(ctx):
        if p == 1 or len(problems) == 1:
            return [solve(prob) for prob in problems]

        model = PerformanceModel()
        tasks = [
            ScheduledTask(
                i,
                model.estimate_kernel_runtime(
                    prob.q_idx.size, prob.r_idx.size, X.shape[1], prob.k
                ),
                payload=prob,
            )
            for i, prob in enumerate(problems)
        ]
        schedule = lpt_schedule(tasks, p)
        with _trace.span("batch", problems=len(problems), p=p):
            results = execute_schedule(
                schedule, lambda t: solve(t.payload), backend=backend
            )
        return [results[i] for i in range(len(problems))]
