"""Serving front-end over a sharded backing solver.

With ``shards > 0`` the service mounts a :class:`ShardedAllKnn` and
routes every exact window through scatter/gather instead of the
in-process fused plan. The contract is the same bit-identicality the
router guarantees: a sharded service returns exactly what the unsharded
one would, for both index and literal-row requests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.serve import KnnQueryService, ServeConfig


def _pairwise(table, svc_a, svc_b, queries, ks, rng):
    got, want = [], []
    for svc, out in ((svc_a, got), (svc_b, want)):
        handles = [svc.submit(q, k) for q, k in zip(queries, ks)]
        out.extend(h.result(timeout=30) for h in handles)
    return got, want


class TestShardedService:
    @pytest.mark.parametrize("transport", ["local", "process"])
    def test_index_requests_bit_identical_to_unsharded(
        self, table, rng, transport
    ):
        queries = [
            rng.integers(0, table.shape[0], size=int(rng.integers(1, 6)))
            for _ in range(12)
        ]
        ks = [int(rng.integers(1, 9)) for _ in queries]
        sharded_cfg = ServeConfig(
            max_wait_ms=2.0, shards=3, shard_transport=transport
        )
        with KnnQueryService(table, sharded_cfg) as sharded, KnnQueryService(
            table, ServeConfig(max_wait_ms=2.0)
        ) as plain:
            got, want = _pairwise(table, sharded, plain, queries, ks, rng)
        for g, w in zip(got, want):
            np.testing.assert_array_equal(g.indices, w.indices)
            np.testing.assert_array_equal(g.distances, w.distances)

    def test_row_requests_bit_identical_to_unsharded(self, table, rng):
        Q = rng.random((5, table.shape[1]))
        cfg = ServeConfig(shards=2, shard_transport="local")
        with KnnQueryService(table, cfg) as sharded, KnnQueryService(
            table
        ) as plain:
            g = sharded.submit_rows(Q, 6).result(timeout=30)
            w = plain.submit_rows(Q, 6).result(timeout=30)
        np.testing.assert_array_equal(g.indices, w.indices)
        np.testing.assert_array_equal(g.distances, w.distances)

    def test_stats_expose_shard_state(self, table):
        cfg = ServeConfig(shards=2, shard_transport="local")
        with KnnQueryService(table, cfg) as svc:
            svc.submit([0, 1], 3).result(timeout=30)
            stats = svc.stats()
        assert stats["shards"]["n_shards"] == 2
        assert stats["shards"]["transport"] == "local"

    def test_unsharded_stats_have_no_shard_block(self, table):
        with KnnQueryService(table) as svc:
            assert svc.stats()["shards"] is None

    def test_config_validation(self):
        with pytest.raises(ValidationError):
            ServeConfig(shards=-1)
        with pytest.raises(ValidationError):
            ServeConfig(shards=2, shard_transport="carrier-pigeon")
