"""Tests for the kNN memory-trace simulator — the qualitative claims of
§2.3/§2.6 must be *measured* on the simulated machine."""

from __future__ import annotations

import pytest

from repro.config import BlockingParams
from repro.errors import ValidationError
from repro.machine import KnnTraceSimulator, TINY_MACHINE
from repro.machine.sim import expected_heap_insertions, _InsertSchedule


@pytest.fixture
def sim():
    blk = BlockingParams(m_r=4, n_r=4, d_c=8, m_c=16, n_c=32)
    return KnnTraceSimulator(TINY_MACHINE, blk)


class TestExpectedHeapInsertions:
    def test_k_equals_n(self):
        assert expected_heap_insertions(10, 10) == 10.0

    def test_grows_with_n(self):
        assert expected_heap_insertions(1000, 8) > expected_heap_insertions(100, 8)

    def test_roughly_k_log_n_over_k(self):
        import math

        n, k = 1024, 16
        assert expected_heap_insertions(n, k) == pytest.approx(
            k + k * math.log(n / k)
        )


class TestInsertSchedule:
    def test_total_inserts_close_to_target(self):
        sched = _InsertSchedule(1000, 50.0)
        total = sum(sched.offer(10) for _ in range(100))
        assert abs(total - 50) <= 1

    def test_zero_target(self):
        sched = _InsertSchedule(100, 0.0)
        assert sum(sched.offer(10) for _ in range(10)) == 0


class TestTraceSimulator:
    def test_rejects_unknown_kernel(self, sim):
        with pytest.raises(ValidationError):
            sim.run("mystery", m=8, n=8, d=4, k=2)

    def test_rejects_bad_sizes(self, sim):
        with pytest.raises(ValidationError):
            sim.run("gemm", m=8, n=8, d=4, k=16)
        with pytest.raises(ValidationError):
            sim.run("gemm", m=8, n=8, d=4, k=2, N=4)

    def test_microkernel_count_matches_loop_nest(self, sim):
        res = sim.run("gsknn-var1", m=32, n=32, d=16, k=4)
        # ceil(32/16)*ceil(16/8)*ceil(32/16... wait: per (jc, pc, ic): (nb/nr)*(mb/mr)
        # jc: 1 block of 32 (nc=32); pc: 2; ic: 2; tiles: (32/4)*(16/4)=32
        assert res.counts["microkernels"] == 1 * 2 * 2 * 32

    def test_var1_less_dram_than_var6(self, sim):
        """The core claim: not materializing C saves slow-memory traffic."""
        var1 = sim.run("gsknn-var1", m=128, n=128, d=16, k=8, N=256)
        var6 = sim.run("gsknn-var6", m=128, n=128, d=16, k=8, N=256)
        assert var1.dram_total_bytes < var6.dram_total_bytes

    def test_var6_less_dram_than_gemm(self, sim):
        """Fused packing still beats the explicit-gather GEMM approach."""
        var6 = sim.run("gsknn-var6", m=128, n=128, d=16, k=8, N=256)
        gemm = sim.run("gemm", m=128, n=128, d=16, k=8, N=256)
        assert var6.dram_total_bytes < gemm.dram_total_bytes

    def test_gap_shrinks_with_dimension(self, sim):
        """The GEMM penalty is 2 tau_b m n independent of d, so the
        *relative* gap closes as d grows (T_gemm ~ d m n dominates)."""
        def ratio(d):
            var1 = sim.run("gsknn-var1", m=64, n=64, d=d, k=4, N=256)
            gemm = sim.run("gemm", m=64, n=64, d=d, k=4, N=256)
            return gemm.dram_total_bytes / var1.dram_total_bytes

        assert ratio(8) > ratio(64)

    def test_heap_insertions_equal_across_kernels(self, sim):
        runs = [
            sim.run(kern, m=64, n=64, d=8, k=4, N=128)
            for kern in ("gsknn-var1", "gsknn-var6", "gemm")
        ]
        counts = {r.counts["heap_insertions"] for r in runs}
        # same expected-insertion schedule, so counts agree within rounding
        assert max(counts) - min(counts) <= 64  # one per query at most

    def test_dram_traffic_grows_with_k_for_var1(self, sim):
        small = sim.run("gsknn-var1", m=64, n=64, d=8, k=2, N=128)
        large = sim.run("gsknn-var1", m=64, n=64, d=8, k=32, N=128)
        assert large.dram_total_bytes >= small.dram_total_bytes

    def test_contiguous_gather_cheaper_than_scattered(self, sim):
        scattered = sim.run("gemm", m=64, n=64, d=16, k=4, N=1024)
        contiguous = sim.run(
            "gemm", m=64, n=64, d=16, k=4, N=1024, stride_gather=False
        )
        assert contiguous.dram_total_bytes <= scattered.dram_total_bytes

    def test_result_metadata(self, sim):
        res = sim.run("gemm", m=16, n=16, d=4, k=2)
        assert res.kernel == "gemm"
        assert res.dram_doubles == res.dram_total_bytes / 8
        assert set(res.level_stats) == {"L1", "L2", "L3"}


class TestVar5Trace:
    def test_var5_recognized(self, sim):
        res = sim.run("gsknn-var5", m=64, n=64, d=8, k=4, N=128)
        assert res.kernel == "gsknn-var5"
        assert res.dram_total_bytes > 0

    def test_var5_less_traffic_than_var6(self, sim):
        """Var#5's whole point: the m x n_c slab footprint beats the
        m x n store (useful when DRAM is limited)."""
        var5 = sim.run("gsknn-var5", m=128, n=128, d=16, k=8, N=256)
        var6 = sim.run("gsknn-var6", m=128, n=128, d=16, k=8, N=256)
        assert var5.dram_total_bytes < var6.dram_total_bytes

    def test_var5_heap_insertions_comparable(self, sim):
        var5 = sim.run("gsknn-var5", m=64, n=64, d=8, k=4, N=128)
        var1 = sim.run("gsknn-var1", m=64, n=64, d=8, k=4, N=128)
        assert abs(
            var5.counts["heap_insertions"] - var1.counts["heap_insertions"]
        ) <= 64 * 2  # schedule rounding per slab


class TestFigure2Residency:
    """Figure 2's data-flow claims, measured on the simulated hierarchy:
    packed micro-panels live in L1/L2, the global table streams from
    slow memory, and the heap stays near the core while k is small."""

    @pytest.fixture
    def residency(self, sim):
        res = sim.run("gsknn-var1", m=64, n=64, d=16, k=8, N=256)
        return res.region_stats

    @staticmethod
    def _share(stats, *levels):
        total = sum(stats.values())
        return sum(stats.get(level, 0) for level in levels) / total

    def test_micropanels_served_from_l1_l2(self, residency):
        for region in ("Qc-panel", "Rc-panel"):
            assert self._share(residency[region], "L1", "L2") > 0.8

    def test_global_table_streams_from_slow_memory(self, residency):
        assert self._share(residency["X"], "L3", "DRAM") > 0.8

    def test_small_k_heap_stays_in_l1(self, residency):
        assert self._share(residency["heap"], "L1") > 0.6

    def test_large_k_heap_spills(self, sim):
        """Larger heaps migrate down the hierarchy — the mechanism behind
        Var#1's large-k degradation (§2.3)."""
        small = sim.run("gsknn-var1", m=64, n=64, d=16, k=4, N=256)
        large = sim.run("gsknn-var1", m=64, n=64, d=16, k=48, N=256)
        share = lambda res: self._share(res.region_stats["heap"], "L1")
        assert share(large) < share(small)

    def test_region_stats_reset_between_runs(self, sim):
        a = sim.run("gsknn-var1", m=32, n=32, d=8, k=4, N=64)
        b = sim.run("gsknn-var1", m=32, n=32, d=8, k=4, N=64)
        assert a.region_stats == b.region_stats


class TestGemmCResidency:
    def test_full_matrix_comes_from_slow_memory(self, sim):
        """The GEMM approach's C re-reads (norm pass + selection) miss
        the small caches once m x n exceeds them — the memory-bound
        mechanism of §2.1, per-region measured."""
        res = sim.run("gemm", m=128, n=128, d=16, k=8, N=256)
        c_stats = res.region_stats["C"]
        total = sum(c_stats.values())
        slow = c_stats.get("L3", 0) + c_stats.get("DRAM", 0)
        assert slow / total > 0.5
