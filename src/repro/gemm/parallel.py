"""Data-parallel blocked GEMM — §2.5's scheme at the GEMM level.

The paper parallelizes the 4th loop: each core takes ``m_c`` blocks of
rows, packs a private ``Q_c`` into its private L2, and shares ``R_c``
through L3. This module applies exactly that decomposition to the
blocked GEMM substrate: the row dimension is split into per-worker
chunks (sized by :func:`repro.core.tuning.dynamic_m_c` logic — every
worker gets a whole number of ``m_c`` blocks), each worker runs the
ordinary serial loop nest over its chunk, and the output rows are
disjoint so no synchronization is needed.

Threads rather than processes: the per-chunk work is numpy/BLAS calls
that release the GIL, so chunks overlap on multicore hosts; on a
single-core host the decomposition still produces identical results
(asserted by the tests).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..config import BlockingParams, IVY_BRIDGE_BLOCKING
from ..errors import ValidationError

# NOTE: repro.parallel.chunking is imported lazily inside the driver —
# a module-level import would cycle (gemm package -> parallel package ->
# data_parallel -> core.gsknn -> gemm.packing).
from .blocked import BlockedGemm, GemmObserver

__all__ = ["parallel_blocked_gemm"]


def parallel_blocked_gemm(
    A: np.ndarray,
    B: np.ndarray,
    *,
    p: int | str = 2,
    blocking: BlockingParams = IVY_BRIDGE_BLOCKING,
    observer: GemmObserver | None = None,
) -> np.ndarray:
    """``C = A @ B^T`` with the 4th loop split across ``p`` workers.

    Identical results to :meth:`BlockedGemm.multiply_nt` — the split is
    over output rows, which no two workers share.
    """
    from ..parallel.chunking import block_aligned_chunks, resolve_workers

    p = resolve_workers(p)
    A = np.ascontiguousarray(A, dtype=np.float64)
    B = np.ascontiguousarray(B, dtype=np.float64)
    if A.ndim != 2 or B.ndim != 2 or A.shape[1] != B.shape[1]:
        raise ValidationError(
            f"operands must be 2-D with equal depth, got {A.shape}, {B.shape}"
        )
    m = A.shape[0]
    if p == 1 or m <= blocking.m_c:
        return BlockedGemm(blocking, observer).multiply_nt(A, B)

    chunks = block_aligned_chunks(m, p, blocking.m_c)
    C = np.empty((m, B.shape[0]), dtype=np.float64)

    def worker(chunk: tuple[int, int]) -> None:
        start, size = chunk
        engine = BlockedGemm(blocking, observer)
        C[start : start + size] = engine.multiply_nt(
            A[start : start + size], B
        )

    with ThreadPoolExecutor(max_workers=resolve_workers(p, len(chunks))) as pool:
        list(pool.map(worker, chunks))
    return C
