"""Scatter/gather top-k routing over real shard processes.

:class:`ShardedAllKnn` is the multi-process counterpart of one fused
:func:`repro.core.gsknn` call: scatter a query batch to every shard that
owns part of the reference table, run the fused kernel locally per
shard (each shard keeps its panels packed in a warm plan), gather the
partial top-k lists, and merge them with
:func:`repro.select.mergeselect.merge_partial_topk`.

Because the shard map never splits a GEMM tile
(:mod:`repro.shard.map`) and every shard pins the same ``norm`` /
``block_m`` / ``block_n`` / resolved variant as the single-process
solve, the merged result is **bit-identical** — indices and distances —
to ``gsknn(X, q_idx, alive_ids, k, block_n=panel_width, ...)`` on the
same membership, which :meth:`ShardedAllKnn.solve_reference` exposes
for exactly that assertion (tests and the CI ``shard-smoke`` job run
it).

Failure semantics (the resilience layer's ladder, applied *per shard*):
a failed shard solve is retried on its restarted worker process up to
``retry.max_attempts`` times (processes rung), then degraded to an
in-parent threaded solve of just that partition (threads rung, faults
still injected so drills exercise it), then to an inline fault-free
serial solve — which cannot be fault-injected, so recovery is
guaranteed and still bit-identical. Healthy shards are never re-solved.
The shared :class:`~repro.resilience.Deadline` bounds every wait.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Any

import numpy as np

from ..core.gsknn import _resolve_auto_variant
from ..core.neighbors import KnnResult
from ..core.norms import resolve_norm, squared_norms
from ..core.plan import GsknnPlan
from ..errors import BackendError, ValidationError
from ..obs.metrics import get_registry as _get_registry
from ..obs.trace import get_tracer as _get_tracer
from ..parallel.backends import _absorb_worker_obs
from ..resilience.deadline import Deadline
from ..resilience.faults import FaultPlan
from ..resilience.retry import RetryPolicy, is_retryable
from ..select.mergeselect import merge_partial_topk
from ..validation import as_index_array
from .map import ShardMap
from .transport import ShardWorld, resolve_transport

__all__ = ["ShardedAllKnn"]


class ShardedAllKnn:
    """A reference table partitioned across shards, solved scatter/gather.

    Parameters
    ----------
    X:
        ``(n, d)`` float64 reference table. Copied: the router owns its
        table so streaming mutations never alias caller memory.
    n_shards:
        Number of shards (>= 1). With the process transport this is the
        number of long-lived worker processes.
    transport:
        ``"process"`` (real worker processes over shared memory),
        ``"local"`` (in-process twin), or a ready
        :class:`~repro.shard.transport.ShardTransport`.
    norm, variant, block_m, block_n:
        Kernel configuration, pinned across shards; ``block_n`` doubles
        as the shard map's panel width so shard boundaries coincide
        with the kernel's reference-block grid (the bit-identicality
        invariant — see :mod:`repro.shard.map`).
    retry:
        Per-shard :class:`RetryPolicy` for the processes rung.
    deadline:
        Default :class:`Deadline` budget (seconds or instance) applied
        to every solve that does not pass its own.
    fault_plan:
        Spec string or :class:`FaultPlan`; shipped to shard workers
        (scope ``"shard"``) and applied on the parent-side threads rung.
    """

    def __init__(
        self,
        X: np.ndarray,
        n_shards: int,
        *,
        transport: str | Any = "process",
        norm: str | float = "l2",
        variant: int | str = "auto",
        block_m: int = 1024,
        block_n: int = 2048,
        retry: RetryPolicy | None = None,
        deadline: Deadline | float | None = None,
        fault_plan: FaultPlan | str | None = None,
        mp_context: str | None = None,
    ) -> None:
        X = np.ascontiguousarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] < 1:
            raise ValidationError(
                f"X must be a non-empty (n, d) table, got shape {X.shape}"
            )
        if block_m < 1 or block_n < 1:
            raise ValidationError("block_m and block_n must be >= 1")
        self._X = X.copy()
        self._norm = resolve_norm(norm)
        self._variant_spec = variant
        self._block_m = int(block_m)
        self._block_n = int(block_n)
        self._X2 = (
            squared_norms(self._X)
            if (self._norm.is_l2 or getattr(self._norm, "is_cosine", False))
            else None
        )
        self.map = ShardMap(X.shape[0], n_shards, panel_width=self._block_n)
        self.retry = retry if retry is not None else RetryPolicy()
        self._default_deadline = deadline
        self._fault_plan = FaultPlan.coerce(fault_plan)
        if self._fault_plan is None:
            self._fault_plan = FaultPlan.from_env()
        if mp_context is not None and transport == "process":
            from .transport import ProcessTransport

            transport = ProcessTransport(mp_context)
        self.transport = resolve_transport(transport)
        self._fallback_plans: dict[int, GsknnPlan] = {}
        self._fallback_epoch = -1
        self._closed = False
        self.transport.start(self._world())

    # -- lifecycle -----------------------------------------------------------

    def _world(self) -> ShardWorld:
        return ShardWorld(
            X=self._X,
            X2=self._X2,
            local_ids=[
                self.map.local_ids(s) for s in range(self.map.n_shards)
            ],
            epoch=self.map.epoch,
            kernel_kwargs={
                "norm": self._norm,
                "block_m": self._block_m,
                "block_n": self._block_n,
            },
            fault_spec=(
                self._fault_plan.spec()
                if self._fault_plan is not None and self._fault_plan.active
                else None
            ),
        )

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.transport.close()
            self._fallback_plans.clear()

    def __enter__(self) -> "ShardedAllKnn":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @property
    def n_refs(self) -> int:
        """Alive reference count (tombstones excluded)."""
        return self.map.n_alive

    @property
    def dim(self) -> int:
        return self._X.shape[1]

    @property
    def table(self) -> np.ndarray:
        """Read-only view of the full table (including tombstoned rows)."""
        view = self._X.view()
        view.flags.writeable = False
        return view

    # -- streaming membership ------------------------------------------------

    def insert(self, rows: np.ndarray) -> np.ndarray:
        """Append new reference rows; returns their global ids.

        The table is re-exported to fresh shared segments, the panel
        grid re-derived, and every shard worker re-attaches and drops
        its packed plan (per-shard plan invalidation).
        """
        rows = np.ascontiguousarray(rows, dtype=np.float64)
        if rows.ndim == 1:
            rows = rows[None, :]
        if rows.ndim != 2 or rows.shape[1] != self.dim:
            raise ValidationError(
                f"rows must be (m, {self.dim}), got shape {rows.shape}"
            )
        self._X = np.ascontiguousarray(np.vstack([self._X, rows]))
        if self._X2 is not None:
            # per-row norms: appending batch norms == full recompute
            self._X2 = np.concatenate([self._X2, squared_norms(rows)])
        ids = self.map.append(rows.shape[0])
        self._refresh("insert", rows=rows.shape[0])
        return ids

    def delete(self, ids) -> None:
        """Tombstone reference ids: they leave their owning shards'
        partitions at the new epoch and can never be returned again."""
        self.map.tombstone(ids)
        self._refresh("delete", ids=np.asarray(ids).size)

    def _refresh(self, op: str, **meta) -> None:
        with _get_tracer().span("shard.refresh", op=op, **meta):
            self.transport.refresh(self._world())
        self._fallback_plans.clear()
        self._fallback_epoch = self.map.epoch
        registry = _get_registry()
        if registry.enabled:
            registry.inc("shard.refreshes", labels={"op": op})
            registry.gauge("shard.epoch").set(self.map.epoch)

    # -- solves --------------------------------------------------------------

    def solve(
        self,
        q_idx,
        k: int,
        *,
        deadline: Deadline | float | None = None,
    ) -> KnnResult:
        """Exact top-k of table-row queries against every alive reference.

        Bit-identical to :meth:`solve_reference` on the same membership.
        """
        q_idx = as_index_array(q_idx, self._X.shape[0], name="q_idx")
        k = self._check_k(k)
        var = int(
            _resolve_auto_variant(
                self._variant_spec, q_idx.size, self.n_refs, self.dim, k
            )
        )
        return self._scatter_gather(
            ("idx", q_idx, k, var), q_idx.size, k, deadline
        )

    def solve_rows(
        self,
        Q: np.ndarray,
        k: int,
        *,
        deadline: Deadline | float | None = None,
    ) -> KnnResult:
        """Exact top-k for literal query rows (the serving shape)."""
        Q = np.ascontiguousarray(Q, dtype=np.float64)
        if Q.ndim == 1:
            Q = Q[None, :]
        if Q.ndim != 2 or Q.shape[1] != self.dim:
            raise ValidationError(
                f"Q must be (m, {self.dim}), got shape {Q.shape}"
            )
        k = self._check_k(k)
        var = int(
            _resolve_auto_variant(
                self._variant_spec, Q.shape[0], self.n_refs, self.dim, k
            )
        )
        return self._scatter_gather(
            ("rows", Q, k, var), Q.shape[0], k, deadline
        )

    def solve_reference(self, q_idx, k: int) -> KnnResult:
        """The single-process fused twin of :meth:`solve` — one plain
        ``gsknn`` call over the same membership and kernel config. The
        bit-identicality oracle tests and CI assert against."""
        from ..core.gsknn import gsknn

        return gsknn(
            self._X,
            as_index_array(q_idx, self._X.shape[0], name="q_idx"),
            self.map.alive_ids(),
            self._check_k(k),
            norm=self._norm,
            variant=self._variant_spec,
            X2=self._X2,
            block_m=self._block_m,
            block_n=self._block_n,
        )

    def _check_k(self, k: int) -> int:
        k = int(k)
        if k < 1 or k > self.n_refs:
            raise ValidationError(
                f"k must be in [1, {self.n_refs}], got {k}"
            )
        return k

    # -- scatter/gather core -------------------------------------------------

    def _scatter_gather(
        self,
        task: tuple,
        m: int,
        k: int,
        deadline: Deadline | float | None,
    ) -> KnnResult:
        if self._closed:
            raise BackendError("ShardedAllKnn is closed")
        deadline = Deadline.coerce(
            deadline if deadline is not None else self._default_deadline
        )
        tracer = _get_tracer()
        registry = _get_registry()
        with tracer.span(
            "shard.solve_batch",
            shards=self.map.n_shards,
            m=m,
            k=k,
            epoch=self.map.epoch,
        ):
            parent_id = tracer.current_span_id()
            owners = [
                s
                for s in range(self.map.n_shards)
                if self.map.local_ids(s).size
            ]
            if deadline is not None:
                deadline.check("shard.scatter")
            with tracer.span("shard.scatter", shards=len(owners)):
                futures = {
                    s: self._submit(s, self._shard_task(task, s), 0)
                    for s in owners
                }
            partials: dict[int, tuple[np.ndarray, np.ndarray]] = {}
            for s in owners:
                partials[s] = self._gather_one(
                    s, futures[s], task, deadline, parent_id
                )
            if deadline is not None:
                deadline.check("shard.gather")
            with tracer.span("shard.gather", shards=len(owners)):
                dist, idx = self._merge(partials, owners, m, k)
            if registry.enabled:
                registry.inc("shard.batches")
                registry.observe("shard.batch_rows", float(m))
            return KnnResult(distances=dist, indices=idx)

    def _submit(self, shard: int, shard_task: tuple, attempt: int):
        """Submit, converting a synchronous transport failure (e.g. a
        pool already broken from a previous crash) into a rejected
        future the gather ladder recovers like any other."""
        from concurrent.futures import Future

        try:
            return self.transport.submit(shard, shard_task, attempt=attempt)
        except Exception as exc:
            fut: Future = Future()
            fut.set_exception(exc)
            return fut

    def _shard_task(self, task: tuple, shard: int) -> tuple:
        """Clamp k to the shard's partition size (small shards return
        everything they own; the merge pads the difference)."""
        k_local = min(task[2], self.map.local_ids(shard).size)
        return (task[0], task[1], k_local, *task[3:])

    def _gather_one(
        self,
        shard: int,
        future,
        task: tuple,
        deadline: Deadline | None,
        parent_id: int | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One shard's partial, recovered through the per-shard ladder.

        Only this shard is ever re-solved; the other shards' futures
        are untouched.
        """
        from concurrent.futures.process import BrokenProcessPool

        registry = _get_registry()
        shard_task = self._shard_task(task, shard)
        attempt = 0
        while True:
            try:
                out = future.result(
                    timeout=None if deadline is None else deadline.timeout()
                )
                dist, idx = out[0], out[1]
                _absorb_worker_obs(
                    out[2] if len(out) > 2 else None, parent_id
                )
                return dist, idx
            except TimeoutError:
                future.cancel()
                if deadline is not None:
                    deadline.raise_expired("shard.gather", shard=shard)
                raise
            except Exception as exc:
                # a dead worker surfaces as BrokenProcessPool, which the
                # retry predicate does not know; it is the canonical
                # recoverable shard failure here
                if not (is_retryable(exc) or isinstance(exc, BrokenProcessPool)):
                    raise
                attempt += 1
                if registry.enabled:
                    registry.inc(
                        "shard.failures", labels={"shard": str(shard)}
                    )
                if deadline is not None:
                    deadline.check("shard.retry", shard=shard)
                if attempt < self.retry.max_attempts:
                    # processes rung: restart the dead worker, resubmit
                    self.retry.sleep(attempt, deadline)
                    self.transport.restart(shard)
                    if registry.enabled:
                        registry.inc(
                            "shard.retries", labels={"shard": str(shard)}
                        )
                    future = self._submit(shard, shard_task, attempt)
                    continue
                # restart the worker even though this batch degrades to
                # the parent-side rungs: the next batch must find a
                # healthy pool, not the broken one
                try:
                    self.transport.restart(shard)
                except Exception:  # pragma: no cover - restart best-effort
                    pass
                return self._fallback(shard, shard_task, deadline)

    def _fallback(
        self,
        shard: int,
        shard_task: tuple,
        deadline: Deadline | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Threads rung (faults still injected), then fault-free serial."""
        registry = _get_registry()
        tracer = _get_tracer()
        try:
            if deadline is not None:
                deadline.check("shard.fallback", shard=shard)
            with tracer.span("shard.fallback", shard=shard, rung="threads"):
                if self._fault_plan is not None:
                    self._fault_plan.apply(
                        "shard",
                        f"{self.map.epoch}:{shard}",
                        self.retry.max_attempts,
                    )
                with ThreadPoolExecutor(max_workers=1) as pool:
                    fut = pool.submit(self._solve_local, shard, shard_task)
                    out = fut.result(
                        timeout=None
                        if deadline is None
                        else deadline.timeout()
                    )
            if registry.enabled:
                registry.inc("shard.failovers", labels={"rung": "threads"})
            return out
        except TimeoutError:
            if deadline is not None:
                deadline.raise_expired("shard.fallback", shard=shard)
            raise
        except Exception as exc:
            if not is_retryable(exc):
                raise
        if deadline is not None:
            deadline.check("shard.fallback", shard=shard)
        # serial rung: inline, never fault-injected — guaranteed recovery
        with tracer.span("shard.fallback", shard=shard, rung="serial"):
            out = self._solve_local(shard, shard_task)
        if registry.enabled:
            registry.inc("shard.failovers", labels={"rung": "serial"})
        return out

    def _solve_local(
        self, shard: int, shard_task: tuple
    ) -> tuple[np.ndarray, np.ndarray]:
        """In-parent solve of one shard's partition — same plan config
        as the worker's, so fallback results stay bit-identical."""
        if self._fallback_epoch != self.map.epoch:
            self._fallback_plans.clear()
            self._fallback_epoch = self.map.epoch
        plan = self._fallback_plans.get(shard)
        if plan is None:
            kwargs: dict[str, Any] = {
                "norm": self._norm,
                "block_m": self._block_m,
                "block_n": self._block_n,
            }
            if self._X2 is not None:
                kwargs["X2"] = self._X2
            plan = GsknnPlan(self._X, self.map.local_ids(shard), **kwargs)
            self._fallback_plans[shard] = plan
        kind, q, k_local = shard_task[0], shard_task[1], shard_task[2]
        var = shard_task[3] if len(shard_task) > 3 else None
        if kind == "idx":
            res = plan.execute(q, k_local, warm_start=False, variant=var)
        elif kind == "rows":
            res = plan.execute_rows(q, k_local, variant=var)
        else:
            from ..core.plan import PlanCache

            _, q_idx, r_idx, k_local = shard_task
            cache = PlanCache()
            res = cache.get(
                self._X,
                r_idx,
                norm=self._norm,
                block_m=self._block_m,
                block_n=self._block_n,
            ).execute(q_idx, k_local, warm_start=False)
        return res.distances, res.indices

    def _merge(
        self,
        partials: dict[int, tuple[np.ndarray, np.ndarray]],
        owners: list[int],
        m: int,
        k: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Pad ragged partials to a common width and merge via
        :func:`merge_partial_topk` (ascending distance, ties by id)."""
        width = max(p[0].shape[1] for p in partials.values())
        dist_cat = np.full((m, width * len(owners)), np.inf)
        idx_cat = np.full((m, width * len(owners)), -1, dtype=np.intp)
        for col, s in enumerate(owners):
            dist, idx = partials[s]
            lo = col * width
            dist_cat[:, lo : lo + dist.shape[1]] = dist
            idx_cat[:, lo : lo + idx.shape[1]] = idx
        return merge_partial_topk(dist_cat, idx_cat, k)

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        return {
            "n_shards": self.map.n_shards,
            "transport": self.transport.name,
            "epoch": self.map.epoch,
            "n_alive": self.map.n_alive,
            "n_total": self.map.n_total,
            "panel_width": self.map.panel_width,
            "shard_sizes": [
                int(self.map.local_ids(s).size)
                for s in range(self.map.n_shards)
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"ShardedAllKnn(n_shards={self.map.n_shards}, "
            f"transport={self.transport.name!r}, alive={self.map.n_alive}, "
            f"epoch={self.map.epoch})"
        )
