#!/usr/bin/env python
"""Diff two benchmark telemetry records (or directories of them).

Usage::

    PYTHONPATH=src python benchmarks/compare_runs.py OLD NEW \
        [--threshold 0.05] [--json]

``OLD`` / ``NEW`` are either two ``BENCH_<name>.json`` files of the same
experiment, or two directories — in which case every experiment present
in both is diffed (experiments present in only one side are reported,
not fatal).

Regression polarity is inferred from the metric name: ``*seconds``,
``*_ms`` and ``*time*`` regress when they grow; ``*gflops*``,
``*speedup*``, ``*recall*`` and ``*fraction*`` regress when they shrink;
anything else is "neutral" — changes beyond the threshold are flagged
but do not fail the run. Exit status is 1 iff at least one non-neutral
metric regressed beyond the threshold.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

try:
    from repro.obs import telemetry
except ImportError:  # pragma: no cover - direct invocation convenience
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    from repro.obs import telemetry

_LOWER_IS_BETTER = ("seconds", "_ms", "time", "bytes", "imbalance")
_HIGHER_IS_BETTER = ("gflops", "speedup", "recall", "fraction", "efficiency")


def polarity(metric: str) -> int:
    """-1 lower-is-better, +1 higher-is-better, 0 neutral."""
    name = metric.lower()
    if any(tok in name for tok in _LOWER_IS_BETTER):
        return -1
    if any(tok in name for tok in _HIGHER_IS_BETTER):
        return +1
    return 0


def classify(row: dict, threshold: float) -> str:
    """ok / improved / regressed / neutral-change / added / removed."""
    if row["status"] in ("added", "removed"):
        return row["status"]
    if row["status"] == "ok":
        return "ok"
    pol = polarity(row["metric"])
    if pol == 0:
        return "neutral-change"
    worse = row["delta"] > 0 if pol == -1 else row["delta"] < 0
    return "regressed" if worse else "improved"


def diff_files(old_path: Path, new_path: Path, threshold: float) -> dict:
    old = telemetry.load_record(old_path)
    new = telemetry.load_record(new_path)
    rows = telemetry.diff_records(old, new, threshold=threshold)
    for row in rows:
        row["verdict"] = classify(row, threshold)
    return {
        "experiment": new.get("name", old.get("name")),
        "old_sha": (old.get("environment") or {}).get("git_sha"),
        "new_sha": (new.get("environment") or {}).get("git_sha"),
        "rows": rows,
    }


def collect_pairs(old: Path, new: Path) -> list[tuple[Path, Path]]:
    if old.is_file() and new.is_file():
        return [(old, new)]
    if old.is_dir() and new.is_dir():
        old_names = {p.name: p for p in sorted(old.glob("BENCH_*.json"))}
        new_names = {p.name: p for p in sorted(new.glob("BENCH_*.json"))}
        only_old = sorted(set(old_names) - set(new_names))
        only_new = sorted(set(new_names) - set(old_names))
        for name in only_old:
            print(f"note: {name} present only in {old}", file=sys.stderr)
        for name in only_new:
            print(f"note: {name} present only in {new}", file=sys.stderr)
        return [
            (old_names[name], new_names[name])
            for name in sorted(set(old_names) & set(new_names))
        ]
    raise SystemExit(
        f"error: {old} and {new} must both be files or both be directories"
    )


def print_report(report: dict, threshold: float) -> None:
    print(f"== {report['experiment']} "
          f"({report['old_sha'] or '?'} -> {report['new_sha'] or '?'})")
    flagged = [r for r in report["rows"] if r["verdict"] != "ok"]
    if not flagged:
        print(f"   all {len(report['rows'])} metrics within "
              f"{threshold:.0%} of the old run")
        return
    print(f"   {'metric':<40} {'old':>12} {'new':>12} {'ratio':>7}  verdict")
    for r in flagged:
        old = "-" if r["old"] is None else f"{r['old']:.6g}"
        new = "-" if r["new"] is None else f"{r['new']:.6g}"
        ratio = "-" if r["ratio"] is None else f"{r['ratio']:.3f}"
        print(f"   {r['metric']:<40} {old:>12} {new:>12} {ratio:>7}  "
              f"{r['verdict']}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", type=Path, help="old record file or directory")
    parser.add_argument("new", type=Path, help="new record file or directory")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.05,
        help="relative change treated as noise (default 0.05 = 5%%)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the full diff as JSON"
    )
    args = parser.parse_args(argv)

    reports = [
        diff_files(a, b, args.threshold)
        for a, b in collect_pairs(args.old, args.new)
    ]
    if args.json:
        print(json.dumps(reports, indent=1, sort_keys=True))
    else:
        for report in reports:
            print_report(report, args.threshold)
    regressed = sum(
        1
        for report in reports
        for row in report["rows"]
        if row["verdict"] == "regressed"
    )
    if regressed:
        print(f"\n{regressed} metric(s) regressed beyond "
              f"{args.threshold:.0%}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
