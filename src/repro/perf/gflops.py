"""Efficiency metrics: the paper's ``(2d + 3) m n / T`` GFLOPS convention.

Figures 4-6 plot "floating point efficiency" where the numerator is the
*useful* flop count of the kNN kernel — ``2 d m n`` for the rank-d update
plus ``3 m n`` for the norm accumulation — regardless of how the kernel
was implemented. Heap selection contributes zero flops (the paper notes
GFLOPS therefore under-represents selection-heavy configurations).
"""

from __future__ import annotations

import warnings

from ..errors import ValidationError

__all__ = ["knn_flops", "gflops", "efficiency"]


def knn_flops(m: int, n: int, d: int) -> int:
    """Useful flops of one m x n x d kNN kernel: ``(2d + 3) m n``."""
    if min(m, n, d) < 1:
        raise ValidationError("m, n, d must all be >= 1")
    return (2 * d + 3) * m * n


def gflops(m: int, n: int, d: int, seconds: float) -> float:
    """Achieved GFLOPS of one kernel execution.

    A non-positive ``seconds`` (a timer too coarse for a tiny problem,
    or a clock that stepped) yields ``nan`` with a warning rather than
    an exception — one unmeasurable cell must not abort a whole
    benchmark sweep.
    """
    if seconds <= 0:
        warnings.warn(
            f"gflops: elapsed time must be positive, got {seconds}; "
            "returning nan (problem too small for the timer?)",
            RuntimeWarning,
            stacklevel=2,
        )
        return float("nan")
    return knn_flops(m, n, d) / seconds / 1e9


def efficiency(m: int, n: int, d: int, seconds: float, peak_gflops: float) -> float:
    """Fraction of machine peak achieved (0..1, can exceed 1 if peak is stale)."""
    if peak_gflops <= 0:
        raise ValidationError("peak_gflops must be positive")
    return gflops(m, n, d, seconds) / peak_gflops
