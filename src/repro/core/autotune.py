"""Auto-tuning: decision tables and model-narrowed threshold search.

§2.4 names two ways to choose the variant and block sizes — exhaustive
search and modeling — and §2.6 shows the model shrinking the search
("help quickly narrow down a small region for fine tuning and prevent
an exhaustive search"). This module implements all three pieces:

* :func:`measure_kernel_seconds` — the timing primitive (best-of-N on
  synthetic uniform data, the paper's benchmark distribution);
* :class:`DecisionTable` — a (d, k)-gridded variant table built either
  from the model (cheap) or from measurements (exhaustive), with
  nearest-gridpoint lookup and JSON persistence;
* :func:`refine_threshold` — Figure 5's procedure: take the model's
  predicted k*, then measure only a geometric neighbourhood around it
  instead of the whole k axis;
* :func:`tune_block_n` — block-size sweep for the fast path.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..errors import ValidationError
from ..model.perf_model import PerformanceModel
from ..model.threshold import predict_variant_threshold
from .gsknn import gsknn
from .variants import Variant

__all__ = [
    "measure_kernel_seconds",
    "DecisionTable",
    "refine_threshold",
    "tune_block_n",
]


def measure_kernel_seconds(
    m: int,
    n: int,
    d: int,
    k: int,
    variant: int,
    *,
    repeats: int = 2,
    seed: int = 0,
    block_n: int | None = None,
) -> float:
    """Best-of-N wall clock of one kernel configuration on uniform data."""
    if min(m, n, d, k) < 1 or k > n:
        raise ValidationError("invalid problem sizes")
    rng = np.random.default_rng(seed)
    X = rng.random((max(m, n), d))
    q = np.arange(m)
    r = np.arange(n)
    kwargs = {} if block_n is None else {"block_n": block_n}
    gsknn(X, q, r, k, variant=variant, **kwargs)  # warm-up
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        gsknn(X, q, r, k, variant=variant, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best


@dataclass
class DecisionTable:
    """Variant choice on a (d, k) grid, queried by nearest gridpoint.

    The paper: "A two dimensional threshold can be set on the (d, k)
    space ... a tuning based decision table would need to search the
    whole (d, k) space which can be time consuming." Build it cheaply
    from the model (:meth:`from_model`) or exhaustively from timings
    (:meth:`from_measurements`).
    """

    m: int
    n: int
    d_grid: list[int]
    k_grid: list[int]
    choices: dict[tuple[int, int], int] = field(default_factory=dict)
    source: str = "unset"

    def __post_init__(self) -> None:
        if not self.d_grid or not self.k_grid:
            raise ValidationError("decision table needs non-empty grids")
        if sorted(self.d_grid) != list(self.d_grid) or sorted(
            self.k_grid
        ) != list(self.k_grid):
            raise ValidationError("grids must be sorted ascending")

    # -- construction ----------------------------------------------------

    @classmethod
    def from_model(
        cls,
        m: int,
        n: int,
        d_grid: list[int],
        k_grid: list[int],
        model: PerformanceModel | None = None,
    ) -> "DecisionTable":
        model = model if model is not None else PerformanceModel()
        table = cls(m, n, list(d_grid), list(k_grid), source="model")
        for d in d_grid:
            for k in k_grid:
                if k > n:
                    continue
                table.choices[(d, k)] = int(model.select_variant(m, n, d, k))
        return table

    @classmethod
    def from_measurements(
        cls,
        m: int,
        n: int,
        d_grid: list[int],
        k_grid: list[int],
        *,
        repeats: int = 2,
    ) -> "DecisionTable":
        """Exhaustive tuning: time Var#1 and Var#6 at every gridpoint."""
        table = cls(m, n, list(d_grid), list(k_grid), source="measured")
        for d in d_grid:
            for k in k_grid:
                if k > n:
                    continue
                t1 = measure_kernel_seconds(m, n, d, k, 1, repeats=repeats)
                t6 = measure_kernel_seconds(m, n, d, k, 6, repeats=repeats)
                table.choices[(d, k)] = 1 if t1 <= t6 else 6
        return table

    # -- lookup ------------------------------------------------------------

    @staticmethod
    def _nearest(grid: list[int], value: int) -> int:
        return min(grid, key=lambda g: abs(np.log2(max(g, 1)) - np.log2(max(value, 1))))

    def lookup(self, d: int, k: int) -> Variant:
        """Variant for a problem at (d, k): nearest gridpoint in log space."""
        if not self.choices:
            raise ValidationError("decision table is empty")
        key = (self._nearest(self.d_grid, d), self._nearest(self.k_grid, k))
        if key not in self.choices:
            # nearest gridpoint may have been skipped (k > n); fall back
            # to any populated k on that d row
            candidates = [c for c in self.choices if c[0] == key[0]]
            if not candidates:
                raise ValidationError(f"no decision for d={d}")
            key = min(candidates, key=lambda c: abs(c[1] - k))
        return Variant(self.choices[key])

    # -- persistence ---------------------------------------------------------

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        payload = {
            "m": self.m,
            "n": self.n,
            "d_grid": self.d_grid,
            "k_grid": self.k_grid,
            "source": self.source,
            "choices": [
                {"d": d, "k": k, "variant": v}
                for (d, k), v in sorted(self.choices.items())
            ],
        }
        path.write_text(json.dumps(payload, indent=2))
        return path

    @classmethod
    def load(cls, path: str | Path) -> "DecisionTable":
        path = Path(path)
        if not path.exists():
            raise ValidationError(f"decision table not found: {path}")
        payload = json.loads(path.read_text())
        table = cls(
            payload["m"],
            payload["n"],
            payload["d_grid"],
            payload["k_grid"],
            source=payload.get("source", "loaded"),
        )
        for entry in payload["choices"]:
            table.choices[(entry["d"], entry["k"])] = entry["variant"]
        return table


def refine_threshold(
    m: int,
    n: int,
    d: int,
    *,
    span: float = 4.0,
    points: int = 5,
    repeats: int = 2,
) -> int | None:
    """Figure 5's model-narrowed search for the real Var#1/Var#6 crossover.

    The model's predicted k* seeds a geometric grid of ``points`` values
    in ``[k*/span, k* x span]``; only those are measured. Returns the
    smallest measured k at which Var#6 wins, or None if Var#1 wins on
    the whole refined grid.
    """
    if span <= 1.0 or points < 2:
        raise ValidationError("need span > 1 and points >= 2")
    predicted = predict_variant_threshold(m, n, d, k_max=n)
    if predicted is None:
        return None
    lo = max(1, int(predicted / span))
    hi = min(n, int(predicted * span))
    grid = sorted(
        {int(round(g)) for g in np.geomspace(lo, hi, points)} | {predicted}
    )
    for k in grid:
        t1 = measure_kernel_seconds(m, n, d, k, 1, repeats=repeats)
        t6 = measure_kernel_seconds(m, n, d, k, 6, repeats=repeats)
        if t6 <= t1:
            return k
    return None


def tune_block_n(
    m: int,
    n: int,
    d: int,
    k: int,
    *,
    candidates: tuple[int, ...] = (256, 512, 1024, 2048, 4096),
    repeats: int = 2,
) -> int:
    """Pick the fastest ``block_n`` for the fast path at this problem size."""
    viable = [c for c in candidates if c <= n] or [n]
    times = {
        c: measure_kernel_seconds(
            m, n, d, k, 1, repeats=repeats, block_n=c
        )
        for c in viable
    }
    return min(times, key=times.get)
