#!/usr/bin/env python
"""Validate committed ``BENCH_*.json`` telemetry against the schema.

Usage::

    PYTHONPATH=src python benchmarks/check_bench_schema.py [PATH ...]

With no arguments, scans ``benchmarks/results/``. Each ``BENCH_*.json``
found must parse and satisfy :func:`repro.obs.telemetry.validate_record`
(schema version in range, required fields typed correctly, numeric
metrics). Exit status 1 if any record is invalid — CI runs this so a
half-written or hand-edited record can't silently rot.
"""

from __future__ import annotations

import sys
from pathlib import Path

try:
    from repro.obs import telemetry
    from repro.errors import ValidationError
except ImportError:  # pragma: no cover - direct invocation convenience
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    from repro.obs import telemetry
    from repro.errors import ValidationError


def find_records(paths: list[Path]) -> list[Path]:
    records: list[Path] = []
    for path in paths:
        if path.is_dir():
            records.extend(sorted(path.rglob("BENCH_*.json")))
        elif path.is_file():
            records.append(path)
        else:
            print(f"error: no such path {path}", file=sys.stderr)
            raise SystemExit(2)
    return records


def main(argv: list[str] | None = None) -> int:
    args = [Path(a) for a in (argv if argv is not None else sys.argv[1:])]
    if not args:
        args = [Path(__file__).resolve().parent / "results"]
    records = find_records(args)
    if not records:
        print("no BENCH_*.json records found (nothing to validate)")
        return 0
    failures = 0
    for path in records:
        try:
            record = telemetry.load_record(path)
        except ValidationError as exc:
            print(f"FAIL {path}: {exc}")
            failures += 1
            continue
        n_metrics = len(record.get("metrics", {}))
        sha = (record.get("environment") or {}).get("git_sha") or "?"
        print(
            f"ok   {path.name}: schema v{record['schema_version']}, "
            f"{n_metrics} metrics, sha {sha[:12]}"
        )
    if failures:
        print(f"\n{failures}/{len(records)} record(s) invalid", file=sys.stderr)
        return 1
    print(f"\nall {len(records)} record(s) valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
