"""kNN-graph construction — the downstream artifact the solvers feed.

The paper's motivating applications (§1: manifold learning,
hierarchical clustering, kernel machines) all consume the
all-nearest-neighbor result as a graph. This module turns a
:class:`~repro.core.neighbors.KnnResult` into a :mod:`networkx` graph
and provides the sanity metrics a graph consumer checks before running
spectral embeddings or label propagation on it.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from ..core.neighbors import KnnResult
from ..errors import ValidationError

__all__ = ["knn_graph", "GraphStats", "graph_stats", "mutual_knn_graph"]


def knn_graph(
    result: KnnResult,
    *,
    include_self: bool = False,
    weight: str = "distance",
) -> nx.Graph:
    """Symmetrized kNN graph: an edge per (query, neighbor) pair.

    ``weight`` is ``"distance"`` (edge weight = the kernel's distance,
    squared for l2) or ``"similarity"`` (``1 / (1 + distance)``).
    Unfilled slots (id ``-1``) are skipped.
    """
    if weight not in ("distance", "similarity"):
        raise ValidationError(
            f"weight must be 'distance' or 'similarity', got {weight!r}"
        )
    graph = nx.Graph()
    graph.add_nodes_from(range(result.m))
    for i in range(result.m):
        for dist, j in zip(result.distances[i], result.indices[i]):
            j = int(j)
            if j < 0 or (j == i and not include_self):
                continue
            value = (
                float(dist)
                if weight == "distance"
                else 1.0 / (1.0 + float(dist))
            )
            graph.add_edge(i, j, weight=value)
    return graph


def mutual_knn_graph(result: KnnResult) -> nx.Graph:
    """Mutual-kNN graph: edge (i, j) only if each lists the other.

    The sparser, noise-robust variant clustering pipelines prefer.
    """
    neighbor_sets = [
        {int(j) for j in row if j >= 0} for row in result.indices
    ]
    graph = nx.Graph()
    graph.add_nodes_from(range(result.m))
    for i in range(result.m):
        for dist, j in zip(result.distances[i], result.indices[i]):
            j = int(j)
            if j < 0 or j == i or j >= result.m:
                continue
            if i in neighbor_sets[j]:
                graph.add_edge(i, j, weight=float(dist))
    return graph


@dataclass(frozen=True)
class GraphStats:
    """Connectivity summary of a kNN graph."""

    n_nodes: int
    n_edges: int
    n_components: int
    min_degree: int
    median_degree: float
    max_degree: int
    largest_component_fraction: float


def graph_stats(graph: nx.Graph) -> GraphStats:
    """The checks a graph consumer runs before trusting the graph."""
    if graph.number_of_nodes() == 0:
        raise ValidationError("cannot summarize an empty graph")
    degrees = np.array([deg for _, deg in graph.degree()])
    components = list(nx.connected_components(graph))
    largest = max(len(c) for c in components)
    return GraphStats(
        n_nodes=graph.number_of_nodes(),
        n_edges=graph.number_of_edges(),
        n_components=len(components),
        min_degree=int(degrees.min()),
        median_degree=float(np.median(degrees)),
        max_degree=int(degrees.max()),
        largest_component_fraction=largest / graph.number_of_nodes(),
    )
