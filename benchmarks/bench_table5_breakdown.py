"""Table 5 — runtime breakdown: T_coll + T_gemm + T_sq2d + T_heap.

Paper setup: m = n = 8192, d ∈ {16, 64, 256, 1024}, k ∈ {16, 128, 512,
2048}; the GEMM-based kernel's time is split into its four phases, and
GSKNN (which cannot be phase-timed from inside the fused loop) reports a
total plus a heap estimate via the k = 1 subtraction trick.

Here: m = n = 2048 * sqrt(SCALE)-ish, same d/k grid scaled, same
subtraction trick. The shapes to reproduce:

* the GEMM kernel's non-GEMM overhead (coll + sq2d + heap) is a large
  fraction at low d and fades by d = 256+;
* GSKNN's total beats the GEMM kernel's at low d, converging at high d;
* GSKNN's heap time (k=1 subtraction) stays small for small k.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gsknn import gsknn
from repro.core.ref_kernel import ref_knn_timed

from .conftest import run_report, SCALE, best_time, uniform_problem

M = N_REFS = 2048 * SCALE
DIMS = [16, 64, 256, 1024]
KS = [16, 128, 512]


@pytest.fixture(scope="module")
def problems():
    return {d: uniform_problem(M, N_REFS, d, seed=0) for d in DIMS}


def _ref_breakdown(problem, k):
    X, q, r = problem
    # warm-up then measured run (matches the paper's 3-run averaging)
    ref_knn_timed(X, q, r, k)
    _, timer = ref_knn_timed(X, q, r, k)
    return timer.breakdown()


def _gsknn_total(problem, k):
    X, q, r = problem
    return best_time(lambda: gsknn(X, q, r, k), repeats=2)


def test_table5_rows(benchmark, report, problems):
    def _run():
        rep = report(
            "table5_breakdown",
            f"Table 5 (scaled: m=n={M}; times in ms)\n"
            f"{'d':>5} {'k':>5} | {'coll':>7} {'gemm':>7} {'sq2d':>7} "
            f"{'heap':>7} {'REF tot':>8} | {'GSKNN':>7} {'g-heap':>7} {'ratio':>6}",
        )
        rep.problem(m=M, n=N_REFS, dims=DIMS, ks=KS)
        for d in DIMS:
            base_total = _gsknn_total(problems[d], 1)  # the k=1 subtraction base
            for k in KS:
                b = _ref_breakdown(problems[d], k).as_millis()
                ours = _gsknn_total(problems[d], k) * 1e3
                heap_est = max(ours - base_total * 1e3, 0.0)
                rep.row(
                    f"{d:>5} {k:>5} | {b['coll']:>7.1f} {b['gemm']:>7.1f} "
                    f"{b['sq2d']:>7.1f} {b['heap']:>7.1f} {b['total']:>8.1f} | "
                    f"{ours:>7.1f} {heap_est:>7.1f} {b['total'] / ours:>6.2f}"
                )
                rep.data_row(
                    d=d, k=k, ref_phases_ms=b, gsknn_ms=ours,
                    gsknn_heap_estimate_ms=heap_est,
                )
                rep.metric(f"d{d}.k{k}.ref_total_ms", b["total"])
                rep.metric(f"d{d}.k{k}.gsknn_total_ms", ours)
                rep.metric(f"d{d}.k{k}.speedup", b["total"] / ours)


    run_report(benchmark, _run)


class TestBreakdownShapes:
    def test_gemm_dominates_at_high_d(self, problems):
        b = _ref_breakdown(problems[1024], 16)
        assert b.gemm > 0.6 * b.total

    def test_overhead_fraction_larger_at_low_d(self, problems):
        low = _ref_breakdown(problems[16], 16)
        high = _ref_breakdown(problems[1024], 16)
        overhead = lambda b: (b.coll + b.sq2d + b.heap) / b.total
        assert overhead(low) > overhead(high)

    def test_gsknn_wins_at_low_d(self, problems):
        ref = _ref_breakdown(problems[16], 16).total
        ours = _gsknn_total(problems[16], 16)
        assert ours < ref

    def test_heap_estimate_grows_with_k(self, problems):
        base = _gsknn_total(problems[64], 1)
        small = _gsknn_total(problems[64], 16) - base
        large = _gsknn_total(problems[64], 512) - base
        assert large > small


@pytest.mark.parametrize("d", [16, 256])
@pytest.mark.parametrize("kernel", ["gemm", "gsknn"])
def test_bench_kernels(benchmark, problems, d, kernel):
    X, q, r = problems[d]
    benchmark.group = f"table5 m=n={M} d={d} k=16"
    benchmark.name = kernel
    if kernel == "gsknn":
        benchmark(lambda: gsknn(X, q, r, 16))
    else:
        benchmark(lambda: ref_knn_timed(X, q, r, 16))
