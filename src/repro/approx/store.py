"""Persisted planner calibration: schema-versioned, fingerprint-keyed.

The recall-aware planner's measured operating points (recall + seconds
per method knob) are only valid on the host that measured them, exactly
like the autotuner's block sizes — so this file mirrors
:mod:`repro.tune.store` precisely: a ``planner.json`` living **next to
``tuning.json``** (same directory, same ``$REPRO_TUNE_CACHE``
redirection; ``$REPRO_PLANNER_CACHE`` overrides the file directly),
entries keyed by the same host fingerprint, atomic writes, and a loader
that returns ``None`` — never a wrong entry, never an exception — for a
missing/corrupt/future-schema file or a fingerprint mismatch. The
planner's contract on ``None`` is the fallback ladder: silently choose
exact.

File shape (``planner.json``)::

    {
      "schema_version": 1,
      "hosts": {
        "<fingerprint key>": {
          "fingerprint": {...},
          "calibration": {... PlannerCalibration fields ...},
          "created_unix": 1754500000.0
        }
      }
    }
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any

from ..errors import ValidationError
from ..ioutil import atomic_write_json
from ..tune.store import default_cache_path, fingerprint_key, host_fingerprint

__all__ = [
    "PLANNER_SCHEMA_VERSION",
    "default_planner_path",
    "save_calibration",
    "load_calibration",
]

PLANNER_SCHEMA_VERSION = 1

_CACHE_ENV = "REPRO_PLANNER_CACHE"


def default_planner_path() -> Path:
    env = os.environ.get(_CACHE_ENV)
    if env:
        return Path(env)
    # alongside tuning.json, including when $REPRO_TUNE_CACHE moved it
    return default_cache_path().with_name("planner.json")


def _load_file(path: Path) -> dict[str, Any]:
    """Read the cache file; anything unusable degrades to empty."""
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return {"schema_version": PLANNER_SCHEMA_VERSION, "hosts": {}}
    if (
        not isinstance(doc, dict)
        or not isinstance(doc.get("hosts"), dict)
        or not isinstance(doc.get("schema_version"), int)
        or doc["schema_version"] > PLANNER_SCHEMA_VERSION
        or doc["schema_version"] < 1
    ):
        return {"schema_version": PLANNER_SCHEMA_VERSION, "hosts": {}}
    return doc


def save_calibration(
    calibration: "PlannerCalibration",
    *,
    cache_path: str | Path | None = None,
) -> Path:
    """Persist under this host's fingerprint; other hosts' entries kept."""
    from .planner import PlannerCalibration

    if not isinstance(calibration, PlannerCalibration):
        raise ValidationError(
            f"expected a PlannerCalibration, got {type(calibration).__name__}"
        )
    path = (
        Path(cache_path) if cache_path is not None else default_planner_path()
    )
    doc = _load_file(path) if path.exists() else {
        "schema_version": PLANNER_SCHEMA_VERSION,
        "hosts": {},
    }
    fp = host_fingerprint()
    doc["schema_version"] = PLANNER_SCHEMA_VERSION
    doc["hosts"][fingerprint_key(fp)] = {
        "fingerprint": fp,
        "calibration": calibration.to_dict(),
        "created_unix": time.time(),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_json(path, doc)
    return path


def load_calibration(
    cache_path: str | Path | None = None,
) -> "PlannerCalibration | None":
    """This host's calibration, or ``None`` (the fallback-ladder signal)."""
    from .planner import PlannerCalibration

    path = (
        Path(cache_path) if cache_path is not None else default_planner_path()
    )
    if not path.exists():
        return None
    entry = _load_file(path)["hosts"].get(fingerprint_key())
    if not isinstance(entry, dict) or not isinstance(
        entry.get("calibration"), dict
    ):
        return None
    try:
        return PlannerCalibration.from_dict(entry["calibration"])
    except (KeyError, TypeError, ValueError, ValidationError):
        return None
