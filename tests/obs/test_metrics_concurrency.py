"""Hammer tests: MetricsRegistry under concurrent mutation.

The registry's contract (see ``repro.obs.metrics`` module docstring) is
per-metric internal consistency: totals are exact, and any snapshot
taken mid-hammer is self-consistent (histogram count == bucket sum ==
what the sum field accounts for). There is no cross-metric atomicity
promise, and these tests don't assert one.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import MetricsRegistry

N_THREADS = 8
N_OPS = 2000


def hammer(fn, n_threads: int = N_THREADS):
    """Run ``fn(worker_index)`` on N threads, starting as one pack."""
    barrier = threading.Barrier(n_threads)
    errors: list[BaseException] = []

    def run(i: int) -> None:
        try:
            barrier.wait()
            fn(i)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors


class TestCounters:
    def test_exact_total_under_contention(self):
        registry = MetricsRegistry(enabled=True)

        def work(_i):
            for _ in range(N_OPS):
                registry.inc("hammer.hits")

        hammer(work)
        assert registry.snapshot()["counters"]["hammer.hits"] == (
            N_THREADS * N_OPS
        )

    def test_labeled_counters_do_not_cross_talk(self):
        registry = MetricsRegistry(enabled=True)

        def work(i):
            labels = {"worker": i % 2}
            for _ in range(N_OPS):
                registry.inc("hammer.labeled", labels=labels)

        hammer(work)
        counters = registry.snapshot()["counters"]
        assert counters['hammer.labeled{worker="0"}'] == N_THREADS // 2 * N_OPS
        assert counters['hammer.labeled{worker="1"}'] == N_THREADS // 2 * N_OPS

    def test_float_increments_accumulate(self):
        registry = MetricsRegistry(enabled=True)

        def work(_i):
            for _ in range(N_OPS):
                registry.inc("hammer.bytes", 0.5)

        hammer(work)
        total = registry.snapshot()["counters"]["hammer.bytes"]
        assert total == pytest.approx(N_THREADS * N_OPS * 0.5)


class TestHistograms:
    def test_exact_count_and_sum(self):
        registry = MetricsRegistry(enabled=True)

        def work(i):
            for j in range(N_OPS):
                registry.observe("hammer.hist", (i + 1) * 1e-6 * (j % 7 + 1))

        hammer(work)
        snap = registry.snapshot()["histograms"]["hammer.hist"]
        assert snap["count"] == N_THREADS * N_OPS
        assert sum(snap["buckets"]) == snap["count"]

    def test_midflight_snapshots_are_self_consistent(self):
        registry = MetricsRegistry(enabled=True)
        stop = threading.Event()
        bad: list[str] = []

        def reader():
            while not stop.is_set():
                snap = registry.snapshot()["histograms"].get("hammer.live")
                if snap is None:
                    continue
                if sum(snap["buckets"]) != snap["count"]:
                    bad.append(
                        f"buckets {sum(snap['buckets'])} != count {snap['count']}"
                    )
                if snap["count"] and not snap["min"] <= snap["mean"] <= snap["max"]:
                    bad.append("mean outside [min, max]")

        watcher = threading.Thread(target=reader)
        watcher.start()
        try:
            def work(_i):
                for j in range(N_OPS):
                    registry.observe("hammer.live", 1e-6 * (j % 13 + 1))

            hammer(work)
        finally:
            stop.set()
            watcher.join()
        assert not bad, bad[:5]
        snap = registry.snapshot()["histograms"]["hammer.live"]
        assert snap["count"] == N_THREADS * N_OPS


class TestDrain:
    def test_drain_during_hammer_conserves_total(self):
        # workers keep incrementing while a collector repeatedly drains
        # (the worker-to-parent shipping path): nothing may be lost or
        # double-counted across drains plus the final snapshot
        registry = MetricsRegistry(enabled=True)
        drained: list[float] = []
        stop = threading.Event()

        def collector():
            while not stop.is_set():
                snap = registry.drain()
                drained.append(
                    snap["counters"].get("hammer.drain", 0)
                )

        watcher = threading.Thread(target=collector)
        watcher.start()
        try:
            def work(_i):
                for _ in range(N_OPS):
                    registry.inc("hammer.drain")

            hammer(work)
        finally:
            stop.set()
            watcher.join()
        leftover = registry.snapshot()["counters"].get("hammer.drain", 0)
        assert sum(drained) + leftover == N_THREADS * N_OPS


class TestMergeSnapshot:
    def test_concurrent_merges_accumulate_exactly(self):
        # parent absorbing many worker snapshots from pool threads at once
        worker_registry = MetricsRegistry(enabled=True)
        worker_registry.inc("merged.count", 3)
        worker_registry.observe("merged.hist", 0.004)
        snap = worker_registry.snapshot()

        parent = MetricsRegistry(enabled=True)

        def work(_i):
            for _ in range(50):
                parent.merge_snapshot(snap)

        hammer(work)
        got = parent.snapshot()
        assert got["counters"]["merged.count"] == N_THREADS * 50 * 3
        assert got["histograms"]["merged.hist"]["count"] == N_THREADS * 50
