"""Randomized KD-trees for approximate all-nearest-neighbors.

The outer solver of the paper's Table 1 experiment ([34], Xiao &
Biros): build a KD-tree whose splits use randomly rotated directions,
stop at leaves of ~``m`` points, and solve one *exact* kNN kernel per
leaf (queries = references = the leaf's points). One tree gives each
point candidates only from its own leaf; iterating over independently
randomized trees and merging neighbor lists drives recall toward 1.

Splits: at each node choose the coordinate with maximum variance among
a random sample of ``n_dims_sampled`` dimensions (the classic FLANN-style
randomization) and split at the median, so leaves have balanced sizes
and the kernel always sees well-shaped m x m problems.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ValidationError

__all__ = ["RandomizedKDTree", "RandomizedKDForest"]


@dataclass
class RandomizedKDTree:
    """One randomized KD-tree over a point set, built to a leaf size.

    Only the leaf partition matters for the kNN kernel (the tree is a
    grouping device, not a search structure here), so leaves are stored
    as index arrays into the caller's coordinate table.
    """

    leaf_size: int
    n_dims_sampled: int = 5
    seed: int | None = None
    leaves: list[np.ndarray] = field(default_factory=list, repr=False)

    def fit(self, X: np.ndarray) -> "RandomizedKDTree":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] == 0:
            raise ValidationError(f"X must be a non-empty (N, d) array, got {X.shape}")
        if self.leaf_size < 2:
            raise ValidationError(
                f"leaf_size must be >= 2, got {self.leaf_size}"
            )
        rng = np.random.default_rng(self.seed)
        self.leaves = []
        self._split(X, np.arange(X.shape[0], dtype=np.intp), rng)
        return self

    def _split(
        self, X: np.ndarray, idx: np.ndarray, rng: np.random.Generator
    ) -> None:
        if idx.size <= self.leaf_size:
            self.leaves.append(idx)
            return
        d = X.shape[1]
        sample = rng.choice(d, size=min(self.n_dims_sampled, d), replace=False)
        block = X[idx][:, sample]
        axis = sample[int(np.argmax(block.var(axis=0)))]
        values = X[idx, axis]
        order = np.argsort(values, kind="stable")
        half = idx.size // 2
        # Randomize the split point slightly around the median so two
        # trees with the same max-variance axis still partition
        # differently (this is what makes iterating trees productive).
        jitter = int(rng.integers(-idx.size // 20 - 1, idx.size // 20 + 2))
        cut = int(np.clip(half + jitter, 1, idx.size - 1))
        self._split(X, idx[order[:cut]], rng)
        self._split(X, idx[order[cut:]], rng)

    @property
    def n_leaves(self) -> int:
        return len(self.leaves)

    def leaf_sizes(self) -> np.ndarray:
        return np.array([leaf.size for leaf in self.leaves], dtype=np.intp)


@dataclass
class RandomizedKDForest:
    """A sequence of independently randomized trees over the same points."""

    leaf_size: int
    n_trees: int = 8
    n_dims_sampled: int = 5
    seed: int | None = 0

    def __post_init__(self) -> None:
        if self.n_trees < 1:
            raise ValidationError(f"n_trees must be >= 1, got {self.n_trees}")

    def trees(self, X: np.ndarray):
        """Yield fitted trees one at a time (iterative solvers stream them)."""
        root = np.random.default_rng(self.seed)
        for _ in range(self.n_trees):
            tree_seed = int(root.integers(0, 2**63 - 1))
            yield RandomizedKDTree(
                leaf_size=self.leaf_size,
                n_dims_sampled=self.n_dims_sampled,
                seed=tree_seed,
            ).fit(X)
