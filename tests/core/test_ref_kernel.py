"""Unit tests for the Algorithm 2.1 GEMM-based reference kernel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ref_kernel import ref_knn, ref_knn_timed
from repro.errors import ValidationError

from ..conftest import brute_force_knn


class TestRefKnn:
    @pytest.mark.parametrize("selection", ["partition", "heap"])
    def test_matches_brute_force(self, small_cloud, rng, selection):
        q = rng.integers(0, 300, 20)
        r = rng.permutation(300)[:80]
        res = ref_knn(small_cloud, q, r, 6, selection=selection)
        truth_d, _ = brute_force_knn(small_cloud, q, r, 6)
        np.testing.assert_allclose(res.distances, truth_d, atol=1e-9)

    def test_agrees_with_gsknn(self, small_cloud, rng):
        from repro.core.gsknn import gsknn

        q = rng.integers(0, 300, 15)
        r = rng.permutation(300)[:70]
        a = ref_knn(small_cloud, q, r, 5)
        b = gsknn(small_cloud, q, r, 5)
        np.testing.assert_allclose(a.distances, b.distances, atol=1e-9)

    @pytest.mark.parametrize("norm,p", [("l1", 1.0), ("linf", np.inf)])
    def test_lp_norms(self, small_cloud, rng, norm, p):
        q = rng.integers(0, 300, 8)
        r = rng.permutation(300)[:40]
        res = ref_knn(small_cloud, q, r, 3, norm=norm)
        truth_d, _ = brute_force_knn(small_cloud, q, r, 3, p=p)
        np.testing.assert_allclose(res.distances, truth_d, atol=1e-9)

    def test_unknown_selection(self, small_cloud):
        with pytest.raises(ValidationError):
            ref_knn(small_cloud, np.arange(3), np.arange(10), 2, selection="magic")

    def test_k_equals_n(self, small_cloud):
        res = ref_knn(small_cloud, np.arange(5), np.arange(7), 7)
        assert res.k == 7
        assert res.is_sorted()

    def test_precomputed_x2(self, small_cloud):
        X2 = (small_cloud**2).sum(axis=1)
        a = ref_knn(small_cloud, np.arange(5), np.arange(50), 4, X2=X2)
        b = ref_knn(small_cloud, np.arange(5), np.arange(50), 4)
        np.testing.assert_allclose(a.distances, b.distances, atol=1e-12)


class TestRefKnnTimed:
    def test_phase_breakdown_shape(self, small_cloud):
        _, timer = ref_knn_timed(small_cloud, np.arange(20), np.arange(200), 5)
        breakdown = timer.breakdown()
        assert breakdown.coll >= 0
        assert breakdown.gemm > 0
        assert breakdown.sq2d >= 0
        assert breakdown.heap > 0
        assert breakdown.total > 0

    def test_lp_has_no_sq2d_phase(self, small_cloud):
        _, timer = ref_knn_timed(
            small_cloud, np.arange(10), np.arange(50), 3, norm="l1"
        )
        assert timer.breakdown().sq2d == 0.0

    def test_result_matches_untimed(self, small_cloud):
        res_a = ref_knn(small_cloud, np.arange(10), np.arange(50), 3)
        res_b, _ = ref_knn_timed(small_cloud, np.arange(10), np.arange(50), 3)
        np.testing.assert_allclose(res_a.distances, res_b.distances)
