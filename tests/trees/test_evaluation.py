"""Unit tests for ANN evaluation metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.neighbors import KnnResult
from repro.errors import ValidationError
from repro.trees.evaluation import distance_ratio, quality_curve, recall_at


def _res(dist, idx):
    return KnnResult(np.asarray(dist, float), np.asarray(idx))


class TestDistanceRatio:
    def test_exact_match_is_one(self):
        truth = _res([[1.0, 2.0]], [[1, 2]])
        assert distance_ratio(truth, truth) == pytest.approx(1.0)

    def test_worse_candidate_above_one(self):
        truth = _res([[1.0, 2.0]], [[1, 2]])
        cand = _res([[1.5, 4.0]], [[5, 6]])
        assert distance_ratio(cand, truth) == pytest.approx((1.5 + 2.0) / 2)

    def test_zero_distance_handling(self):
        truth = _res([[0.0, 1.0]], [[0, 1]])
        cand = _res([[0.0, 2.0]], [[0, 9]])
        assert distance_ratio(cand, truth) == pytest.approx(1.5)

    def test_unfilled_slots_skipped(self):
        truth = _res([[1.0, 2.0]], [[1, 2]])
        cand = _res([[1.0, np.inf]], [[1, -1]])
        assert distance_ratio(cand, truth) == pytest.approx(1.0)

    def test_no_comparable_slots(self):
        truth = _res([[np.inf]], [[-1]])
        cand = _res([[np.inf]], [[-1]])
        with pytest.raises(ValidationError):
            distance_ratio(cand, truth)

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            distance_ratio(
                _res([[1.0]], [[1]]), _res([[1.0, 2.0]], [[1, 2]])
            )


class TestRecallAt:
    def test_recall_at_one(self):
        truth = _res([[1.0, 2.0, 3.0]], [[1, 2, 3]])
        cand = _res([[1.0, 9.0, 9.5]], [[1, 8, 9]])
        assert recall_at(cand, truth, 1) == 1.0
        assert recall_at(cand, truth, 3) == pytest.approx(1 / 3)

    def test_j_bounds(self):
        truth = _res([[1.0]], [[1]])
        with pytest.raises(ValidationError):
            recall_at(truth, truth, 0)
        with pytest.raises(ValidationError):
            recall_at(truth, truth, 2)

    def test_recall_at_decreases_or_flat_with_j(self):
        """Finding the first few true neighbors is never harder than
        finding all of them (per-j recall is monotone non-increasing for
        a list that holds a prefix of the truth)."""
        truth = _res([[1.0, 2.0, 3.0, 4.0]], [[1, 2, 3, 4]])
        cand = _res([[1.0, 2.0, 9.0, 9.1]], [[1, 2, 8, 9]])
        curve = quality_curve(cand, truth, [1, 2, 3, 4])
        values = [curve[j] for j in (1, 2, 3, 4)]
        assert values == sorted(values, reverse=True)


class TestQualityCurve:
    def test_default_js_cover_k(self):
        truth = _res([[1.0] * 6], [list(range(6))])
        curve = quality_curve(truth, truth)
        assert 1 in curve and 6 in curve
        assert all(v == 1.0 for v in curve.values())

    def test_against_real_solver(self):
        from repro.data import embedded_gaussian
        from repro.trees import all_nearest_neighbors, exact_all_knn

        cloud = embedded_gaussian(400, 12, intrinsic_dim=5, seed=6).points
        truth = exact_all_knn(cloud, 8)
        report = all_nearest_neighbors(
            cloud, 8, leaf_size=64, iterations=4, tol=0.0
        )
        curve = quality_curve(report.result, truth)
        # nearest neighbors are found more reliably than the kth
        assert curve[1] >= curve[8]
        ratio = distance_ratio(report.result, truth)
        assert ratio >= 1.0
        assert ratio < 2.0
