"""Closed-loop traffic generation against a :class:`KnnQueryService`.

Shared by the ``repro-gsknn serve`` CLI and ``bench_serving.py``: a set
of client threads, each submitting one request, waiting for its result,
and immediately submitting the next (closed loop — offered load adapts
to service rate, so the system is driven at its sustainable throughput
instead of into an unbounded queue). Shed requests back off for the
service's ``retry_after`` estimate; per-tenant tallies make fairness
checkable from the report alone.

Determinism: each client gets its own seeded RNG (``seed + index``), so
a report is reproducible for a fixed host speed modulo scheduling
jitter.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..errors import KernelTimeoutError, OverloadError, ValidationError

__all__ = ["LoadReport", "TenantStats", "run_closed_loop"]


@dataclass
class TenantStats:
    """Per-tenant tallies of one load run."""

    tenant: str
    sent: int = 0
    completed: int = 0
    shed: int = 0
    expired: int = 0
    failed: int = 0
    latencies: list[float] = field(default_factory=list)

    @property
    def goodput(self) -> int:
        return self.completed


@dataclass
class LoadReport:
    """Aggregate outcome of one closed-loop run."""

    wall_seconds: float
    clients: int
    per_tenant: dict[str, TenantStats]

    @property
    def sent(self) -> int:
        return sum(t.sent for t in self.per_tenant.values())

    @property
    def completed(self) -> int:
        return sum(t.completed for t in self.per_tenant.values())

    @property
    def shed(self) -> int:
        return sum(t.shed for t in self.per_tenant.values())

    @property
    def expired(self) -> int:
        return sum(t.expired for t in self.per_tenant.values())

    @property
    def failed(self) -> int:
        return sum(t.failed for t in self.per_tenant.values())

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.wall_seconds if self.wall_seconds else 0.0

    def latencies(self) -> np.ndarray:
        """All completed-request latencies in seconds, unsorted."""
        chunks = [t.latencies for t in self.per_tenant.values() if t.latencies]
        if not chunks:
            return np.empty(0)
        return np.concatenate([np.asarray(c) for c in chunks])

    def percentile(self, q: float) -> float:
        lat = self.latencies()
        return float(np.percentile(lat, q)) if lat.size else 0.0

    def summary(self) -> dict:
        """JSON-able digest (the bench's and CLI's shared shape)."""
        return {
            "wall_seconds": round(self.wall_seconds, 4),
            "clients": self.clients,
            "sent": self.sent,
            "completed": self.completed,
            "shed": self.shed,
            "expired": self.expired,
            "failed": self.failed,
            "throughput_rps": round(self.throughput_rps, 2),
            "latency_p50_ms": round(self.percentile(50) * 1e3, 4),
            "latency_p95_ms": round(self.percentile(95) * 1e3, 4),
            "latency_p99_ms": round(self.percentile(99) * 1e3, 4),
            "per_tenant": {
                name: {
                    "sent": t.sent,
                    "completed": t.completed,
                    "shed": t.shed,
                    "expired": t.expired,
                    "failed": t.failed,
                }
                for name, t in sorted(self.per_tenant.items())
            },
        }


def run_closed_loop(
    service,
    *,
    clients: int = 8,
    duration_seconds: float = 5.0,
    k: int = 8,
    rows: int = 4,
    tenants: dict[str, int] | None = None,
    deadline: float | None = None,
    seed: int = 0,
    shed_backoff_seconds: float = 2e-3,
    result_timeout: float = 30.0,
    recall_target: float | None = None,
) -> LoadReport:
    """Drive ``service`` with ``clients`` closed-loop clients.

    ``tenants`` maps tenant name to its client count (values must sum
    to ``clients``); default is all clients on ``"default"``.
    ``deadline`` is a per-request budget in seconds (the SLO); shed
    requests sleep the service's ``retry_after`` (or
    ``shed_backoff_seconds``) before retrying, like a well-behaved
    client. ``recall_target`` rides on every request (opting into the
    service's approximate tier when one is mounted).
    """
    if clients < 1:
        raise ValidationError(f"clients must be >= 1, got {clients}")
    if tenants is None:
        tenants = {"default": clients}
    if sum(tenants.values()) != clients:
        raise ValidationError(
            f"tenant client counts {tenants} must sum to clients={clients}"
        )
    n_table = service.X.shape[0]
    assignments: list[str] = []
    for tenant, count in tenants.items():
        assignments.extend([tenant] * count)
    stats = {tenant: TenantStats(tenant) for tenant in tenants}
    stats_lock = threading.Lock()
    stop_at = time.perf_counter() + duration_seconds

    def client_loop(index: int) -> None:
        rng = np.random.default_rng(seed + index)
        tenant = assignments[index]
        mine = stats[tenant]
        while time.perf_counter() < stop_at:
            q_idx = rng.integers(0, n_table, size=rows)
            t0 = time.perf_counter()
            try:
                handle = service.submit(
                    q_idx, k, tenant=tenant, deadline=deadline,
                    recall_target=recall_target,
                )
                with stats_lock:
                    mine.sent += 1
                handle.result(timeout=result_timeout)
            except OverloadError as exc:
                with stats_lock:
                    mine.shed += 1
                pause = exc.retry_after
                time.sleep(
                    pause if pause is not None else shed_backoff_seconds
                )
                continue
            except KernelTimeoutError:
                with stats_lock:
                    mine.expired += 1
                continue
            except Exception:
                with stats_lock:
                    mine.failed += 1
                continue
            latency = time.perf_counter() - t0
            with stats_lock:
                mine.completed += 1
                mine.latencies.append(latency)

    threads = [
        threading.Thread(
            target=client_loop, args=(i,), name=f"loadgen-{i}", daemon=True
        )
        for i in range(clients)
    ]
    t_start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join(duration_seconds + result_timeout)
    wall = time.perf_counter() - t_start
    return LoadReport(wall_seconds=wall, clients=clients, per_tenant=stats)
