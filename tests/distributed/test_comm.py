"""Unit tests for the simulated communicator and cost model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed import AlphaBetaModel, SimComm
from repro.errors import ValidationError


class TestAlphaBetaModel:
    def test_pricing(self):
        from repro.distributed.comm import CommStats

        model = AlphaBetaModel(alpha=1e-6, beta=1e-9)
        stats = CommStats(messages=10, bytes_sent=1000)
        assert model.seconds(stats) == pytest.approx(1e-5 + 1e-6)

    def test_validation(self):
        with pytest.raises(ValidationError):
            AlphaBetaModel(alpha=-1)


class TestSimComm:
    def test_send_recv_round_trip(self):
        comm = SimComm(3)
        payload = np.arange(10.0)
        comm.send(0, 2, payload, tag="x")
        got = comm.recv(2, 0, tag="x")
        np.testing.assert_array_equal(got, payload)

    def test_fifo_per_channel(self):
        comm = SimComm(2)
        comm.send(0, 1, np.array([1.0]))
        comm.send(0, 1, np.array([2.0]))
        assert comm.recv(1, 0)[0] == 1.0
        assert comm.recv(1, 0)[0] == 2.0

    def test_recv_without_send_raises(self):
        comm = SimComm(2)
        with pytest.raises(ValidationError):
            comm.recv(1, 0)

    def test_rank_bounds(self):
        comm = SimComm(2)
        with pytest.raises(ValidationError):
            comm.send(0, 5, np.zeros(1))
        with pytest.raises(ValidationError):
            SimComm(0)

    def test_self_sends_are_free(self):
        comm = SimComm(2)
        comm.send(0, 0, np.zeros(100))
        assert comm.stats[0].bytes_sent == 0
        assert comm.stats[0].messages == 0

    def test_bytes_accounting(self):
        comm = SimComm(2)
        comm.send(0, 1, np.zeros(100))  # 800 bytes
        comm.send(0, 1, (np.zeros(10), np.zeros(10)))  # 160 bytes
        assert comm.stats[0].bytes_sent == 960
        assert comm.stats[0].messages == 2

    def test_unsupported_payload(self):
        comm = SimComm(2)
        with pytest.raises(ValidationError):
            comm.send(0, 1, object())

    def test_gather(self):
        comm = SimComm(3)
        got = comm.gather(0, [np.full(2, r) for r in range(3)])
        assert [g[0] for g in got] == [0, 1, 2]
        # ranks 1 and 2 paid; rank 0's self-send was free
        assert comm.stats[1].messages == 1
        assert comm.stats[0].messages == 0

    def test_broadcast(self):
        comm = SimComm(3)
        got = comm.broadcast(1, np.array([7.0]))
        assert all(g[0] == 7.0 for g in got)
        assert comm.stats[1].messages == 2  # two real destinations

    def test_alltoallv(self):
        comm = SimComm(2)
        chunks = [
            [np.array([0.0]), np.array([1.0])],
            [np.array([10.0]), np.array([11.0])],
        ]
        inboxes = comm.alltoallv(chunks)
        assert inboxes[0][1][0] == 10.0
        assert inboxes[1][0][0] == 1.0

    def test_alltoallv_shape_checked(self):
        comm = SimComm(2)
        with pytest.raises(ValidationError):
            comm.alltoallv([[np.zeros(1)]])

    def test_max_rank_seconds(self):
        comm = SimComm(2)
        comm.send(0, 1, np.zeros(1000))
        model = AlphaBetaModel(alpha=0.0, beta=1e-9)
        assert comm.max_rank_seconds(model) == pytest.approx(8000 * 1e-9)


class TestCommProperties:
    def test_alltoallv_is_transpose(self):
        """Every payload lands at chunks[src][dst] -> inbox[dst][src]."""
        import numpy as np
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @given(st.integers(min_value=1, max_value=5),
               st.integers(min_value=0, max_value=2**31))
        @settings(max_examples=25, deadline=None)
        def run(p, seed):
            rng = np.random.default_rng(seed)
            comm = SimComm(p)
            chunks = [
                [rng.random(int(rng.integers(0, 5))) for _ in range(p)]
                for _ in range(p)
            ]
            inboxes = comm.alltoallv(chunks)
            for dst in range(p):
                for src in range(p):
                    np.testing.assert_array_equal(
                        inboxes[dst][src], chunks[src][dst]
                    )

        run()

    def test_byte_accounting_matches_payload_sizes(self):
        import numpy as np

        comm = SimComm(3)
        sizes = [10, 100, 7]
        for i, size in enumerate(sizes):
            comm.send(0, 1, np.zeros(size))
        assert comm.stats[0].bytes_sent == 8 * sum(sizes)
        assert comm.stats[0].messages == len(sizes)
