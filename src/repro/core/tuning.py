"""Blocking-parameter selection and variant switching (paper §2.4).

The analytical recipe (following Low et al., "Analytical modeling is
enough for high performance BLIS"):

* ``m_r x n_r`` — sized so enough independent FMAs are in flight to hide
  the FMA latency (8 cycles of mul+add on Ivy Bridge ⇒ >= 8 tiles of 4
  doubles ⇒ 8 x 4 with an AVX register file of 16 x 256-bit);
* ``d_c`` — micro-panels ``(m_r + n_r) x d_c`` fill ~3/4 of L1, keeping
  a quarter free for streaming;
* ``m_c`` — ``Q_c = m_c x d_c`` fills ~3/4 of L2;
* ``n_c`` — ``R_c = n_c x d_c`` fills L3.

Variant switching uses either the paper's simple production rule
(Var#1 for k <= 512, §3) or the performance model's prediction.
"""

from __future__ import annotations

from ..config import BlockingParams
from ..errors import ValidationError
from ..machine.params import MachineParams
from ..model.perf_model import PerformanceModel
from .gsknn import DEFAULT_VARIANT_SWITCH_K
from .variants import Variant

__all__ = [
    "select_blocking",
    "select_variant_heuristic",
    "select_variant_model",
    "dynamic_m_c",
]

_DOUBLE = 8


def _round_down_multiple(value: int, multiple: int) -> int:
    return max((value // multiple) * multiple, multiple)


def select_blocking(
    machine: MachineParams,
    *,
    m_r: int = 8,
    n_r: int = 4,
    l1_fill: float = 0.75,
    l2_fill: float = 0.75,
    l3_fill: float = 1.0,
) -> BlockingParams:
    """Derive the five block sizes from a machine's cache geometry.

    Applied to :data:`~repro.machine.params.IVY_BRIDGE` this reproduces
    the paper's published parameters up to the m_c rounding (the paper
    uses 104 = 13 x m_r where 3/4 L2 gives 96-128 depending on how much
    is reserved for R_c micro-panels and C; we keep the same
    neighbourhood and round to a multiple of m_r).
    """
    if not machine.caches:
        raise ValidationError(
            f"machine {machine.name!r} has no cache levels to size against"
        )
    if len(machine.caches) < 3:
        raise ValidationError(
            "blocking derivation needs at least three cache levels"
        )
    l1, l2, l3 = machine.caches[0], machine.caches[1], machine.caches[2]

    d_c = int(l1_fill * l1.size_bytes / ((m_r + n_r) * _DOUBLE))
    d_c = _round_down_multiple(d_c, 8)
    m_c = int(l2_fill * l2.size_bytes / (d_c * _DOUBLE))
    m_c = _round_down_multiple(m_c, m_r)
    n_c = int(l3_fill * l3.size_bytes / (d_c * _DOUBLE))
    n_c = _round_down_multiple(n_c, n_r)
    return BlockingParams(m_r=m_r, n_r=n_r, d_c=d_c, m_c=m_c, n_c=n_c)


def select_variant_heuristic(k: int, d: int) -> Variant:
    """The paper's production rule (§3): Var#1 for k <= 512, else Var#6."""
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    return Variant.VAR1 if k <= DEFAULT_VARIANT_SWITCH_K else Variant.VAR6


def select_variant_model(
    m: int, n: int, d: int, k: int, model: PerformanceModel
) -> Variant:
    """Model-predicted variant choice (the Figure 5 threshold rule)."""
    return model.select_variant(m, n, d, k)


def dynamic_m_c(m: int, p: int, base: BlockingParams) -> int:
    """Load-balanced ``m_c`` for ``p`` cores (paper §2.5).

    The 4th loop is the parallel loop; static scheduling balances only
    when the number of ``m_c``-blocks is a multiple of ``p``. Shrink
    ``m_c`` (never grow — it must still fit L2) so every core gets the
    same number of blocks, rounded to the register block ``m_r``.
    """
    if m < 1 or p < 1:
        raise ValidationError(f"need m >= 1 and p >= 1, got m={m}, p={p}")
    blocks = -(-m // base.m_c)  # blocks at the base size
    rounds = -(-blocks // p)
    target_blocks = rounds * p
    m_c = -(-m // target_blocks)
    m_c = -(-m_c // base.m_r) * base.m_r  # round UP to a multiple of m_r
    return min(max(m_c, base.m_r), base.m_c)
