"""Tracer: span nesting, ordering, disabled-path overhead, exports."""

from __future__ import annotations

import gc
import json
import threading
import tracemalloc
from pathlib import Path

import pytest

from repro.errors import ValidationError
from repro.obs.trace import (
    Span,
    Tracer,
    _NULL_SPAN,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
    span,
)

GOLDEN = Path(__file__).parent / "data" / "golden_chrome_trace.json"


class FakeClock:
    """Deterministic clock: every read advances by ``step`` seconds."""

    def __init__(self, step: float = 0.5) -> None:
        self.t = -step
        self.step = step

    def __call__(self) -> float:
        self.t += self.step
        return self.t


def make_nested_trace(tracer: Tracer) -> None:
    """The canonical little tree: gsknn -> (pack, heap)."""
    with tracer.span("gsknn", variant=1):
        with tracer.span("pack", which="Q"):
            pass
        with tracer.span("heap"):
            pass


class TestNesting:
    def test_parent_child_links(self):
        tracer = Tracer(enabled=True)
        make_nested_trace(tracer)
        spans = {s.name: s for s in tracer.spans}
        root = spans["gsknn"]
        assert root.parent_id == -1
        assert root.depth == 0
        for child in ("pack", "heap"):
            assert spans[child].parent_id == root.span_id
            assert spans[child].depth == 1
        assert {s.name for s in tracer.children_of(root.span_id)} == {
            "pack",
            "heap",
        }
        assert tracer.roots() == [root]

    def test_completion_order_children_first(self):
        tracer = Tracer(enabled=True)
        make_nested_trace(tracer)
        assert [s.name for s in tracer.spans] == ["pack", "heap", "gsknn"]

    def test_children_nest_inside_parent_interval(self):
        tracer = Tracer(enabled=True)
        make_nested_trace(tracer)
        spans = {s.name: s for s in tracer.spans}
        root = spans["gsknn"]
        for child in ("pack", "heap"):
            assert spans[child].start >= root.start
            assert spans[child].end <= root.end
        assert spans["pack"].end <= spans["heap"].start

    def test_deep_nesting_depths(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        depths = {s.name: s.depth for s in tracer.spans}
        assert depths == {"a": 0, "b": 1, "c": 2}

    def test_siblings_share_parent(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root"):
            for _ in range(3):
                with tracer.span("leaf"):
                    pass
        root = tracer.find("root")[0]
        assert all(s.parent_id == root.span_id for s in tracer.find("leaf"))

    def test_exception_still_records_and_unwinds(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        assert [s.name for s in tracer.spans] == ["inner", "outer"]
        # the stack unwound: a new span is a root again
        with tracer.span("after"):
            pass
        assert tracer.find("after")[0].parent_id == -1

    def test_attrs_recorded(self):
        tracer = Tracer(enabled=True)
        with tracer.span("pack", which="R", rows=128):
            pass
        assert tracer.find("pack")[0].attrs == {"which": "R", "rows": 128}


class TestDisabledPath:
    def test_disabled_returns_shared_null_span(self):
        tracer = Tracer()  # disabled by default
        assert tracer.span("a") is _NULL_SPAN
        assert tracer.span("b", attr=1) is tracer.span("c")

    def test_disabled_records_nothing(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        assert len(tracer) == 0

    def test_disabled_path_retains_no_memory(self):
        tracer = Tracer()
        # warm up allocator state before measuring
        for _ in range(100):
            with tracer.span("warm"):
                pass
        gc.collect()
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        for _ in range(10_000):
            with tracer.span("hot", rows=8, cols=16):
                pass
        gc.collect()
        after, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # transient kwargs dicts are freed; nothing accumulates
        assert after - before < 16_384
        assert len(tracer) == 0

    def test_sampling_records_a_subset(self):
        tracer = Tracer(enabled=True, sample_every=4)
        for _ in range(100):
            with tracer.span("tick"):
                pass
        assert len(tracer) == 100 // 4

    def test_sample_every_validated(self):
        with pytest.raises(ValidationError):
            Tracer(sample_every=0)


class TestAggregate:
    def test_counts_and_totals(self):
        clock = FakeClock(step=1.0)
        tracer = Tracer(enabled=True, clock=clock)
        make_nested_trace(tracer)
        agg = tracer.aggregate()
        assert agg["gsknn"]["count"] == 1
        assert agg["pack"]["count"] == 1
        # children: enter..exit one tick apart -> 1s each
        assert agg["pack"]["total_seconds"] == pytest.approx(1.0)
        assert agg["heap"]["total_seconds"] == pytest.approx(1.0)

    def test_self_seconds_sum_to_root_wall_clock(self):
        clock = FakeClock(step=1.0)
        tracer = Tracer(enabled=True, clock=clock)
        make_nested_trace(tracer)
        agg = tracer.aggregate()
        root_total = agg["gsknn"]["total_seconds"]
        self_sum = sum(row["self_seconds"] for row in agg.values())
        assert self_sum == pytest.approx(root_total)

    def test_self_seconds_excludes_children(self):
        clock = FakeClock(step=1.0)
        tracer = Tracer(enabled=True, clock=clock)
        make_nested_trace(tracer)
        agg = tracer.aggregate()
        assert (
            agg["gsknn"]["self_seconds"]
            == pytest.approx(
                agg["gsknn"]["total_seconds"]
                - agg["pack"]["total_seconds"]
                - agg["heap"]["total_seconds"]
            )
        )


class TestThreads:
    def test_concurrent_spans_keep_per_thread_nesting(self):
        tracer = Tracer(enabled=True)
        n_threads, n_spans = 4, 50
        barrier = threading.Barrier(n_threads)

        def work(tag: int) -> None:
            barrier.wait()
            for _ in range(n_spans):
                with tracer.span("outer", tag=tag):
                    with tracer.span("inner", tag=tag):
                        pass

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer) == n_threads * n_spans * 2
        by_id = {s.span_id: s for s in tracer.spans}
        assert len(by_id) == len(tracer)  # ids unique across threads
        for s in tracer.spans:
            if s.name == "inner":
                parent = by_id[s.parent_id]
                assert parent.name == "outer"
                # nesting never crosses threads
                assert parent.thread == s.thread
                assert parent.attrs["tag"] == s.attrs["tag"]


class TestExports:
    def test_chrome_event_shape(self):
        tracer = Tracer(enabled=True)
        make_nested_trace(tracer)
        doc = tracer.to_chrome()
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        for event in doc["traceEvents"]:
            assert event["ph"] == "X"
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0

    def test_golden_chrome_trace(self):
        """Deterministic clock -> byte-stable Chrome trace (module tid)."""
        clock = FakeClock(step=0.5)
        tracer = Tracer(enabled=True, clock=clock)
        make_nested_trace(tracer)
        doc = tracer.to_chrome()
        for event in doc["traceEvents"]:
            event["tid"] = 0  # thread ids are host-specific
            event["pid"] = 0  # so is the recording process id
        golden = json.loads(GOLDEN.read_text())
        assert doc == golden

    def test_jsonl_roundtrip(self, tmp_path):
        tracer = Tracer(enabled=True)
        make_nested_trace(tracer)
        path = tracer.export_jsonl(tmp_path / "trace.jsonl")
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert [e["name"] for e in events] == ["pack", "heap", "gsknn"]
        assert events[0]["parent"] == events[-1]["id"]

    def test_export_chrome_writes_valid_json(self, tmp_path):
        tracer = Tracer(enabled=True)
        make_nested_trace(tracer)
        path = tracer.export_chrome(tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == 3

    def test_clear_resets(self):
        tracer = Tracer(enabled=True)
        make_nested_trace(tracer)
        tracer.clear()
        assert len(tracer) == 0
        with tracer.span("fresh"):
            pass
        # counter restarts at 1; the pid prefix keeps ids globally unique
        sid = tracer.spans[0].span_id
        assert sid & 0xFFFFFFFF == 1
        assert sid >> 32 == tracer.pid


class TestGlobals:
    def test_enable_disable_roundtrip(self):
        old = set_tracer(Tracer())
        try:
            tracer = enable_tracing()
            assert tracer is get_tracer() and tracer.enabled
            with span("via_module"):
                pass
            assert tracer.find("via_module")
            disable_tracing()
            assert span("after") is _NULL_SPAN
        finally:
            set_tracer(old)

    def test_set_tracer_returns_previous(self):
        mine = Tracer()
        old = set_tracer(mine)
        try:
            assert get_tracer() is mine
        finally:
            assert set_tracer(old) is mine


def test_span_end_property():
    s = Span(
        span_id=1, parent_id=-1, name="x", start=2.0, duration=0.5,
        thread=0, depth=0,
    )
    assert s.end == pytest.approx(2.5)
