"""Unit tests for the set-associative LRU cache simulator."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.machine import CacheHierarchy, CacheLevel, MachineParams, SetAssociativeCache


def _machine(levels):
    return MachineParams(
        name="test",
        flops_per_cycle=8,
        clock_hz=1e9,
        tau_b=1e-9,
        tau_l=1e-8,
        caches=tuple(levels),
    )


class TestSetAssociativeCache:
    def test_cold_miss_then_hit(self):
        cache = SetAssociativeCache(CacheLevel("L1", 1024, 64, 2))
        hit, _ = cache.access_line(0, write=False)
        assert not hit
        hit, _ = cache.access_line(0, write=False)
        assert hit
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_lru_eviction_order(self):
        # 2-way: lines mapping to one set evict least-recently-used first
        cache = SetAssociativeCache(CacheLevel("L1", 256, 64, 2))  # 2 sets
        s = cache.n_sets
        a, b, c = 0, s, 2 * s  # same set, different tags
        cache.access_line(a, False)
        cache.access_line(b, False)
        cache.access_line(a, False)  # refresh a
        _, evicted = cache.access_line(c, False)  # must evict b (LRU)
        assert not cache.contains_line(b)
        assert cache.contains_line(a)
        assert cache.contains_line(c)

    def test_dirty_eviction_reports_writeback(self):
        cache = SetAssociativeCache(CacheLevel("L1", 128, 64, 1))  # 2 sets, direct
        s = cache.n_sets
        cache.access_line(0, write=True)
        _, evicted = cache.access_line(s, write=False)  # same set
        assert evicted == 0
        assert cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache = SetAssociativeCache(CacheLevel("L1", 128, 64, 1))
        s = cache.n_sets
        cache.access_line(0, write=False)
        _, evicted = cache.access_line(s, write=False)
        assert evicted is None

    def test_flush(self):
        cache = SetAssociativeCache(CacheLevel("L1", 1024, 64, 2))
        cache.access_line(3, False)
        cache.flush()
        assert not cache.contains_line(3)


class TestCacheHierarchy:
    def test_requires_levels(self):
        with pytest.raises(ConfigurationError):
            CacheHierarchy(_machine([]))

    def test_line_sizes_must_match(self):
        with pytest.raises(ConfigurationError):
            CacheHierarchy(
                _machine(
                    [CacheLevel("L1", 1024, 64), CacheLevel("L2", 4096, 128)]
                )
            )

    def test_miss_cascades_to_dram(self):
        h = CacheHierarchy(
            _machine([CacheLevel("L1", 256, 64, 2), CacheLevel("L2", 1024, 64, 2)])
        )
        h.access(0, 64)
        assert h.levels[0].stats.misses == 1
        assert h.levels[1].stats.misses == 1
        assert h.dram.reads == 1
        # second touch hits L1, no further DRAM traffic
        h.access(0, 8)
        assert h.dram.reads == 1

    def test_l1_victim_hits_l2(self):
        """A line evicted from L1 but still in L2 must not re-read DRAM."""
        h = CacheHierarchy(
            _machine([CacheLevel("L1", 128, 64, 1), CacheLevel("L2", 4096, 64, 4)])
        )
        s1 = h.levels[0].n_sets
        h.access(0, 8)
        h.access(s1 * 64, 8)  # evicts line 0 from L1
        dram_before = h.dram.reads
        h.access(0, 8)  # back: L1 miss, L2 hit
        assert h.dram.reads == dram_before

    def test_multi_line_access(self):
        h = CacheHierarchy(_machine([CacheLevel("L1", 1024, 64, 2)]))
        h.access(0, 200)  # spans 4 lines
        assert h.levels[0].stats.misses == 4

    def test_zero_byte_access_ignored(self):
        h = CacheHierarchy(_machine([CacheLevel("L1", 1024, 64, 2)]))
        h.access(0, 0)
        assert h.levels[0].stats.accesses == 0

    def test_dirty_writeback_reaches_dram(self):
        h = CacheHierarchy(_machine([CacheLevel("L1", 128, 64, 1)]))
        s = h.levels[0].n_sets
        h.access(0, 8, write=True)
        h.access(s * 64, 8)  # evict dirty line 0
        assert h.dram.writes == 1

    def test_dram_bytes(self):
        h = CacheHierarchy(_machine([CacheLevel("L1", 1024, 64, 2)]))
        h.access(0, 64)
        assert h.dram_bytes == 64
        assert h.dram_read_bytes == 64

    def test_working_set_within_capacity_has_no_repeat_misses(self):
        h = CacheHierarchy(_machine([CacheLevel("L1", 4096, 64, 4)]))
        for _ in range(3):
            h.access(0, 2048)  # half the cache
        assert h.levels[0].stats.misses == 2048 // 64

    def test_working_set_beyond_capacity_thrashes(self):
        h = CacheHierarchy(_machine([CacheLevel("L1", 1024, 64, 2)]))
        for _ in range(3):
            h.access(0, 4096)  # 4x the cache, cyclic: LRU worst case
        lines = 4096 // 64
        assert h.levels[0].stats.misses == 3 * lines

    def test_flush_resets_everything(self):
        h = CacheHierarchy(_machine([CacheLevel("L1", 1024, 64, 2)]))
        h.access(0, 512, write=True)
        h.flush()
        assert h.dram.line_transfers == 0
        h.access(0, 8)
        assert h.levels[0].stats.misses == 1
