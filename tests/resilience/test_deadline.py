"""Unit tests for Deadline: budget arithmetic with an injectable clock."""

from __future__ import annotations

import math

import pytest

from repro.errors import KernelTimeoutError, ValidationError
from repro.resilience import Deadline


class FakeClock:
    def __init__(self, t: float = 100.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestConstruction:
    def test_rejects_non_positive(self):
        for bad in (0.0, -1.0, float("nan")):
            with pytest.raises(ValidationError):
                Deadline(bad)

    def test_coerce(self):
        assert Deadline.coerce(None) is None
        d = Deadline(1.0)
        assert Deadline.coerce(d) is d
        assert Deadline.coerce(0.5).budget == 0.5

    def test_after_alias(self):
        clock = FakeClock()
        d = Deadline.after(2.0, clock=clock)
        assert d.budget == 2.0
        assert d.remaining() == 2.0


class TestArithmetic:
    def test_elapsed_and_remaining_track_clock(self):
        clock = FakeClock()
        d = Deadline(1.0, clock=clock)
        clock.advance(0.4)
        assert d.elapsed() == pytest.approx(0.4)
        assert d.remaining() == pytest.approx(0.6)
        assert not d.expired()
        clock.advance(0.7)
        assert d.expired()
        assert d.remaining() == pytest.approx(-0.1)

    def test_unlimited(self):
        d = Deadline(math.inf)
        assert d.unlimited
        assert not d.expired()
        assert d.timeout() is None
        assert d.timeout(cap=0.05) == 0.05
        d.check("anywhere")  # never raises

    def test_timeout_clamps_to_remaining_and_cap(self):
        clock = FakeClock()
        d = Deadline(1.0, clock=clock)
        assert d.timeout() == pytest.approx(1.0)
        assert d.timeout(cap=0.2) == pytest.approx(0.2)
        clock.advance(0.95)
        assert d.timeout(cap=0.2) == pytest.approx(0.05)
        clock.advance(1.0)
        assert d.timeout() == 0.0  # never negative


class TestEnforcement:
    def test_check_is_noop_before_expiry(self):
        clock = FakeClock()
        Deadline(1.0, clock=clock).check("site", completed=0)

    def test_check_raises_with_partial_metadata(self):
        clock = FakeClock()
        d = Deadline(0.5, clock=clock)
        clock.advance(0.6)
        with pytest.raises(KernelTimeoutError) as excinfo:
            d.check("chunk wait", completed=3, total=8)
        exc = excinfo.value
        assert exc.budget == 0.5
        assert exc.elapsed == pytest.approx(0.6)
        assert exc.site == "chunk wait"
        assert exc.partial == {"completed": 3, "total": 8}
        assert "completed=3" in str(exc)

    def test_timeout_error_is_also_builtin_timeout(self):
        assert issubclass(KernelTimeoutError, TimeoutError)

    def test_deadline_hit_counter(self, metrics):
        clock = FakeClock()
        d = Deadline(0.1, clock=clock)
        clock.advance(1.0)
        with pytest.raises(KernelTimeoutError):
            d.check("site")
        assert metrics.snapshot()["counters"]["resilience.deadline_hits"] == 1
