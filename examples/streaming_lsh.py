"""Streaming nearest neighbors with LSH maintenance.

The paper's introduction calls out streaming datasets with frequent
updates of X, where recomputing all nearest neighbors must be fast.
:class:`repro.trees.StreamingAllKnn` maintains every point's k-nearest
list as batches arrive: each insertion hashes a few fresh LSH tables
over the current table and re-solves only the affected buckets with the
exact GSKNN kernel — a handful of small kernels per batch, never an
O(N^2) recompute.

Run:  python examples/streaming_lsh.py
"""

from __future__ import annotations

import time

from repro.data import gaussian_mixture
from repro.trees import StreamingAllKnn


def main() -> None:
    k = 8
    batch_size = 1000
    n_batches = 5
    stream = gaussian_mixture(
        batch_size * n_batches, 24, n_clusters=10, seed=0
    ).points

    structure = StreamingAllKnn(
        dim=stream.shape[1], k=k, tables_per_batch=3, max_bucket=1024, seed=7
    )

    for batch_idx in range(n_batches):
        arrivals = stream[batch_idx * batch_size : (batch_idx + 1) * batch_size]
        t0 = time.perf_counter()
        kernels = structure.insert(arrivals)
        elapsed = time.perf_counter() - t0
        print(
            f"batch {batch_idx + 1}: N={structure.n_points:>5}  "
            f"refresh {elapsed * 1e3:6.0f} ms ({kernels} bucket kernels)  "
            f"recall {structure.recall_against_exact():.3f}"
        )

    # background maintenance buys more recall without new data
    t0 = time.perf_counter()
    structure.refresh(tables=4)
    elapsed = time.perf_counter() - t0
    print(
        f"idle refresh: {elapsed * 1e3:6.0f} ms -> "
        f"recall {structure.recall_against_exact():.3f}"
    )

    # deletions: tombstone 10% of the points, purge them from every
    # list, and let one refresh round refill the holes
    import numpy as np

    victims = np.arange(0, structure.n_points, 10)
    purged = structure.delete(victims)
    structure.refresh(tables=2)
    print(
        f"deleted {victims.size} points (purged {purged} list slots) -> "
        f"{structure.n_alive} alive, recall "
        f"{structure.recall_against_exact():.3f}"
    )


if __name__ == "__main__":
    main()
