"""Unified kernel observability: tracing, metrics, benchmark telemetry.

Three dependency-free pillars (§ the paper lives or dies by measured
per-phase behavior — Table 5's ``T_coll + T_gemm + T_sq2d + T_heap``,
the Table 4 latency/bandwidth model, the Var#1/Var#6 crossover):

* :mod:`repro.obs.trace` — nested timed spans with attributes; Chrome
  ``chrome://tracing`` / Perfetto JSON and flat JSONL exports; a shared
  no-op span object when disabled so hot paths stay hot;
* :mod:`repro.obs.metrics` — :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` (fixed log-scale buckets) behind one
  :class:`MetricsRegistry` whose ``snapshot()`` is the single structured
  view of everything the kernels count;
* :mod:`repro.obs.telemetry` — schema-versioned ``BENCH_<name>.json``
  records every benchmark emits next to its text report, diffable by
  ``benchmarks/compare_runs.py``.

:mod:`repro.obs.adapters` bridges the pre-existing ad-hoc carriers
(:class:`KernelCounters`, :class:`PhaseTimer`, :class:`SelectionStats`,
schedules) into the registry so no caller had to change shape.

Both the global tracer and the global registry start **disabled**; the
instrumented kernels pay one attribute read per site until the CLI
(``repro-gsknn kernel --trace-out``, ``repro-gsknn stats``), a benchmark,
or a test turns them on. See ``docs/OBSERVABILITY.md``.
"""

from .context import (
    RequestContext,
    bind_request,
    coerce_request,
    current_request,
    current_request_id,
    new_request_id,
    request_scope,
)
from .efficiency import (
    efficiency_floor,
    record_solve_efficiency,
    set_efficiency_floor,
)
from .exporters import (
    MetricsHTTPServer,
    SnapshotWriter,
    prometheus_text,
    sanitize_metric_name,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    get_registry,
    set_registry,
)
from .trace import (
    Span,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
    span,
)
from .telemetry import (
    BENCH_SCHEMA_VERSION,
    build_record,
    diff_records,
    load_record,
    validate_record,
    write_record,
)

__all__ = [
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "enable_tracing",
    "disable_tracing",
    "span",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "enable_metrics",
    "disable_metrics",
    "BENCH_SCHEMA_VERSION",
    "build_record",
    "validate_record",
    "write_record",
    "load_record",
    "diff_records",
    "RequestContext",
    "new_request_id",
    "current_request",
    "current_request_id",
    "request_scope",
    "bind_request",
    "coerce_request",
    "MetricsHTTPServer",
    "SnapshotWriter",
    "prometheus_text",
    "sanitize_metric_name",
    "efficiency_floor",
    "set_efficiency_floor",
    "record_solve_efficiency",
]
