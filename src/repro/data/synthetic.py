"""Synthetic point-cloud generators.

All generators take an explicit ``seed`` (or :class:`numpy.random.Generator`)
and return a :class:`Dataset` so experiments are exactly reproducible. The
paper (§3, "Dataset") uses two distributions:

* uniform ``[0,1]^d`` for the kernel benchmarks;
* a 10-dimensional Gaussian generator embedded into ``d``-dimensional space
  for the integrated Table 1 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ValidationError

__all__ = [
    "Dataset",
    "uniform_hypercube",
    "gaussian_mixture",
    "embedded_gaussian",
]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


@dataclass(frozen=True)
class Dataset:
    """A point cloud plus provenance metadata.

    Attributes
    ----------
    points:
        ``(N, d)`` float64 C-contiguous coordinate table. Row ``i`` is
        point ``i`` — the layout every kernel in :mod:`repro.core` expects.
    name:
        Short generator tag (``"uniform"``, ``"embedded-gaussian"``, ...).
    intrinsic_dim:
        The dimensionality of the generating process; equals ``d`` for
        uniform data and the latent dimension for embedded data. Useful
        when reasoning about tree-based solver behaviour.
    params:
        Generator parameters, recorded for experiment logs.
    """

    points: np.ndarray
    name: str = "dataset"
    intrinsic_dim: int | None = None
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        pts = np.ascontiguousarray(self.points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[0] == 0 or pts.shape[1] == 0:
            raise ValidationError(
                f"Dataset points must be a non-empty (N, d) array, got {pts.shape}"
            )
        object.__setattr__(self, "points", pts)

    @property
    def n(self) -> int:
        """Number of points ``N``."""
        return self.points.shape[0]

    @property
    def dim(self) -> int:
        """Ambient dimension ``d``."""
        return self.points.shape[1]

    def squared_norms(self) -> np.ndarray:
        """Per-point squared 2-norms — the paper's ``X2`` side table."""
        return np.einsum("ij,ij->i", self.points, self.points)


def uniform_hypercube(
    n: int, d: int, *, seed: int | np.random.Generator | None = 0
) -> Dataset:
    """Sample ``n`` points uniformly from ``[0, 1]^d``.

    This is the paper's distribution for all kernel-level experiments
    (Table 5, Figures 4-6).
    """
    if n < 1 or d < 1:
        raise ValidationError(f"need n >= 1 and d >= 1, got n={n}, d={d}")
    rng = _rng(seed)
    pts = rng.random((n, d))
    return Dataset(pts, name="uniform", intrinsic_dim=d, params={"n": n, "d": d})


def gaussian_mixture(
    n: int,
    d: int,
    *,
    n_clusters: int = 8,
    cluster_std: float = 0.15,
    seed: int | np.random.Generator | None = 0,
) -> Dataset:
    """Sample from an isotropic Gaussian mixture in ``d`` dimensions.

    Cluster centers are drawn uniformly from ``[0, 1]^d``; points are
    assigned to clusters uniformly at random.
    """
    if n < 1 or d < 1 or n_clusters < 1:
        raise ValidationError(
            f"need n, d, n_clusters >= 1, got n={n}, d={d}, n_clusters={n_clusters}"
        )
    if cluster_std <= 0:
        raise ValidationError(f"cluster_std must be positive, got {cluster_std}")
    rng = _rng(seed)
    centers = rng.random((n_clusters, d))
    assignment = rng.integers(0, n_clusters, size=n)
    pts = centers[assignment] + rng.normal(scale=cluster_std, size=(n, d))
    return Dataset(
        pts,
        name="gaussian-mixture",
        intrinsic_dim=d,
        params={
            "n": n,
            "d": d,
            "n_clusters": n_clusters,
            "cluster_std": cluster_std,
        },
    )


def embedded_gaussian(
    n: int,
    d: int,
    *,
    intrinsic_dim: int = 10,
    n_clusters: int = 8,
    cluster_std: float = 0.15,
    noise_std: float = 1e-3,
    seed: int | np.random.Generator | None = 0,
) -> Dataset:
    """The Table 1 dataset: low-dimensional Gaussian data embedded in ``d`` dims.

    The paper generates samples from a 10-dimensional Gaussian distribution
    and embeds them into ambient dimension ``d`` in {16, 64, 256, 1024}. We
    reproduce that with a Gaussian mixture in ``intrinsic_dim`` dimensions,
    mapped through a random orthonormal embedding ``E`` (so pairwise
    distances are preserved exactly), plus tiny isotropic ambient noise so
    the embedded cloud is full rank.
    """
    if d < intrinsic_dim:
        raise ValidationError(
            f"ambient dimension d={d} must be >= intrinsic_dim={intrinsic_dim}"
        )
    rng = _rng(seed)
    latent = gaussian_mixture(
        n,
        intrinsic_dim,
        n_clusters=n_clusters,
        cluster_std=cluster_std,
        seed=rng,
    ).points
    # Random orthonormal embedding: QR of a Gaussian matrix gives a
    # uniformly distributed d x intrinsic_dim isometry.
    gauss = rng.normal(size=(d, intrinsic_dim))
    embedding, _ = np.linalg.qr(gauss)
    pts = latent @ embedding.T
    if noise_std > 0:
        pts = pts + rng.normal(scale=noise_std, size=pts.shape)
    return Dataset(
        pts,
        name="embedded-gaussian",
        intrinsic_dim=intrinsic_dim,
        params={
            "n": n,
            "d": d,
            "intrinsic_dim": intrinsic_dim,
            "n_clusters": n_clusters,
            "cluster_std": cluster_std,
            "noise_std": noise_std,
        },
    )
