"""The paper's primary contribution: the fused GSKNN kernel and baseline.

Public surface:

* :func:`~repro.core.gsknn.gsknn` — the fused kernel (Algorithm 2.2);
* :func:`~repro.core.gsknn.gsknn_exact_loops` — the faithful six-loop
  reference implementation with packed micro-panels and scalar heaps;
* :func:`~repro.core.ref_kernel.ref_knn` — the GEMM-based baseline
  (Algorithm 2.1), with phase timing via
  :func:`~repro.core.ref_kernel.ref_knn_timed`;
* :class:`~repro.core.plan.GsknnPlan` / :class:`~repro.core.plan.PlanCache`
  — the amortized repeated-query engine (cached reference panels, a
  reusable workspace arena, resolved blocking; see ``docs/PERF.md``);
* :class:`~repro.core.neighbors.KnnResult` and merge/recall utilities;
* :mod:`repro.core.tuning` — blocking-parameter derivation and variant
  switching (imported lazily to keep the model package optional at
  import time).
"""

from .gsknn import DEFAULT_VARIANT_SWITCH_K, GsknnStats, gsknn, gsknn_exact_loops
from .membudget import MemoryBudget, parse_bytes
from .neighbors import KnnResult, merge_neighbor_lists, recall
from .norms import Norm, pairwise_block, pairwise_lp, pairwise_sq_l2, resolve_norm
from .plan import GsknnPlan, PlanCache
from .ref_kernel import ref_knn, ref_knn_timed
from .variants import Variant, VariantInfo, VARIANT_INFO, resolve_variant

__all__ = [
    "gsknn",
    "gsknn_exact_loops",
    "GsknnStats",
    "GsknnPlan",
    "PlanCache",
    "MemoryBudget",
    "parse_bytes",
    "DEFAULT_VARIANT_SWITCH_K",
    "KnnResult",
    "merge_neighbor_lists",
    "recall",
    "Norm",
    "resolve_norm",
    "pairwise_sq_l2",
    "pairwise_lp",
    "pairwise_block",
    "ref_knn",
    "ref_knn_timed",
    "Variant",
    "VariantInfo",
    "VARIANT_INFO",
    "resolve_variant",
]


def __getattr__(name: str):
    # tuning imports the performance model, which imports this package;
    # resolving it lazily breaks the cycle.
    if name == "tuning":
        from . import tuning

        return tuning
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
