"""Simulated x86 memory hierarchy (substitution for the paper's hardware).

The paper's results are memory-system phenomena measured on a dual-socket
Ivy Bridge node. This package replaces that hardware with two layers:

* :mod:`repro.machine.params` — machine descriptions carrying the paper's
  own model constants (``tau_f``, ``tau_b``, ``tau_l``, ``epsilon``,
  cache geometry), including the Maverick Ivy Bridge node;
* :mod:`repro.machine.cache` — a set-associative LRU cache-hierarchy
  simulator operated at cache-line granularity;
* :mod:`repro.machine.sim` — a discrete memory-trace simulator that walks
  the GSKNN / GEMM-kNN loop nests touching the simulated hierarchy, so
  claims like "Var#1 moves less slow memory than Var#6" are *measured*
  on the simulated machine rather than only asserted by the closed-form
  model in :mod:`repro.model`.
"""

from .params import CacheLevel, MachineParams, HASWELL, IVY_BRIDGE, TINY_MACHINE
from .cache import CacheHierarchy, CacheStats, SetAssociativeCache
from .calibrate import calibrate_host
from .sim import KnnTraceSimulator, TraceResult

__all__ = [
    "CacheLevel",
    "MachineParams",
    "IVY_BRIDGE",
    "HASWELL",
    "TINY_MACHINE",
    "SetAssociativeCache",
    "CacheHierarchy",
    "CacheStats",
    "KnnTraceSimulator",
    "TraceResult",
    "calibrate_host",
]
