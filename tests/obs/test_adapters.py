"""Adapters: legacy stat carriers fold into the registry; instrumented
kernels emit the span tree and metrics the observability contract
promises."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gsknn import gsknn
from repro.gemm.blocked import BlockedGemm
from repro.obs.adapters import (
    MetricsGemmObserver,
    absorb_kernel_counters,
    absorb_phase_timer,
    absorb_schedule,
    absorb_selection_stats,
    absorb_tracer,
)
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.trace import Tracer, set_tracer
from repro.parallel.scheduler import ScheduledTask, lpt_schedule
from repro.perf.counters import KernelCounters
from repro.perf.timer import PhaseTimer
from repro.select.counters import SelectionStats


@pytest.fixture
def tracer():
    """A private enabled tracer installed as the global one."""
    mine = Tracer(enabled=True)
    old = set_tracer(mine)
    yield mine
    set_tracer(old)


@pytest.fixture
def registry():
    """A private enabled registry installed as the global one."""
    mine = MetricsRegistry(enabled=True)
    old = set_registry(mine)
    yield mine
    set_registry(old)


class TestAbsorbers:
    def test_kernel_counters(self):
        reg = MetricsRegistry()
        counters = KernelCounters(
            flops=100, slow_reads=10, slow_writes=5, heap_updates=3, discarded=7
        )
        absorb_kernel_counters(counters, reg)
        snap = reg.snapshot()["counters"]
        assert snap["kernel.flops"] == 100
        assert snap["kernel.heap_updates"] == 3
        assert snap["kernel.discarded"] == 7

    def test_absorb_twice_accumulates(self):
        reg = MetricsRegistry()
        counters = KernelCounters(flops=50)
        absorb_kernel_counters(counters, reg)
        absorb_kernel_counters(counters, reg)
        assert reg.snapshot()["counters"]["kernel.flops"] == 100

    def test_phase_timer(self):
        reg = MetricsRegistry()
        timer = PhaseTimer()
        with timer.phase("gemm"):
            pass
        with timer.phase("heap"):
            pass
        absorb_phase_timer(timer, reg)
        hists = reg.snapshot()["histograms"]
        assert hists["phase.gemm"]["count"] == 1
        assert hists["phase.heap"]["count"] == 1

    def test_selection_stats(self):
        reg = MetricsRegistry()
        stats = SelectionStats()
        stats.comparisons = 12
        stats.moves = 4
        absorb_selection_stats(stats, reg)
        snap = reg.snapshot()["counters"]
        assert snap["select.comparisons"] == 12
        assert snap["select.moves"] == 4

    def test_schedule(self):
        reg = MetricsRegistry()
        schedule = lpt_schedule(
            [ScheduledTask(i, est) for i, est in enumerate((3.0, 2.0, 2.0, 1.0))],
            2,
        )
        absorb_schedule(schedule, reg)
        snap = reg.snapshot()
        assert snap["counters"]["sched.tasks"] == 4
        assert snap["gauges"]["sched.processors"] == 2
        assert snap["gauges"]["sched.imbalance"] >= 1.0
        assert snap["histograms"]["sched.queue_seconds"]["count"] == 2

    def test_absorb_tracer_self_seconds(self):
        tracer = Tracer(enabled=True)
        with tracer.span("gsknn"):
            with tracer.span("pack"):
                pass
        reg = MetricsRegistry()
        absorb_tracer(tracer, reg)
        snap = reg.snapshot()
        assert snap["histograms"]["phase.gsknn"]["count"] == 1
        assert snap["histograms"]["phase.pack"]["count"] == 1
        assert snap["counters"]["phase.pack.spans"] == 1
        # self time of the root excludes the child's time
        assert (
            snap["histograms"]["phase.gsknn"]["sum"]
            <= snap["histograms"]["phase.gsknn"]["sum"]
            + snap["histograms"]["phase.pack"]["sum"]
        )

    def test_gemm_observer_counts(self):
        reg = MetricsRegistry()
        observer = MetricsGemmObserver(reg)
        rng = np.random.default_rng(0)
        A = rng.random((16, 8))
        B = rng.random((12, 8))
        BlockedGemm(observer=observer).multiply_nt(A, B)
        snap = reg.snapshot()["counters"]
        assert snap["gemm.packs"] > 0
        assert snap["gemm.microkernels"] > 0
        assert snap["gemm.rank_updates"] >= 16 * 12 * 8

    def test_gemm_observer_composes_inner(self):
        calls = []

        class Probe:
            def on_pack(self, which, rows, depth):
                calls.append("pack")

            def on_microkernel(self, m_r, n_r, depth):
                calls.append("micro")

            def on_c_block(self, rows, cols, is_first_depth):
                calls.append("c")

        observer = MetricsGemmObserver(MetricsRegistry(), inner=Probe())
        observer.on_pack("A", 4, 8)
        observer.on_microkernel(4, 4, 8)
        observer.on_c_block(4, 4, True)
        assert calls == ["pack", "micro", "c"]


class TestInstrumentedKernels:
    """The acceptance-criterion span tree, exercised without the CLI."""

    def _problem(self, m=40, n=70, d=6, k=5):
        rng = np.random.default_rng(7)
        X = rng.random((max(m, n), d))
        return X, np.arange(m), np.arange(n), k

    def test_gsknn_emits_required_span_tree(self, tracer):
        X, q, r, k = self._problem()
        gsknn(X, q, r, k)
        names = {s.name for s in tracer.spans}
        assert {"gsknn", "pack", "rank_update", "heap"} <= names
        roots = tracer.roots()
        assert [s.name for s in roots] == ["gsknn"]
        # pack/rank_update/heap all live under the gsknn root
        by_id = {s.span_id: s for s in tracer.spans}

        def root_of(s):
            while s.parent_id != -1:
                s = by_id[s.parent_id]
            return s

        for s in tracer.spans:
            assert root_of(s).name == "gsknn"

    def test_gsknn_trace_disabled_is_silent(self):
        mine = Tracer()  # disabled
        old = set_tracer(mine)
        try:
            X, q, r, k = self._problem()
            gsknn(X, q, r, k)
            assert len(mine) == 0
        finally:
            set_tracer(old)

    def test_gsknn_publishes_metrics_when_enabled(self, registry):
        X, q, r, k = self._problem()
        gsknn(X, q, r, k)
        snap = registry.snapshot()["counters"]
        assert snap["gsknn.calls"] == 1
        assert snap["gsknn.work.flops"] > 0

    def test_gsknn_publishes_nothing_when_disabled(self, registry):
        registry.enabled = False
        X, q, r, k = self._problem()
        gsknn(X, q, r, k)
        assert registry.snapshot()["counters"] == {}
