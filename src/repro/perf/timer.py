"""Phase timing for the Table 5 runtime breakdown.

The paper decomposes the GEMM-based kernel's runtime into
``T_coll + T_gemm + T_sq2d + T_heap`` (coordinate gathering, the GEMM
call, the norm accumulation, and neighbor selection). :class:`PhaseTimer`
accumulates wall-clock per named phase; :class:`PhaseBreakdown` is the
immutable result both kernels report.

For the fused GSKNN kernel the phases cannot be timed from inside the
loop (the paper notes a timer call in the 2nd loop would dominate), so it
reports only a total; the Table 5 bench estimates its heap time with the
paper's ``k = 1`` subtraction trick.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["PhaseTimer", "PhaseBreakdown"]

#: Canonical phase names, in the order Table 5 prints them.
PHASES = ("coll", "gemm", "sq2d", "heap")


@dataclass(frozen=True)
class PhaseBreakdown:
    """Seconds per phase. Phases a kernel didn't run are 0."""

    coll: float = 0.0
    gemm: float = 0.0
    sq2d: float = 0.0
    heap: float = 0.0
    other: float = 0.0

    @property
    def total(self) -> float:
        return self.coll + self.gemm + self.sq2d + self.heap + self.other

    def as_millis(self) -> dict[str, float]:
        """The breakdown in milliseconds, keyed like Table 5's columns."""
        return {
            "coll": self.coll * 1e3,
            "gemm": self.gemm * 1e3,
            "sq2d": self.sq2d * 1e3,
            "heap": self.heap * 1e3,
            "other": self.other * 1e3,
            "total": self.total * 1e3,
        }

    def __add__(self, other: "PhaseBreakdown") -> "PhaseBreakdown":
        return PhaseBreakdown(
            self.coll + other.coll,
            self.gemm + other.gemm,
            self.sq2d + other.sq2d,
            self.heap + other.heap,
            self.other + other.other,
        )


@dataclass
class PhaseTimer:
    """Accumulates wall-clock time into named phases.

    Usage::

        timer = PhaseTimer()
        with timer.phase("gemm"):
            C = Q @ R.T
        breakdown = timer.breakdown()
    """

    seconds: dict[str, float] = field(default_factory=dict)
    #: Open nesting depth per phase name. Re-entering an already-open
    #: phase is a no-op timer-wise: only the *outermost* exit records,
    #: so recursive/nested use of one name accumulates its wall clock
    #: exactly once instead of double-counting the inner interval.
    _depth: dict[str, int] = field(default_factory=dict, repr=False)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        depth = self._depth.get(name, 0)
        self._depth[name] = depth + 1
        start = time.perf_counter() if depth == 0 else 0.0
        try:
            yield
        finally:
            self._depth[name] -= 1
            if depth == 0:
                elapsed = time.perf_counter() - start
                self.seconds[name] = self.seconds.get(name, 0.0) + elapsed

    def breakdown(self) -> PhaseBreakdown:
        known = {name: self.seconds.get(name, 0.0) for name in PHASES}
        other = sum(v for k, v in self.seconds.items() if k not in PHASES)
        return PhaseBreakdown(other=other, **known)

    def reset(self) -> None:
        self.seconds.clear()
        self._depth.clear()
