"""Input-robustness tests: dtypes, strides, views, and extreme shapes."""

from __future__ import annotations

import numpy as np
import pytest

from repro import gsknn, ref_knn
from repro.core.gsknn import gsknn_exact_loops

from ..conftest import brute_force_knn


class TestDtypes:
    @pytest.mark.parametrize("dtype", [np.float32, np.float16, np.int32])
    def test_numeric_dtypes_promoted(self, rng, dtype):
        X = (rng.random((60, 5)) * 10).astype(dtype)
        res = gsknn(X, np.arange(10), np.arange(60), 4)
        truth_d, _ = brute_force_knn(X.astype(np.float64), np.arange(10), np.arange(60), 4)
        np.testing.assert_allclose(res.distances, truth_d, atol=1e-5)

    def test_bool_table(self, rng):
        X = rng.random((30, 6)) > 0.5
        res = gsknn(X, np.arange(5), np.arange(30), 3, norm="l1")
        assert (res.distances >= 0).all()
        # l1 over booleans is Hamming distance: integral values
        np.testing.assert_allclose(res.distances, np.round(res.distances))


class TestStridesAndViews:
    def test_sliced_table_view(self, rng):
        big = rng.random((100, 20))
        X = big[::2, ::3]  # non-contiguous in both axes
        res = gsknn(X, np.arange(10), np.arange(50), 4)
        truth_d, _ = brute_force_knn(
            np.ascontiguousarray(X), np.arange(10), np.arange(50), 4
        )
        np.testing.assert_allclose(res.distances, truth_d, atol=1e-9)

    def test_reversed_index_views(self, rng):
        X = rng.random((40, 4))
        q = np.arange(40)[::-1][:10]
        res = gsknn(X, q, np.arange(40), 3)
        truth_d, _ = brute_force_knn(X, q.copy(), np.arange(40), 3)
        np.testing.assert_allclose(res.distances, truth_d, atol=1e-9)

    def test_broadcast_index_rejected_or_handled(self, rng):
        X = rng.random((20, 3))
        # a length-5 constant index array (legal: duplicates allowed)
        q = np.full(5, 7)
        res = gsknn(X, q, np.arange(20), 2)
        assert (res.distances[:, 0] == 0).all()


class TestExtremeShapes:
    def test_one_query_many_refs(self, rng):
        X = rng.random((5000, 3))
        res = gsknn(X, np.array([0]), np.arange(5000), 10, block_n=512)
        truth_d, _ = brute_force_knn(X, [0], np.arange(5000), 10)
        np.testing.assert_allclose(res.distances, truth_d, atol=1e-9)

    def test_many_queries_one_ref(self, rng):
        X = rng.random((100, 4))
        res = gsknn(X, np.arange(100), np.array([42]), 1)
        truth_d, _ = brute_force_knn(X, np.arange(100), [42], 1)
        np.testing.assert_allclose(res.distances, truth_d, atol=1e-9)

    def test_very_wide_points(self, rng):
        X = rng.random((30, 3000))
        a = gsknn(X, np.arange(10), np.arange(30), 3)
        b = ref_knn(X, np.arange(10), np.arange(30), 3)
        np.testing.assert_allclose(a.distances, b.distances, atol=1e-8)

    def test_exact_loops_single_element_everything(self):
        X = np.array([[2.5]])
        res = gsknn_exact_loops(X, np.array([0]), np.array([0]), 1)
        assert res.distances[0, 0] == 0.0

    def test_k_equals_n_large(self, rng):
        X = rng.random((300, 4))
        res = gsknn(X, np.arange(20), np.arange(300), 300)
        truth_d, _ = brute_force_knn(X, np.arange(20), np.arange(300), 300)
        np.testing.assert_allclose(res.distances, truth_d, atol=1e-9)


class TestDeterminism:
    def test_same_inputs_same_outputs(self, rng):
        X = rng.random((100, 6))
        q = rng.integers(0, 100, 20)
        r = rng.permutation(100)[:60]
        a = gsknn(X, q, r, 5)
        b = gsknn(X, q, r, 5)
        np.testing.assert_array_equal(a.distances, b.distances)
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_block_size_does_not_change_distances(self, rng):
        X = rng.random((150, 5))
        q = np.arange(30)
        r = np.arange(150)
        reference = gsknn(X, q, r, 6, block_m=7, block_n=11)
        for bm, bn in [(1, 150), (150, 1), (13, 29), (64, 64)]:
            res = gsknn(X, q, r, 6, block_m=bm, block_n=bn)
            np.testing.assert_allclose(
                res.distances, reference.distances, atol=1e-12
            )
