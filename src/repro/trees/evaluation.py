"""Evaluation metrics for approximate nearest-neighbor results.

Beyond id-recall (already in :mod:`repro.core.neighbors`), the ANN
literature's standard quality measures:

* :func:`distance_ratio` — mean over queries and slots of
  ``d_approx / d_true`` (1.0 = exact); tolerant of id mismatches that
  land on equidistant points;
* :func:`recall_at` — recall restricted to the first ``j`` true
  neighbors (recall@1 is "did we find *the* nearest neighbor");
* :func:`quality_curve` — recall@j for a range of j, the curve ANN
  papers plot.
"""

from __future__ import annotations

import numpy as np

from ..core.neighbors import KnnResult, intersection_counts
from ..errors import ValidationError

__all__ = ["distance_ratio", "recall_at", "quality_curve"]


def _check_pair(candidate: KnnResult, truth: KnnResult) -> None:
    if candidate.indices.shape != truth.indices.shape:
        raise ValidationError(
            "candidate and truth must have identical shapes, got "
            f"{candidate.indices.shape} and {truth.indices.shape}"
        )


def distance_ratio(candidate: KnnResult, truth: KnnResult) -> float:
    """Mean ``d_candidate / d_truth`` over all filled slots (>= 1.0).

    Both results must be row-sorted ascending (kernel convention). Slots
    where the true distance is 0 (self-matches) contribute 1.0 when the
    candidate also found a 0, else are skipped to avoid division blowup.
    """
    _check_pair(candidate, truth)
    cand = candidate.distances
    true = truth.distances
    # Vectorized equivalent of the per-slot loop: non-finite on either
    # side is skipped; a zero true distance contributes 1.0 iff the
    # candidate also found a zero; everything else is the plain ratio
    # (kept only while finite, matching the loop's final filter).
    comparable = np.isfinite(cand) & np.isfinite(true)
    nonzero = comparable & (true != 0.0)
    ratios = np.full(cand.shape, np.nan, dtype=np.float64)
    np.divide(cand, true, out=ratios, where=nonzero)
    ratios[comparable & (true == 0.0) & (cand == 0.0)] = 1.0
    clean = ratios[np.isfinite(ratios)]
    if clean.size == 0:
        raise ValidationError("no comparable slots between the results")
    return float(clean.mean())


def recall_at(candidate: KnnResult, truth: KnnResult, j: int) -> float:
    """Recall restricted to the ``j`` nearest true neighbors."""
    _check_pair(candidate, truth)
    if not 1 <= j <= truth.k:
        raise ValidationError(f"j must be in [1, {truth.k}], got {j}")
    hits = int(
        intersection_counts(truth.indices[:, :j], candidate.indices).sum()
    )
    return hits / (truth.m * j)


def quality_curve(
    candidate: KnnResult, truth: KnnResult, js: list[int] | None = None
) -> dict[int, float]:
    """recall@j for each j (default: 1, 2, 4, ... up to k)."""
    if js is None:
        js = []
        j = 1
        while j <= truth.k:
            js.append(j)
            j *= 2
        if js[-1] != truth.k:
            js.append(truth.k)
    return {j: recall_at(candidate, truth, j) for j in js}
