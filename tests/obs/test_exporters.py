"""Exporters: Prometheus text exposition, /metrics HTTP, JSONL snapshots."""

from __future__ import annotations

import json
import re
import time
import urllib.error
import urllib.request

import pytest

from repro.obs.exporters import (
    MetricsHTTPServer,
    SnapshotWriter,
    prometheus_text,
    sanitize_metric_name,
)
from repro.obs.metrics import MetricsRegistry

# one exposition line: name{labels} value  (labels optional)
_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"  # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"  # label set
    r" (\+Inf|-Inf|NaN|[0-9eE.+-]+)$"  # value
)


def assert_valid_exposition(text: str) -> None:
    """Every non-comment line must match the Prometheus text grammar."""
    assert text.endswith("\n")
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        assert _LINE.match(line), f"bad exposition line: {line!r}"


def filled_registry() -> MetricsRegistry:
    registry = MetricsRegistry(enabled=True)
    registry.inc("efficiency.solves", labels={"variant": "var1", "scope": "kernel"})
    registry.set(
        "efficiency.model_ratio", 0.42,
        labels={"variant": "var1", "scope": "kernel"},
    )
    registry.inc("resilience.retries", 3)
    registry.observe("phase.gsknn", 0.012)
    return registry


class TestSanitize:
    def test_dots_become_underscores(self):
        assert sanitize_metric_name("efficiency.model_ratio") == (
            "efficiency_model_ratio"
        )

    def test_leading_digit_gets_prefix(self):
        assert sanitize_metric_name("9lives")[0] == "_"


class TestPrometheusText:
    def test_valid_exposition(self):
        text = prometheus_text(filled_registry().snapshot())
        assert_valid_exposition(text)

    def test_counter_gets_total_suffix(self):
        text = prometheus_text(filled_registry().snapshot())
        assert (
            'efficiency_solves_total{scope="kernel",variant="var1"} 1' in text
        )
        assert "# TYPE efficiency_solves_total counter" in text

    def test_gauge_series(self):
        text = prometheus_text(filled_registry().snapshot())
        assert (
            'efficiency_model_ratio{scope="kernel",variant="var1"} 0.42'
            in text
        )
        assert "# TYPE efficiency_model_ratio gauge" in text

    def test_histogram_cumulative_and_inf(self):
        text = prometheus_text(filled_registry().snapshot())
        buckets = [
            line for line in text.splitlines()
            if line.startswith("phase_gsknn_bucket")
        ]
        assert buckets, text
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts)  # cumulative
        assert buckets[-1].rsplit(" ", 1)[0].endswith('le="+Inf"}')
        assert "phase_gsknn_sum" in text
        assert "phase_gsknn_count" in text

    def test_help_preserves_dotted_name(self):
        text = prometheus_text(filled_registry().snapshot())
        assert "# HELP efficiency_model_ratio repro metric efficiency.model_ratio" in text

    def test_empty_snapshot(self):
        text = prometheus_text(MetricsRegistry(enabled=True).snapshot())
        assert text == "\n"


class TestHTTPServer:
    def test_scrape_metrics(self):
        registry = filled_registry()
        with MetricsHTTPServer(port=0, registry=registry) as server:
            body = urllib.request.urlopen(server.url, timeout=5).read().decode()
        assert_valid_exposition(body)
        assert "efficiency_model_ratio" in body
        assert "resilience_retries_total" in body

    def test_scrapes_are_live(self):
        registry = filled_registry()
        with MetricsHTTPServer(port=0, registry=registry) as server:
            base = f"http://127.0.0.1:{server.port}"
            before = urllib.request.urlopen(
                f"{base}/metrics", timeout=5
            ).read().decode()
            registry.inc("resilience.retries", 7)
            after = urllib.request.urlopen(
                f"{base}/metrics", timeout=5
            ).read().decode()
        assert "resilience_retries_total 3" in before
        assert "resilience_retries_total 10" in after

    def test_json_endpoint(self):
        registry = filled_registry()
        with MetricsHTTPServer(port=0, registry=registry) as server:
            raw = urllib.request.urlopen(
                f"http://127.0.0.1:{server.port}/metrics.json", timeout=5
            ).read()
        snap = json.loads(raw)
        assert snap["counters"]["resilience.retries"] == 3

    def test_healthz(self):
        with MetricsHTTPServer(port=0, registry=filled_registry()) as server:
            body = urllib.request.urlopen(
                f"http://127.0.0.1:{server.port}/healthz", timeout=5
            ).read()
        assert body == b"ok\n"

    def test_unknown_path_404(self):
        with MetricsHTTPServer(port=0, registry=filled_registry()) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{server.port}/nope", timeout=5
                )
        assert err.value.code == 404

    def test_stop_releases_port(self):
        server = MetricsHTTPServer(port=0, registry=filled_registry())
        server.start()
        port = server.port
        server.stop()
        with pytest.raises((urllib.error.URLError, OSError)):
            urllib.request.urlopen(f"http://127.0.0.1:{port}/metrics", timeout=1)


class TestSnapshotWriter:
    def test_writes_periodic_lines(self, tmp_path):
        registry = filled_registry()
        path = tmp_path / "snaps.jsonl"
        with SnapshotWriter(path, period=0.05, registry=registry):
            time.sleep(0.18)
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines() if line
        ]
        assert len(lines) >= 2  # periodic writes plus the final flush
        for rec in lines:
            assert rec["ts"] > 0
            assert rec["snapshot"]["counters"]["resilience.retries"] == 3

    def test_final_flush_on_stop(self, tmp_path):
        registry = filled_registry()
        path = tmp_path / "snaps.jsonl"
        writer = SnapshotWriter(path, period=60.0, registry=registry)
        writer.start()
        registry.inc("late.counter")
        writer.stop()
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines() if line
        ]
        assert lines, "stop() must flush at least one snapshot"
        assert lines[-1]["snapshot"]["counters"]["late.counter"] == 1
