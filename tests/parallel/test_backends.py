"""Cross-backend equivalence and failure-mode tests.

The backend contract is bit-identity: serial, threads, and processes all
consume the same ``contiguous_chunks`` decomposition with the variant
resolved once on the full problem, so ``(distances, indices)`` must match
``np.testing.assert_array_equal`` — not merely ``allclose`` — across every
norm and kernel variant. The crash test pins the other half of the
contract: a dead worker process surfaces as a clean ``BackendError``
(a ``ReproError``), never a hang or a bare pool exception.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gsknn import gsknn
from repro.errors import BackendError, ReproError, ValidationError
from repro.parallel import gsknn_data_parallel
from repro.parallel.backends import (
    BACKENDS,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    resolve_backend,
)

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


@pytest.fixture(scope="module")
def cloud() -> np.ndarray:
    return np.random.default_rng(777).random((400, 19))


class TestBitIdentity:
    @pytest.mark.parametrize("backend", ["threads", "processes"])
    @pytest.mark.parametrize("norm", ["l2", "l1", "cosine"])
    @pytest.mark.parametrize("variant", [1, 6])
    def test_backends_bit_identical(self, cloud, backend, norm, variant):
        """Every backend executes the same chunk list → bit-equal results.

        (Bit-identity is asserted *across backends*, which share one
        chunk decomposition — not against the unchunked kernel, whose
        BLAS calls see a different matrix shape and may round the last
        ulp differently.)
        """
        rng = np.random.default_rng(42)
        q = rng.integers(0, 400, 90)
        r = rng.permutation(400)[:250]
        k = 12
        want = gsknn_data_parallel(
            cloud, q, r, k, p=3, norm=norm, variant=variant, backend="serial"
        )
        got = gsknn_data_parallel(
            cloud, q, r, k, p=3, norm=norm, variant=variant, backend=backend
        )
        np.testing.assert_array_equal(want.distances, got.distances)
        np.testing.assert_array_equal(want.indices, got.indices)

    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    @pytest.mark.parametrize("norm", ["l2", "l1", "cosine"])
    @pytest.mark.parametrize("variant", [1, 6])
    def test_matches_plain_gsknn(self, cloud, backend, norm, variant):
        rng = np.random.default_rng(42)
        q = rng.integers(0, 400, 90)
        r = rng.permutation(400)[:250]
        k = 12
        want = gsknn(cloud, q, r, k, norm=norm, variant=variant)
        got = gsknn_data_parallel(
            cloud, q, r, k, p=3, norm=norm, variant=variant, backend=backend
        )
        np.testing.assert_allclose(want.distances, got.distances, atol=1e-12)

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_auto_variant_matches_serial_backend(self, cloud, backend):
        """variant="auto" must resolve on the full problem, not per chunk."""
        rng = np.random.default_rng(7)
        q = rng.integers(0, 400, 64)
        r = rng.permutation(400)[:300]
        want = gsknn_data_parallel(
            cloud, q, r, 8, p=3, variant="auto", backend="serial"
        )
        got = gsknn_data_parallel(
            cloud, q, r, 8, p=3, variant="auto", backend=backend
        )
        np.testing.assert_array_equal(want.distances, got.distances)
        np.testing.assert_array_equal(want.indices, got.indices)

    def test_processes_with_precomputed_norms(self, cloud):
        from repro.core.norms import squared_norms

        q = np.arange(50)
        r = np.arange(400)
        X2 = squared_norms(cloud)
        want = gsknn_data_parallel(
            cloud, q, r, 9, p=2, backend="serial", X2=X2
        )
        got = gsknn_data_parallel(
            cloud, q, r, 9, p=2, backend="processes", X2=X2
        )
        np.testing.assert_array_equal(want.distances, got.distances)
        np.testing.assert_array_equal(want.indices, got.indices)


class TestCrashHandling:
    def test_dead_worker_raises_backend_error(self, cloud, monkeypatch):
        """A killed worker must surface as BackendError, not hang.

        An ambient $REPRO_FAULT_PLAN (the CI fault-matrix job) would
        route this solve through the resilient executor, which *recovers*
        from the crash — this test pins the plain backend's failure
        semantics, so the plan is stripped.
        """
        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        monkeypatch.setenv("REPRO_BACKEND_TEST_CRASH_AT", "0")
        with pytest.raises(BackendError) as excinfo:
            gsknn_data_parallel(
                cloud, np.arange(60), np.arange(400), 5,
                p=2, backend="processes",
            )
        assert "worker process died" in str(excinfo.value)

    def test_backend_error_is_repro_error(self):
        assert issubclass(BackendError, ReproError)

    def test_crash_env_ignored_by_other_backends(self, cloud, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND_TEST_CRASH_AT", "0")
        want = gsknn(cloud, np.arange(60), np.arange(400), 5)
        for backend in ("serial", "threads"):
            got = gsknn_data_parallel(
                cloud, np.arange(60), np.arange(400), 5, p=2, backend=backend
            )
            np.testing.assert_array_equal(want.distances, got.distances)


class TestBackendResolution:
    def test_by_name(self):
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert isinstance(resolve_backend("threads", 3), ThreadBackend)
        assert isinstance(resolve_backend("processes", 2), ProcessBackend)
        assert resolve_backend("threads", 3).p == 3

    def test_instance_passthrough(self):
        engine = ThreadBackend(5)
        assert resolve_backend(engine) is engine

    def test_unknown_backend(self):
        with pytest.raises(ValidationError):
            resolve_backend("mpi")
        with pytest.raises(ValidationError):
            resolve_backend(42)  # type: ignore[arg-type]

    def test_registry_names_stable(self):
        assert sorted(BACKENDS) == ["processes", "serial", "threads"]

    def test_processes_map_rejected(self):
        with pytest.raises(ValidationError):
            ProcessBackend(2).map(lambda x: x, [1, 2])


class TestGenericMap:
    def test_serial_and_threads_agree(self):
        items = list(range(17))
        fn = lambda x: x * x  # noqa: E731
        assert SerialBackend().map(fn, items) == ThreadBackend(4).map(fn, items)

    def test_empty_items(self):
        assert ThreadBackend(4).map(lambda x: x, []) == []
