"""Tests for the Figure 3 register-level rank-1 update simulation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.avx_rank1 import (
    AvxSim,
    diagonals_to_tile,
    rank1_update_4x4,
    rank_dc_update_4x4,
)
from repro.errors import ValidationError


class TestPrimitives:
    def test_shuffle_in_lane(self):
        sim = AvxSim()
        reg = np.array([1.0, 2.0, 3.0, 4.0])
        np.testing.assert_array_equal(
            sim.shuffle_in_lane(reg), [2.0, 1.0, 4.0, 3.0]
        )
        assert sim.shuffle == 1

    def test_swap_lanes(self):
        sim = AvxSim()
        reg = np.array([1.0, 2.0, 3.0, 4.0])
        np.testing.assert_array_equal(sim.swap_lanes(reg), [3.0, 4.0, 1.0, 2.0])
        assert sim.permute2f128 == 1

    def test_fma(self):
        sim = AvxSim()
        out = sim.fma(np.ones(4), np.full(4, 2.0), np.full(4, 3.0))
        np.testing.assert_array_equal(out, np.full(4, 7.0))
        assert sim.vfma == 1

    def test_load_width_checked(self):
        with pytest.raises(ValidationError):
            AvxSim().load(np.ones(3))


class TestRank1:
    def test_single_rank1_is_outer_product(self, rng):
        q = rng.random(4)
        r = rng.random(4)
        sim = AvxSim()
        accs = [np.zeros(4) for _ in range(4)]
        accs = rank1_update_4x4(sim, accs, q, r)
        tile = diagonals_to_tile(accs)
        np.testing.assert_allclose(tile, np.outer(q, r), atol=1e-15)

    def test_instruction_budget_per_rank1(self, rng):
        """Figure 3: 4 VFMAs + 3 permutations per rank-1 update."""
        sim = AvxSim()
        accs = [np.zeros(4) for _ in range(4)]
        rank1_update_4x4(sim, accs, rng.random(4), rng.random(4))
        assert sim.vfma == 4
        assert sim.shuffle + sim.permute2f128 == 3

    def test_accumulator_count_checked(self):
        with pytest.raises(ValidationError):
            rank1_update_4x4(AvxSim(), [np.zeros(4)], np.zeros(4), np.zeros(4))
        with pytest.raises(ValidationError):
            diagonals_to_tile([np.zeros(4)] * 3)


class TestRankDc:
    @pytest.mark.parametrize("depth", [1, 2, 7, 32])
    def test_matches_gemm(self, rng, depth):
        Q = rng.random((depth, 4))
        R = rng.random((depth, 4))
        tile, _ = rank_dc_update_4x4(Q, R)
        np.testing.assert_allclose(tile, Q.T @ R, atol=1e-12)

    def test_instruction_totals(self, rng):
        depth = 16
        _, sim = rank_dc_update_4x4(rng.random((depth, 4)), rng.random((depth, 4)))
        assert sim.vfma == 4 * depth
        assert sim.vload == 2 * depth
        assert sim.shuffle + sim.permute2f128 == 3 * depth

    def test_shape_validation(self, rng):
        with pytest.raises(ValidationError):
            rank_dc_update_4x4(rng.random((3, 5)), rng.random((3, 5)))
        with pytest.raises(ValidationError):
            rank_dc_update_4x4(rng.random((3, 4)), rng.random((4, 4)))

    def test_agrees_with_microkernel_semantics(self, rng):
        """The RTL simulation and the numpy micro-kernel are two
        implementations of the same rank-d_c update."""
        from repro.core.microkernel import init_tile, rank_update
        from repro.core.norms import Norm

        Q = rng.random((8, 4))
        R = rng.random((8, 4))
        avx_tile, _ = rank_dc_update_4x4(Q, R)
        np_tile = init_tile(4, 4, Norm(2.0))
        rank_update(np_tile, Q, R, Norm(2.0))
        np.testing.assert_allclose(avx_tile, np_tile, atol=1e-12)


@given(
    st.integers(min_value=1, max_value=24),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=50, deadline=None)
def test_rank_dc_property(depth, seed):
    rng = np.random.default_rng(seed)
    Q = rng.normal(size=(depth, 4))
    R = rng.normal(size=(depth, 4))
    tile, sim = rank_dc_update_4x4(Q, R)
    np.testing.assert_allclose(tile, Q.T @ R, atol=1e-10)
    assert sim.vfma == 4 * depth
