"""Distance functions for the kNN kernel: squared-l2 plus general lp.

The GEMM-based kernel is tied to the expanded squared Euclidean form
``|x - y|^2 = |x|^2 + |y|^2 - 2 <x, y>`` (Equation 1). GSKNN's
micro-kernel owns its own inner loop, so it supports any lp norm,
0 < p <= inf (§2.4, "General lp norm"): l1 replaces each FMA with
subtract/abs/add, l-inf with subtract/abs/max, and general p with a pow.

This module provides both block-level distance evaluators used by the
fast numpy path and the scalar definitions shared by tests. Distances
returned are *squared* for l2 (the paper never takes the square root —
ordering is preserved) and natural (un-rooted sums of powers are rooted)
for other norms.
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError

__all__ = [
    "Norm",
    "resolve_norm",
    "pairwise_sq_l2",
    "pairwise_lp",
    "pairwise_cosine",
    "pairwise_block",
    "squared_norms",
]


class Norm:
    """A distance specification: ``p`` in (0, inf], or cosine distance.

    ``Norm("l2")`` compares by *squared* Euclidean distance (monotone
    equivalent, and what the paper's kernel computes); every other p
    compares by the true p-norm ``(sum |x_i - y_i|^p)^(1/p)``;
    ``Norm.cosine()`` compares by ``1 - <x, y> / (|x| |y|)`` — the other
    metric the GEMM expansion supports (§1), since it too reduces to an
    inner product plus per-point norms.
    """

    __slots__ = ("p", "_cosine")

    def __init__(self, p: float, *, _cosine: bool = False) -> None:
        if _cosine:
            self.p = 2.0
            self._cosine = True
            return
        if not (p > 0):
            raise ValidationError(f"norm order p must be > 0, got {p}")
        self.p = float(p)
        self._cosine = False

    @classmethod
    def cosine(cls) -> "Norm":
        return cls(2.0, _cosine=True)

    @property
    def is_l2(self) -> bool:
        return self.p == 2.0 and not self._cosine

    @property
    def is_cosine(self) -> bool:
        return self._cosine

    @property
    def is_linf(self) -> bool:
        return np.isinf(self.p)

    def __repr__(self) -> str:
        return "Norm(cosine)" if self._cosine else f"Norm(p={self.p})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Norm)
            and other.p == self.p
            and other._cosine == self._cosine
        )

    def __hash__(self) -> int:
        return hash(("Norm", self.p, self._cosine))


_ALIASES = {
    "l1": 1.0,
    "l2": 2.0,
    "linf": np.inf,
    "inf": np.inf,
    "chebyshev": np.inf,
    "manhattan": 1.0,
    "euclidean": 2.0,
}


def resolve_norm(norm: str | float | Norm) -> Norm:
    """Accept ``"l2"``, ``"cosine"``, ``2``, ``2.0`` or a :class:`Norm`."""
    if isinstance(norm, Norm):
        return norm
    if isinstance(norm, str):
        key = norm.lower()
        if key == "cosine":
            return Norm.cosine()
        if key not in _ALIASES:
            raise ValidationError(
                f"unknown norm {norm!r}; known aliases: "
                f"{sorted(_ALIASES) + ['cosine']}"
            )
        return Norm(_ALIASES[key])
    return Norm(float(norm))


def squared_norms(X: np.ndarray) -> np.ndarray:
    """Row-wise squared 2-norms — the precomputed ``X2`` side table."""
    X = np.asarray(X, dtype=np.float64)
    return np.einsum("ij,ij->i", X, X)


def pairwise_sq_l2(
    Q: np.ndarray,
    R: np.ndarray,
    Q2: np.ndarray | None = None,
    R2: np.ndarray | None = None,
) -> np.ndarray:
    """Squared Euclidean distances via the GEMM expansion (Equation 1).

    ``C[i, j] = |q_i|^2 + |r_j|^2 - 2 <q_i, r_j>``. Tiny negative values
    from cancellation are clamped to zero so downstream selection never
    sees a "distance" below the exact-match floor.
    """
    Q = np.asarray(Q, dtype=np.float64)
    R = np.asarray(R, dtype=np.float64)
    if Q.ndim != 2 or R.ndim != 2 or Q.shape[1] != R.shape[1]:
        raise ValidationError(
            f"Q and R must be 2-D with equal width, got {Q.shape} and {R.shape}"
        )
    Q2 = squared_norms(Q) if Q2 is None else np.asarray(Q2, dtype=np.float64)
    R2 = squared_norms(R) if R2 is None else np.asarray(R2, dtype=np.float64)
    C = Q @ R.T
    C *= -2.0
    C += Q2[:, None]
    C += R2[None, :]
    np.maximum(C, 0.0, out=C)
    return C


def pairwise_lp(Q: np.ndarray, R: np.ndarray, p: float) -> np.ndarray:
    """General lp pairwise distances by direct broadcasting.

    O(m * n * d) memory during evaluation — callers block the inputs (the
    fused kernel evaluates one cache block at a time, exactly as its
    micro-kernel would).
    """
    Q = np.asarray(Q, dtype=np.float64)
    R = np.asarray(R, dtype=np.float64)
    if Q.ndim != 2 or R.ndim != 2 or Q.shape[1] != R.shape[1]:
        raise ValidationError(
            f"Q and R must be 2-D with equal width, got {Q.shape} and {R.shape}"
        )
    diff = np.abs(Q[:, None, :] - R[None, :, :])
    if np.isinf(p):
        return diff.max(axis=2)
    if p == 1.0:
        return diff.sum(axis=2)
    return np.power(np.power(diff, p).sum(axis=2), 1.0 / p)


def pairwise_cosine(
    Q: np.ndarray,
    R: np.ndarray,
    Q2: np.ndarray | None = None,
    R2: np.ndarray | None = None,
) -> np.ndarray:
    """Cosine distances ``1 - <q, r> / (|q| |r|)`` via the GEMM expansion.

    Like squared l2, cosine needs only the inner-product matrix plus the
    per-point squared norms — the reason the paper lists it as the other
    metric the GEMM-based kernel supports. Zero vectors are treated as
    maximally distant (distance 1) rather than NaN.
    """
    Q = np.asarray(Q, dtype=np.float64)
    R = np.asarray(R, dtype=np.float64)
    if Q.ndim != 2 or R.ndim != 2 or Q.shape[1] != R.shape[1]:
        raise ValidationError(
            f"Q and R must be 2-D with equal width, got {Q.shape} and {R.shape}"
        )
    Q2 = squared_norms(Q) if Q2 is None else np.asarray(Q2, dtype=np.float64)
    R2 = squared_norms(R) if R2 is None else np.asarray(R2, dtype=np.float64)
    denom = np.sqrt(np.maximum(Q2[:, None] * R2[None, :], 0.0))
    with np.errstate(divide="ignore", invalid="ignore"):
        sim = (Q @ R.T) / denom
    sim = np.where(denom > 0.0, sim, 0.0)
    np.clip(sim, -1.0, 1.0, out=sim)
    return 1.0 - sim


def pairwise_block(
    Q: np.ndarray,
    R: np.ndarray,
    norm: Norm,
    Q2: np.ndarray | None = None,
    R2: np.ndarray | None = None,
) -> np.ndarray:
    """Dispatch one block's pairwise distances by norm.

    For l2 the result is *squared* distance (kernel convention); cosine
    returns ``1 - similarity``; any other p returns the true p-norm.
    """
    if norm.is_cosine:
        return pairwise_cosine(Q, R, Q2, R2)
    if norm.is_l2:
        return pairwise_sq_l2(Q, R, Q2, R2)
    return pairwise_lp(Q, R, norm.p)
