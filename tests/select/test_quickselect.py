"""Unit tests for quickselect selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.select import SelectionStats, quickselect_smallest
from repro.select.quickselect import quickselect_update


class TestQuickselectSmallest:
    def test_matches_sort(self, rng):
        values = rng.random(100)
        got, pos = quickselect_smallest(values, 7)
        np.testing.assert_allclose(got, np.sort(values)[:7])
        np.testing.assert_allclose(values[pos], got)

    def test_input_not_modified(self, rng):
        values = rng.random(50)
        snapshot = values.copy()
        quickselect_smallest(values, 5)
        np.testing.assert_array_equal(values, snapshot)

    @pytest.mark.parametrize("k", [1, 2, 9, 10])
    def test_boundary_k(self, rng, k):
        values = rng.random(10)
        got, _ = quickselect_smallest(values, k)
        np.testing.assert_allclose(got, np.sort(values)[:k])

    def test_sorted_ascending_input(self):
        values = np.arange(64, dtype=float)
        got, _ = quickselect_smallest(values, 6)
        np.testing.assert_allclose(got, np.arange(6, dtype=float))

    def test_sorted_descending_input(self):
        values = np.arange(64, dtype=float)[::-1]
        got, _ = quickselect_smallest(values, 6)
        np.testing.assert_allclose(got, np.arange(6, dtype=float))

    def test_all_equal_values(self):
        got, _ = quickselect_smallest(np.full(20, 3.0), 4)
        np.testing.assert_allclose(got, np.full(4, 3.0))

    def test_k_out_of_range(self):
        with pytest.raises(ValidationError):
            quickselect_smallest(np.ones(3), 4)
        with pytest.raises(ValidationError):
            quickselect_smallest(np.ones(3), 0)

    def test_stats_counted(self, rng):
        stats = SelectionStats()
        quickselect_smallest(rng.random(128), 8, stats=stats)
        assert stats.comparisons > 0
        assert stats.moves > 0


class TestQuickselectUpdate:
    def test_merges_candidates_into_list(self, rng):
        current_values = np.array([0.5, 0.7, np.inf])
        current_ids = np.array([10, 11, -1])
        cand_values = np.array([0.1, 0.9, 0.6])
        cand_ids = np.array([1, 2, 3])
        values, ids = quickselect_update(
            current_values, current_ids, cand_values, cand_ids
        )
        np.testing.assert_allclose(values, [0.1, 0.5, 0.6])
        np.testing.assert_array_equal(ids, [1, 10, 3])

    def test_update_cost_is_linear_in_n_plus_k(self, rng):
        """The paper's complaint: even when nothing enters the list the
        update scans all n + k elements (no O(1) reject path)."""
        k = 8
        current_values = np.linspace(0.0, 0.1, k)
        current_ids = np.arange(k)
        cand = np.linspace(10.0, 11.0, 64)  # all rejected
        stats = SelectionStats()
        values, _ = quickselect_update(
            current_values, current_ids, cand, np.arange(64), stats=stats
        )
        np.testing.assert_allclose(values, current_values)
        assert stats.sequential_accesses >= 64 + k

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            quickselect_update(np.ones(3), np.arange(2), np.ones(2), np.arange(2))
