"""Online serving: coalesced micro-batching vs sequential single-query
solves, measured in one run.

The serving front-end (:mod:`repro.serve`, docs/SERVING.md) exists on
one claim: when many small concurrent requests hit one reference table,
fusing every in-flight request into one batched solve amortizes the
kernel's fixed costs enough to beat solving them one by one — at the
cost of a bounded coalescing wait. This bench measures exactly that
trade at a serving-shaped workload (many closed-loop clients, a few
query rows per request, one shared table):

* **coalesced** — the real service: model-informed windows, fused
  ``gsknn_batch`` solves through the service's plan cache;
* **sequential** — the identical machinery with coalescing disabled
  (``max_batch=1``, zero wait): every request is its own solve. Same
  queue, same threads, same plan cache — the measured difference is
  batching itself, not infrastructure.

Both modes run in this one process under the same closed-loop
multi-tenant load, so ``coalescing_throughput_speedup`` is computed
on-host from two numbers recorded seconds apart. Latency percentiles
are recorded under polarity-neutral names (latency on a shared CI host
is too noisy to gate at 0.75); the speedup is the gated metric. Every
request carries a 250 ms SLO — the shape tests assert p99 lands far
under it and that nothing was dropped (``failed``) as opposed to
explicitly shed.

All numbers land in ``results/BENCH_serving.json``; the CI
``serve-smoke`` job gates them against the committed baseline in
``benchmarks/baselines/`` via ``compare_runs.py``.
"""

from __future__ import annotations

import numpy as np

from repro.core.gsknn import gsknn
from repro.serve import KnnQueryService, ServeConfig, run_closed_loop

from .conftest import run_report, uniform_problem

# Serving shape: modest table, tiny per-request problems, enough
# clients that windows actually fill. Deliberately NOT scaled by
# REPRO_BENCH_SCALE — the claim is about this regime.
N_REFS = 4096
D = 32
K = 8
ROWS = 4
CLIENTS = 16
DURATION_SECONDS = 3.0
SLO_MS = 250.0
TENANTS = {"search": 8, "ads": 4, "batch": 4}
WEIGHTS = {"search": 2, "ads": 1, "batch": 1}
SEED = 11

_COALESCED = dict(
    max_batch=64,
    max_wait_ms=2.0,
    max_queue_depth=256,
    slo_ms=SLO_MS,
    tenant_weights=WEIGHTS,
    policy="model",
)
_SEQUENTIAL = dict(
    max_batch=1,
    max_wait_ms=0.0,
    max_queue_depth=256,
    slo_ms=SLO_MS,
    tenant_weights=WEIGHTS,
    policy="fixed",
)


def _table() -> np.ndarray:
    X, _, _ = uniform_problem(N_REFS, N_REFS, D, seed=SEED)
    return X


def _drive(X: np.ndarray, config_kwargs: dict):
    """One closed-loop run; returns (LoadReport, service stats dict)."""
    with KnnQueryService(X, ServeConfig(**config_kwargs)) as svc:
        load = run_closed_loop(
            svc,
            clients=CLIENTS,
            duration_seconds=DURATION_SECONDS,
            k=K,
            rows=ROWS,
            tenants=TENANTS,
            seed=SEED,
        )
        stats = svc.stats()
    return load, stats


def _assert_served_results_exact(X: np.ndarray) -> None:
    """Correctness before timing: served slices == direct kernel calls."""
    with KnnQueryService(X, ServeConfig(**_COALESCED)) as svc:
        queries = [np.array([3, 17, 171, 4000]), np.array([9]), np.array([64, 65])]
        handles = [svc.submit(q, K) for q in queries]
        for q, handle in zip(queries, handles):
            got = handle.result(timeout=30)
            want = gsknn(X, q, np.arange(N_REFS), K)
            assert np.array_equal(got.indices, want.indices)
            assert np.allclose(got.distances, want.distances)


def test_serving_report(benchmark, report):
    def _run():
        rep = report(
            "serving",
            f"Online serving: coalesced vs sequential "
            f"(N={N_REFS}, d={D}, k={K}, {ROWS} rows/req, "
            f"{CLIENTS} closed-loop clients x {DURATION_SECONDS}s)\n"
            f"{'mode':>12} {'rps':>9} {'p50 ms':>8} {'p95 ms':>8} "
            f"{'p99 ms':>8} {'shed':>6} {'failed':>7}",
        )
        rep.problem(
            n_refs=N_REFS, d=D, k=K, rows_per_request=ROWS,
            clients=CLIENTS, duration_seconds=DURATION_SECONDS,
            slo_ms=SLO_MS, tenants=TENANTS, weights=WEIGHTS,
        )
        X = _table()
        _assert_served_results_exact(X)
        rep.row(f"{'correctness':>12}  served slices == direct gsknn, asserted")

        runs = {}
        # sequential first, coalesced second: any warm-up drift (page
        # cache, numpy thread pools) favors the mode we are NOT gating
        for mode, cfg in (("sequential", _SEQUENTIAL), ("coalesced", _COALESCED)):
            load, stats = _drive(X, cfg)
            runs[mode] = (load, stats)
            rep.row(
                f"{mode:>12} {load.throughput_rps:>9.1f} "
                f"{load.percentile(50) * 1e3:>8.2f} "
                f"{load.percentile(95) * 1e3:>8.2f} "
                f"{load.percentile(99) * 1e3:>8.2f} "
                f"{load.shed:>6} {load.failed:>7}"
            )
            rep.metric(f"{mode}_rps", load.throughput_rps)
            for q in (50, 95, 99):
                rep.metric(
                    f"{mode}_p{q}_latency", load.percentile(q)
                )
            rep.data_row(
                mode=mode,
                completed=load.completed,
                shed=load.shed,
                expired=load.expired,
                failed=load.failed,
                windows=stats["windows"],
                solve_calls=stats["solve_calls"],
                coalescing_ratio=round(stats["coalescing_ratio"], 3),
                per_tenant={
                    t: s.completed for t, s in load.per_tenant.items()
                },
            )

        seq, coal = runs["sequential"][0], runs["coalesced"][0]
        speedup = (
            coal.throughput_rps / seq.throughput_rps
            if seq.throughput_rps
            else 0.0
        )
        rep.metric("coalescing_throughput_speedup", speedup)
        rep.metric("coalescing_ratio", runs["coalesced"][1]["coalescing_ratio"])
        rep.metric("dropped_requests", coal.failed + seq.failed)
        rep.metric("shed_requests", coal.shed + seq.shed)
        rep.row(
            f"{'speedup':>12} {speedup:>8.2f}x  "
            f"(coalescing ratio {runs['coalesced'][1]['coalescing_ratio']:.1f} "
            f"requests/solve; p99 SLO budget {SLO_MS:.0f} ms)"
        )

    run_report(benchmark, _run)


class TestServingShape:
    """The acceptance claims, asserted at bench shape (not just recorded)."""

    @classmethod
    def setup_class(cls):
        cls.X = _table()

    def test_coalescing_beats_sequential_throughput(self):
        seq, _ = _drive(self.X, _SEQUENTIAL)
        coal, _ = _drive(self.X, _COALESCED)
        assert seq.completed > 0 and coal.completed > 0
        assert coal.throughput_rps >= 2.0 * seq.throughput_rps, (
            coal.throughput_rps,
            seq.throughput_rps,
        )

    def test_p99_under_slo_and_nothing_dropped(self):
        coal, stats = _drive(self.X, _COALESCED)
        assert coal.failed == 0
        assert coal.expired == 0
        assert coal.percentile(99) < SLO_MS / 1e3
        assert stats["coalescing_ratio"] > 1.0
