"""Cross-layer consistency: model, trace simulator, and real kernels must
tell one coherent story about the same algorithm."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import BlockingParams
from repro.core.gsknn import gsknn, gsknn_exact_loops
from repro.machine import KnnTraceSimulator, TINY_MACHINE
from repro.machine.params import MachineParams, CacheLevel
from repro.model import PerformanceModel


@pytest.fixture(scope="module")
def blocking():
    return BlockingParams(m_r=4, n_r=4, d_c=8, m_c=16, n_c=32)


@pytest.fixture(scope="module")
def sim(blocking):
    return KnnTraceSimulator(TINY_MACHINE, blocking)


class TestModelVsTraceSim:
    """The closed-form Table 4 terms and the discrete cache simulation are
    independent implementations of the same memory-behaviour claims;
    their *orderings* must agree."""

    def _model(self, blocking):
        machine = MachineParams(
            name="tiny-model",
            flops_per_cycle=8,
            clock_hz=3.54e9,
            tau_b=2.2e-9,
            tau_l=13.91e-9,
            caches=TINY_MACHINE.caches,
        )
        return PerformanceModel(machine, blocking)

    def test_kernel_ordering_agrees(self, sim, blocking):
        model = self._model(blocking)
        m = n = 128
        d, k = 16, 8
        sim_bytes = {
            kern: sim.run(kern, m=m, n=n, d=d, k=k, N=256).dram_total_bytes
            for kern in ("gsknn-var1", "gsknn-var6", "gemm")
        }
        model_tm = {
            "gsknn-var1": model.predict("var1", m, n, d, k).terms.t_m,
            "gsknn-var6": model.predict("var6", m, n, d, k).terms.t_m,
            "gemm": model.predict("gemm", m, n, d, k).terms.t_m,
        }
        sim_order = sorted(sim_bytes, key=sim_bytes.get)
        model_order = sorted(model_tm, key=model_tm.get)
        assert sim_order == model_order == ["gsknn-var1", "gsknn-var6", "gemm"]

    def test_var6_extra_traffic_is_mn_scale(self, sim, blocking):
        """Equation 4 says Var#6 - Var#1 = one m x n store; the trace
        simulator's measured gap must be within a small factor of
        8 m n bytes (write-allocate + write-back roughly doubles it)."""
        m = n = 128
        var1 = sim.run("gsknn-var1", m=m, n=n, d=16, k=8, N=256)
        var6 = sim.run("gsknn-var6", m=m, n=n, d=16, k=8, N=256)
        gap = var6.dram_total_bytes - var1.dram_total_bytes
        assert 0.5 * 8 * m * n <= gap <= 6 * 8 * m * n


class TestExactLoopsVsTraceSim:
    """The executable six-loop kernel and the trace simulator walk the
    same loop nest — their micro-kernel invocation counts must match."""

    @pytest.mark.parametrize(
        "m,n,d", [(16, 32, 8), (17, 31, 9), (32, 32, 16)]
    )
    def test_microkernel_counts_match(self, sim, blocking, m, n, d):
        import math

        res = sim.run("gsknn-var1", m=m, n=n, d=d, k=2, N=64)
        n_jc = math.ceil(n / blocking.n_c)
        n_pc = math.ceil(d / blocking.d_c)
        n_ic = math.ceil(m / blocking.m_c)
        # per (jc, pc, ic): tiles over the (possibly ragged) block
        total = 0
        for jc in range(n_jc):
            n_b = min(blocking.n_c, n - jc * blocking.n_c)
            jr = math.ceil(n_b / blocking.n_r)
            for ic in range(n_ic):
                m_b = min(blocking.m_c, m - ic * blocking.m_c)
                ir = math.ceil(m_b / blocking.m_r)
                total += jr * ir * n_pc
        assert res.counts["microkernels"] == total


class TestRealKernelsVsModelDirection:
    def test_variant_gap_direction_matches_model(self):
        """Where the model says Var#6 beats Var#1 decisively (huge k),
        the real kernels must agree in direction."""
        import time

        rng = np.random.default_rng(0)
        n = 1024
        X = rng.random((n, 16))
        idx = np.arange(n)
        k = 900  # k ~ n: selection dominates; model strongly favors var6

        model = PerformanceModel()
        assert model.predict_seconds(
            "var6", n, n, 16, k
        ) < model.predict_seconds("var1", n, n, 16, k)

        def best(variant):
            t = np.inf
            for _ in range(3):
                t0 = time.perf_counter()
                gsknn(X, idx, idx, k, variant=variant)
                t = min(t, time.perf_counter() - t0)
            return t

        # small tolerance: single-core timing under a loaded host
        assert best(6) < best(1) * 1.1

    def test_exact_loops_agree_with_fast_path_on_stride_input(self, rng):
        """General-stride sanity across implementations: scattered,
        duplicated indices give identical distances everywhere."""
        X = rng.random((90, 7))
        q = rng.integers(0, 90, 13)
        r = np.concatenate([rng.permutation(90)[:40], q[:5]])
        fast = gsknn(X, q, r, 6, block_m=5, block_n=11)
        exact = gsknn_exact_loops(X, q, r, 6)
        np.testing.assert_allclose(fast.distances, exact.distances, atol=1e-9)
