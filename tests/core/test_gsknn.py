"""Unit tests for the fused GSKNN kernel (fast path and exact loops)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import BlockingParams, TEST_BLOCKING
from repro.core.gsknn import GsknnStats, gsknn, gsknn_exact_loops
from repro.core.variants import Variant
from repro.errors import ValidationError

from ..conftest import brute_force_knn


class TestGsknnCorrectness:
    @pytest.mark.parametrize("k", [1, 2, 7, 30])
    def test_matches_brute_force(self, small_cloud, rng, k):
        q = rng.integers(0, 300, 40)
        r = rng.permutation(300)[:120]
        res = gsknn(small_cloud, q, r, k, block_m=16, block_n=32)
        truth_d, _ = brute_force_knn(small_cloud, q, r, k)
        np.testing.assert_allclose(res.distances, truth_d, atol=1e-9)

    @pytest.mark.parametrize("variant", [1, 5, 6, "var1", "var6", Variant.VAR1])
    def test_all_executable_variants_agree(self, small_cloud, rng, variant):
        q = rng.integers(0, 300, 25)
        r = rng.permutation(300)[:90]
        res = gsknn(small_cloud, q, r, 5, variant=variant, block_m=7, block_n=13)
        truth_d, _ = brute_force_knn(small_cloud, q, r, 5)
        np.testing.assert_allclose(res.distances, truth_d, atol=1e-9)

    @pytest.mark.parametrize("norm,p", [("l1", 1.0), ("linf", np.inf), (2.5, 2.5)])
    def test_lp_norms(self, small_cloud, rng, norm, p):
        q = rng.integers(0, 300, 12)
        r = rng.permutation(300)[:60]
        res = gsknn(small_cloud, q, r, 4, norm=norm, block_m=5, block_n=11)
        truth_d, _ = brute_force_knn(small_cloud, q, r, 4, p=p)
        np.testing.assert_allclose(res.distances, truth_d, atol=1e-9)

    def test_results_sorted_ascending(self, small_cloud, rng):
        res = gsknn(small_cloud, rng.integers(0, 300, 10), np.arange(300), 8)
        assert res.is_sorted()

    def test_indices_are_global(self, small_cloud):
        """Returned ids must be values of r_idx, not positions within it."""
        r = np.array([250, 100, 42, 7])
        res = gsknn(small_cloud, np.array([0]), r, 2)
        assert set(res.indices[0]).issubset(set(r.tolist()))

    def test_duplicate_references(self, small_cloud):
        """Duplicated reference ids may fill several slots, exactly like
        brute force over the duplicated list."""
        r = np.array([5, 5, 5, 9])
        res = gsknn(small_cloud, np.array([5]), r, 3)
        assert res.distances[0, 0] == 0.0
        truth_d, _ = brute_force_knn(small_cloud, [5], r, 3)
        np.testing.assert_allclose(res.distances, truth_d, atol=1e-12)

    def test_query_equals_reference_self_distance_zero(self, small_cloud):
        res = gsknn(small_cloud, np.arange(20), np.arange(20), 1)
        np.testing.assert_allclose(res.distances, 0.0, atol=1e-9)
        np.testing.assert_array_equal(res.indices.ravel(), np.arange(20))

    def test_k_equals_n(self, small_cloud, rng):
        r = rng.permutation(300)[:9]
        res = gsknn(small_cloud, np.arange(4), r, 9)
        truth_d, _ = brute_force_knn(small_cloud, np.arange(4), r, 9)
        np.testing.assert_allclose(res.distances, truth_d, atol=1e-9)

    def test_precomputed_x2(self, small_cloud, rng):
        X2 = (small_cloud**2).sum(axis=1)
        q, r = np.arange(10), np.arange(100)
        with_x2 = gsknn(small_cloud, q, r, 5, X2=X2)
        without = gsknn(small_cloud, q, r, 5)
        np.testing.assert_allclose(with_x2.distances, without.distances, atol=1e-12)

    def test_single_point_problem(self):
        X = np.array([[1.0, 2.0]])
        res = gsknn(X, np.array([0]), np.array([0]), 1)
        assert res.distances[0, 0] == 0.0

    def test_block_sizes_of_one(self, small_cloud, rng):
        q = rng.integers(0, 300, 6)
        r = rng.permutation(300)[:10]
        res = gsknn(small_cloud, q, r, 3, block_m=1, block_n=1)
        truth_d, _ = brute_force_knn(small_cloud, q, r, 3)
        np.testing.assert_allclose(res.distances, truth_d, atol=1e-9)


class TestGsknnValidation:
    def test_k_too_large(self, small_cloud):
        with pytest.raises(ValidationError):
            gsknn(small_cloud, np.arange(3), np.arange(5), 6)

    def test_k_zero(self, small_cloud):
        with pytest.raises(ValidationError):
            gsknn(small_cloud, np.arange(3), np.arange(5), 0)

    def test_nan_coordinates_rejected(self, small_cloud):
        bad = small_cloud.copy()
        bad[3, 2] = np.nan
        with pytest.raises(ValidationError):
            gsknn(bad, np.arange(3), np.arange(5), 2)

    def test_inf_coordinates_rejected(self, small_cloud):
        bad = small_cloud.copy()
        bad[0, 0] = np.inf
        with pytest.raises(ValidationError):
            gsknn(bad, np.arange(3), np.arange(5), 2)

    def test_out_of_range_indices(self, small_cloud):
        with pytest.raises(ValidationError):
            gsknn(small_cloud, np.array([500]), np.arange(5), 2)
        with pytest.raises(ValidationError):
            gsknn(small_cloud, np.array([-1]), np.arange(5), 2)

    def test_empty_indices(self, small_cloud):
        with pytest.raises(ValidationError):
            gsknn(small_cloud, np.array([], dtype=int), np.arange(5), 2)

    def test_non_viable_variant_rejected(self, small_cloud):
        for variant in (2, 3, 4):
            with pytest.raises(ValidationError):
                gsknn(small_cloud, np.arange(3), np.arange(10), 2, variant=variant)

    def test_unknown_variant(self, small_cloud):
        with pytest.raises(ValidationError):
            gsknn(small_cloud, np.arange(3), np.arange(10), 2, variant="banana")

    def test_bad_block_sizes(self, small_cloud):
        with pytest.raises(ValidationError):
            gsknn(small_cloud, np.arange(3), np.arange(10), 2, block_m=0)

    def test_bad_x2_shape(self, small_cloud):
        with pytest.raises(ValidationError):
            gsknn(small_cloud, np.arange(3), np.arange(10), 2, X2=np.ones(5))

    def test_fortran_ordered_input_accepted(self, rng):
        X = np.asfortranarray(rng.random((50, 8)))
        res = gsknn(X, np.arange(10), np.arange(50), 3)
        truth_d, _ = brute_force_knn(np.ascontiguousarray(X), np.arange(10), np.arange(50), 3)
        np.testing.assert_allclose(res.distances, truth_d, atol=1e-9)


class TestVariantSelection:
    def test_auto_small_k_picks_var1(self, small_cloud):
        _, stats = gsknn(
            small_cloud, np.arange(50), np.arange(300), 4, return_stats=True
        )
        assert stats.variant is Variant.VAR1

    def test_auto_huge_k_picks_var6(self, rng):
        X = rng.random((1500, 8))
        _, stats = gsknn(
            X, np.arange(500), np.arange(1500), 1400, return_stats=True
        )
        assert stats.variant is Variant.VAR6

    def test_paper_rule(self, rng):
        X = rng.random((1500, 8))
        _, stats = gsknn(
            X, np.arange(100), np.arange(1500), 600, variant="paper",
            return_stats=True,
        )
        assert stats.variant is Variant.VAR6

    def test_stats_discard_fraction(self, rng):
        X = rng.random((2000, 4))
        _, stats = gsknn(
            X, np.arange(100), np.arange(2000), 4,
            variant=1, block_n=100, return_stats=True,
        )
        assert 0.0 < stats.discard_fraction <= 1.0
        assert stats.blocks == 20


class TestExactLoops:
    @pytest.mark.parametrize(
        "blocking",
        [
            TEST_BLOCKING,
            BlockingParams(m_r=3, n_r=2, d_c=4, m_c=6, n_c=7),
            BlockingParams(m_r=1, n_r=1, d_c=1, m_c=1, n_c=1),
            BlockingParams(m_r=8, n_r=8, d_c=64, m_c=64, n_c=64),
        ],
    )
    def test_matches_brute_force_any_blocking(self, rng, blocking):
        X = rng.random((60, 9))
        q = rng.integers(0, 60, 11)
        r = rng.permutation(60)[:31]
        res = gsknn_exact_loops(X, q, r, 4, blocking=blocking)
        truth_d, _ = brute_force_knn(X, q, r, 4)
        np.testing.assert_allclose(res.distances, truth_d, atol=1e-9)

    def test_var6_matches(self, rng):
        X = rng.random((40, 5))
        res = gsknn_exact_loops(X, np.arange(10), np.arange(40), 6, variant=6)
        truth_d, _ = brute_force_knn(X, np.arange(10), np.arange(40), 6)
        np.testing.assert_allclose(res.distances, truth_d, atol=1e-9)

    @pytest.mark.parametrize("variant", [2, 3, 5])
    def test_all_buffered_placements_match(self, rng, variant):
        """Var#2/3/5 differ from Var#1 only in where selection runs —
        results must be identical (the refactoring-preserves-semantics
        property at every placement)."""
        X = rng.random((50, 7))
        q = rng.integers(0, 50, 11)
        r = rng.permutation(50)[:30]
        res = gsknn_exact_loops(X, q, r, 4, variant=variant)
        truth_d, _ = brute_force_knn(X, q, r, 4)
        np.testing.assert_allclose(res.distances, truth_d, atol=1e-9)

    def test_var4_rejected(self, rng):
        X = rng.random((10, 3))
        with pytest.raises(ValidationError):
            gsknn_exact_loops(X, np.arange(5), np.arange(10), 2, variant=4)

    def test_heap_arity_override(self, rng):
        X = rng.random((30, 4))
        res = gsknn_exact_loops(
            X, np.arange(8), np.arange(30), 3, heap_arity=4
        )
        truth_d, _ = brute_force_knn(X, np.arange(8), np.arange(30), 3)
        np.testing.assert_allclose(res.distances, truth_d, atol=1e-9)

    def test_agrees_with_fast_path(self, rng):
        X = rng.random((50, 7))
        q = rng.integers(0, 50, 9)
        r = rng.permutation(50)[:23]
        exact = gsknn_exact_loops(X, q, r, 5)
        fast = gsknn(X, q, r, 5, block_m=4, block_n=9)
        np.testing.assert_allclose(exact.distances, fast.distances, atol=1e-9)


class TestWarmStart:
    """gsknn(initial=...) — the paper's update-the-lists semantics."""

    def _two_phase(self, rng, k=6):
        X = rng.random((400, 9))
        q = rng.integers(0, 400, 50)
        r1 = rng.permutation(400)[:150]
        r2 = rng.permutation(400)[:200]
        return X, q, r1, r2, k

    def test_equals_merge_of_separate_solves(self, rng):
        from repro.core.neighbors import merge_neighbor_lists_fast

        X, q, r1, r2, k = self._two_phase(rng)
        first = gsknn(X, q, r1, k)
        warm = gsknn(X, q, r2, k, initial=first, block_n=37)
        cold = merge_neighbor_lists_fast(first, gsknn(X, q, r2, k))
        np.testing.assert_allclose(
            np.sort(warm.distances, 1), np.sort(cold.distances, 1), atol=1e-12
        )

    def test_matches_single_solve_over_union(self, rng):
        X, q, r1, r2, k = self._two_phase(rng)
        first = gsknn(X, q, r1, k)
        warm = gsknn(X, q, r2, k, initial=first, block_n=41)
        union = np.unique(np.concatenate([r1, r2]))
        whole = gsknn(X, q, union, k)
        np.testing.assert_allclose(warm.distances, whole.distances, atol=1e-12)

    def test_improves_discard_fraction(self, rng):
        X, q, r1, r2, k = self._two_phase(rng)
        first = gsknn(X, q, r1, k)
        _, warm_stats = gsknn(
            X, q, r2, k, initial=first, block_n=32, return_stats=True
        )
        _, cold_stats = gsknn(X, q, r2, k, block_n=32, return_stats=True)
        assert warm_stats.discard_fraction >= cold_stats.discard_fraction

    def test_shape_validated(self, rng):
        from repro.core.neighbors import KnnResult

        X, q, r1, r2, k = self._two_phase(rng)
        bad = KnnResult(np.zeros((3, k)), np.zeros((3, k), dtype=np.intp))
        with pytest.raises(ValidationError):
            gsknn(X, q, r2, k, initial=bad)

    def test_unfilled_initial_rows_accepted(self, rng):
        from repro.core.neighbors import KnnResult

        X, q, r1, r2, k = self._two_phase(rng)
        empty = KnnResult(
            np.full((q.size, k), np.inf), np.full((q.size, k), -1, dtype=np.intp)
        )
        warm = gsknn(X, q, r2, k, initial=empty)
        plain = gsknn(X, q, r2, k)
        np.testing.assert_allclose(warm.distances, plain.distances, atol=1e-12)

    def test_var6_with_initial(self, rng):
        from repro.core.neighbors import merge_neighbor_lists_fast

        X, q, r1, r2, k = self._two_phase(rng)
        first = gsknn(X, q, r1, k)
        warm = gsknn(X, q, r2, k, variant=6, initial=first)
        cold = merge_neighbor_lists_fast(first, gsknn(X, q, r2, k, variant=6))
        np.testing.assert_allclose(
            np.sort(warm.distances, 1), np.sort(cold.distances, 1), atol=1e-12
        )


class TestStatsCounters:
    def test_counters_exposed(self, small_cloud, rng):
        _, stats = gsknn(
            small_cloud, np.arange(20), np.arange(200), 5,
            variant=1, block_n=50, return_stats=True,
        )
        counters = stats.counters()
        assert counters.flops == (2 * 17 + 3) * 20 * 200
        assert counters.heap_updates + counters.discarded == stats.candidates_offered
        assert counters.slow_writes == 0  # Var#1 stores nothing

    def test_var6_accounts_matrix_store(self, small_cloud):
        _, stats = gsknn(
            small_cloud, np.arange(10), np.arange(100), 5,
            variant=6, return_stats=True,
        )
        counters = stats.counters()
        assert counters.slow_writes == 10 * 100

    def test_warm_start_with_l1_norm(self, rng):
        from repro.core.neighbors import merge_neighbor_lists_fast

        X = rng.random((400, 9))
        q = rng.integers(0, 400, 50)
        r1 = rng.permutation(400)[:150]
        r2 = rng.permutation(400)[:200]
        k = 6
        first = gsknn(X, q, r1, k, norm="l1")
        warm = gsknn(X, q, r2, k, norm="l1", initial=first, block_n=23)
        cold = merge_neighbor_lists_fast(first, gsknn(X, q, r2, k, norm="l1"))
        np.testing.assert_allclose(
            np.sort(warm.distances, 1), np.sort(cold.distances, 1), atol=1e-12
        )
