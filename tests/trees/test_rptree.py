"""Unit tests for random projection trees."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import embedded_gaussian, uniform_hypercube
from repro.errors import ValidationError
from repro.trees import (
    RandomProjectionForest,
    RandomProjectionTree,
    all_nearest_neighbors,
    exact_all_knn,
)
from repro.core.neighbors import recall


class TestRandomProjectionTree:
    def test_leaves_partition_points(self, rng):
        X = rng.random((300, 5))
        tree = RandomProjectionTree(leaf_size=40, seed=0).fit(X)
        ids = np.concatenate(tree.leaves)
        assert sorted(ids.tolist()) == list(range(300))

    def test_leaf_sizes_bounded(self, rng):
        X = rng.random((400, 6))
        tree = RandomProjectionTree(leaf_size=64, seed=1).fit(X)
        assert tree.leaf_sizes().max() <= 64
        assert tree.leaf_sizes().min() >= 8

    def test_reproducible(self, rng):
        X = rng.random((100, 4))
        a = RandomProjectionTree(leaf_size=16, seed=7).fit(X)
        b = RandomProjectionTree(leaf_size=16, seed=7).fit(X)
        for la, lb in zip(a.leaves, b.leaves):
            np.testing.assert_array_equal(la, lb)

    def test_seeds_differ(self, rng):
        X = rng.random((200, 4))
        sig = lambda t: sorted(tuple(sorted(l.tolist())) for l in t.leaves)
        a = RandomProjectionTree(leaf_size=32, seed=1).fit(X)
        b = RandomProjectionTree(leaf_size=32, seed=2).fit(X)
        assert sig(a) != sig(b)

    def test_validation(self, rng):
        with pytest.raises(ValidationError):
            RandomProjectionTree(leaf_size=1).fit(rng.random((10, 2)))
        with pytest.raises(ValidationError):
            RandomProjectionTree(leaf_size=8, jitter=0.7).fit(rng.random((10, 2)))
        with pytest.raises(ValidationError):
            RandomProjectionTree(leaf_size=8).fit(np.empty((0, 2)))

    def test_rotation_invariance_of_leaf_quality(self, rng):
        """The RP-tree selling point: rotating the data does not change
        the quality of its partitions (axis-aligned KD splits degrade).
        Measured as mean within-leaf nearest distance."""
        latent = embedded_gaussian(400, 8, intrinsic_dim=3, seed=0).points
        rot, _ = np.linalg.qr(rng.normal(size=(8, 8)))
        rotated = latent @ rot

        def leaf_quality(X):
            tree = RandomProjectionTree(leaf_size=50, seed=5).fit(X)
            total = 0.0
            for leaf in tree.leaves:
                D = ((X[leaf][:, None] - X[leaf][None, :]) ** 2).sum(-1)
                np.fill_diagonal(D, np.inf)
                total += np.sqrt(D.min(axis=1)).mean()
            return total / tree.n_leaves

        a, b = leaf_quality(latent), leaf_quality(rotated)
        assert abs(a - b) / max(a, b) < 0.35


class TestRandomProjectionForest:
    def test_yields_trees(self, rng):
        X = rng.random((150, 4))
        forest = RandomProjectionForest(leaf_size=32, n_trees=3, seed=0)
        trees = list(forest.trees(X))
        assert len(trees) == 3

    def test_invalid_count(self):
        with pytest.raises(ValidationError):
            RandomProjectionForest(leaf_size=16, n_trees=0)


class TestDriverIntegration:
    def test_rptree_method_reaches_high_recall(self):
        cloud = embedded_gaussian(600, 16, intrinsic_dim=5, seed=3).points
        truth = exact_all_knn(cloud, 5)
        report = all_nearest_neighbors(
            cloud, 5, method="rptree", leaf_size=96, iterations=8,
            truth=truth, tol=0.0,
        )
        assert report.recall_curve[-1] > 0.9

    def test_rptree_beats_kdtree_on_rotated_data(self, rng):
        """On randomly rotated low-intrinsic-dimension data the RP-tree
        should converge at least as fast as the axis-sampling KD-tree
        per iteration (same leaf size, same budget)."""
        cloud = embedded_gaussian(
            600, 32, intrinsic_dim=4, noise_std=0.0, seed=8
        ).points
        truth = exact_all_knn(cloud, 4)
        args = dict(leaf_size=80, iterations=3, truth=truth, tol=0.0, seed=2)
        rp = all_nearest_neighbors(cloud, 4, method="rptree", **args)
        kd = all_nearest_neighbors(cloud, 4, method="rkdtree", **args)
        assert rp.recall_curve[-1] >= kd.recall_curve[-1] - 0.1
