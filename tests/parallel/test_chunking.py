"""Property tests for the shared chunking helpers.

These helpers back three call sites (GEMM row partitioning, data-parallel
query chunking, scheduler lane sizing), so the invariants are pinned with
hypothesis rather than a handful of examples: every chunking must cover
all of ``total`` exactly once, produce no empty chunks, and keep sizes
near-equal.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.parallel.chunking import (
    block_aligned_chunks,
    contiguous_chunks,
    resolve_workers,
)


def _covered(chunks):
    out = []
    for start, size in chunks:
        out.extend(range(start, start + size))
    return out


class TestContiguousChunks:
    @given(st.integers(1, 500), st.integers(1, 32))
    def test_covers_everything_exactly_once(self, total, parts):
        assert _covered(contiguous_chunks(total, parts)) == list(range(total))

    @given(st.integers(1, 500), st.integers(1, 32))
    def test_no_empty_chunks(self, total, parts):
        assert all(size > 0 for _, size in contiguous_chunks(total, parts))

    @given(st.integers(1, 500), st.integers(1, 32))
    def test_near_equal_sizes(self, total, parts):
        sizes = [size for _, size in contiguous_chunks(total, parts)]
        assert max(sizes) - min(sizes) <= 1

    @given(st.integers(1, 500), st.integers(1, 32))
    def test_at_most_parts_chunks(self, total, parts):
        assert len(contiguous_chunks(total, parts)) == min(total, parts)

    def test_zero_total_is_empty(self):
        assert contiguous_chunks(0, 3) == []

    def test_validates(self):
        with pytest.raises(ValidationError):
            contiguous_chunks(-1, 3)
        with pytest.raises(ValidationError):
            contiguous_chunks(10, 0)


class TestBlockAlignedChunks:
    @given(st.integers(1, 500), st.integers(1, 16), st.integers(1, 64))
    def test_covers_everything_exactly_once(self, total, parts, block):
        chunks = block_aligned_chunks(total, parts, block)
        assert _covered(chunks) == list(range(total))

    @given(st.integers(1, 500), st.integers(1, 16), st.integers(1, 64))
    def test_alignment(self, total, parts, block):
        """Every chunk but the last starts and ends on a block boundary."""
        chunks = block_aligned_chunks(total, parts, block)
        for start, size in chunks[:-1]:
            assert start % block == 0
            assert size % block == 0
        assert chunks[-1][0] % block == 0

    @given(st.integers(1, 500), st.integers(1, 16), st.integers(1, 64))
    def test_no_empty_chunks(self, total, parts, block):
        assert all(s > 0 for _, s in block_aligned_chunks(total, parts, block))

    def test_validates(self):
        with pytest.raises(ValidationError):
            block_aligned_chunks(10, 2, 0)


class TestResolveWorkers:
    def test_auto_uses_cpu_count(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 6)
        assert resolve_workers("auto") == 6

    def test_auto_clamped_by_chunks(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 16)
        assert resolve_workers("auto", n_chunks=3) == 3

    def test_explicit_passthrough(self):
        assert resolve_workers(4) == 4
        assert resolve_workers(4, n_chunks=2) == 2

    def test_validates(self):
        with pytest.raises(ValidationError):
            resolve_workers(0)
        with pytest.raises(ValidationError):
            resolve_workers("many")
        with pytest.raises(ValidationError):
            resolve_workers(2.5)  # type: ignore[arg-type]
