"""RetryPolicy backoff arithmetic and retryability classification."""

from __future__ import annotations

import pytest

from repro.errors import (
    BackendError,
    InjectedFault,
    KernelTimeoutError,
    ValidationError,
)
from repro.resilience import FALLBACK_LADDER, RetryPolicy, is_retryable
from repro.resilience.deadline import Deadline


class TestPolicy:
    def test_defaults_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3

    def test_validation(self):
        with pytest.raises(ValidationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValidationError):
            RetryPolicy(backoff_base=-1.0)
        with pytest.raises(ValidationError):
            RetryPolicy(backoff_factor=0.5)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            backoff_base=0.01, backoff_factor=2.0, backoff_cap=0.05
        )
        assert policy.backoff(0) == pytest.approx(0.01)
        assert policy.backoff(1) == pytest.approx(0.02)
        assert policy.backoff(2) == pytest.approx(0.04)
        assert policy.backoff(3) == 0.05  # capped
        assert policy.backoff(10) == 0.05

    def test_sleep_clamps_to_deadline(self):
        policy = RetryPolicy(backoff_base=10.0, backoff_cap=10.0)

        class Clock:
            t = 0.0

            def __call__(self):
                return self.t

        clock = Clock()
        deadline = Deadline(0.001, clock=clock)
        clock.t = 0.0005
        slept = policy.sleep(0, deadline)
        assert slept <= 0.001

    def test_sleep_zero_after_expiry(self):
        class Clock:
            t = 0.0

            def __call__(self):
                return self.t

        clock = Clock()
        deadline = Deadline(0.001, clock=clock)
        clock.t = 1.0
        assert RetryPolicy().sleep(0, deadline) == 0.0


class TestClassification:
    def test_retryable(self):
        assert is_retryable(InjectedFault("x"))
        assert is_retryable(BackendError("worker died"))
        assert is_retryable(MemoryError())
        assert is_retryable(OSError("shm"))

    def test_not_retryable(self):
        assert not is_retryable(ValidationError("bad k"))
        assert not is_retryable(
            KernelTimeoutError("deadline", budget=1.0, elapsed=2.0)
        )


class TestLadder:
    def test_every_ladder_ends_serial(self):
        for primary, rungs in FALLBACK_LADDER.items():
            assert rungs[0] == primary
            assert rungs[-1] == "serial"

    def test_processes_degrades_through_threads(self):
        assert FALLBACK_LADDER["processes"] == (
            "processes",
            "threads",
            "serial",
        )
