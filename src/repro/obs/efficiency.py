"""Model-anchored efficiency accounting: achieved vs. predicted GFLOP/s.

The paper's argument is a performance *model* (Figs. 4-6): predicted
GFLOP/s tracks measured GFLOP/s closely enough that the model can pick
the kernel variant. This module closes that loop at runtime — every
solve records what the kernel *achieved* against what
:class:`~repro.model.perf_model.PerformanceModel` *predicts* for the
same ``(m, n, d, k, variant, blocking)``, in the paper's own
``(2d + 3) m n`` flop convention (:mod:`repro.perf.gflops`), plus the
modeled slow-memory traffic from :mod:`repro.perf.roofline`.

Emitted series (all labeled ``{variant=..., scope=...}``):

* ``efficiency.achieved_gflops`` — gauge (latest) and a histogram
  ``efficiency.achieved_gflops.dist``;
* ``efficiency.model_gflops`` — the prediction for the same shape;
* ``efficiency.model_ratio`` — achieved / predicted; the live Figs. 4-6
  signal (also ``efficiency.model_ratio.dist``);
* ``efficiency.est_bytes_moved`` — counter of modeled slow bytes;
* ``efficiency.solves`` / ``efficiency.anomalies`` — totals, where an
  anomaly is a ratio below the configurable floor
  (``REPRO_EFFICIENCY_FLOOR`` or :func:`set_efficiency_floor`).

The ratio is intentionally **not** clamped at 1: the host model is
calibrated for the paper's Ivy Bridge, so ratios well above 1 on a
modern machine are themselves informative. The anomaly floor therefore
defaults low (0.05) — it flags "something broke" (a fallback kernel, a
thrashing cache), not "slower than Ivy Bridge".

All recording is gated on ``registry.enabled`` and costs two model
evaluations per *solve* (not per tile), so the disabled path stays free
and the enabled path stays negligible next to the kernel itself.
"""

from __future__ import annotations

import math
import os
from typing import Any

from ..errors import ReproError
from .metrics import MetricsRegistry, get_registry

__all__ = [
    "efficiency_floor",
    "set_efficiency_floor",
    "record_solve_efficiency",
]

_FLOOR_ENV = "REPRO_EFFICIENCY_FLOOR"
_DEFAULT_FLOOR = 0.05
_floor: float | None = None


def efficiency_floor() -> float:
    """The anomaly threshold on achieved/model ratio (0 disables)."""
    global _floor
    if _floor is None:
        raw = os.environ.get(_FLOOR_ENV)
        try:
            _floor = float(raw) if raw is not None else _DEFAULT_FLOOR
        except ValueError:
            _floor = _DEFAULT_FLOOR
    return _floor


def set_efficiency_floor(value: float | None) -> float | None:
    """Override the anomaly floor; ``None`` re-reads the environment.

    Returns the previous override (or ``None``)."""
    global _floor
    old = _floor
    _floor = None if value is None else float(value)
    return old


def _model_kernel(variant: Any) -> str | None:
    """Map a repo variant (enum/int/str) onto a perf-model kernel name."""
    try:
        return f"var{int(variant)}"
    except (TypeError, ValueError):
        name = str(variant).lower()
        return name if name.startswith(("var", "gemm")) else None


def record_solve_efficiency(
    m: int,
    n: int,
    d: int,
    k: int,
    variant: Any,
    seconds: float,
    *,
    scope: str = "kernel",
    registry: MetricsRegistry | None = None,
) -> dict[str, float] | None:
    """Record one solve's achieved-vs-model efficiency into the registry.

    Returns the record dict (``achieved_gflops``, ``model_gflops``,
    ``model_ratio``, ``est_bytes_moved``, ``anomaly``) or ``None`` when
    the registry is disabled or the solve was unmeasurable (non-positive
    elapsed time — the timer was too coarse for the problem).

    ``scope`` distinguishes the accounting level: ``"kernel"`` for one
    ``gsknn`` kernel execution, ``"solve"`` for a whole data-parallel /
    distributed solve (whose wall clock includes scheduling and
    shipping, so its ratio is a lower bound on kernel efficiency).
    """
    registry = registry if registry is not None else get_registry()
    if not registry.enabled:
        return None
    if seconds <= 0 or not math.isfinite(seconds):
        registry.inc("efficiency.unmeasurable")
        return None

    # Lazy imports: obs must stay importable without the model stack.
    from ..perf.gflops import knn_flops
    from ..perf.roofline import arithmetic_intensity

    flops = knn_flops(m, n, d)
    achieved = flops / seconds / 1e9

    kernel = _model_kernel(variant)
    model_gflops = float("nan")
    est_bytes = float("nan")
    if kernel is not None:
        try:
            from ..model.perf_model import PerformanceModel

            model = PerformanceModel()
            model_gflops = model.predict(kernel, m, n, d, k).gflops
            est_bytes = flops / arithmetic_intensity(m, n, d, k, kernel)
        except ReproError:
            # shape outside the model's domain (e.g. an exotic variant):
            # still account the achieved rate, just unanchored
            kernel = None

    labels = {"variant": kernel or str(variant), "scope": scope}
    registry.set("efficiency.achieved_gflops", achieved, labels=labels)
    registry.observe(
        "efficiency.achieved_gflops.dist",
        achieved,
        labels=labels,
        start=1e-3,
        factor=2.0,
        count=24,
    )
    registry.inc("efficiency.solves", labels=labels)

    record: dict[str, float] = {
        "achieved_gflops": achieved,
        "model_gflops": model_gflops,
        "model_ratio": float("nan"),
        "est_bytes_moved": est_bytes,
        "anomaly": 0.0,
    }
    if kernel is None or not model_gflops > 0:
        return record

    ratio = achieved / model_gflops
    record["model_ratio"] = ratio
    registry.set("efficiency.model_gflops", model_gflops, labels=labels)
    registry.set("efficiency.model_ratio", ratio, labels=labels)
    registry.observe(
        "efficiency.model_ratio.dist",
        ratio,
        labels=labels,
        start=1e-3,
        factor=2.0,
        count=24,
    )
    if math.isfinite(est_bytes) and est_bytes > 0:
        registry.inc("efficiency.est_bytes_moved", est_bytes, labels=labels)
    floor = efficiency_floor()
    if floor > 0 and ratio < floor:
        registry.inc("efficiency.anomalies", labels=labels)
        record["anomaly"] = 1.0
    return record
