"""The assembled performance model: time and GFLOPS predictions.

Wraps :mod:`repro.model.costs` in the object the rest of the library
consumes: predict a kernel's runtime for (m, n, d, k), its efficiency in
the paper's ``(2d + 3) m n / T`` GFLOPS convention, and pick the faster
of Var#1/Var#6 — the three uses §2.6 lists (debugging, tuning,
scheduling).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..config import BlockingParams, IVY_BRIDGE_BLOCKING
from ..core.variants import Variant
from ..errors import ValidationError
from ..machine.params import IVY_BRIDGE, MachineParams
from ..perf.gflops import knn_flops
from .costs import CostTerms, memory_terms

__all__ = ["PerformanceModel", "ModelPrediction"]

_KERNELS = ("var1", "var2", "var3", "var5", "var6", "gemm")

#: Paper §2.4/§3: Var#1 pairs with a binary heap, Var#6 with a 4-heap.
_DEFAULT_ARITY = {
    "var1": 2,
    "var2": 2,
    "var3": 2,
    "var5": 2,
    "var6": 4,
    "gemm": 2,
}


@dataclass(frozen=True)
class ModelPrediction:
    """A kernel's predicted cost at one problem size."""

    kernel: str
    m: int
    n: int
    d: int
    k: int
    terms: CostTerms

    @property
    def seconds(self) -> float:
        return self.terms.total

    @property
    def gflops(self) -> float:
        """Efficiency in the paper's convention — useful flops over T."""
        return knn_flops(self.m, self.n, self.d) / self.terms.total / 1e9


class PerformanceModel:
    """Predicts kNN-kernel runtime on a machine with given blocking.

    ``edge_penalty`` models the paper's edge-case kernel: when ``d`` is
    not a multiple of ``d_c``, the remainder of the last 5th-loop
    iteration runs through a slower (intrinsics, non-pipelined) kernel.
    The remainder's share of the flops is slowed by the penalty factor,
    producing the periodic efficiency spikes Figure 6 shows for Var#1
    ("the smaller the remaining portion is, the less performance
    degradation is observed"). 0 (default) disables it.
    """

    def __init__(
        self,
        machine: MachineParams = IVY_BRIDGE,
        blocking: BlockingParams = IVY_BRIDGE_BLOCKING,
        edge_penalty: float = 0.0,
    ) -> None:
        if edge_penalty < 0:
            raise ValidationError(
                f"edge_penalty must be >= 0, got {edge_penalty}"
            )
        self.machine = machine
        self.blocking = blocking
        self.edge_penalty = edge_penalty

    def predict(
        self,
        kernel: str,
        m: int,
        n: int,
        d: int,
        k: int,
        heap_arity: int | None = None,
    ) -> ModelPrediction:
        """Predict one kernel execution (kernel in var1/var5/var6/gemm)."""
        if kernel not in _KERNELS:
            raise ValidationError(
                f"kernel must be one of {_KERNELS}, got {kernel!r}"
            )
        arity = _DEFAULT_ARITY[kernel] if heap_arity is None else heap_arity
        terms = memory_terms(
            m, n, d, k, self.machine, self.blocking, kernel, heap_arity=arity
        )
        if self.edge_penalty > 0.0:
            remainder = d % self.blocking.d_c
            if remainder:
                edge_fraction = remainder / d
                terms = replace(
                    terms,
                    t_f=terms.t_f * (1.0 + self.edge_penalty * edge_fraction),
                )
        return ModelPrediction(kernel, m, n, d, k, terms)

    def predict_seconds(
        self, kernel: str, m: int, n: int, d: int, k: int
    ) -> float:
        return self.predict(kernel, m, n, d, k).seconds

    def select_variant(self, m: int, n: int, d: int, k: int) -> Variant:
        """Model-based Var#1 vs Var#6 choice (Figure 5's decision rule)."""
        var1 = self.predict("var1", m, n, d, k).seconds
        var6 = self.predict("var6", m, n, d, k).seconds
        return Variant.VAR1 if var1 <= var6 else Variant.VAR6

    def speedup_over_gemm(
        self, kernel: str, m: int, n: int, d: int, k: int
    ) -> float:
        """Predicted T_gemm-approach / T_kernel ratio (>1 means faster)."""
        gemm = self.predict("gemm", m, n, d, k).seconds
        ours = self.predict(kernel, m, n, d, k).seconds
        return gemm / ours

    def estimate_kernel_runtime(self, m: int, n: int, d: int, k: int) -> float:
        """Best-variant runtime estimate — the scheduler's task weight."""
        return min(
            self.predict("var1", m, n, d, k).seconds,
            self.predict("var6", m, n, d, k).seconds,
        )
