"""Blocked fused distance evaluation over gathered candidate panels.

The approximate tier's inner loop. Both NN-descent refinement and beam
search reduce to the same primitive: given query rows ``Q`` and a
per-row candidate id matrix ``C`` into the reference table ``X``,
evaluate every ``||Q[i] - X[C[i, j]]||^2`` in one shot. Exactly like
the gsknn kernel's rank-dc update (§2.2), the evaluation uses the norm
expansion ``||q||^2 + ||r||^2 - 2 q.r`` so the heavy term is a single
batched GEMM (an einsum over gathered panels) per row block instead of
per-pair Python arithmetic, and row blocks are sized so one gathered
panel stays cache/memory friendly no matter how wide ``C`` is.

``pairwise_sq_distances`` is the degenerate shared-candidate case (all
rows score the same reference subset — entry-point seeding and re-rank
pools): there the gather collapses and the GEMM is a plain ``Q @ R.T``.
"""

from __future__ import annotations

import numpy as np

from ..core.norms import squared_norms
from ..errors import ValidationError

__all__ = ["candidate_distances", "pairwise_sq_distances"]

# Target elements per gathered (rows, L, d) panel: keeps the gather +
# einsum temporaries a few MB so blocks stream through cache.
_PANEL_ELEMENTS = 1 << 21


def pairwise_sq_distances(
    Q: np.ndarray,
    R: np.ndarray,
    *,
    Q2: np.ndarray | None = None,
    R2: np.ndarray | None = None,
) -> np.ndarray:
    """All-pairs squared distances ``(m, p)`` via one GEMM + norm trick.

    ``Q2``/``R2`` are optional precomputed squared norms (the callers
    cache them across hops/rounds). Clamped at 0 — the expansion can go
    slightly negative in floating point.
    """
    if Q.ndim != 2 or R.ndim != 2 or Q.shape[1] != R.shape[1]:
        raise ValidationError(
            f"Q {Q.shape} and R {R.shape} must be 2-D with equal width"
        )
    Q2 = squared_norms(Q) if Q2 is None else Q2
    R2 = squared_norms(R) if R2 is None else R2
    D = Q2[:, None] + R2[None, :] - 2.0 * (Q @ R.T)
    np.maximum(D, 0.0, out=D)
    return D


def candidate_distances(
    X: np.ndarray,
    Q: np.ndarray,
    C: np.ndarray,
    *,
    X2: np.ndarray | None = None,
    Q2: np.ndarray | None = None,
    block: int | None = None,
) -> np.ndarray:
    """``D[i, j] = ||Q[i] - X[C[i, j]]||^2``; ``+inf`` where ``C < 0``.

    ``C`` is ``(m, L)`` of reference ids with ``-1`` padding (empty
    candidate slots). Evaluation is blocked over query rows: each block
    gathers its ``(b, L, d)`` reference panel once and scores it with a
    single batched-GEMM einsum, so the per-candidate cost is the fused
    kernel's flops, not Python loop overhead.
    """
    if Q.ndim != 2 or C.ndim != 2 or Q.shape[0] != C.shape[0]:
        raise ValidationError(
            f"Q {Q.shape} and C {C.shape} must be 2-D with equal rows"
        )
    m, L = C.shape
    X2 = squared_norms(X) if X2 is None else X2
    Q2 = squared_norms(Q) if Q2 is None else Q2
    # float64 in -> float64 out (the exact paths); the beam-search hop
    # loop passes float32 panels and gets float32 back
    D = np.empty((m, L), dtype=np.result_type(X.dtype, Q.dtype))
    if m == 0 or L == 0:
        return D
    if block is None:
        block = max(64, _PANEL_ELEMENTS // max(L * X.shape[1], 1))
    d = X.shape[1]
    for lo in range(0, m, block):
        hi = min(lo + block, m)
        Cb = C[lo:hi]
        mask = Cb >= 0
        safe = np.where(mask, Cb, 0)
        # np.take on raveled ids is numpy's contiguous-gather fast path
        # (~2x the 2-D fancy-index gather); the einsum keeps this exact
        # path's accumulation order (self-distances stay exactly 0.0)
        panel = np.take(X, safe.ravel(), axis=0).reshape(hi - lo, L, d)
        dots = np.einsum("bd,bld->bl", Q[lo:hi], panel)
        Db = Q2[lo:hi, None] + X2[safe] - 2.0 * dots
        np.maximum(Db, 0.0, out=Db)
        D[lo:hi] = np.where(mask, Db, np.inf)
    return D
