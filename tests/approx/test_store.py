"""Planner calibration persistence: fingerprint keying, degradation."""

from __future__ import annotations

import json

import pytest

from repro.approx import (
    OperatingPoint,
    PlannerCalibration,
    default_planner_path,
    load_calibration,
    save_calibration,
)
from repro.approx.store import PLANNER_SCHEMA_VERSION
from repro.errors import ValidationError


@pytest.fixture
def calibration():
    return PlannerCalibration(
        n=2048,
        d=12,
        k=8,
        m_queries=32,
        exact_query_seconds=0.01,
        model_ratio=1.1,
        graph_build_seconds=1.5,
        points=[
            OperatingPoint(
                method="graph",
                workload="query",
                params={"ef": 32, "expand": 4, "max_hops": None},
                recall=0.95,
                query_seconds=1e-4,
            )
        ],
    )


class TestRoundTrip:
    def test_save_load(self, calibration, tmp_path):
        path = tmp_path / "planner.json"
        save_calibration(calibration, cache_path=path)
        loaded = load_calibration(path)
        assert loaded is not None
        assert loaded.n == calibration.n
        assert loaded.model_ratio == calibration.model_ratio
        assert len(loaded.points) == 1
        point = loaded.points[0]
        assert point.method == "graph"
        assert point.params["ef"] == 32
        assert point.params["max_hops"] is None

    def test_env_override(self, calibration, tmp_path, monkeypatch):
        path = tmp_path / "elsewhere.json"
        monkeypatch.setenv("REPRO_PLANNER_CACHE", str(path))
        assert default_planner_path() == path
        save_calibration(calibration)
        assert path.exists()
        assert load_calibration() is not None

    def test_default_path_beside_tuning_json(self, monkeypatch):
        monkeypatch.delenv("REPRO_PLANNER_CACHE", raising=False)
        monkeypatch.delenv("REPRO_TUNE_CACHE", raising=False)
        assert default_planner_path().name == "planner.json"

    def test_preserves_other_hosts(self, calibration, tmp_path):
        path = tmp_path / "planner.json"
        path.write_text(
            json.dumps(
                {
                    "schema_version": PLANNER_SCHEMA_VERSION,
                    "hosts": {"other-host": {"calibration": {}}},
                }
            )
        )
        save_calibration(calibration, cache_path=path)
        doc = json.loads(path.read_text())
        assert "other-host" in doc["hosts"]
        assert len(doc["hosts"]) == 2


class TestDegradation:
    def test_missing_file(self, tmp_path):
        assert load_calibration(tmp_path / "absent.json") is None

    def test_corrupt_json(self, tmp_path):
        path = tmp_path / "planner.json"
        path.write_text("{ nope")
        assert load_calibration(path) is None

    def test_future_schema(self, calibration, tmp_path):
        path = tmp_path / "planner.json"
        save_calibration(calibration, cache_path=path)
        doc = json.loads(path.read_text())
        doc["schema_version"] = PLANNER_SCHEMA_VERSION + 1
        path.write_text(json.dumps(doc))
        assert load_calibration(path) is None

    def test_unknown_host(self, tmp_path):
        path = tmp_path / "planner.json"
        path.write_text(
            json.dumps(
                {
                    "schema_version": PLANNER_SCHEMA_VERSION,
                    "hosts": {"some-other-fingerprint": {"calibration": {}}},
                }
            )
        )
        assert load_calibration(path) is None

    def test_mangled_calibration_fields(self, calibration, tmp_path):
        path = tmp_path / "planner.json"
        save_calibration(calibration, cache_path=path)
        doc = json.loads(path.read_text())
        for entry in doc["hosts"].values():
            del entry["calibration"]["n"]
        path.write_text(json.dumps(doc))
        assert load_calibration(path) is None

    def test_save_rejects_non_calibration(self, tmp_path):
        with pytest.raises(ValidationError):
            save_calibration({"n": 1}, cache_path=tmp_path / "x.json")
