"""Unit tests for KnnResult and neighbor-list merging."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.neighbors import (
    KnnResult,
    merge_neighbor_lists,
    merge_neighbor_lists_fast,
    recall,
)
from repro.errors import ValidationError


def _result(dist, idx):
    return KnnResult(np.asarray(dist, float), np.asarray(idx))


class TestKnnResult:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            KnnResult(np.ones((2, 3)), np.ones((2, 2), dtype=np.intp))

    def test_sorted(self):
        res = _result([[3.0, 1.0, 2.0]], [[3, 1, 2]])
        assert not res.is_sorted()
        s = res.sorted()
        assert s.is_sorted()
        np.testing.assert_array_equal(s.indices, [[1, 2, 3]])

    def test_m_k(self):
        res = _result(np.zeros((4, 2)), np.zeros((4, 2), dtype=np.intp))
        assert res.m == 4 and res.k == 2


class TestMergeNeighborLists:
    def test_keeps_k_smallest_union(self):
        a = _result([[1.0, 4.0]], [[10, 40]])
        b = _result([[2.0, 3.0]], [[20, 30]])
        merged = merge_neighbor_lists(a, b)
        np.testing.assert_allclose(merged.distances, [[1.0, 2.0]])
        np.testing.assert_array_equal(merged.indices, [[10, 20]])

    def test_dedupes_ids(self):
        a = _result([[1.0, 4.0]], [[10, 40]])
        b = _result([[1.0, 2.0]], [[10, 20]])
        merged = merge_neighbor_lists(a, b)
        np.testing.assert_array_equal(merged.indices, [[10, 20]])

    def test_unfilled_slots_lose(self):
        a = _result([[np.inf, np.inf]], [[-1, -1]])
        b = _result([[5.0, np.inf]], [[7, -1]])
        merged = merge_neighbor_lists(a, b)
        np.testing.assert_array_equal(merged.indices, [[7, -1]])
        assert merged.distances[0, 0] == 5.0

    def test_multiple_unfilled_slots_preserved(self):
        a = _result([[np.inf, np.inf, np.inf]], [[-1, -1, -1]])
        b = _result([[1.0, np.inf, np.inf]], [[3, -1, -1]])
        merged = merge_neighbor_lists(a, b)
        assert (merged.indices[0] == [3, -1, -1]).all()

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            merge_neighbor_lists(
                _result(np.zeros((1, 2)), np.zeros((1, 2), dtype=int)),
                _result(np.zeros((2, 2)), np.zeros((2, 2), dtype=int)),
            )


class TestMergeFastAgreesWithSlow:
    def test_random_lists(self, rng):
        m, k = 20, 8
        # ids unique within each list, distances consistent across lists
        pool_dist = rng.random(1000)
        def make():
            ids = rng.choice(1000, size=(m, k), replace=False).reshape(m, k)
            return KnnResult(pool_dist[ids], ids)
        a, b = make(), make()
        slow = merge_neighbor_lists(a, b)
        fast = merge_neighbor_lists_fast(a, b)
        np.testing.assert_allclose(slow.distances, fast.distances)
        # ids may differ only on exact ties
        ties = slow.distances == fast.distances
        assert ties.all()

    def test_with_unfilled_slots(self, rng):
        a = _result([[np.inf, np.inf, np.inf]], [[-1, -1, -1]])
        b = _result([[0.5, 0.7, np.inf]], [[5, 7, -1]])
        slow = merge_neighbor_lists(a, b)
        fast = merge_neighbor_lists_fast(a, b)
        np.testing.assert_allclose(slow.distances, fast.distances)
        np.testing.assert_array_equal(slow.indices, fast.indices)

    def test_overlapping_ids(self, rng):
        ids = np.array([[1, 2, 3]])
        dist = np.array([[0.1, 0.2, 0.3]])
        a = KnnResult(dist, ids)
        b = KnnResult(dist.copy(), ids.copy())
        fast = merge_neighbor_lists_fast(a, b)
        np.testing.assert_array_equal(np.sort(fast.indices), [[1, 2, 3]])
        np.testing.assert_allclose(np.sort(fast.distances), dist)


class TestRecall:
    def test_perfect(self):
        truth = _result([[1.0, 2.0]], [[1, 2]])
        assert recall(truth, truth) == 1.0

    def test_partial(self):
        truth = _result([[1.0, 2.0]], [[1, 2]])
        cand = _result([[1.0, 9.0]], [[1, 9]])
        assert recall(cand, truth) == 0.5

    def test_order_independent(self):
        truth = _result([[1.0, 2.0]], [[1, 2]])
        cand = _result([[2.0, 1.0]], [[2, 1]])
        assert recall(cand, truth) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            recall(
                _result(np.zeros((1, 2)), np.zeros((1, 2), dtype=int)),
                _result(np.zeros((1, 3)), np.zeros((1, 3), dtype=int)),
            )


class TestPersistence:
    def test_round_trip(self, tmp_path, rng):
        res = KnnResult(rng.random((5, 3)), rng.integers(0, 100, (5, 3)))
        path = res.save(tmp_path / "result")
        loaded = KnnResult.load(path)
        np.testing.assert_array_equal(loaded.distances, res.distances)
        np.testing.assert_array_equal(loaded.indices, res.indices)

    def test_suffix_added(self, tmp_path):
        res = KnnResult(np.zeros((1, 1)), np.zeros((1, 1), dtype=np.intp))
        assert res.save(tmp_path / "noext").suffix == ".npz"

    def test_missing_file(self, tmp_path):
        with pytest.raises(ValidationError):
            KnnResult.load(tmp_path / "nope.npz")

    def test_wrong_archive(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, stuff=np.ones(3))
        with pytest.raises(ValidationError):
            KnnResult.load(path)

    def test_inf_and_sentinels_survive(self, tmp_path):
        res = KnnResult(
            np.array([[1.0, np.inf]]), np.array([[3, -1]])
        )
        loaded = KnnResult.load(res.save(tmp_path / "r"))
        assert np.isinf(loaded.distances[0, 1])
        assert loaded.indices[0, 1] == -1
