"""Poll a live /metrics endpoint and validate its Prometheus exposition.

Used by the CI ``obs-smoke`` job: a resilient, faulted solve is started
in the background with ``repro-gsknn stats --serve``, and this script
polls the endpoint until the ``efficiency.*`` and ``resilience.*``
metric families appear, then checks that every line of the exposition
is syntactically valid Prometheus text format.

Usage::

    python benchmarks/check_metrics_exposition.py http://127.0.0.1:9209/metrics \
        [--timeout SECONDS] [--require SUBSTRING ...]

``--require`` (repeatable) replaces the default required families — the
``serve-smoke`` job uses it to wait for the ``serve_*`` serving series
instead of the kernel-run ones (the model-anchored series check is
skipped too, since a serving run need not produce efficiency series).

Exit status 0 on success, 1 with a diagnostic on stderr otherwise.
"""

from __future__ import annotations

import argparse
import re
import sys
import time
import urllib.error
import urllib.request

# One exposition line: a comment (# HELP / # TYPE), or
# name{labels} value [timestamp].  Values may be NaN / +-Inf.
_LINE = re.compile(
    r"^(?:"
    r"# (?:HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*(?:\{[^{}]*\})? "
    r"(?:[+-]?(?:[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?)|NaN|[+-]Inf)"
    r"(?: [0-9]+)?"
    r")$"
)

REQUIRED_SUBSTRINGS = ("efficiency_solves", "resilience_solves")
REQUIRED_SERIES_PREFIX = "efficiency_model_ratio"


def scrape(url: str) -> str | None:
    try:
        with urllib.request.urlopen(url, timeout=2) as resp:
            return resp.read().decode("utf-8")
    except (urllib.error.URLError, OSError, TimeoutError):
        return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("url", help="metrics endpoint, e.g. http://127.0.0.1:9209/metrics")
    parser.add_argument("--timeout", type=float, default=60.0,
                        help="seconds to keep polling for the required families")
    parser.add_argument("--require", action="append", default=None,
                        metavar="SUBSTRING",
                        help="required metric-name substring (repeatable); "
                        "replaces the default kernel-run families")
    args = parser.parse_args(argv)

    required = tuple(args.require) if args.require else REQUIRED_SUBSTRINGS
    deadline = time.monotonic() + args.timeout
    text = ""
    while time.monotonic() < deadline:
        got = scrape(args.url)
        if got is not None:
            text = got
            if all(s in text for s in required):
                break
        time.sleep(0.5)
    else:
        missing = [s for s in required if s not in text]
        print(f"timed out waiting for {missing} at {args.url} "
              f"(last scrape had {len(text.splitlines())} lines)", file=sys.stderr)
        return 1

    bad = [ln for ln in text.splitlines() if ln and not _LINE.match(ln)]
    if bad:
        print("invalid exposition lines:", file=sys.stderr)
        for ln in bad[:10]:
            print(f"  {ln!r}", file=sys.stderr)
        return 1

    if args.require is None and not any(
        ln.startswith(REQUIRED_SERIES_PREFIX) for ln in text.splitlines()
    ):
        print(f"no {REQUIRED_SERIES_PREFIX}* series in exposition", file=sys.stderr)
        return 1

    families = {ln.split()[2] for ln in text.splitlines() if ln.startswith("# TYPE ")}
    print(f"scraped {len(text.splitlines())} lines, {len(families)} families; "
          f"required series present: {', '.join(required)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
