"""Bridges from the repo's legacy instrumentation into the registry.

Each ``absorb_*`` function folds one of the pre-existing ad-hoc stat
carriers — :class:`~repro.perf.counters.KernelCounters`,
:class:`~repro.perf.timer.PhaseTimer` / ``PhaseBreakdown``,
:class:`~repro.select.counters.SelectionStats`,
:class:`~repro.core.gsknn.GsknnStats`,
:class:`~repro.parallel.scheduler.Schedule` — into a
:class:`~repro.obs.metrics.MetricsRegistry` under a stable, namespaced
key scheme (``kernel.*``, ``phase.*``, ``select.*``, ``sched.*``).
The carriers themselves stay untouched: code that consumed them keeps
working, and the registry is a *superset* view.

:class:`MetricsGemmObserver` plugs into the blocked-GEMM engine's
pre-existing observer seam, so the packed loop nest reports pack /
micro-kernel / C-block traffic without new hooks in its inner loops.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .metrics import MetricsRegistry, get_registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from ..core.gsknn import GsknnStats
    from ..parallel.scheduler import Schedule
    from ..perf.counters import KernelCounters
    from ..perf.timer import PhaseBreakdown, PhaseTimer
    from ..select.counters import SelectionStats

__all__ = [
    "absorb_kernel_counters",
    "absorb_phase_timer",
    "absorb_phase_breakdown",
    "absorb_selection_stats",
    "absorb_gsknn_stats",
    "absorb_schedule",
    "absorb_tracer",
    "MetricsGemmObserver",
]


def _target(registry: MetricsRegistry | None) -> MetricsRegistry:
    return registry if registry is not None else get_registry()


def absorb_kernel_counters(
    counters: "KernelCounters",
    registry: MetricsRegistry | None = None,
    *,
    prefix: str = "kernel",
) -> MetricsRegistry:
    """Fold flop / slow-memory / heap tallies into ``<prefix>.*`` counters."""
    reg = _target(registry)
    reg.inc_many(
        [
            (f"{prefix}.flops", counters.flops),
            (f"{prefix}.slow_reads", counters.slow_reads),
            (f"{prefix}.slow_writes", counters.slow_writes),
            (f"{prefix}.heap_updates", counters.heap_updates),
            (f"{prefix}.discarded", counters.discarded),
        ]
    )
    return reg


def absorb_phase_breakdown(
    breakdown: "PhaseBreakdown",
    registry: MetricsRegistry | None = None,
    *,
    prefix: str = "phase",
) -> MetricsRegistry:
    """Observe each Table-5 phase's seconds into ``<prefix>.<name>``."""
    reg = _target(registry)
    for name in ("coll", "gemm", "sq2d", "heap", "other"):
        seconds = getattr(breakdown, name)
        if seconds > 0.0:
            reg.observe(f"{prefix}.{name}", seconds)
    return reg


def absorb_phase_timer(
    timer: "PhaseTimer",
    registry: MetricsRegistry | None = None,
    *,
    prefix: str = "phase",
) -> MetricsRegistry:
    """Observe every named phase the timer accumulated (not just Table 5's)."""
    reg = _target(registry)
    for name, seconds in timer.seconds.items():
        reg.observe(f"{prefix}.{name}", seconds)
    return reg


def absorb_selection_stats(
    stats: "SelectionStats",
    registry: MetricsRegistry | None = None,
    *,
    prefix: str = "select",
) -> MetricsRegistry:
    """Fold one selection pass's operation tallies into ``<prefix>.*``."""
    reg = _target(registry)
    reg.inc_many(
        [
            (f"{prefix}.comparisons", stats.comparisons),
            (f"{prefix}.moves", stats.moves),
            (f"{prefix}.random_accesses", stats.random_accesses),
            (f"{prefix}.sequential_accesses", stats.sequential_accesses),
        ]
    )
    return reg


def absorb_gsknn_stats(
    stats: "GsknnStats",
    registry: MetricsRegistry | None = None,
    *,
    prefix: str = "gsknn",
) -> MetricsRegistry:
    """Fold one fused-kernel run: counters, block count, discard gauge."""
    reg = _target(registry)
    reg.inc(f"{prefix}.calls")
    reg.inc(f"{prefix}.variant.var{int(stats.variant)}")
    reg.inc(f"{prefix}.blocks", stats.blocks)
    reg.gauge(f"{prefix}.discard_fraction").set(stats.discard_fraction)
    absorb_kernel_counters(stats.counters(), reg, prefix=f"{prefix}.work")
    return reg


def absorb_schedule(
    schedule: "Schedule",
    registry: MetricsRegistry | None = None,
    *,
    prefix: str = "sched",
) -> MetricsRegistry:
    """Record one LPT schedule: queue sizes, makespan, imbalance."""
    reg = _target(registry)
    reg.inc(f"{prefix}.schedules")
    reg.inc(f"{prefix}.tasks", sum(len(p) for p in schedule.assignments))
    reg.set(f"{prefix}.processors", schedule.n_processors)
    reg.set(f"{prefix}.makespan_seconds", schedule.makespan)
    reg.set(f"{prefix}.total_work_seconds", schedule.total_work)
    reg.set(f"{prefix}.imbalance", schedule.imbalance)
    for load in schedule.loads:
        reg.observe(f"{prefix}.queue_seconds", load)
    return reg


def absorb_tracer(
    tracer,
    registry: MetricsRegistry | None = None,
    *,
    prefix: str = "phase",
) -> MetricsRegistry:
    """Fold a tracer's per-name aggregate into phase histograms.

    ``self_seconds`` (span time not covered by child spans) is what gets
    observed, so summing the ``<prefix>.*`` histograms over a span tree
    reproduces the root's wall clock — the property that makes the CLI's
    breakdown table add up like Table 5 does.
    """
    reg = _target(registry)
    for name, row in tracer.aggregate().items():
        hist = reg.histogram(f"{prefix}.{name}")
        hist.observe(row["self_seconds"])
        reg.inc(f"{prefix}.{name}.spans", int(row["count"]))
    return reg


class MetricsGemmObserver:
    """GEMM loop-nest observer that tallies into a registry.

    Satisfies :class:`repro.gemm.blocked.GemmObserver`; composes with any
    existing observer (pass it as ``inner``) so the cache simulator and
    the metrics can watch the same run.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        *,
        prefix: str = "gemm",
        inner=None,
    ) -> None:
        self.registry = _target(registry)
        self.prefix = prefix
        self.inner = inner

    def on_pack(self, which: str, rows: int, depth: int) -> None:
        self.registry.inc(f"{self.prefix}.packs")
        self.registry.inc(f"{self.prefix}.packed_doubles", rows * depth)
        if self.inner is not None:
            self.inner.on_pack(which, rows, depth)

    def on_microkernel(self, m_r: int, n_r: int, depth: int) -> None:
        self.registry.inc(f"{self.prefix}.microkernels")
        self.registry.inc(f"{self.prefix}.rank_updates", m_r * n_r * depth)
        if self.inner is not None:
            self.inner.on_microkernel(m_r, n_r, depth)

    def on_c_block(self, rows: int, cols: int, is_first_depth: bool) -> None:
        self.registry.inc(f"{self.prefix}.c_blocks")
        self.registry.inc(f"{self.prefix}.c_doubles", rows * cols)
        if self.inner is not None:
            self.inner.on_c_block(rows, cols, is_first_depth)
