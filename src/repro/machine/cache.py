"""Set-associative LRU cache-hierarchy simulator.

Operates at cache-line granularity on an abstract flat address space: the
trace simulator in :mod:`repro.machine.sim` assigns each buffer (``X``,
packed panels, heaps, ``C_c``...) an address range and replays the loads
and stores the GSKNN / GEMM loop nests would issue. The hierarchy is
inclusive-of-nothing and write-back/write-allocate — misses at one level
probe the next; DRAM accesses are whatever misses the last level.

The point of this component is *measured* (not modeled) memory traffic on
small problems: tests use it to verify the qualitative claims behind the
paper's variant analysis (e.g. Var#1 issues less DRAM traffic than Var#6
for small k; packing keeps micro-panel streams resident in L1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from .params import CacheLevel, MachineParams

__all__ = ["CacheStats", "SetAssociativeCache", "CacheHierarchy"]


@dataclass
class CacheStats:
    """Hit/miss counters for one cache level."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """One cache level: ``n_sets`` sets x ``associativity`` ways, true LRU.

    Each set is an ordered list of ``(tag, dirty)`` entries, most recently
    used last. Line addresses are ``addr // line_bytes``; the set index is
    the low bits of the line address.
    """

    def __init__(self, level: CacheLevel) -> None:
        self.level = level
        self.n_sets = level.n_sets
        self.associativity = level.associativity
        self.line_bytes = level.line_bytes
        self.stats = CacheStats()
        self._sets: list[list[list]] = [[] for _ in range(self.n_sets)]

    def access_line(self, line_addr: int, write: bool) -> tuple[bool, int | None]:
        """Touch one line. Returns ``(hit, evicted_dirty_line_or_None)``."""
        set_idx = line_addr % self.n_sets
        tag = line_addr // self.n_sets
        entries = self._sets[set_idx]
        for pos, entry in enumerate(entries):
            if entry[0] == tag:
                entries.append(entries.pop(pos))
                if write:
                    entries[-1][1] = True
                self.stats.hits += 1
                return True, None
        self.stats.misses += 1
        evicted = None
        if len(entries) >= self.associativity:
            victim = entries.pop(0)
            self.stats.evictions += 1
            if victim[1]:
                self.stats.writebacks += 1
                evicted = victim[0] * self.n_sets + set_idx
        entries.append([tag, write])
        return False, evicted

    def contains_line(self, line_addr: int) -> bool:
        set_idx = line_addr % self.n_sets
        tag = line_addr // self.n_sets
        return any(entry[0] == tag for entry in self._sets[set_idx])

    def flush(self) -> None:
        """Drop all contents and reset counters."""
        self._sets = [[] for _ in range(self.n_sets)]
        self.stats = CacheStats()


@dataclass
class _DramStats:
    reads: int = 0
    writes: int = 0

    @property
    def line_transfers(self) -> int:
        return self.reads + self.writes


class CacheHierarchy:
    """A stack of :class:`SetAssociativeCache` levels in front of DRAM."""

    def __init__(self, machine: MachineParams) -> None:
        if not machine.caches:
            raise ConfigurationError(
                f"machine {machine.name!r} defines no cache levels"
            )
        line_sizes = {c.line_bytes for c in machine.caches}
        if len(line_sizes) != 1:
            raise ConfigurationError(
                "all cache levels must share one line size"
            )
        self.machine = machine
        self.line_bytes = machine.caches[0].line_bytes
        self.levels = [SetAssociativeCache(c) for c in machine.caches]
        self.dram = _DramStats()
        #: region name -> {"L1"/"L2"/.../"DRAM" -> satisfied-line count}
        self.region_stats: dict[str, dict[str, int]] = {}

    def access(
        self,
        addr: int,
        n_bytes: int,
        *,
        write: bool = False,
        region: str | None = None,
    ) -> None:
        """Touch ``[addr, addr + n_bytes)``, line by line.

        ``region`` optionally attributes the accesses to a named buffer;
        per-region hit levels accumulate in :attr:`region_stats` (maps
        region -> {level name or "DRAM" -> line count}), which is how
        the Figure 2 residency claims are measured.
        """
        if n_bytes <= 0:
            return
        first = addr // self.line_bytes
        last = (addr + n_bytes - 1) // self.line_bytes
        for line in range(first, last + 1):
            self._access_line(line, write, region)

    def _access_line(
        self, line_addr: int, write: bool, region: str | None = None
    ) -> None:
        for depth, level in enumerate(self.levels):
            hit, evicted = level.access_line(line_addr, write)
            if evicted is not None:
                # write-back of a dirty victim propagates downward
                self._writeback(depth + 1, evicted)
            if hit:
                if region is not None:
                    self._tally(region, level.level.name)
                return
            # miss: this level has now allocated the line (done inside
            # access_line); keep probing the next level as a read fill.
            write = False  # lower levels see a clean fill, not the store
        self.dram.reads += 1
        if region is not None:
            self._tally(region, "DRAM")

    def _tally(self, region: str, where: str) -> None:
        bucket = self.region_stats.setdefault(region, {})
        bucket[where] = bucket.get(where, 0) + 1

    def _writeback(self, from_depth: int, line_addr: int) -> None:
        if from_depth >= len(self.levels):
            self.dram.writes += 1
            return
        level = self.levels[from_depth]
        hit, evicted = level.access_line(line_addr, True)
        if evicted is not None:
            self._writeback(from_depth + 1, evicted)
        if not hit:
            # allocating the written-back line in this level displaced a
            # fill we don't separately charge; the recursion above already
            # accounted the victim.
            pass

    # -- reporting --------------------------------------------------------

    def stats(self) -> dict[str, CacheStats]:
        return {lvl.level.name: lvl.stats for lvl in self.levels}

    @property
    def dram_bytes(self) -> int:
        """Total DRAM traffic in bytes (reads + write-backs)."""
        return self.dram.line_transfers * self.line_bytes

    @property
    def dram_read_bytes(self) -> int:
        return self.dram.reads * self.line_bytes

    def flush(self) -> None:
        for level in self.levels:
            level.flush()
        self.dram = _DramStats()
        self.region_stats = {}
