"""Unit tests for streaming all-NN maintenance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import gaussian_mixture
from repro.errors import ValidationError
from repro.trees.streaming import StreamingAllKnn


@pytest.fixture
def stream():
    return gaussian_mixture(1200, 8, n_clusters=5, seed=0).points


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValidationError):
            StreamingAllKnn(0, 4)
        with pytest.raises(ValidationError):
            StreamingAllKnn(4, 0)
        with pytest.raises(ValidationError):
            StreamingAllKnn(4, 4, tables_per_batch=0)

    def test_empty_state(self):
        s = StreamingAllKnn(3, 4)
        assert s.n_points == 0
        assert s.neighbors().m == 0
        assert s.recall_against_exact() == 1.0


class TestInsert:
    def test_dimension_checked(self, stream):
        s = StreamingAllKnn(8, 4)
        with pytest.raises(ValidationError):
            s.insert(np.ones((5, 3)))

    def test_nan_rejected(self):
        s = StreamingAllKnn(2, 2)
        with pytest.raises(ValidationError):
            s.insert(np.array([[np.nan, 1.0]]))

    def test_points_accumulate(self, stream):
        s = StreamingAllKnn(8, 4)
        s.insert(stream[:100])
        s.insert(stream[100:250])
        assert s.n_points == 250
        assert s.neighbors().m == 250

    def test_points_view_readonly(self, stream):
        s = StreamingAllKnn(8, 4)
        s.insert(stream[:10])
        with pytest.raises(ValueError):
            s.points[0, 0] = 99.0

    def test_single_point_no_kernel(self):
        s = StreamingAllKnn(2, 1)
        assert s.insert(np.array([[0.0, 0.0]])) == 0

    def test_lists_filled_after_insert(self, stream):
        s = StreamingAllKnn(8, 4, tables_per_batch=3)
        s.insert(stream[:300])
        result = s.neighbors()
        assert (result.indices >= 0).mean() > 0.95

    def test_neighbors_are_exact_distances(self, stream):
        """Whatever ids the structure holds, the distances must be the
        true squared distances to those ids (kernels are exact)."""
        s = StreamingAllKnn(8, 3)
        s.insert(stream[:150])
        result = s.neighbors()
        X = s.points
        for i in range(0, 150, 30):
            for dist, j in zip(result.distances[i], result.indices[i]):
                if j >= 0:
                    true = float(((X[i] - X[j]) ** 2).sum())
                    assert abs(true - dist) < 1e-9


class TestRecallDynamics:
    def test_recall_reasonable_after_stream(self, stream):
        s = StreamingAllKnn(8, 4, tables_per_batch=3, max_bucket=512)
        for start in range(0, 900, 300):
            s.insert(stream[start : start + 300])
        assert s.recall_against_exact() > 0.5

    def test_extra_refresh_improves_recall(self, stream):
        s = StreamingAllKnn(8, 4, tables_per_batch=1, max_bucket=256, seed=3)
        s.insert(stream[:600])
        before = s.recall_against_exact()
        s.refresh(tables=4)
        after = s.recall_against_exact()
        assert after >= before

    def test_refresh_validation(self, stream):
        s = StreamingAllKnn(8, 2)
        s.insert(stream[:50])
        with pytest.raises(ValidationError):
            s.refresh(tables=0)

    def test_k_larger_than_stream_prefix(self):
        """k exceeding the early population must not crash; lists grow
        into their width as points arrive."""
        s = StreamingAllKnn(4, 8)
        s.insert(np.random.default_rng(0).random((3, 4)))
        assert s.recall_against_exact() == 1.0
        s.insert(np.random.default_rng(1).random((20, 4)))
        assert s.neighbors().m == 23


class TestDeletion:
    def test_delete_clears_rows_and_purges_references(self, stream):
        s = StreamingAllKnn(8, 4, seed=1)
        s.insert(stream[:200])
        victims = np.array([3, 50, 199])
        purged = s.delete(victims)
        assert purged >= 0
        result = s.neighbors()
        # victims' own lists cleared
        assert (result.indices[victims] == -1).all()
        # no other list still references a victim
        assert not np.isin(result.indices, victims).any()
        assert s.n_alive == 197

    def test_refresh_refills_holes(self, stream):
        s = StreamingAllKnn(8, 4, seed=2)
        s.insert(stream[:150])
        s.delete(np.arange(10))
        s.refresh(tables=2)
        result = s.neighbors()
        alive = np.arange(10, 150)
        fill = (result.indices[alive] >= 0).mean()
        assert fill > 0.9
        # refreshed lists never point at the dead
        assert not np.isin(result.indices, np.arange(10)).any()

    def test_recall_evaluated_on_survivors(self, stream):
        s = StreamingAllKnn(8, 4, seed=3, max_bucket=4096)
        s.insert(stream[:120])
        s.delete(np.arange(0, 120, 3))
        s.refresh()
        # the whole live set fits one exact bucket -> recall 1.0
        assert s.recall_against_exact() == pytest.approx(1.0)

    def test_delete_validation(self, stream):
        s = StreamingAllKnn(8, 2)
        s.insert(stream[:10])
        with pytest.raises(ValidationError):
            s.delete(np.array([99]))
        assert s.delete(np.array([], dtype=int)) == 0

    def test_rows_stay_sorted_after_delete(self, stream):
        s = StreamingAllKnn(8, 4, seed=4)
        s.insert(stream[:100])
        s.delete(np.array([7]))
        result = s.neighbors()
        assert result.is_sorted()
