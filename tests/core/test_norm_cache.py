"""Tests for the identity-keyed squared-norm cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.norm_cache import (
    SquaredNormCache,
    cached_squared_norms,
    get_norm_cache,
)
from repro.core.norms import squared_norms
from repro.obs.metrics import get_registry


@pytest.fixture
def cache() -> SquaredNormCache:
    return SquaredNormCache(max_entries=3)


class TestSquaredNormCache:
    def test_hit_returns_same_object(self, cache, rng):
        X = rng.random((40, 7))
        first = cache.get(X)
        second = cache.get(X)
        assert first is second
        np.testing.assert_array_equal(first, squared_norms(X))

    def test_new_array_misses(self, cache, rng):
        X = rng.random((40, 7))
        cache.get(X)
        # same values, different object: identity key must not match
        Y = X.copy()
        got = cache.get(Y)
        np.testing.assert_array_equal(got, squared_norms(Y))
        assert len(cache) == 2

    def test_shape_change_invalidates(self, cache, rng):
        """A reshape that keeps the object id must not serve stale norms."""
        X = rng.random((6, 4))
        norms_before = cache.get(X)
        assert norms_before.shape == (6,)
        reshaped = X.reshape(8, 3)
        got = cache.get(reshaped)
        np.testing.assert_array_equal(got, squared_norms(reshaped))

    def test_lru_eviction(self, cache, rng):
        arrays = [rng.random((8, 3)) for _ in range(5)]
        for arr in arrays:
            cache.get(arr)
        assert len(cache) == 3

    def test_entry_dies_with_array(self, cache, rng):
        X = rng.random((8, 3))
        cache.get(X)
        assert len(cache) == 1
        del X
        import gc

        gc.collect()
        assert len(cache) == 0

    def test_clear(self, cache, rng):
        cache.get(rng.random((4, 2)))
        cache.clear()
        assert len(cache) == 0

    def test_inplace_mutation_recomputes(self, cache, rng):
        """The staleness hazard: same object, new contents, must miss."""
        X = rng.random((12, 5))
        stale = cache.get(X).copy()
        X[0] += 1.0  # first row is fingerprinted
        got = cache.get(X)
        np.testing.assert_array_equal(got, squared_norms(X))
        assert got[0] != stale[0]

    def test_inplace_mutation_of_last_row_recomputes(self, cache, rng):
        X = rng.random((12, 5))
        cache.get(X)
        X[-1] *= 3.0  # last row is fingerprinted too
        np.testing.assert_array_equal(cache.get(X), squared_norms(X))

    def test_stale_entries_counted(self, rng):
        from repro.obs.metrics import MetricsRegistry, set_registry

        old = set_registry(MetricsRegistry(enabled=True))
        try:
            local = SquaredNormCache()
            X = rng.random((10, 4))
            local.get(X)
            X[0] += 1.0
            local.get(X)
            snap = get_registry().snapshot()
            assert snap["counters"]["norms.cache_stale"] == 1
            assert snap["counters"]["norms.cache_misses"] == 2
        finally:
            set_registry(old)


class TestMetricsAndGlobal:
    def test_hits_and_misses_counted(self, rng):
        from repro.obs.metrics import MetricsRegistry, set_registry

        old = set_registry(MetricsRegistry(enabled=True))
        try:
            X = rng.random((30, 5))
            cached_squared_norms(X)
            cached_squared_norms(X)
            snap = get_registry().snapshot()
            assert snap["counters"]["norms.cache_misses"] == 1
            assert snap["counters"]["norms.cache_hits"] == 1
        finally:
            set_registry(old)
            get_norm_cache().clear()

    def test_global_cache_shared(self, rng):
        X = rng.random((10, 4))
        try:
            assert cached_squared_norms(X) is cached_squared_norms(X)
        finally:
            get_norm_cache().clear()
