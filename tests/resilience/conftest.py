"""Fixtures for the resilience suite.

Tests that assert *exact* failure/timing semantics must not inherit an
ambient ``$REPRO_FAULT_PLAN`` (the CI fault-matrix job sets one for the
whole process): the ``clean_env`` fixture strips it. Tests that pass an
explicit ``fault_plan`` argument are immune either way — an explicit
plan always overrides the environment.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs.metrics import disable_metrics, enable_metrics


@pytest.fixture
def clean_env(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
    monkeypatch.delenv("REPRO_BACKEND_TEST_CRASH_AT", raising=False)


@pytest.fixture
def metrics():
    registry = enable_metrics()
    try:
        yield registry
    finally:
        disable_metrics()


@pytest.fixture
def cloud():
    rng = np.random.default_rng(7)
    return rng.standard_normal((420, 12))
