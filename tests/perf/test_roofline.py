"""Unit tests for the roofline analysis."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.machine.params import IVY_BRIDGE
from repro.perf.roofline import (
    arithmetic_intensity,
    classify,
    ridge_intensity,
    roofline_bound,
)


class TestArithmeticIntensity:
    def test_grows_with_d(self):
        low = arithmetic_intensity(8192, 8192, 16, 16)
        high = arithmetic_intensity(8192, 8192, 256, 16)
        assert high > low

    def test_gsknn_higher_than_gemm(self):
        """The fusion claim in roofline terms: same flops, fewer bytes."""
        for d in (16, 64, 256):
            ours = arithmetic_intensity(8192, 8192, d, 16, "var1")
            theirs = arithmetic_intensity(8192, 8192, d, 16, "gemm")
            assert ours > theirs


class TestRoofline:
    def test_bound_capped_at_peak(self):
        assert roofline_bound(1e9) == pytest.approx(IVY_BRIDGE.peak_gflops)

    def test_bound_linear_below_ridge(self):
        ridge = ridge_intensity()
        low = roofline_bound(ridge / 4)
        assert low == pytest.approx(IVY_BRIDGE.peak_gflops / 4)

    def test_invalid_intensity(self):
        with pytest.raises(ValidationError):
            roofline_bound(0.0)

    def test_ridge_positive(self):
        assert ridge_intensity() > 0


class TestClassification:
    def test_gemm_memory_bound_at_low_d(self):
        """§2.1: 'when d is small ... using GEMM for the kNN can be
        suboptimal' — because it is under the bandwidth roof."""
        assert classify(8192, 8192, 16, 16, "gemm") == "memory-bound"

    def test_kernels_compute_bound_at_high_d(self):
        assert classify(8192, 8192, 1024, 16, "var1") == "compute-bound"
        assert classify(8192, 8192, 1024, 16, "gemm") == "compute-bound"

    def test_gsknn_escapes_memory_bound_earlier(self):
        """There is a d band where GSKNN is compute-bound while the GEMM
        approach is still memory-bound — the regime of its biggest wins."""
        crossover_band = [
            d
            for d in (8, 16, 32, 64, 128, 256)
            if classify(8192, 8192, d, 16, "var1") == "compute-bound"
            and classify(8192, 8192, d, 16, "gemm") == "memory-bound"
        ]
        assert crossover_band, "expected a d band where only GSKNN is compute-bound"
