"""Unit tests for the variant enumeration."""

from __future__ import annotations

import pytest

from repro.core.variants import VARIANT_INFO, Variant, resolve_variant
from repro.errors import ValidationError


def test_all_six_variants_documented():
    assert set(VARIANT_INFO) == set(Variant)
    for info in VARIANT_INFO.values():
        assert info.notes
        assert info.selection_scope


def test_viability_flags_match_paper():
    """§2.3: Var#1, Var#5, Var#6 viable; Var#2/#3 lose; Var#4 impossible."""
    assert VARIANT_INFO[Variant.VAR1].viable
    assert VARIANT_INFO[Variant.VAR5].viable
    assert VARIANT_INFO[Variant.VAR6].viable
    assert not VARIANT_INFO[Variant.VAR2].viable
    assert not VARIANT_INFO[Variant.VAR3].viable
    assert not VARIANT_INFO[Variant.VAR4].viable


@pytest.mark.parametrize(
    "spec,expected",
    [
        (1, Variant.VAR1),
        ("var6", Variant.VAR6),
        ("VAR3", Variant.VAR3),
        ("#2", Variant.VAR2),
        (Variant.VAR5, Variant.VAR5),
        ("5", Variant.VAR5),
    ],
)
def test_resolve(spec, expected):
    assert resolve_variant(spec) is expected


@pytest.mark.parametrize("spec", [0, 7, -1, "varx", "seven"])
def test_resolve_rejects(spec):
    with pytest.raises(ValidationError):
        resolve_variant(spec)
