"""Multi-process sharding: scatter/gather routing vs one fused solve.

The shard router (:mod:`repro.shard`, docs/DISTRIBUTED.md) partitions
the reference table across long-lived worker processes at GEMM-panel
granularity and merges per-shard top-k partials. Its contract is
*bit-identicality*: the merged result equals the single-process fused
solve exactly, which this bench asserts before timing anything.

What is measured, all in one run:

* **cold** — the first sharded solve after a membership change (the
  epoch bump dropped every worker's packed plan, so each shard re-packs
  its panels);
* **warm** — the same solve repeated against the now-warm per-shard
  plans (pack amortized away, scatter/gather and merge still paid);
* **single** — the plain in-process fused kernel over the same
  membership, for scale.

The gated metric is ``shard_warm_plan_speedup`` (cold / warm): the
per-shard plan cache must keep amortizing packing across batches, the
same claim ``BENCH_amortized_queries`` gates for the in-process plan
layer, here proven through real processes, shared-memory re-export,
and the merge path. Raw wall-clock numbers are recorded under
polarity-neutral names — on a 1-core CI host the process transport's
fan-out pays pickling and context-switch costs that say nothing about
the multi-core regime the router targets, so sharded-vs-single is
reported, not gated.

Results land in ``results/BENCH_sharding.json``; the CI ``shard-smoke``
job regenerates them and gates against the committed baseline via
``compare_runs.py``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.gsknn import gsknn
from repro.core.norms import squared_norms
from repro.shard import ShardedAllKnn

from .conftest import best_time, run_report, uniform_problem

N_REFS = 6144
D = 16
K = 10
M_QUERIES = 512
N_SHARDS = 3
BLOCK_M = 256
BLOCK_N = 512  # panel width: 12 panels -> 4 per shard
SEED = 23


def _bit_identical(a, b) -> bool:
    return bool(
        np.array_equal(a.indices, b.indices)
        and np.array_equal(a.distances, b.distances)
    )


def _run(report_factory) -> None:
    rep = report_factory(
        "sharding",
        f"sharded scatter/gather  n={N_REFS} d={D} k={K} "
        f"m={M_QUERIES} shards={N_SHARDS} panel={BLOCK_N}",
    )
    rep.problem(
        n=N_REFS,
        d=D,
        k=K,
        m=M_QUERIES,
        shards=N_SHARDS,
        panel_width=BLOCK_N,
    )
    X, q_idx, _ = uniform_problem(M_QUERIES, N_REFS, D, seed=SEED)
    q_idx = q_idx[:M_QUERIES]

    with ShardedAllKnn(
        X,
        N_SHARDS,
        transport="process",
        block_m=BLOCK_M,
        block_n=BLOCK_N,
    ) as router:
        # the contract first: merged == single-process fused, bitwise
        got = router.solve(q_idx, K)
        want = router.solve_reference(q_idx, K)
        assert _bit_identical(got, want), "sharded result diverged"

        # cold: a membership change invalidates every shard's plan;
        # the next solve re-packs panels inside each worker
        router.insert(X[:1])
        t0 = time.perf_counter()
        router.solve(q_idx, K)
        cold = time.perf_counter() - t0

        warm = best_time(lambda: router.solve(q_idx, K), repeats=3)
        sizes = router.stats()["shard_sizes"]

    # same membership as the router after the insert: one appended row
    Xg = np.ascontiguousarray(np.vstack([X, X[:1]]))
    X2 = squared_norms(Xg)
    single = best_time(
        lambda: gsknn(
            Xg,
            q_idx,
            np.arange(Xg.shape[0]),
            K,
            X2=X2,
            block_m=BLOCK_M,
            block_n=BLOCK_N,
        ),
        repeats=3,
    )

    speedup = cold / warm
    rep.metric("shard_warm_plan_speedup", speedup)
    rep.metric("sharded_cold_sec", cold)
    rep.metric("sharded_warm_sec", warm)
    rep.metric("single_process_sec", single)
    rep.metric("process_overhead_ratio", warm / single)
    rep.data_row(
        shard_sizes=sizes,
        bit_identical=True,
        transport="process",
    )
    rep.row(f"{'bit-identical':24s} True")
    rep.row(f"{'cold (plans dropped)':24s} {cold * 1e3:8.2f} ms")
    rep.row(f"{'warm (plans cached)':24s} {warm * 1e3:8.2f} ms")
    rep.row(f"{'single-process fused':24s} {single * 1e3:8.2f} ms")
    rep.row(f"{'warm-plan speedup':24s} {speedup:8.2f}x   (gated)")
    rep.row(f"{'overhead vs single':24s} {warm / single:8.2f}x   (neutral)")


def test_sharding_report(benchmark, report):
    run_report(benchmark, lambda: _run(report))
