"""Unified metrics registry: counters, gauges, log-bucket histograms.

Before this module the repo's instrumentation was fragmented — flop and
memory tallies in :class:`~repro.perf.counters.KernelCounters`, phase
wall-clock in :class:`~repro.perf.timer.PhaseTimer`, selection work in
:class:`~repro.select.counters.SelectionStats`, schedule balance inside
:class:`~repro.parallel.scheduler.Schedule` — each with its own shape.
:class:`MetricsRegistry` gives them one sink and one export:
``registry.snapshot()`` returns a plain nested dict every consumer (the
CLI ``stats`` command, the benchmark telemetry records, tests) reads the
same way.

Collection is **opt-in**: the process-global registry starts disabled
and instrumented code guards with ``if registry.enabled`` so the tier-1
hot paths pay one attribute read when observability is off.

:class:`Histogram` uses *fixed log-scale buckets* (geometric bucket
edges) because every quantity here — span durations, kernel seconds,
message bytes — spans orders of magnitude; linear buckets would waste
resolution at one end.

**Labels**: every accessor takes an optional ``labels=`` dict; labeled
series are stored under a rendered key ``name{k="v",...}`` (sorted
keys), which round-trips through :meth:`MetricsRegistry.snapshot` and
the Prometheus exporter without a separate label store.

**Thread-safety guarantee**: each metric guards its mutations with a
per-metric lock, the registry guards get-or-create with its own lock,
and every ``snapshot()`` reads under the same locks — so a snapshot
taken while backend worker threads are incrementing is *internally
consistent per metric* (a histogram's ``count`` always equals the sum
of its buckets) and never torn. Cross-metric consistency is not
promised: a snapshot may see counter A after an event but counter B
before it. ``tests/obs/test_metrics_concurrency.py`` hammers this.

Worker processes cannot share a registry; they record into a private
one and ship ``registry.drain()`` (a plain snapshot dict) back with
their results, which the parent folds in via
:meth:`MetricsRegistry.merge_snapshot`.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Any, Iterable

from ..errors import ValidationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "enable_metrics",
    "disable_metrics",
    "render_key",
    "split_key",
]


def render_key(name: str, labels: dict[str, Any] | None = None) -> str:
    """Series key for a (name, labels) pair: ``name{k="v",...}``.

    Sorted label keys make the rendering canonical, so the same label
    set always maps to the same series.
    """
    if not labels:
        return name
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{inner}}}"


def split_key(key: str) -> tuple[str, dict[str, str]]:
    """Invert :func:`render_key`: ``'a{b="c"}'`` -> ``('a', {'b': 'c'})``."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, body = key.partition("{")
    labels: dict[str, str] = {}
    for part in body[:-1].split(","):
        if not part:
            continue
        k, _, v = part.partition("=")
        labels[k] = v.strip('"')
    return name, labels


class Counter:
    """Monotonically increasing tally (events, flops, bytes).

    ``inc`` takes a per-metric lock: ``value += amount`` is three
    bytecodes and loses updates under preemption without it.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValidationError(
                f"counter {self.name!r}: increment must be >= 0, got {amount}"
            )
        with self._lock:
            self.value += amount

    def snapshot(self) -> int | float:
        with self._lock:
            return self.value

    def drain(self) -> int | float:
        """Atomic read-and-reset: a racing ``inc`` lands either in the
        returned value or in the next drain, never nowhere."""
        with self._lock:
            value = self.value
            self.value = 0
            return value


class Gauge:
    """Last-write-wins value (imbalance ratio, queue depth, block size)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def snapshot(self) -> float:
        with self._lock:
            return self.value


class Histogram:
    """Fixed log-scale-bucket histogram of a positive-ish quantity.

    Bucket upper edges are ``start * factor**i`` for ``i in [0, count)``
    plus a final ``+inf`` overflow bucket; observations at or below an
    edge land in that bucket (``le`` semantics, like Prometheus).
    Defaults cover 1 microsecond to ~18 minutes at 2x resolution —
    suitable for span durations; pass ``start``/``factor``/``count`` for
    byte counts or operation tallies.
    """

    __slots__ = (
        "name", "edges", "bucket_counts", "count", "total", "_min", "_max",
        "_lock",
    )

    def __init__(
        self,
        name: str,
        *,
        start: float = 1e-6,
        factor: float = 2.0,
        count: int = 30,
    ) -> None:
        if start <= 0:
            raise ValidationError(f"histogram {name!r}: start must be > 0")
        if factor <= 1.0:
            raise ValidationError(f"histogram {name!r}: factor must be > 1")
        if count < 1:
            raise ValidationError(f"histogram {name!r}: need >= 1 bucket")
        self.name = name
        self.edges = [start * factor**i for i in range(count)]
        self.bucket_counts = [0] * (count + 1)  # final slot = overflow
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.bucket_counts[bisect_left(self.edges, value)] += 1
            self.count += 1
            self.total += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate q-quantile: the upper edge of the covering bucket."""
        if not 0.0 <= q <= 1.0:
            raise ValidationError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self.count == 0:
                return 0.0
            target = q * self.count
            seen = 0
            for i, n in enumerate(self.bucket_counts):
                seen += n
                if seen >= target and n:
                    return self.edges[i] if i < len(self.edges) else math.inf
            return math.inf

    def snapshot(self) -> dict[str, Any]:
        # Read under the lock so count/sum/buckets are mutually
        # consistent even while worker threads are observing.
        with self._lock:
            count = self.count
            total = self.total
            return {
                "count": count,
                "sum": total,
                "mean": total / count if count else 0.0,
                "min": self._min if count else 0.0,
                "max": self._max if count else 0.0,
                "edges": list(self.edges),
                "buckets": list(self.bucket_counts),
            }

    def drain(self) -> dict[str, Any]:
        """Atomic snapshot-and-reset (see :meth:`Counter.drain`)."""
        with self._lock:
            count = self.count
            total = self.total
            snap = {
                "count": count,
                "sum": total,
                "mean": total / count if count else 0.0,
                "min": self._min if count else 0.0,
                "max": self._max if count else 0.0,
                "edges": list(self.edges),
                "buckets": list(self.bucket_counts),
            }
            self.bucket_counts = [0] * len(self.bucket_counts)
            self.count = 0
            self.total = 0.0
            self._min = math.inf
            self._max = -math.inf
            return snap

    def merge_snapshot(self, snap: dict[str, Any]) -> "Histogram":
        """Fold a :meth:`snapshot` dict in (the cross-process merge path)."""
        if list(snap["edges"]) != self.edges:
            raise ValidationError(
                f"histogram {self.name!r}: cannot merge differing bucket edges"
            )
        with self._lock:
            for i, n in enumerate(snap["buckets"]):
                self.bucket_counts[i] += n
            if snap["count"]:
                self.count += snap["count"]
                self.total += snap["sum"]
                self._min = min(self._min, snap["min"])
                self._max = max(self._max, snap["max"])
        return self

    def merge(self, other: "Histogram") -> "Histogram":
        if self.edges != other.edges:
            raise ValidationError(
                f"histogram {self.name!r}: cannot merge differing bucket edges"
            )
        with self._lock:
            for i, n in enumerate(other.bucket_counts):
                self.bucket_counts[i] += n
            self.count += other.count
            self.total += other.total
            self._min = min(self._min, other._min)
            self._max = max(self._max, other._max)
        return self


class MetricsRegistry:
    """Thread-safe get-or-create store of named metrics.

    ``enabled`` is the collection gate instrumented code checks; the
    registry itself always works (tests and the CLI create private
    enabled registries freely).
    """

    def __init__(self, *, enabled: bool = False) -> None:
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- get-or-create ----------------------------------------------------

    def counter(
        self, name: str, labels: dict[str, Any] | None = None
    ) -> Counter:
        key = render_key(name, labels)
        with self._lock:
            metric = self._counters.get(key)
            if metric is None:
                metric = self._counters[key] = Counter(key)
            return metric

    def gauge(self, name: str, labels: dict[str, Any] | None = None) -> Gauge:
        key = render_key(name, labels)
        with self._lock:
            metric = self._gauges.get(key)
            if metric is None:
                metric = self._gauges[key] = Gauge(key)
            return metric

    def histogram(
        self, name: str, labels: dict[str, Any] | None = None, **kwargs: Any
    ) -> Histogram:
        key = render_key(name, labels)
        with self._lock:
            metric = self._histograms.get(key)
            if metric is None:
                metric = self._histograms[key] = Histogram(key, **kwargs)
            return metric

    # -- bulk operations --------------------------------------------------

    def inc(
        self,
        name: str,
        amount: int | float = 1,
        labels: dict[str, Any] | None = None,
    ) -> None:
        self.counter(name, labels).inc(amount)

    def set(
        self, name: str, value: float, labels: dict[str, Any] | None = None
    ) -> None:
        self.gauge(name, labels).set(value)

    def observe(
        self,
        name: str,
        value: float,
        labels: dict[str, Any] | None = None,
        **kwargs: Any,
    ) -> None:
        self.histogram(name, labels, **kwargs).observe(value)

    def inc_many(self, items: Iterable[tuple[str, int | float]]) -> None:
        for name, amount in items:
            self.counter(name).inc(amount)

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict view of everything: the one export every consumer reads."""
        with self._lock:
            counters = {k: c.snapshot() for k, c in sorted(self._counters.items())}
            gauges = {k: g.snapshot() for k, g in sorted(self._gauges.items())}
            histograms = {
                k: h.snapshot() for k, h in sorted(self._histograms.items())
            }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry in (counters add, gauges last-write,
        histograms bucket-wise) — per-thread registries join here."""
        with other._lock:
            counters = list(other._counters.items())
            gauges = list(other._gauges.items())
            histograms = list(other._histograms.items())
        for name, c in counters:
            self.counter(name).inc(c.value)
        for name, g in gauges:
            self.gauge(name).set(g.value)
        for name, h in histograms:
            mine = self.histogram(name)
            if mine.count == 0 and mine.edges != h.edges:
                # adopt the incoming layout when ours is still empty
                with self._lock:
                    clone = Histogram(name)
                    clone.edges = list(h.edges)
                    clone.bucket_counts = [0] * len(h.bucket_counts)
                    self._histograms[name] = clone
                    mine = clone
            mine.merge(h)
        return self

    def merge_snapshot(self, snap: dict[str, Any] | None) -> "MetricsRegistry":
        """Fold a plain :meth:`snapshot` dict in — the cross-process path.

        Process workers cannot ship live metric objects, so they ship
        the snapshot dict (via :meth:`drain`) and the parent replays it
        here: counters add, gauges last-write, histograms bucket-wise.
        Keys pass through verbatim, so labeled series stay labeled.
        """
        if not snap:
            return self
        for key, value in snap.get("counters", {}).items():
            self.counter(key).inc(value)
        for key, value in snap.get("gauges", {}).items():
            self.gauge(key).set(value)
        for key, h_snap in snap.get("histograms", {}).items():
            mine = self.histogram(key)
            if mine.count == 0 and mine.edges != list(h_snap["edges"]):
                with self._lock:
                    clone = Histogram(key)
                    clone.edges = list(h_snap["edges"])
                    clone.bucket_counts = [0] * len(h_snap["buckets"])
                    self._histograms[key] = clone
                    mine = clone
            mine.merge_snapshot(h_snap)
        return self

    def drain(self) -> dict[str, Any]:
        """Snapshot-and-reset — what a worker ships after each chunk.

        Metric objects stay registered and reset *in place* under their
        own locks, so a handle another thread obtained before the drain
        keeps working: its update lands in the next shipment instead of
        on an orphaned object. Counters at zero and empty histograms are
        omitted (nothing to ship); gauges report their current value and
        are not reset (last-write-wins has no meaningful zero).
        """
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
        out_counters: dict[str, int | float] = {}
        for key, c in counters:
            value = c.drain()
            if value:
                out_counters[key] = value
        out_histograms: dict[str, Any] = {}
        for key, h in histograms:
            snap = h.drain()
            if snap["count"]:
                out_histograms[key] = snap
        return {
            "counters": out_counters,
            "gauges": {key: g.snapshot() for key, g in gauges},
            "histograms": out_histograms,
        }

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: Process-global registry the instrumented kernels report to (opt-in).
_GLOBAL_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _GLOBAL_REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the global registry (test isolation); returns the old one."""
    global _GLOBAL_REGISTRY
    old, _GLOBAL_REGISTRY = _GLOBAL_REGISTRY, registry
    return old


def enable_metrics() -> MetricsRegistry:
    """Enable (and clear) the global registry; returns it."""
    registry = get_registry()
    registry.clear()
    registry.enabled = True
    return registry


def disable_metrics() -> MetricsRegistry:
    registry = get_registry()
    registry.enabled = False
    return registry
