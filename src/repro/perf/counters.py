"""Flop and memory-traffic counters for kernel instrumentation."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["KernelCounters"]


@dataclass
class KernelCounters:
    """Aggregate work counters one kernel execution accumulates.

    ``flops`` counts floating-point operations actually scheduled
    (rank-d updates plus the 3 flops/entry of the norm accumulation);
    ``slow_reads``/``slow_writes`` count doubles moved to/from the slow
    memory tier as the kernel models it; ``heap_updates`` counts accepted
    neighbor insertions; ``discarded`` counts distances rejected by the
    root filter without being stored.
    """

    flops: int = 0
    slow_reads: int = 0
    slow_writes: int = 0
    heap_updates: int = 0
    discarded: int = 0

    def merge(self, other: "KernelCounters") -> "KernelCounters":
        self.flops += other.flops
        self.slow_reads += other.slow_reads
        self.slow_writes += other.slow_writes
        self.heap_updates += other.heap_updates
        self.discarded += other.discarded
        return self

    def __add__(self, other: object) -> "KernelCounters":
        if not isinstance(other, KernelCounters):
            return NotImplemented
        return KernelCounters(
            flops=self.flops + other.flops,
            slow_reads=self.slow_reads + other.slow_reads,
            slow_writes=self.slow_writes + other.slow_writes,
            heap_updates=self.heap_updates + other.heap_updates,
            discarded=self.discarded + other.discarded,
        )

    def __radd__(self, other: object) -> "KernelCounters":
        # sum() starts from 0 — absorb it so sum(counters) just works.
        if other == 0:
            return KernelCounters(
                self.flops,
                self.slow_reads,
                self.slow_writes,
                self.heap_updates,
                self.discarded,
            )
        return self.__add__(other)  # type: ignore[arg-type]

    @property
    def slow_doubles(self) -> int:
        return self.slow_reads + self.slow_writes

    def as_dict(self) -> dict[str, int]:
        """Flat dict view (telemetry records embed this)."""
        return {
            "flops": self.flops,
            "slow_reads": self.slow_reads,
            "slow_writes": self.slow_writes,
            "heap_updates": self.heap_updates,
            "discarded": self.discarded,
        }
