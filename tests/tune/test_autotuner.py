"""Tests for the guided autotuner and the gsknn(blocking=...) hook."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gsknn import gsknn
from repro.errors import ValidationError
from repro.tune import (
    BUDGETS,
    Autotuner,
    TuneBudget,
    TunedConfig,
    load_tuned_config,
    save_tuned_config,
)

#: A deliberately tiny budget so the full three-stage search runs in
#: well under a second inside the test suite.
TINY = TuneBudget(
    name="tiny",
    m=96, n=96, d=8, k=4,
    repeats=1,
    block_candidates=(64, 128),
    p_max=2,
    chunk_multipliers=(1,),
    switch_probes=(4, 16),
)


class TestAutotuner:
    def test_unknown_budget_rejected(self):
        with pytest.raises(ValidationError):
            Autotuner("galactic")

    def test_builtin_budgets(self):
        assert set(BUDGETS) == {"small", "medium", "large"}

    def test_run_produces_valid_config(self, tmp_path):
        report = Autotuner(TINY).run(
            persist=True, cache_path=tmp_path / "t.json"
        )
        cfg = report.config
        assert cfg.block_m in TINY.block_candidates
        assert cfg.block_n in TINY.block_candidates
        assert 1 <= cfg.p <= 2
        assert cfg.backend in ("serial", "threads", "processes")
        assert cfg.switch_k >= 1
        # every stage measured at least one candidate
        stages = {c["stage"] for c in report.candidates}
        assert stages == {"blocking", "execution", "switch"}
        assert report.seconds > 0
        # and the winner was persisted for blocking="tuned" to find
        assert load_tuned_config(tmp_path / "t.json") == cfg

    def test_run_without_persist(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path / "t.json"))
        Autotuner(TINY).run(persist=False)
        assert not (tmp_path / "t.json").exists()


class TestBlockingTuned:
    @pytest.fixture
    def cloud(self):
        return np.random.default_rng(5).random((120, 9))

    def test_tuned_blocking_used_and_results_correct(
        self, cloud, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path / "t.json"))
        save_tuned_config(TunedConfig(block_m=64, block_n=64, switch_k=8))
        q = np.arange(40)
        r = np.arange(120)
        want = gsknn(cloud, q, r, 6)
        got = gsknn(cloud, q, r, 6, blocking="tuned")
        np.testing.assert_allclose(want.distances, got.distances, atol=1e-12)
        np.testing.assert_array_equal(want.indices, got.indices)

    def test_missing_cache_falls_back_silently(
        self, cloud, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path / "absent.json"))
        q = np.arange(40)
        r = np.arange(120)
        want = gsknn(cloud, q, r, 6)
        got = gsknn(cloud, q, r, 6, blocking="tuned")
        np.testing.assert_array_equal(want.distances, got.distances)
        np.testing.assert_array_equal(want.indices, got.indices)

    def test_explicit_config_object(self, cloud):
        cfg = TunedConfig(block_m=32, block_n=32, switch_k=4)
        want = gsknn(cloud, np.arange(30), np.arange(120), 5)
        got = gsknn(cloud, np.arange(30), np.arange(120), 5, blocking=cfg)
        np.testing.assert_array_equal(want.indices, got.indices)

    def test_bad_blocking_rejected(self, cloud):
        with pytest.raises(ValidationError):
            gsknn(cloud, np.arange(10), np.arange(120), 3, blocking="fastest")

    def test_tuned_switch_k_changes_auto_variant(self, cloud, tmp_path,
                                                 monkeypatch):
        """The persisted switch_k drives variant="auto" selection."""
        from repro.core.gsknn import _resolve_auto_variant

        # with the default threshold, k=8 <= 256 -> Var#1
        assert _resolve_auto_variant("auto", 40, 120, 9, 8) == 1
        # a tuned switch_k below k flips the choice to Var#6
        assert _resolve_auto_variant("auto", 40, 120, 9, 8, switch_k=4) == 6
