"""``all_nearest_neighbors(method="graph"/"auto")`` wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.approx import OperatingPoint, PlannerCalibration, QueryPlanner
from repro.core.neighbors import recall
from repro.errors import ValidationError
from repro.trees.allknn import all_nearest_neighbors


@pytest.fixture(scope="module")
def planner():
    """Handcrafted calibration: the graph build meets 0.9 and is
    cheaper than exact at large n, while exact wins below the crossover
    the linear/quadratic scaling implies (model_ratio plays a very slow
    host, putting the crossover between the two test sizes)."""
    cal = PlannerCalibration(
        n=1024,
        d=10,
        k=10,
        m_queries=64,
        exact_query_seconds=2e-3,
        model_ratio=300.0,
        graph_build_seconds=0.2,
        points=[
            OperatingPoint(
                method="graph",
                workload="allknn",
                params={"stage": "build", "k_build": 16},
                recall=0.95,
                solve_seconds=0.2,
            )
        ],
    )
    return QueryPlanner(cal)


class TestGraphMethod:
    def test_graph_answers_with_build_lists(self, cloud, cloud_truth):
        report = all_nearest_neighbors(cloud, 10, method="graph", seed=0)
        assert report.method_used == "graph"
        assert report.result.indices.shape == (cloud.shape[0], 10)
        truth10 = type(cloud_truth)(
            cloud_truth.distances[:, :10], cloud_truth.indices[:, :10]
        )
        assert recall(report.result, truth10) >= 0.9

    def test_graph_kwargs_forwarded(self, cloud):
        report = all_nearest_neighbors(
            cloud, 4, method="graph", graph_kwargs={"rounds": 0}
        )
        assert report.iterations == 0

    def test_k_build_clamped_to_k(self, cloud):
        # k above the requested k_build must not break as_result
        report = all_nearest_neighbors(
            cloud, 12, method="graph", graph_kwargs={"k_build": 8}
        )
        assert report.result.indices.shape[1] == 12

    def test_recall_curve_from_build(self, cloud, cloud_truth):
        report = all_nearest_neighbors(
            cloud, 10, method="graph", truth=cloud_truth
        )
        assert report.recall_curve
        assert report.recall_curve[-1] >= 0.9

    def test_determinism(self, cloud):
        a = all_nearest_neighbors(cloud, 8, method="graph", seed=5)
        b = all_nearest_neighbors(cloud, 8, method="graph", seed=5)
        np.testing.assert_array_equal(a.result.indices, b.result.indices)
        np.testing.assert_array_equal(a.result.distances, b.result.distances)


class TestAutoMethod:
    def test_small_n_picks_exact(self, rng, planner):
        X = rng.random((128, 10))
        report = all_nearest_neighbors(
            X, 10, method="auto", recall_target=0.9, planner=planner
        )
        assert report.method_used == "exact"
        assert report.decision is not None
        assert not report.decision.fallback

    def test_large_n_picks_graph(self, cloud, planner):
        # 1200 points: graph build (linear scaling) undercuts exact
        # (quadratic scaling) with this calibration
        report = all_nearest_neighbors(
            cloud, 10, method="auto", recall_target=0.9, planner=planner
        )
        assert report.method_used == "graph"
        assert report.decision.method == "graph"
        assert report.decision.expected_recall >= 0.9

    def test_no_target_is_exact(self, rng, planner):
        X = rng.random((200, 10))
        report = all_nearest_neighbors(X, 5, method="auto", planner=planner)
        assert report.method_used == "exact"

    def test_no_calibration_fallback(self, rng, tmp_path, monkeypatch):
        monkeypatch.setenv(
            "REPRO_PLANNER_CACHE", str(tmp_path / "absent.json")
        )
        X = rng.random((200, 10))
        report = all_nearest_neighbors(
            X, 5, method="auto", recall_target=0.9
        )
        assert report.method_used == "exact"
        assert report.decision.fallback
        # exact-by-fallback must actually be exact
        from repro.trees.allknn import exact_all_knn

        truth = exact_all_knn(X, 5)
        np.testing.assert_array_equal(report.result.indices, truth.indices)

    def test_exact_decision_result_is_exact(self, rng, planner):
        X = rng.random((128, 10))
        from repro.trees.allknn import exact_all_knn

        report = all_nearest_neighbors(
            X, 10, method="auto", recall_target=0.9, planner=planner
        )
        truth = exact_all_knn(X, 10)
        np.testing.assert_array_equal(report.result.indices, truth.indices)


class TestValidation:
    def test_unknown_method_still_rejected(self, rng):
        with pytest.raises(ValidationError):
            all_nearest_neighbors(rng.random((64, 4)), 4, method="nope")
