"""Property tests: merging disjoint partial top-k lists is lossless.

:func:`repro.select.mergeselect.merge_partial_topk` is the gather step
of the scatter/gather shard router: each shard returns its partition's
top ``k_part`` and the router must recover exactly the global top-k.
These tests generate random partitions of a global candidate pool —
ragged per-shard sizes, duplicate distances, shards that own nothing —
and assert the merge equals the ground truth computed on the unsplit
pool, and equals folding the scalar two-finger
:func:`~repro.select.mergeselect.merge_sorted_lists` over the partials.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import ValidationError
from repro.select import merge_partial_topk
from repro.select.mergeselect import merge_sorted_lists

# a coarse grid of distances forces plenty of exact duplicates, the
# case where the (distance, id) tie policy actually matters
tied_floats = st.integers(min_value=0, max_value=12).map(lambda v: v / 4.0)
unique_floats = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def partitioned_pool(
    draw, elements, max_rows=3, max_pool=48, max_shards=5, unique=False
):
    """A random (m, n) candidate pool cut column-wise into R shards.

    Returns the global pool plus each shard's padded partial top-k,
    concatenated the way the router's gather step lays them out.
    """
    m = draw(st.integers(min_value=1, max_value=max_rows))
    n = draw(st.integers(min_value=1, max_value=max_pool))
    R = draw(st.integers(min_value=1, max_value=max_shards))
    k = draw(st.integers(min_value=1, max_value=n))
    dist = draw(arrays(np.float64, shape=(m, n), elements=elements, unique=unique))
    owner = draw(
        arrays(np.int64, shape=n, elements=st.integers(0, R - 1))
    )
    # per-shard partial top-k: sorted by (distance, id), padded to a
    # common width with +inf / -1 — ragged partitions exercise the pads
    width = min(k, n)
    parts_d, parts_i = [], []
    for r in range(R):
        ids = np.flatnonzero(owner == r)
        pd = np.full((m, width), np.inf)
        pi = np.full((m, width), -1, dtype=np.intp)
        if ids.size:
            local = dist[:, ids]
            order = np.lexsort(
                (np.broadcast_to(ids, local.shape), local), axis=1
            )[:, :width]
            take = order.shape[1]
            pd[:, :take] = np.take_along_axis(local, order, axis=1)
            pi[:, :take] = ids[order]
        parts_d.append(pd)
        parts_i.append(pi)
    return {
        "dist": dist,
        "k": k,
        "cat_d": np.concatenate(parts_d, axis=1),
        "cat_i": np.concatenate(parts_i, axis=1),
        "n_shards": R,
        "width": width,
    }


def global_topk(dist: np.ndarray, k: int):
    """Ground truth on the unsplit pool: (distance, id) lexsort."""
    m, n = dist.shape
    ids = np.broadcast_to(np.arange(n), (m, n))
    order = np.lexsort((ids, dist), axis=1)[:, :k]
    rows = np.arange(m)[:, None]
    return dist[rows, order], np.take_along_axis(np.asarray(ids), order, 1)


@given(partitioned_pool(elements=unique_floats))
@settings(max_examples=120, deadline=None)
def test_disjoint_partials_recover_global_topk(case):
    got_d, got_i = merge_partial_topk(case["cat_d"], case["cat_i"], case["k"])
    want_d, want_i = global_topk(case["dist"], case["k"])
    np.testing.assert_array_equal(got_d, want_d)
    np.testing.assert_array_equal(got_i, want_i)


@given(partitioned_pool(elements=tied_floats))
@settings(max_examples=120, deadline=None)
def test_duplicate_distances_break_ties_by_id(case):
    """With heavy distance ties the merge must still be deterministic:
    equal distances order by ascending reference id, independent of
    which shard owned which id."""
    got_d, got_i = merge_partial_topk(case["cat_d"], case["cat_i"], case["k"])
    want_d, want_i = global_topk(case["dist"], case["k"])
    np.testing.assert_array_equal(got_d, want_d)
    np.testing.assert_array_equal(got_i, want_i)
    # ascending distance, and ascending id within every distance tie
    assert (np.diff(got_d, axis=1) >= 0).all()
    same = got_d[:, 1:] == got_d[:, :-1]
    assert (got_i[:, 1:][same] > got_i[:, :-1][same]).all()


@given(partitioned_pool(elements=unique_floats, unique=True))
@settings(max_examples=80, deadline=None)
def test_matches_folded_merge_sorted_lists(case):
    """The vectorized lexsort merge is the batch twin of folding the
    scalar two-finger merge over the partials (tie-free distances: the
    scalar merge resolves ties by fold order, not id)."""
    got_d, got_i = merge_partial_topk(case["cat_d"], case["cat_i"], case["k"])
    k, width = case["k"], case["width"]
    for row in range(case["dist"].shape[0]):
        acc_v = np.empty(0)
        acc_i = np.empty(0, dtype=np.intp)
        for r in range(case["n_shards"]):
            seg_v = case["cat_d"][row, r * width : (r + 1) * width]
            seg_i = case["cat_i"][row, r * width : (r + 1) * width]
            real = seg_i >= 0
            acc_v, acc_i = merge_sorted_lists(
                acc_v, acc_i, seg_v[real], seg_i[real], k
            )
        np.testing.assert_array_equal(got_d[row, : acc_v.size], acc_v)
        np.testing.assert_array_equal(got_i[row, : acc_i.size], acc_i)
        # columns past the real candidates are padding
        np.testing.assert_array_equal(got_i[row, acc_i.size :], -1)
        assert np.isinf(got_d[row, acc_v.size :]).all()


class TestMergePartialTopkEdges:
    def test_all_partials_empty(self):
        d = np.full((2, 6), np.inf)
        i = np.full((2, 6), -1, dtype=np.intp)
        got_d, got_i = merge_partial_topk(d, i, 3)
        assert np.isinf(got_d).all()
        np.testing.assert_array_equal(got_i, -1)

    def test_fewer_real_candidates_than_k(self):
        d = np.array([[0.5, np.inf, np.inf, np.inf]])
        i = np.array([[7, -1, -1, -1]])
        got_d, got_i = merge_partial_topk(d, i, 3)
        np.testing.assert_array_equal(got_i, [[7, -1, -1]])
        np.testing.assert_array_equal(got_d[:, 1:], np.inf)

    def test_single_shard_identity(self):
        d = np.array([[0.1, 0.4, 0.9]])
        i = np.array([[3, 1, 2]])
        got_d, got_i = merge_partial_topk(d, i, 3)
        np.testing.assert_array_equal(got_d, d)
        np.testing.assert_array_equal(got_i, i)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            merge_partial_topk(np.zeros((2, 4)), np.zeros((2, 3)), 2)

    def test_1d_rejected(self):
        with pytest.raises(ValidationError):
            merge_partial_topk(np.zeros(4), np.zeros(4), 2)

    @pytest.mark.parametrize("k", [0, 7])
    def test_k_out_of_range(self, k):
        with pytest.raises(ValidationError):
            merge_partial_topk(np.zeros((1, 6)), np.zeros((1, 6)), k)
