"""Blocked fused candidate evaluation vs brute force."""

from __future__ import annotations

import numpy as np
import pytest

from repro.approx import candidate_distances, pairwise_sq_distances
from repro.errors import ValidationError


def _brute(X, Q, C):
    m, L = C.shape
    D = np.full((m, L), np.inf)
    for i in range(m):
        for j in range(L):
            c = C[i, j]
            if c >= 0:
                D[i, j] = float(((Q[i] - X[c]) ** 2).sum())
    return D


class TestCandidateDistances:
    def test_matches_brute_force(self, rng):
        X = rng.random((80, 7))
        Q = rng.random((13, 7))
        C = rng.integers(0, 80, size=(13, 9))
        D = candidate_distances(X, Q, C)
        np.testing.assert_allclose(D, _brute(X, Q, C), atol=1e-10)

    def test_negative_padding_is_inf(self, rng):
        X = rng.random((40, 5))
        Q = rng.random((6, 5))
        C = rng.integers(-1, 40, size=(6, 8))
        C[0, :] = -1  # a fully-empty row must not crash
        D = candidate_distances(X, Q, C)
        assert np.isinf(D[C < 0]).all()
        np.testing.assert_allclose(D, _brute(X, Q, C), atol=1e-10)

    def test_blocking_invariant(self, rng):
        """Tiny block sizes produce the identical matrix (same path)."""
        X = rng.random((64, 6))
        Q = rng.random((17, 6))
        C = rng.integers(0, 64, size=(17, 5))
        full = candidate_distances(X, Q, C)
        blocked = candidate_distances(X, Q, C, block=3)
        np.testing.assert_array_equal(full, blocked)

    def test_float64_in_float64_out(self, rng):
        X = rng.random((30, 4))
        Q = rng.random((5, 4))
        C = rng.integers(0, 30, size=(5, 3))
        assert candidate_distances(X, Q, C).dtype == np.float64

    def test_float32_hop_path(self, rng):
        """float32 panels (the beam-search hop layout) come back float32
        and match the float64 evaluation to single precision."""
        X = rng.random((50, 6)).astype(np.float32)
        Q = rng.random((9, 6)).astype(np.float32)
        C = rng.integers(0, 50, size=(9, 4))
        D32 = candidate_distances(X, Q, C)
        assert D32.dtype == np.float32
        D64 = candidate_distances(
            X.astype(np.float64), Q.astype(np.float64), C
        )
        np.testing.assert_allclose(D32, D64, rtol=1e-4, atol=1e-5)

    def test_precomputed_norms_identical(self, rng):
        from repro.core.norms import squared_norms

        X = rng.random((40, 5))
        Q = rng.random((7, 5))
        C = rng.integers(0, 40, size=(7, 6))
        a = candidate_distances(X, Q, C)
        b = candidate_distances(
            X, Q, C, X2=squared_norms(X), Q2=squared_norms(Q)
        )
        np.testing.assert_array_equal(a, b)

    def test_shape_validation(self, rng):
        X = rng.random((10, 3))
        with pytest.raises(ValidationError):
            candidate_distances(X, rng.random((4, 3)), np.zeros((5, 2), int))

    def test_empty_candidates(self, rng):
        X = rng.random((10, 3))
        Q = rng.random((4, 3))
        D = candidate_distances(X, Q, np.zeros((4, 0), dtype=np.intp))
        assert D.shape == (4, 0)


class TestPairwiseSqDistances:
    def test_matches_brute_force(self, rng):
        Q = rng.random((11, 6))
        R = rng.random((17, 6))
        D = pairwise_sq_distances(Q, R)
        expect = ((Q[:, None, :] - R[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(D, expect, atol=1e-10)

    def test_clamped_nonnegative(self, rng):
        Q = rng.random((30, 4))
        D = pairwise_sq_distances(Q, Q)
        assert (D >= 0).all()

    def test_width_mismatch(self, rng):
        with pytest.raises(ValidationError):
            pairwise_sq_distances(rng.random((3, 4)), rng.random((3, 5)))
