"""Scatter/gather router correctness on the in-process transport.

The local transport runs the exact worker code path (same task codec,
same per-shard plans) without process overhead, so these tests pin the
bit-identicality contract cheaply; ``test_process.py`` re-asserts the
headline cases over real worker processes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import BackendError, KernelTimeoutError, ValidationError
from repro.shard import ShardedAllKnn

BLOCKS = {"block_m": 64, "block_n": 64}  # 300 refs -> 5 panels


def make(table, n_shards, **kw):
    kw.setdefault("transport", "local")
    return ShardedAllKnn(table, n_shards, **BLOCKS, **kw)


def assert_bit_identical(got, want):
    np.testing.assert_array_equal(got.indices, want.indices)
    np.testing.assert_array_equal(got.distances, want.distances)


class TestBitIdenticality:
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 5])
    def test_solve_matches_reference(self, table, n_shards):
        with make(table, n_shards) as router:
            q = np.arange(0, 300, 7)
            got = router.solve(q, 10)
            want = router.solve_reference(q, 10)
        assert_bit_identical(got, want)

    @pytest.mark.parametrize("norm", ["l2", "l1", "linf"])
    def test_norms_pinned_across_shards(self, table, norm):
        with make(table, 3, norm=norm) as router:
            q = np.arange(40)
            assert_bit_identical(
                router.solve(q, 6), router.solve_reference(q, 6)
            )

    def test_solve_rows_matches_single_shard(self, table, rng):
        """One shard's partition is the whole table, so its rows solve
        IS the single-process fused solve; more shards must agree."""
        Q = rng.random((9, table.shape[1]))
        with make(table, 3) as many, make(table, 1) as one:
            assert_bit_identical(many.solve_rows(Q, 8), one.solve_rows(Q, 8))

    def test_k_exceeding_smallest_shard(self, table):
        """k larger than a shard's partition: the shard returns all it
        owns and the merge pads — still exact."""
        with make(table, 5) as router:  # smallest shard owns 44 ids
            q = np.arange(25)
            assert_bit_identical(
                router.solve(q, 60), router.solve_reference(q, 60)
            )

    def test_shards_exceeding_panels(self, table):
        """Empty shards are skipped entirely, not scattered to."""
        with make(table, 8) as router:  # only 5 panels exist
            q = np.arange(15)
            assert_bit_identical(
                router.solve(q, 5), router.solve_reference(q, 5)
            )


class TestChurn:
    def test_bit_identical_after_insert_and_delete(self, table, rng):
        with make(table, 3) as router:
            router.insert(rng.random((37, table.shape[1])))
            router.delete(np.arange(0, 120, 5))
            router.insert(rng.random((8, table.shape[1])))
            q = np.arange(0, router.map.n_total, 11)
            got = router.solve(q, 9)
            want = router.solve_reference(q, 9)
        assert_bit_identical(got, want)
        assert router.map.epoch == 3

    def test_deleted_ids_never_returned(self, table):
        dead = np.arange(0, 300, 3)
        with make(table, 3) as router:
            router.delete(dead)
            res = router.solve(np.arange(50), 12)
        assert not np.isin(res.indices, dead).any()

    def test_insert_returns_global_ids(self, table, rng):
        with make(table, 2) as router:
            ids = router.insert(rng.random((4, table.shape[1])))
        np.testing.assert_array_equal(ids, np.arange(300, 304))

    def test_insert_shape_checked(self, table):
        with make(table, 2) as router:
            with pytest.raises(ValidationError):
                router.insert(np.ones((3, table.shape[1] + 1)))


class TestLadder:
    def test_injected_crashes_recover_bit_identically(self, table):
        """crash=1.0 fails every worker attempt AND the threads rung;
        the serial rung is fault-free, so the solve must still land and
        still match the reference exactly."""
        from repro.resilience.retry import RetryPolicy

        with make(
            table,
            3,
            fault_plan="seed=3,crash=1.0",
            retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
        ) as router:
            q = np.arange(30)
            assert_bit_identical(
                router.solve(q, 7), router.solve_reference(q, 7)
            )
            # and again: recovery must not poison the next batch
            assert_bit_identical(
                router.solve(q, 7), router.solve_reference(q, 7)
            )

    def test_expired_deadline_raises(self, table):
        with make(table, 2) as router:
            with pytest.raises(KernelTimeoutError):
                router.solve(np.arange(10), 4, deadline=1e-9)

    def test_validation_errors_not_retried(self, table):
        with make(table, 2) as router:
            with pytest.raises(ValidationError):
                router.solve(np.arange(10), 0)
            with pytest.raises(ValidationError):
                router.solve(np.arange(10), router.n_refs + 1)
            with pytest.raises(ValidationError):
                router.solve_rows(np.ones((2, 99)), 3)


class TestLifecycle:
    def test_closed_router_rejects_solves(self, table):
        router = make(table, 2)
        router.close()
        with pytest.raises(BackendError):
            router.solve(np.arange(5), 3)

    def test_close_idempotent(self, table):
        router = make(table, 2)
        router.close()
        router.close()

    def test_stats_shape(self, table):
        with make(table, 3) as router:
            s = router.stats()
        assert s["n_shards"] == 3
        assert s["transport"] == "local"
        assert s["n_alive"] == 300
        assert sum(s["shard_sizes"]) == 300
        assert s["panel_width"] == 64

    def test_table_copied_and_readonly(self, table):
        with make(table, 2) as router:
            table[0, 0] = 123.0  # caller mutation must not leak in
            assert router.table[0, 0] != 123.0
            with pytest.raises(ValueError):
                router.table[0, 0] = 0.0

    def test_unknown_transport_rejected(self, table):
        with pytest.raises(ValidationError):
            ShardedAllKnn(table, 2, transport="carrier-pigeon")


class TestObservability:
    def test_solve_counts_batches(self, table):
        from repro.obs.metrics import disable_metrics, enable_metrics

        registry = enable_metrics()
        try:
            with make(table, 3) as router:
                router.solve(np.arange(10), 4)
                router.insert(np.ones((1, table.shape[1])))
            snap = registry.snapshot()
            assert snap["counters"]["shard.batches"] == 1
            assert snap["counters"]['shard.refreshes{op="insert"}'] == 1
        finally:
            disable_metrics()
