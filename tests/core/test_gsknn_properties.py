"""Property-based tests: GSKNN equals brute force for arbitrary shapes."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gsknn import gsknn, gsknn_exact_loops
from repro.core.neighbors import merge_neighbor_lists_fast, KnnResult
from repro.core.ref_kernel import ref_knn
from repro.config import BlockingParams

from ..conftest import brute_force_knn


@st.composite
def knn_problem(draw):
    n_points = draw(st.integers(min_value=2, max_value=60))
    d = draw(st.integers(min_value=1, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    X = rng.random((n_points, d))
    m = draw(st.integers(min_value=1, max_value=min(20, n_points)))
    n = draw(st.integers(min_value=1, max_value=n_points))
    q = rng.integers(0, n_points, m)
    r = rng.choice(n_points, size=n, replace=False)
    k = draw(st.integers(min_value=1, max_value=n))
    return X, q, r, k


@given(knn_problem(), st.integers(min_value=1, max_value=9),
       st.integers(min_value=1, max_value=17))
@settings(max_examples=60, deadline=None)
def test_gsknn_matches_brute_force_any_blocking(problem, block_m, block_n):
    X, q, r, k = problem
    res = gsknn(X, q, r, k, block_m=block_m, block_n=block_n)
    truth_d, _ = brute_force_knn(X, q, r, k)
    np.testing.assert_allclose(res.distances, truth_d, atol=1e-9)
    assert res.is_sorted()


@given(knn_problem(), st.sampled_from([1, 5, 6]))
@settings(max_examples=40, deadline=None)
def test_all_variants_agree(problem, variant):
    X, q, r, k = problem
    res = gsknn(X, q, r, k, variant=variant, block_m=4, block_n=7)
    truth_d, _ = brute_force_knn(X, q, r, k)
    np.testing.assert_allclose(res.distances, truth_d, atol=1e-9)


@given(knn_problem())
@settings(max_examples=30, deadline=None)
def test_ref_kernel_matches_brute_force(problem):
    X, q, r, k = problem
    res = ref_knn(X, q, r, k)
    truth_d, _ = brute_force_knn(X, q, r, k)
    np.testing.assert_allclose(res.distances, truth_d, atol=1e-9)


@given(
    knn_problem(),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=6),
)
@settings(max_examples=25, deadline=None)
def test_exact_loops_any_register_blocking(problem, m_r, n_r, d_c):
    X, q, r, k = problem
    blocking = BlockingParams(
        m_r=m_r, n_r=n_r, d_c=d_c, m_c=max(m_r * 2, 4), n_c=max(n_r * 2, 5)
    )
    res = gsknn_exact_loops(X, q, r, k, blocking=blocking)
    truth_d, _ = brute_force_knn(X, q, r, k)
    np.testing.assert_allclose(res.distances, truth_d, atol=1e-9)


@given(knn_problem(), st.sampled_from([1.0, 2.0, np.inf]))
@settings(max_examples=30, deadline=None)
def test_norms_match_brute_force(problem, p):
    X, q, r, k = problem
    res = gsknn(X, q, r, k, norm=p, block_m=5, block_n=6)
    truth_d, _ = brute_force_knn(X, q, r, k, p=p)
    np.testing.assert_allclose(res.distances, truth_d, atol=1e-9)


@given(knn_problem())
@settings(max_examples=30, deadline=None)
def test_split_reference_merge_equals_whole(problem):
    """min-k associativity: solving reference halves and merging equals
    solving the whole reference set (the invariant behind reference-side
    parallelism and the iterative solvers)."""
    X, q, r, k = problem
    if r.size < 2:
        return
    half = r.size // 2
    if half < 1:
        return
    whole = gsknn(X, q, r, k)

    def padded(sub):
        kk = min(k, sub.size)
        res = gsknn(X, q, sub, kk)
        if kk == k:
            return res
        pad = k - kk
        return KnnResult(
            np.pad(res.distances, ((0, 0), (0, pad)), constant_values=np.inf),
            np.pad(res.indices, ((0, 0), (0, pad)), constant_values=-1),
        )

    merged = merge_neighbor_lists_fast(padded(r[:half]), padded(r[half:]))
    np.testing.assert_allclose(merged.distances, whole.distances, atol=1e-9)


@given(knn_problem(), st.sampled_from([1, 2, 3, 5, 6]))
@settings(max_examples=25, deadline=None)
def test_exact_loops_all_placements_agree(problem, variant):
    """Every executable selection placement of Algorithm 2.2 computes the
    same answer — the paper's refactoring claim, property-tested."""
    X, q, r, k = problem
    res = gsknn_exact_loops(X, q, r, k, variant=variant)
    truth_d, _ = brute_force_knn(X, q, r, k)
    np.testing.assert_allclose(res.distances, truth_d, atol=1e-9)
