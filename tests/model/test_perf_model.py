"""Unit tests for the assembled performance model — including the paper's
qualitative predictions it must reproduce."""

from __future__ import annotations

import pytest

from repro.core.variants import Variant
from repro.errors import ValidationError
from repro.machine.params import IVY_BRIDGE
from repro.model import PerformanceModel


@pytest.fixture
def model():
    return PerformanceModel()


@pytest.fixture
def model_10core():
    return PerformanceModel(IVY_BRIDGE.scaled(10, clock_hz=3.10e9))


class TestPredict:
    def test_unknown_kernel(self, model):
        with pytest.raises(ValidationError):
            model.predict("var9", 10, 10, 4, 2)

    def test_gflops_below_peak(self, model):
        pred = model.predict("var1", 8192, 8192, 512, 16)
        assert 0 < pred.gflops <= IVY_BRIDGE.peak_gflops

    def test_high_d_approaches_peak(self, model):
        """For large d, small k, the kernel is compute bound: the model
        must predict >80% of peak (the paper's §4 claim)."""
        pred = model.predict("var1", 8192, 8192, 1024, 16)
        assert pred.gflops > 0.8 * IVY_BRIDGE.peak_gflops

    def test_low_d_memory_bound(self, model):
        """At low d the GEMM approach is memory bound: well below peak."""
        pred = model.predict("gemm", 8192, 8192, 16, 16)
        assert pred.gflops < 0.5 * IVY_BRIDGE.peak_gflops

    def test_gemm_always_slowest_of_l2_kernels(self, model):
        for d in (8, 64, 512):
            for k in (4, 64, 1024):
                gemm = model.predict_seconds("gemm", 4096, 4096, d, k)
                var1 = model.predict_seconds("var1", 4096, 4096, d, k)
                var6 = model.predict_seconds("var6", 4096, 4096, d, k)
                assert gemm >= min(var1, var6)

    def test_speedup_largest_at_low_d_small_k(self, model):
        """§4: 'up to 5x more efficient ... for d in [10, 100]' with small
        k — the ratio must peak in the low-d regime."""
        low = model.speedup_over_gemm("var1", 8192, 8192, 32, 16)
        high = model.speedup_over_gemm("var1", 8192, 8192, 1024, 16)
        assert low > high
        assert low > 1.5

    def test_efficiency_rises_with_d_within_a_depth_block(self, model):
        g = [
            model.predict("var1", 8192, 8192, d, 16).gflops
            for d in (8, 32, 128, 256)
        ]
        assert g == sorted(g)

    def test_efficiency_dips_at_depth_block_boundary(self, model):
        """Crossing d_c turns on the C_c re-read term — the paper's
        'performance will drop periodically every d_c stride'."""
        at_boundary = model.predict("var1", 8192, 8192, 256, 16).gflops
        just_past = model.predict("var1", 8192, 8192, 257, 16).gflops
        assert just_past < at_boundary

    def test_efficiency_falls_with_k(self, model):
        g = [
            model.predict("var1", 8192, 8192, 64, k).gflops
            for k in (4, 64, 512, 2048)
        ]
        assert g == sorted(g, reverse=True)

    def test_ten_core_faster_than_one(self, model, model_10core):
        one = model.predict_seconds("var1", 8192, 8192, 64, 16)
        ten = model_10core.predict_seconds("var1", 8192, 8192, 64, 16)
        assert ten < one

    def test_figure4_scale_sanity(self, model_10core):
        """Figure 4 (10 cores, k=16): Var#1 modeled efficiency approaches
        the 248 GFLOPS peak by d ~ 1000."""
        pred = model_10core.predict("var1", 8192, 8192, 1000, 16)
        assert pred.gflops > 200
        assert pred.gflops <= 248.1


class TestVariantChoice:
    def test_small_k_var1(self, model):
        assert model.select_variant(8192, 8192, 64, 4) is Variant.VAR1

    def test_huge_k_var6(self, model):
        assert model.select_variant(8192, 8192, 64, 4096) is Variant.VAR6

    def test_estimate_runtime_is_min_of_variants(self, model):
        m, n, d, k = 1024, 1024, 32, 8
        est = model.estimate_kernel_runtime(m, n, d, k)
        assert est == min(
            model.predict_seconds("var1", m, n, d, k),
            model.predict_seconds("var6", m, n, d, k),
        )


class TestEdgePenalty:
    def test_disabled_by_default(self):
        a = PerformanceModel().predict("var1", 1024, 1024, 300, 16)
        b = PerformanceModel(edge_penalty=0.0).predict("var1", 1024, 1024, 300, 16)
        assert a.seconds == b.seconds

    def test_sawtooth_shape(self):
        """Efficiency dips just past a d_c multiple and recovers at the
        next one — the Figure 6 'blue spikes' for Var#1."""
        model = PerformanceModel(edge_penalty=1.0)
        at_multiple = model.predict("var1", 8192, 8192, 512, 16).gflops
        just_past = model.predict("var1", 8192, 8192, 513, 16).gflops
        next_multiple = model.predict("var1", 8192, 8192, 768, 16).gflops
        assert just_past < at_multiple
        assert next_multiple > just_past

    def test_penalty_shrinks_as_remainder_fills(self):
        """'the smaller the remaining portion, the less degradation' —
        relative slowdown at remainder 8 must beat remainder 128."""
        base = PerformanceModel()
        pen = PerformanceModel(edge_penalty=1.0)

        def slowdown(d):
            return pen.predict_seconds("var1", 4096, 4096, d, 16) / \
                base.predict_seconds("var1", 4096, 4096, d, 16)

        assert slowdown(256 + 8) < slowdown(256 + 128)

    def test_negative_penalty_rejected(self):
        with pytest.raises(ValidationError):
            PerformanceModel(edge_penalty=-0.1)
