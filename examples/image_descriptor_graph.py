"""Nearest-neighbor graph over image-like descriptors (manifold learning).

The paper's motivating workload: image datasets whose descriptors live
in a moderate ambient dimension (here 64) but on a low-dimensional
manifold (here 10, the paper's Table 1 generator). The example:

1. generates the descriptor cloud;
2. builds the exact kNN graph as ground truth;
3. runs the randomized-KD-tree approximate all-NN solver with the GSKNN
   kernel, reporting the recall-vs-trees curve;
4. hands the graph to networkx and reports its connectivity — the kind
   of downstream use (spectral embeddings, label propagation) the graph
   exists for.

Run:  python examples/image_descriptor_graph.py
"""

from __future__ import annotations

import time

import networkx as nx
import numpy as np

from repro.core.neighbors import recall
from repro.data import embedded_gaussian
from repro.trees import all_nearest_neighbors, exact_all_knn


def build_graph(indices: np.ndarray, distances: np.ndarray) -> nx.Graph:
    """Symmetrized kNN graph with squared-distance edge weights."""
    graph = nx.Graph()
    n, k = indices.shape
    graph.add_nodes_from(range(n))
    for i in range(n):
        for j, w in zip(indices[i], distances[i]):
            if j >= 0 and j != i:
                graph.add_edge(i, int(j), weight=float(w))
    return graph


def main() -> None:
    n_points, ambient_dim, k = 4000, 64, 10
    dataset = embedded_gaussian(
        n_points, ambient_dim, intrinsic_dim=10, n_clusters=6, seed=1
    )
    print(
        f"descriptors: {n_points} points, ambient d={ambient_dim}, "
        f"intrinsic d={dataset.intrinsic_dim}"
    )

    t0 = time.perf_counter()
    truth = exact_all_knn(dataset.points, k)
    t_exact = time.perf_counter() - t0
    print(f"exact all-NN (brute force): {t_exact:.2f} s")

    t0 = time.perf_counter()
    report = all_nearest_neighbors(
        dataset.points,
        k,
        method="rkdtree",
        kernel="gsknn",
        leaf_size=512,
        iterations=8,
        truth=truth,
        tol=0.0,
    )
    t_approx = time.perf_counter() - t0
    print(
        f"approximate all-NN: {t_approx:.2f} s over {report.iterations} trees "
        f"({report.kernel_fraction:.0%} of time in the kNN kernel)"
    )
    print("recall per tree:", [f"{r:.3f}" for r in report.recall_curve])
    print(f"final recall: {recall(report.result, truth):.4f}")

    graph = build_graph(report.result.indices, report.result.distances)
    components = nx.number_connected_components(graph)
    print(
        f"kNN graph: {graph.number_of_nodes()} nodes, "
        f"{graph.number_of_edges()} edges, {components} connected component(s)"
    )
    # a well-built graph over 6 clusters is near-fully connected through
    # the shared manifold; many tiny islands would mean a bad graph
    degrees = np.array([d for _, d in graph.degree()])
    print(
        f"degree: min {degrees.min()}, median {int(np.median(degrees))}, "
        f"max {degrees.max()}"
    )


if __name__ == "__main__":
    main()
