"""Unit tests for the register-tile micro-kernel semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.microkernel import finalize_tile, fused_select, init_tile, rank_update
from repro.core.norms import Norm
from repro.errors import ValidationError
from repro.gemm.packing import pack_micropanels
from repro.select.heap import BinaryMaxHeap


def _panels(rng, m_r, n_r, d):
    Q = rng.random((m_r, d))
    R = rng.random((n_r, d))
    q_panel = pack_micropanels(Q, m_r)[0]  # (d, m_r)
    r_panel = pack_micropanels(R, n_r)[0]
    return Q, R, q_panel, r_panel


class TestRankUpdate:
    def test_l2_accumulates_inner_products(self, rng):
        Q, R, qp, rp = _panels(rng, 4, 4, 6)
        tile = init_tile(4, 4, Norm(2.0))
        rank_update(tile, qp, rp, Norm(2.0))
        np.testing.assert_allclose(tile, Q @ R.T, atol=1e-12)

    def test_l2_multiple_depth_blocks(self, rng):
        """Accumulating over depth blocks equals the full inner product —
        the C_c buffer semantics across the 5th loop."""
        Q, R = rng.random((2, 10)), rng.random((3, 10))
        tile = init_tile(2, 3, Norm(2.0))
        for p0 in range(0, 10, 4):
            qp = pack_micropanels(Q[:, p0 : p0 + 4], 2)[0]
            rp = pack_micropanels(R[:, p0 : p0 + 4], 3)[0]
            rank_update(tile, qp, rp, Norm(2.0))
        np.testing.assert_allclose(tile, Q @ R.T, atol=1e-12)

    def test_l1_accumulates_abs_diffs(self, rng):
        Q, R, qp, rp = _panels(rng, 3, 2, 5)
        tile = init_tile(3, 2, Norm(1.0))
        rank_update(tile, qp, rp, Norm(1.0))
        want = np.abs(Q[:, None, :] - R[None, :, :]).sum(axis=2)
        np.testing.assert_allclose(tile, want, atol=1e-12)

    def test_linf_max_across_depth_blocks(self, rng):
        """l-inf accumulation is a running max — splitting depth must
        still give the global max."""
        Q, R = rng.random((2, 8)), rng.random((2, 8))
        tile = init_tile(2, 2, Norm(np.inf))
        for p0 in range(0, 8, 3):
            qp = pack_micropanels(Q[:, p0 : p0 + 3], 2)[0]
            rp = pack_micropanels(R[:, p0 : p0 + 3], 2)[0]
            rank_update(tile, qp, rp, Norm(np.inf))
        want = np.abs(Q[:, None, :] - R[None, :, :]).max(axis=2)
        np.testing.assert_allclose(tile, want, atol=1e-12)

    def test_shape_validation(self, rng):
        tile = init_tile(2, 2, Norm(2.0))
        with pytest.raises(ValidationError):
            rank_update(tile, np.ones((3, 2)), np.ones((4, 2)), Norm(2.0))
        with pytest.raises(ValidationError):
            rank_update(tile, np.ones((3, 4)), np.ones((3, 2)), Norm(2.0))


class TestFinalizeTile:
    def test_l2_expansion(self, rng):
        Q, R, qp, rp = _panels(rng, 2, 3, 4)
        tile = init_tile(2, 3, Norm(2.0))
        rank_update(tile, qp, rp, Norm(2.0))
        dist = finalize_tile(
            tile, (Q**2).sum(1), (R**2).sum(1), Norm(2.0)
        )
        want = ((Q[:, None, :] - R[None, :, :]) ** 2).sum(2)
        np.testing.assert_allclose(dist, want, atol=1e-12)

    def test_l2_requires_norms(self):
        with pytest.raises(ValidationError):
            finalize_tile(np.ones((2, 2)), None, None, Norm(2.0))

    def test_l2_clamps_negatives(self):
        tile = np.array([[10.0]])  # q2 + r2 - 2*10 < 0
        dist = finalize_tile(tile, np.array([9.0]), np.array([9.0]), Norm(2.0))
        assert dist[0, 0] >= 0.0

    def test_lp_root(self, rng):
        tile = np.array([[8.0]])
        dist = finalize_tile(tile, None, None, Norm(3.0))
        np.testing.assert_allclose(dist, [[2.0]])

    def test_l1_and_linf_identity(self):
        tile = np.array([[2.5]])
        np.testing.assert_allclose(finalize_tile(tile, None, None, Norm(1.0)), tile)
        np.testing.assert_allclose(
            finalize_tile(tile, None, None, Norm(np.inf)), tile
        )

    def test_default_returns_copy_for_l1_linf(self):
        """Without out=, the caller may keep mutating the accumulator."""
        tile = np.array([[2.5]])
        for norm in (Norm(1.0), Norm(np.inf)):
            got = finalize_tile(tile, None, None, norm)
            assert got is not tile
            tile[0, 0] = -1.0
            assert got[0, 0] == 2.5
            tile[0, 0] = 2.5

    def test_out_inplace_eliminates_l1_linf_copy(self):
        tile = np.array([[2.5, 0.5]])
        got = finalize_tile(tile, None, None, Norm(1.0), out=tile)
        assert got is tile  # no copy at all

    def test_out_matches_default_all_norms(self, rng):
        q2 = rng.random(3)
        r2 = rng.random(4)
        for norm in (Norm(2.0), Norm(1.0), Norm(3.0), Norm(np.inf), Norm.cosine()):
            tile = rng.random((3, 4))
            needs = norm.is_l2 or norm.is_cosine
            want = finalize_tile(
                tile.copy(), q2 if needs else None, r2 if needs else None, norm
            )
            # separate destination buffer
            out = np.empty_like(tile)
            got = finalize_tile(
                tile.copy(), q2 if needs else None, r2 if needs else None,
                norm, out=out,
            )
            assert got is out
            np.testing.assert_array_equal(got, want)
            # fully in place
            scratch = tile.copy()
            got2 = finalize_tile(
                scratch, q2 if needs else None, r2 if needs else None,
                norm, out=scratch,
            )
            np.testing.assert_array_equal(got2, want)

    def test_out_shape_validated(self):
        with pytest.raises(ValidationError):
            finalize_tile(
                np.ones((2, 2)), None, None, Norm(1.0), out=np.empty((2, 3))
            )


class TestFusedSelect:
    def test_inserts_survivors(self):
        heaps = [BinaryMaxHeap(2), BinaryMaxHeap(2)]
        tile = np.array([[0.5, 0.1], [0.9, 0.2]])
        accepted = fused_select(tile, heaps, 0, np.array([100, 101]))
        assert accepted == 4
        np.testing.assert_allclose(heaps[0].sorted_pairs()[0], [0.1, 0.5])

    def test_root_filter_rejects_whole_rows(self):
        heap = BinaryMaxHeap(1)
        heap.update(0.05, 7)
        tile = np.array([[0.5, 0.6, 0.7]])
        accepted = fused_select(tile, [heap], 0, np.arange(3))
        assert accepted == 0
        assert heap.ids[0] == 7

    def test_live_region_restricts_padding(self):
        """Padded lanes of a ragged edge tile must never enter a heap."""
        heaps = [BinaryMaxHeap(2)]
        tile = np.array([[0.2, 0.0], [0.0, 0.0]])  # col 1 / row 1 are pads
        fused_select(tile, heaps, 0, np.array([42]), live_rows=1, live_cols=1)
        values, ids = heaps[0].sorted_pairs()
        assert ids[0] == 42 and values[0] == 0.2
        assert ids[1] == -1  # the pad zero was not inserted

    def test_row_offset(self):
        heaps = [BinaryMaxHeap(1) for _ in range(4)]
        tile = np.array([[0.3]])
        fused_select(tile, heaps, 2, np.array([9]))
        assert heaps[2].ids[0] == 9
        assert all(heaps[i].ids[0] == -1 for i in (0, 1, 3))

    def test_validation(self):
        with pytest.raises(ValidationError):
            fused_select(np.ones((2, 2)), [BinaryMaxHeap(1)] * 2, 0, np.arange(1))
        with pytest.raises(ValidationError):
            fused_select(
                np.ones((2, 2)), [BinaryMaxHeap(1)] * 2, 0, np.arange(2), live_rows=3
            )

    def test_ascending_insertion_cuts_accepted_count(self):
        """Adversarial descending tile: naive column-order insertion accepts
        every survivor (each one beats the then-root); ascending-order
        insertion accepts only the k that actually belong."""
        n = 64
        k = 4
        row = np.linspace(1.0, 0.01, n)[None, :]  # strictly descending
        ids = np.arange(n)

        # naive column-order baseline
        naive_heap = BinaryMaxHeap(k)
        naive_accepted = 0
        for j in range(n):
            if naive_heap.update(float(row[0, j]), int(ids[j])):
                naive_accepted += 1
        assert naive_accepted == n  # every insert displaces the root

        heap = BinaryMaxHeap(k)
        accepted = fused_select(row, [heap], 0, ids)
        assert accepted == k  # insertions after the k smallest short-circuit
        assert accepted < naive_accepted

        # bit-identical final contents either way
        np.testing.assert_array_equal(
            heap.sorted_pairs()[0], naive_heap.sorted_pairs()[0]
        )
        np.testing.assert_array_equal(
            heap.sorted_pairs()[1], naive_heap.sorted_pairs()[1]
        )
