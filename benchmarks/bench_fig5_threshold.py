"""Figure 5 — Var#1/Var#6 switching threshold in k.

Paper: 10-core GFLOPS of Var#1 and Var#6 as a function of k at
m = n = 8192, d ∈ {16, 64}; the modeled curves cross near where the
measured curves cross, so the model can pre-select the variant and
shrink the tuning search.

Reproduced in two layers:

* model curves and predicted thresholds regenerated exactly at paper
  sizes;
* the measured crossover on this host (wall-clock Var#1 vs Var#6 at
  scaled sizes) compared against the model's predicted threshold —
  the reproduction of the paper's "predicted threshold is close to the
  experimental threshold" claim.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gsknn import gsknn
from repro.machine.params import IVY_BRIDGE
from repro.model import PerformanceModel, predict_variant_threshold

from .conftest import run_report, SCALE, best_time, uniform_problem

K_GRID = [16, 32, 64, 128, 256, 512, 1024, 2048]
MEASURED_M = 2048 * SCALE


def test_fig5_model_series(benchmark, report):
    def _run():
        machine = IVY_BRIDGE.scaled(10, 3.10e9)
        model = PerformanceModel(machine)
        rep = report(
            "fig5_threshold",
            "Figure 5, model series (p=10, m=n=8192; GFLOPS vs k)\n"
            f"{'series':>14} " + "".join(f"{f'k={k}':>8}" for k in K_GRID),
        )
        for d in (16, 64):
            for kernel in ("var1", "var6"):
                series = [
                    model.predict(kernel, 8192, 8192, d, k).gflops for k in K_GRID
                ]
                rep.row(
                    f"{f'd={d} {kernel}':>14} "
                    + "".join(f"{g:>8.1f}" for g in series)
                )
            thr = predict_variant_threshold(8192, 8192, d, machine=machine, k_max=4096)
            rep.row(f"  predicted threshold at d={d}: k* = {thr}")


    run_report(benchmark, _run)


def _measured_crossover(d):
    """Smallest k in the grid where Var#6 beats Var#1 on this host."""
    X, q, r = uniform_problem(MEASURED_M, MEASURED_M, d, seed=0)
    for k in K_GRID:
        if k > MEASURED_M:
            break
        t1 = best_time(lambda: gsknn(X, q, r, k, variant=1), repeats=2)
        t6 = best_time(lambda: gsknn(X, q, r, k, variant=6), repeats=2)
        if t6 <= t1:
            return k
    return None


def test_fig5_measured_threshold(benchmark, report):
    def _run():
        rep = report(
            "fig5_measured",
            f"Figure 5, measured on this host (m=n={MEASURED_M})",
        )
        model = PerformanceModel()
        for d in (16, 64):
            measured = _measured_crossover(d)
            predicted = predict_variant_threshold(
                MEASURED_M, MEASURED_M, d, k_max=MEASURED_M
            )
            rep.row(
                f"d={d}: measured crossover k={measured}, "
                f"model-predicted k={predicted}"
            )
            # Structural check instead of a numeric band: the crossover
            # must exist in the direction the model predicts (Var#1
            # degrades relative to Var#6 as k grows). The *location* is
            # substrate-dependent — this path's batched introselect is
            # cheaper per candidate than the scalar heap Table 4 prices,
            # so the measured crossover sits above the model's (recorded
            # in EXPERIMENTS.md), just as the paper's own prediction
            # drifts at low d.
            X, q, r = uniform_problem(MEASURED_M, MEASURED_M, d, seed=0)
            gap_small = best_time(
                lambda: gsknn(X, q, r, 16, variant=6), repeats=2
            ) / best_time(lambda: gsknn(X, q, r, 16, variant=1), repeats=2)
            k_big = MEASURED_M // 2
            gap_big = best_time(
                lambda: gsknn(X, q, r, k_big, variant=6), repeats=2
            ) / best_time(lambda: gsknn(X, q, r, k_big, variant=1), repeats=2)
            rep.row(
                f"      var6/var1 time ratio: {gap_small:.2f} at k=16 -> "
                f"{gap_big:.2f} at k={k_big}"
            )
            assert gap_big < gap_small  # Var#1's advantage shrinks with k


    run_report(benchmark, _run)


class TestThresholdShapes:
    def test_var1_wins_small_k_var6_wins_large_k_in_model(self):
        model = PerformanceModel(IVY_BRIDGE.scaled(10, 3.10e9))
        small = model.predict("var1", 8192, 8192, 64, 16).seconds
        small6 = model.predict("var6", 8192, 8192, 64, 16).seconds
        big = model.predict("var1", 8192, 8192, 64, 4096).seconds
        big6 = model.predict("var6", 8192, 8192, 64, 4096).seconds
        assert small < small6
        assert big6 < big

    def test_threshold_moves_with_dimension(self):
        """Higher d makes compute dominate, pushing the crossover out."""
        t16 = predict_variant_threshold(8192, 8192, 16, k_max=8192)
        t256 = predict_variant_threshold(8192, 8192, 256, k_max=8192)
        assert t16 is not None and t256 is not None
        assert t256 >= t16


@pytest.mark.parametrize("variant", [1, 6])
def test_bench_variants_at_large_k(benchmark, variant):
    X, q, r = uniform_problem(MEASURED_M, MEASURED_M, 64, seed=4)
    k = min(1024, MEASURED_M)
    benchmark.group = f"fig5 m=n={MEASURED_M} d=64 k={k}"
    benchmark.name = f"var{variant}"
    benchmark(lambda: gsknn(X, q, r, k, variant=variant))
