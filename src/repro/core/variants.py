"""The six GSKNN variants (paper §2.3, "Other variants").

The variant index names the loop after which heap selection runs.
Var#1 (after the micro-kernel's 1st loop) and Var#6 (after everything,
i.e. the classic two-phase structure but still with fused packing) are
the two the paper keeps; the others are enumerated with the reasons they
lose, and the model in :mod:`repro.model` can cost them all so the
ablation bench can show *why* they lose rather than assert it.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from ..errors import ValidationError

__all__ = ["Variant", "VariantInfo", "VARIANT_INFO", "resolve_variant"]


class Variant(IntEnum):
    """Heap-selection placement: after loop 1..6 of Algorithm 2.2."""

    VAR1 = 1
    VAR2 = 2
    VAR3 = 3
    VAR4 = 4
    VAR5 = 5
    VAR6 = 6


@dataclass(frozen=True)
class VariantInfo:
    """Qualitative record of one placement's behaviour."""

    variant: Variant
    selection_scope: str  # what slice of C is complete when selection runs
    stored_distances: str  # how much of C must be materialized
    viable: bool
    notes: str


VARIANT_INFO: dict[Variant, VariantInfo] = {
    Variant.VAR1: VariantInfo(
        Variant.VAR1,
        selection_scope="m_r x n_r register tile",
        stored_distances="none (C_r discarded from registers)",
        viable=True,
        notes=(
            "Greatest reuse: distances consumed in registers/L1, no C "
            "write-back. Heap may evict Q_c/R_c from L1/L2 when k is "
            "large — the reason Var#6 wins at large k."
        ),
    ),
    Variant.VAR2: VariantInfo(
        Variant.VAR2,
        selection_scope="m_r x n_c macro-row",
        stored_distances="m_r x n_c buffer",
        viable=False,
        notes=(
            "Stores more of C than Var#1 for small k, and for large k "
            "keeps the heap hot in L1/L2 where R_c/Q_c panels belong, "
            "forcing their reloads from L3 — slower than Var#6."
        ),
    ),
    Variant.VAR3: VariantInfo(
        Variant.VAR3,
        selection_scope="m_c x n_c cache block",
        stored_distances="m_c x n_c buffer",
        viable=False,
        notes="Same two failure modes as Var#2 at a larger block size.",
    ),
    Variant.VAR4: VariantInfo(
        Variant.VAR4,
        selection_scope="m x n_c at partial depth",
        stored_distances="n/a",
        viable=False,
        notes=(
            "Not viable at all: the 5th loop blocks the d dimension, so "
            "distances are incomplete when the 4th loop finishes — there "
            "is nothing correct to select on."
        ),
    ),
    Variant.VAR5: VariantInfo(
        Variant.VAR5,
        selection_scope="m x n_c column slab",
        stored_distances="m x n_c buffer",
        viable=True,
        notes=(
            "Stores only m x n_c instead of m x n (useful under DRAM "
            "pressure), but every heap is reloaded from memory n/n_c "
            "times, doubling (or worse) the selection latency."
        ),
    ),
    Variant.VAR6: VariantInfo(
        Variant.VAR6,
        selection_scope="full m x n matrix",
        stored_distances="m x n matrix",
        viable=True,
        notes=(
            "The classic placement (Algorithm 2.1's structure, minus its "
            "redundant gather). Pays tau_b * m * n to store C but keeps "
            "the rank-d_c pipeline undisturbed — preferred for large k."
        ),
    ),
}


def resolve_variant(variant: int | str | Variant) -> Variant:
    """Accept 1..6, "var1".."var6", or a Variant; reject non-viable ones lazily.

    Non-viable variants *resolve* fine (the model needs to cost them);
    kernels that cannot execute them raise at execution time.
    """
    if isinstance(variant, Variant):
        return variant
    if isinstance(variant, str):
        key = variant.lower().removeprefix("var").lstrip("#")
        if not key.isdigit():
            raise ValidationError(f"unknown variant {variant!r}")
        variant = int(key)
    try:
        return Variant(int(variant))
    except ValueError:
        raise ValidationError(
            f"variant must be 1..6, got {variant!r}"
        ) from None
