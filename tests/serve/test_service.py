"""Correctness and lifecycle of :class:`repro.serve.KnnQueryService`."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.gsknn import gsknn
from repro.errors import (
    KernelTimeoutError,
    OverloadError,
    ValidationError,
)
from repro.serve import KnnQueryService, ServeConfig


def _direct(table, q_idx, k):
    return gsknn(table, np.asarray(q_idx), np.arange(table.shape[0]), k)


class TestCorrectness:
    def test_fused_results_match_direct_solves(self, table, rng):
        """Many concurrent requests, mixed k and tenants: every demuxed
        slice must equal the stand-alone kernel's answer."""
        queries = [
            rng.integers(0, table.shape[0], size=int(rng.integers(1, 6)))
            for _ in range(40)
        ]
        ks = [int(rng.integers(1, 9)) for _ in queries]
        with KnnQueryService(table, ServeConfig(max_wait_ms=2.0)) as svc:
            handles = [
                svc.submit(q, k, tenant=f"t{i % 3}")
                for i, (q, k) in enumerate(zip(queries, ks))
            ]
            results = [h.result(timeout=30) for h in handles]
        for q, k, got in zip(queries, ks, results):
            want = _direct(table, q, k)
            np.testing.assert_array_equal(got.indices, want.indices)
            np.testing.assert_allclose(
                got.distances, want.distances, atol=1e-12
            )

    def test_scalar_index_promoted(self, table):
        with KnnQueryService(table) as svc:
            got = svc.submit(7, 3).result(timeout=30)
        want = _direct(table, [7], 3)
        np.testing.assert_array_equal(got.indices, want.indices)

    def test_row_requests_match_direct(self, table, rng):
        """Literal-coordinate requests solve against the same table."""
        Q = rng.random((3, table.shape[1]))
        with KnnQueryService(table) as svc:
            got = svc.submit_rows(Q, 4).result(timeout=30)
        # reference: append the rows to a copy of the table and query them
        X2 = np.vstack([table, Q])
        want = gsknn(
            X2,
            np.arange(table.shape[0], table.shape[0] + 3),
            np.arange(table.shape[0]),
            4,
        )
        np.testing.assert_array_equal(got.indices, want.indices)
        np.testing.assert_allclose(got.distances, want.distances, atol=1e-12)

    def test_single_row_promoted(self, table, rng):
        q = rng.random(table.shape[1])
        with KnnQueryService(table) as svc:
            got = svc.submit_rows(q, 2).result(timeout=30)
        assert got.distances.shape == (1, 2)

    def test_mixed_index_and_row_requests_in_one_window(self, table, rng):
        with KnnQueryService(table, ServeConfig(max_wait_ms=5.0)) as svc:
            hi = svc.submit([1, 2], 3)
            hr = svc.submit_rows(rng.random((2, table.shape[1])), 3)
            ri, rr = hi.result(timeout=30), hr.result(timeout=30)
        assert ri.m == 2 and rr.m == 2
        want = _direct(table, [1, 2], 3)
        np.testing.assert_array_equal(ri.indices, want.indices)

    def test_handle_metadata(self, table):
        with KnnQueryService(table) as svc:
            handle = svc.submit([0], 1, tenant="alpha")
            handle.result(timeout=30)
        assert handle.tenant == "alpha"
        assert handle.request_id.startswith("req-")
        assert handle.done()
        assert handle.exception() is None


class TestValidation:
    def test_bad_indices_rejected_synchronously(self, table):
        with KnnQueryService(table) as svc:
            with pytest.raises(ValidationError):
                svc.submit([table.shape[0] + 5], 2)
            with pytest.raises(ValidationError):
                svc.submit([0], 0)
            with pytest.raises(ValidationError):
                svc.submit([0], table.shape[0] + 1)

    def test_bad_rows_rejected(self, table, rng):
        with KnnQueryService(table) as svc:
            with pytest.raises(ValidationError):
                svc.submit_rows(rng.random((2, table.shape[1] + 1)), 2)
            with pytest.raises(ValidationError):
                svc.submit_rows(
                    np.full((1, table.shape[1]), np.nan), 2
                )

    def test_table_validated_at_construction(self):
        with pytest.raises(ValidationError):
            KnnQueryService(np.full((4, 2), np.inf))


class TestLifecycle:
    def test_submit_before_start_sheds(self, table):
        svc = KnnQueryService(table)
        with pytest.raises(OverloadError, match="not accepting"):
            svc.submit([0], 1)

    def test_submit_after_stop_sheds(self, table):
        svc = KnnQueryService(table).start()
        svc.stop()
        with pytest.raises(OverloadError, match="not accepting"):
            svc.submit([0], 1)

    def test_drain_on_stop_completes_queued(self, table):
        svc = KnnQueryService(
            table, ServeConfig(max_wait_ms=50.0, policy="fixed")
        ).start()
        handles = [svc.submit([i], 2) for i in range(10)]
        svc.stop()  # closes the open window immediately and drains
        for h in handles:
            assert h.result(timeout=30).m == 1

    def test_no_drain_fails_queued_explicitly(self, table):
        svc = KnnQueryService(
            table,
            ServeConfig(max_wait_ms=200.0, policy="fixed", drain_on_stop=False),
        ).start()
        handles = [svc.submit([i], 2) for i in range(5)]
        svc.stop()
        outcomes = []
        for h in handles:
            try:
                h.result(timeout=30)
                outcomes.append("ok")
            except OverloadError:
                outcomes.append("failed")
        # nothing may hang or vanish: every future resolved one way
        assert len(outcomes) == 5 and "failed" in outcomes

    def test_restart_after_stop(self, table):
        svc = KnnQueryService(table)
        with svc:
            svc.submit([0], 1).result(timeout=30)
        svc.start()
        try:
            assert svc.submit([1], 1).result(timeout=30).m == 1
        finally:
            svc.stop()


class TestSLO:
    def test_expired_in_queue_fails_fast(self, table):
        """A request whose deadline dies while queued raises
        KernelTimeoutError instead of burning kernel time."""
        config = ServeConfig(max_wait_ms=150.0, policy="fixed", max_batch=64)
        with KnnQueryService(table, config) as svc:
            # the window stays open 150 ms; this budget dies in-queue
            handle = svc.submit([0], 2, deadline=1e-3)
            with pytest.raises(KernelTimeoutError, match="serve.queue"):
                handle.result(timeout=30)

    def test_default_slo_from_config(self, table):
        config = ServeConfig(
            max_wait_ms=150.0, policy="fixed", slo_ms=1.0
        )
        with KnnQueryService(table, config) as svc:
            handle = svc.submit([0], 2)  # no explicit deadline
            with pytest.raises(KernelTimeoutError):
                handle.result(timeout=30)

    def test_generous_deadline_completes(self, table):
        with KnnQueryService(table) as svc:
            res = svc.submit([0, 1], 2, deadline=30.0).result(timeout=30)
        assert res.m == 2

    def test_slo_metrics_flow(self, table, metrics):
        config = ServeConfig(max_wait_ms=120.0, policy="fixed")
        with KnnQueryService(table, config) as svc:
            handle = svc.submit([0], 2, tenant="late", deadline=1e-3)
            with pytest.raises(KernelTimeoutError):
                handle.result(timeout=30)
        counters = metrics.snapshot()["counters"]
        assert counters.get('serve.expired_in_queue{tenant="late"}') == 1
        assert counters.get('serve.slo_misses{tenant="late"}') == 1
        # the deadline layer's own counter carries the tenant too
        assert counters.get('resilience.deadline_hits{tenant="late"}') == 1


class TestConcurrentSubmitters:
    def test_many_threads_submit_safely(self, table):
        errors: list[Exception] = []
        results: list[int] = []
        with KnnQueryService(table, ServeConfig(max_queue_depth=4096)) as svc:
            def worker(base):
                try:
                    handles = [
                        svc.submit([(base + j) % table.shape[0]], 2)
                        for j in range(20)
                    ]
                    for h in handles:
                        results.append(h.result(timeout=30).m)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(i * 31,))
                for i in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(60)
        assert not errors
        assert len(results) == 120 and all(m == 1 for m in results)
