"""Unit tests for ANN evaluation metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.neighbors import KnnResult
from repro.errors import ValidationError
from repro.trees.evaluation import distance_ratio, quality_curve, recall_at


def _res(dist, idx):
    return KnnResult(np.asarray(dist, float), np.asarray(idx))


class TestDistanceRatio:
    def test_exact_match_is_one(self):
        truth = _res([[1.0, 2.0]], [[1, 2]])
        assert distance_ratio(truth, truth) == pytest.approx(1.0)

    def test_worse_candidate_above_one(self):
        truth = _res([[1.0, 2.0]], [[1, 2]])
        cand = _res([[1.5, 4.0]], [[5, 6]])
        assert distance_ratio(cand, truth) == pytest.approx((1.5 + 2.0) / 2)

    def test_zero_distance_handling(self):
        truth = _res([[0.0, 1.0]], [[0, 1]])
        cand = _res([[0.0, 2.0]], [[0, 9]])
        assert distance_ratio(cand, truth) == pytest.approx(1.5)

    def test_unfilled_slots_skipped(self):
        truth = _res([[1.0, 2.0]], [[1, 2]])
        cand = _res([[1.0, np.inf]], [[1, -1]])
        assert distance_ratio(cand, truth) == pytest.approx(1.0)

    def test_no_comparable_slots(self):
        truth = _res([[np.inf]], [[-1]])
        cand = _res([[np.inf]], [[-1]])
        with pytest.raises(ValidationError):
            distance_ratio(cand, truth)

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            distance_ratio(
                _res([[1.0]], [[1]]), _res([[1.0, 2.0]], [[1, 2]])
            )


class TestRecallAt:
    def test_recall_at_one(self):
        truth = _res([[1.0, 2.0, 3.0]], [[1, 2, 3]])
        cand = _res([[1.0, 9.0, 9.5]], [[1, 8, 9]])
        assert recall_at(cand, truth, 1) == 1.0
        assert recall_at(cand, truth, 3) == pytest.approx(1 / 3)

    def test_j_bounds(self):
        truth = _res([[1.0]], [[1]])
        with pytest.raises(ValidationError):
            recall_at(truth, truth, 0)
        with pytest.raises(ValidationError):
            recall_at(truth, truth, 2)

    def test_recall_at_decreases_or_flat_with_j(self):
        """Finding the first few true neighbors is never harder than
        finding all of them (per-j recall is monotone non-increasing for
        a list that holds a prefix of the truth)."""
        truth = _res([[1.0, 2.0, 3.0, 4.0]], [[1, 2, 3, 4]])
        cand = _res([[1.0, 2.0, 9.0, 9.1]], [[1, 2, 8, 9]])
        curve = quality_curve(cand, truth, [1, 2, 3, 4])
        values = [curve[j] for j in (1, 2, 3, 4)]
        assert values == sorted(values, reverse=True)


def _distance_ratio_loop(cand: KnnResult, truth: KnnResult) -> float:
    """Scalar reference for the vectorized distance_ratio."""
    ratios = []
    for i in range(truth.m):
        for s in range(truth.k):
            c, t = cand.distances[i, s], truth.distances[i, s]
            if not (np.isfinite(c) and np.isfinite(t)):
                continue
            if t == 0.0:
                if c == 0.0:
                    ratios.append(1.0)
                continue
            r = c / t
            if np.isfinite(r):
                ratios.append(r)
    if not ratios:
        raise ValidationError("no comparable slots")
    return float(np.mean(ratios))


def _recall_at_loop(cand: KnnResult, truth: KnnResult, j: int) -> float:
    hits = 0
    for i in range(truth.m):
        want = set(truth.indices[i, :j].tolist())
        got = set(cand.indices[i].tolist())
        hits += len(want & got)
    return hits / (truth.m * j)


class TestVectorizedAgainstLoop:
    """Property tests: the vectorized metrics match a scalar loop."""

    hypothesis = pytest.importorskip("hypothesis")

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @staticmethod
    def _make_pair(seed, m, k, with_infs):
        rng = np.random.default_rng(seed)
        true = np.sort(rng.random((m, k)), axis=1)
        cand = np.sort(true + rng.random((m, k)) * 0.5, axis=1)
        true_idx = np.argsort(rng.random((m, 4 * k)), axis=1)[:, :k]
        cand_idx = np.argsort(rng.random((m, 4 * k)), axis=1)[:, :k]
        if with_infs:
            mask = rng.random((m, k)) < 0.3
            cand = np.where(mask, np.inf, cand)
            cand_idx = np.where(mask, -1, cand_idx)
        # sprinkle exact zeros (self-matches) into the first slot
        zero_rows = rng.random(m) < 0.5
        true[zero_rows, 0] = 0.0
        cand[zero_rows & (rng.random(m) < 0.5), 0] = 0.0
        return (
            KnnResult(cand, cand_idx.astype(np.intp)),
            KnnResult(true, true_idx.astype(np.intp)),
        )

    @given(
        seed=st.integers(0, 2**32 - 1),
        m=st.integers(1, 12),
        k=st.integers(1, 9),
        with_infs=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_distance_ratio_matches_loop(self, seed, m, k, with_infs):
        cand, truth = self._make_pair(seed, m, k, with_infs)
        try:
            expected = _distance_ratio_loop(cand, truth)
        except ValidationError:
            with pytest.raises(ValidationError):
                distance_ratio(cand, truth)
            return
        assert distance_ratio(cand, truth) == pytest.approx(
            expected, rel=1e-12
        )

    @given(
        seed=st.integers(0, 2**32 - 1),
        m=st.integers(1, 12),
        k=st.integers(1, 9),
    )
    @settings(max_examples=60, deadline=None)
    def test_recall_at_matches_loop(self, seed, m, k):
        cand, truth = self._make_pair(seed, m, k, False)
        for j in range(1, k + 1):
            assert recall_at(cand, truth, j) == pytest.approx(
                _recall_at_loop(cand, truth, j)
            )

    @given(seed=st.integers(0, 2**32 - 1), m=st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_perfect_candidate_is_perfect(self, seed, m):
        _, truth = self._make_pair(seed, m, 6, False)
        assert distance_ratio(truth, truth) == pytest.approx(1.0)
        assert recall_at(truth, truth, 6) == 1.0


class TestQualityCurve:
    def test_default_js_cover_k(self):
        truth = _res([[1.0] * 6], [list(range(6))])
        curve = quality_curve(truth, truth)
        assert 1 in curve and 6 in curve
        assert all(v == 1.0 for v in curve.values())

    def test_against_real_solver(self):
        from repro.data import embedded_gaussian
        from repro.trees import all_nearest_neighbors, exact_all_knn

        cloud = embedded_gaussian(400, 12, intrinsic_dim=5, seed=6).points
        truth = exact_all_knn(cloud, 8)
        report = all_nearest_neighbors(
            cloud, 8, leaf_size=64, iterations=4, tol=0.0
        )
        curve = quality_curve(report.result, truth)
        # nearest neighbors are found more reliably than the kth
        assert curve[1] >= curve[8]
        ratio = distance_ratio(report.result, truth)
        assert ratio >= 1.0
        assert ratio < 2.0
