"""Tests for the shared atomic-write helpers.

The tune and approx stores used to hand-roll the tmp-then-rename dance
and leaked the ``.tmp`` file when the write or rename failed; these
tests pin the shared helper's failure behavior.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.ioutil import atomic_write_json, atomic_write_text


def test_text_round_trip(tmp_path):
    path = tmp_path / "out.json"
    atomic_write_text(path, "hello\n")
    assert path.read_text() == "hello\n"
    assert list(tmp_path.iterdir()) == [path]  # no .tmp left behind


def test_json_round_trip(tmp_path):
    path = tmp_path / "doc.json"
    atomic_write_json(path, {"b": 1, "a": [1, 2]})
    doc = json.loads(path.read_text())
    assert doc == {"b": 1, "a": [1, 2]}
    assert path.read_text().endswith("\n")


def test_overwrite_is_atomic_replace(tmp_path):
    path = tmp_path / "doc.json"
    atomic_write_json(path, {"v": 1})
    atomic_write_json(path, {"v": 2})
    assert json.loads(path.read_text()) == {"v": 2}
    assert list(tmp_path.iterdir()) == [path]


def test_failed_write_leaves_no_tmp_and_keeps_original(tmp_path, monkeypatch):
    path = tmp_path / "doc.json"
    path.write_text("original")

    def boom(self, text, **kwargs):
        # fail mid-write with the partial temp file already on disk
        with open(self, "w") as fh:
            fh.write(text[:3])
        raise OSError("disk full")

    monkeypatch.setattr(type(path), "write_text", boom)
    with pytest.raises(OSError, match="disk full"):
        atomic_write_text(path, "replacement text")
    monkeypatch.undo()
    assert path.read_text() == "original"  # target untouched
    assert [p.name for p in tmp_path.iterdir()] == ["doc.json"]  # no .tmp


def test_failed_rename_leaves_no_tmp(tmp_path, monkeypatch):
    path = tmp_path / "doc.json"
    path.write_text("original")

    def boom(src, dst, **kwargs):
        raise OSError("cross-device link")

    monkeypatch.setattr(os, "replace", boom)
    with pytest.raises(OSError, match="cross-device"):
        atomic_write_text(path, "replacement")
    monkeypatch.undo()
    assert path.read_text() == "original"
    assert [p.name for p in tmp_path.iterdir()] == ["doc.json"]


def test_unserializable_doc_touches_nothing(tmp_path):
    path = tmp_path / "doc.json"
    path.write_text("original")
    with pytest.raises(TypeError):
        atomic_write_json(path, {"bad": object()})
    # serialization happens before any file I/O: no tmp, target intact
    assert path.read_text() == "original"
    assert [p.name for p in tmp_path.iterdir()] == ["doc.json"]


def test_store_modules_use_shared_helper():
    # the two stores must not regress to private copies of the dance
    from repro.approx import store as approx_store
    from repro.tune import store as tune_store

    assert tune_store.atomic_write_json is atomic_write_json
    assert approx_store.atomic_write_json is atomic_write_json
