"""Fixtures for the sharding suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.resilience.faults import FAULT_PLAN_ENV


@pytest.fixture(autouse=True)
def no_ambient_fault_plan(monkeypatch):
    """Shard tests pin fault behavior explicitly via ``fault_plan=``; an
    ambient ``$REPRO_FAULT_PLAN`` (the CI fault matrix) must not leak
    into routers that assert clean bit-identical solves."""
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)


@pytest.fixture
def table(rng) -> np.ndarray:
    """Odd-sized so panel boundaries leave a ragged tail panel."""
    return rng.random((300, 13))
