"""Tests for the workspace arena (grow-only buffers, pools)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.arena import ArenaPool, NullArena, WorkspaceArena, null_arena_pool
from repro.errors import ValidationError


class TestWorkspaceArena:
    def test_same_shape_reuses_buffer(self):
        arena = WorkspaceArena()
        a = arena.take("tile", (4, 5))
        a[:] = 7.0
        b = arena.take("tile", (4, 5))
        assert b.base is a.base or b is a
        assert np.shares_memory(a, b)

    def test_grow_only(self):
        arena = WorkspaceArena()
        arena.take("tile", (4, 8))
        big = arena.take("tile", (6, 2))  # grows rows, keeps cols
        assert big.shape == (6, 2)
        again = arena.take("tile", (6, 8))
        assert again.shape == (6, 8)
        assert len(arena) == 1

    def test_smaller_request_returns_view(self):
        arena = WorkspaceArena()
        full = arena.take("tile", (8, 8))
        small = arena.take("tile", (3, 5))
        assert small.shape == (3, 5)
        assert np.shares_memory(full, small)

    def test_dtype_change_reallocates(self):
        arena = WorkspaceArena()
        a = arena.take("buf", (4,), np.float64)
        b = arena.take("buf", (4,), np.bool_)
        assert b.dtype == np.bool_
        assert not np.shares_memory(a, b)

    def test_distinct_keys_are_independent(self):
        arena = WorkspaceArena()
        a = arena.take("a", (4,))
        b = arena.take("b", (4,))
        assert not np.shares_memory(a, b)

    def test_nbytes_and_clear(self):
        arena = WorkspaceArena()
        arena.take("tile", (10, 10))
        assert arena.nbytes == 10 * 10 * 8
        arena.clear()
        assert arena.nbytes == 0 and len(arena) == 0

    def test_negative_shape_rejected(self):
        with pytest.raises(ValidationError):
            WorkspaceArena().take("x", (-1, 2))


class TestNullArena:
    def test_always_allocates(self):
        arena = NullArena()
        a = arena.take("tile", (4, 4))
        b = arena.take("tile", (4, 4))
        assert a.shape == b.shape == (4, 4)
        assert not np.shares_memory(a, b)
        assert arena.nbytes == 0


class TestArenaPool:
    def test_serial_borrow_reuses_one_arena(self):
        pool = ArenaPool()
        with pool.borrow() as a:
            a.take("t", (4,))
        with pool.borrow() as b:
            assert b.nbytes == 4 * 8  # the same arena came back
        assert pool.created == 1

    def test_nested_borrows_get_distinct_arenas(self):
        pool = ArenaPool()
        with pool.borrow() as a, pool.borrow() as b:
            assert a is not b
        assert pool.created == 2

    def test_null_pool_never_retains(self):
        pool = null_arena_pool()
        with pool.borrow() as a:
            a.take("t", (100,))
        assert pool.nbytes == 0
