"""Unit tests for distance functions."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.spatial.distance import cdist

from repro.core.norms import (
    Norm,
    pairwise_block,
    pairwise_lp,
    pairwise_sq_l2,
    resolve_norm,
    squared_norms,
)
from repro.errors import ValidationError


class TestNorm:
    def test_aliases(self):
        assert resolve_norm("l2").p == 2.0
        assert resolve_norm("euclidean").p == 2.0
        assert resolve_norm("l1").p == 1.0
        assert resolve_norm("manhattan").p == 1.0
        assert np.isinf(resolve_norm("linf").p)
        assert np.isinf(resolve_norm("chebyshev").p)

    def test_numeric(self):
        assert resolve_norm(3).p == 3.0
        assert resolve_norm(0.5).p == 0.5

    def test_norm_passthrough(self):
        norm = Norm(2.5)
        assert resolve_norm(norm) is norm

    def test_invalid(self):
        with pytest.raises(ValidationError):
            resolve_norm("l3000x")
        with pytest.raises(ValidationError):
            resolve_norm(0)
        with pytest.raises(ValidationError):
            resolve_norm(-1)

    def test_equality_and_hash(self):
        assert Norm(2.0) == Norm(2.0)
        assert hash(Norm(1.0)) == hash(Norm(1.0))
        assert Norm(1.0) != Norm(2.0)

    def test_flags(self):
        assert Norm(2.0).is_l2
        assert Norm(np.inf).is_linf
        assert not Norm(1.0).is_l2


class TestSquaredNorms:
    def test_matches_einsum_free_form(self, rng):
        X = rng.random((7, 5))
        np.testing.assert_allclose(squared_norms(X), (X**2).sum(axis=1))


class TestPairwiseSqL2:
    def test_matches_cdist(self, rng):
        Q, R = rng.random((9, 6)), rng.random((11, 6))
        got = pairwise_sq_l2(Q, R)
        want = cdist(Q, R, "sqeuclidean")
        np.testing.assert_allclose(got, want, atol=1e-10)

    def test_precomputed_norms_path(self, rng):
        Q, R = rng.random((4, 3)), rng.random((5, 3))
        got = pairwise_sq_l2(Q, R, squared_norms(Q), squared_norms(R))
        np.testing.assert_allclose(got, cdist(Q, R, "sqeuclidean"), atol=1e-10)

    def test_self_distance_clamped_to_zero(self, rng):
        """Cancellation must never produce negative squared distances."""
        Q = rng.random((50, 40)) * 1e3
        got = pairwise_sq_l2(Q, Q)
        assert (got >= 0).all()
        np.testing.assert_allclose(np.diag(got), 0.0, atol=1e-6)

    def test_width_mismatch(self, rng):
        with pytest.raises(ValidationError):
            pairwise_sq_l2(rng.random((2, 3)), rng.random((2, 4)))


class TestPairwiseLp:
    @pytest.mark.parametrize(
        "p,metric",
        [(1.0, "cityblock"), (np.inf, "chebyshev"), (3.0, None), (0.5, None)],
    )
    def test_matches_cdist(self, rng, p, metric):
        Q, R = rng.random((6, 4)), rng.random((8, 4))
        got = pairwise_lp(Q, R, p)
        if metric is not None:
            want = cdist(Q, R, metric)
        else:
            want = cdist(Q, R, "minkowski", p=p)
        np.testing.assert_allclose(got, want, atol=1e-10)

    def test_single_dimension(self, rng):
        Q, R = rng.random((3, 1)), rng.random((4, 1))
        got = pairwise_lp(Q, R, 1.0)
        np.testing.assert_allclose(got, np.abs(Q - R.T), atol=1e-12)


class TestPairwiseBlock:
    def test_l2_returns_squared(self, rng):
        Q, R = rng.random((3, 4)), rng.random((5, 4))
        got = pairwise_block(Q, R, Norm(2.0))
        np.testing.assert_allclose(got, cdist(Q, R, "sqeuclidean"), atol=1e-10)

    def test_lp_returns_natural(self, rng):
        Q, R = rng.random((3, 4)), rng.random((5, 4))
        got = pairwise_block(Q, R, Norm(1.0))
        np.testing.assert_allclose(got, cdist(Q, R, "cityblock"), atol=1e-10)

    def test_ordering_consistency(self, rng):
        """Squared vs natural doesn't matter for kNN: orderings agree."""
        Q, R = rng.random((4, 6)), rng.random((20, 6))
        sq = pairwise_block(Q, R, Norm(2.0))
        true = cdist(Q, R, "euclidean")
        np.testing.assert_array_equal(
            np.argsort(sq, axis=1), np.argsort(true, axis=1)
        )
