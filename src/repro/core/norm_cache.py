"""Cross-call cache of reference squared norms (the paper's global X2).

The paper computes ``|x_i|^2`` once per coordinate table and reuses it
across every kernel call (§2.2's side table). The batch and streaming
drivers used to recompute it per batch/refresh — an O(N d) pass whose
cost is pure waste whenever the table hasn't changed. This cache keys
on the table's *identity and shape*: the same ndarray object at the
same shape hits; a new object (e.g. the streaming structure's
``vstack`` after an insert) or a reshape invalidates naturally because
the key no longer matches.

Identity alone has a staleness hazard: mutate ``X`` *in place* and the
object id (and shape) still match, silently serving norms of the old
contents. Entries therefore also record a cheap content fingerprint —
``(shape, dtype, writeable)`` plus CRC32 hashes of the first and last
rows (see :func:`array_fingerprint`) — and any mismatch is treated as a
miss. The fingerprint is O(d), not O(N d), so a hit stays cheap; an
in-place edit that touches neither boundary row can still slip through,
which is the documented trade-off of a sentinel check (callers that
rewrite interior rows should replace the array object instead).

Entries hold only a weak reference to the table, so caching never
extends an array's lifetime; a handful of entries (LRU, default 8)
bounds memory for the norm vectors themselves. Hits and misses are
counted in the metrics registry (``norms.cache_hits`` /
``norms.cache_misses``) when observability is on.
"""

from __future__ import annotations

import threading
import weakref
import zlib
from collections import OrderedDict

import numpy as np

from ..obs.metrics import get_registry as _get_registry
from .norms import squared_norms

__all__ = [
    "SquaredNormCache",
    "array_fingerprint",
    "cached_squared_norms",
    "get_norm_cache",
]


def array_fingerprint(X: np.ndarray) -> tuple:
    """Cheap staleness sentinel for an array's contents.

    ``(shape, dtype, writeable, crc32(first row), crc32(last row))`` —
    O(d) to compute, so it can guard every cache hit. Used by this
    cache and by :class:`repro.core.plan.GsknnPlan` to invalidate
    cached reference panels when the coordinate table is mutated in
    place between calls.
    """
    arr = np.asarray(X)
    if arr.size == 0:
        first = last = 0
    else:
        first = zlib.crc32(np.ascontiguousarray(arr[0]).tobytes())
        last = zlib.crc32(np.ascontiguousarray(arr[-1]).tobytes())
    return (arr.shape, arr.dtype.str, bool(arr.flags.writeable), first, last)


class SquaredNormCache:
    """Identity-keyed LRU cache of ``squared_norms(X)`` results."""

    def __init__(self, max_entries: int = 8) -> None:
        self.max_entries = int(max_entries)
        self._lock = threading.Lock()
        # id(X) -> (weakref to X, content fingerprint, norms)
        self._entries: OrderedDict[
            int, tuple[weakref.ref, tuple, np.ndarray]
        ] = OrderedDict()

    def get(self, X: np.ndarray) -> np.ndarray:
        """``squared_norms(X)``, cached on identity + content fingerprint."""
        key = id(X)
        registry = _get_registry()
        fingerprint = array_fingerprint(X)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                ref, stored_fp, norms = entry
                if ref() is X and stored_fp == fingerprint:
                    self._entries.move_to_end(key)
                    if registry.enabled:
                        registry.inc("norms.cache_hits")
                    return norms
                # stale: the id was recycled by a different/reshaped
                # array, or the contents were mutated in place
                del self._entries[key]
                if registry.enabled and ref() is X:
                    registry.inc("norms.cache_stale")
        norms = squared_norms(X)
        if registry.enabled:
            registry.inc("norms.cache_misses")
        try:
            ref = weakref.ref(X, self._make_reaper(key))
        except TypeError:
            # non-weakref-able view/subclass: still correct, just uncached
            return norms
        with self._lock:
            self._entries[key] = (ref, fingerprint, norms)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return norms

    def _make_reaper(self, key: int):
        def _reap(_ref: weakref.ref) -> None:
            with self._lock:
                self._entries.pop(key, None)

        return _reap

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


#: Process-global instance the drivers share.
_GLOBAL_CACHE = SquaredNormCache()


def get_norm_cache() -> SquaredNormCache:
    return _GLOBAL_CACHE


def cached_squared_norms(X: np.ndarray) -> np.ndarray:
    """Module-level convenience over the global cache."""
    return _GLOBAL_CACHE.get(X)
