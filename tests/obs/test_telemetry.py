"""Benchmark telemetry records: schema, persistence, diffing."""

from __future__ import annotations

import json

import pytest

from repro.errors import ValidationError
from repro.obs import telemetry
from repro.obs.telemetry import (
    BENCH_SCHEMA_VERSION,
    build_record,
    diff_records,
    environment_fingerprint,
    load_record,
    validate_record,
    write_record,
)


def small_record(**overrides):
    record = build_record(
        "unit_exp",
        problem={"m": 64, "n": 64, "d": 8, "k": 4},
        metrics={"total_seconds": 1.0, "gflops": 2.5},
    )
    record.update(overrides)
    return record


class TestBuildAndValidate:
    def test_build_record_is_valid(self):
        record = small_record()
        validate_record(record)  # no raise
        assert record["schema_version"] == BENCH_SCHEMA_VERSION
        assert record["metrics"]["gflops"] == 2.5

    def test_metrics_coerced_to_float(self):
        record = build_record("x", metrics={"count": 3})
        assert isinstance(record["metrics"]["count"], float)

    def test_environment_fingerprint_fields(self):
        env = environment_fingerprint()
        for key in ("python", "numpy", "platform", "machine", "git_sha"):
            assert key in env

    def test_git_sha_present_in_repo(self):
        # this test runs inside the repo, so the SHA must resolve
        sha = telemetry.git_sha()
        assert sha and len(sha) == 40

    def test_non_dict_rejected(self):
        with pytest.raises(ValidationError, match="JSON object"):
            validate_record([1, 2, 3])

    def test_missing_fields_all_listed(self):
        with pytest.raises(ValidationError) as exc:
            validate_record({"name": "x"})
        message = str(exc.value)
        for field in ("schema_version", "created_unix", "metrics"):
            assert field in message

    def test_future_schema_version_rejected(self):
        with pytest.raises(ValidationError, match="outside supported range"):
            validate_record(small_record(schema_version=BENCH_SCHEMA_VERSION + 1))

    def test_non_numeric_metric_rejected(self):
        record = small_record()
        record["metrics"]["bad"] = "fast"
        with pytest.raises(ValidationError, match="must be a number"):
            validate_record(record)

    def test_bool_metric_rejected(self):
        record = small_record()
        record["metrics"]["flag"] = True
        with pytest.raises(ValidationError, match="must be a number"):
            validate_record(record)

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError, match="non-empty"):
            validate_record(small_record(name=""))


class TestPersistence:
    def test_write_load_roundtrip(self, tmp_path):
        record = small_record()
        path = write_record(record, tmp_path)
        assert path.name == "BENCH_unit_exp.json"
        assert load_record(path) == record

    def test_write_leaves_no_temp_file(self, tmp_path):
        write_record(small_record(), tmp_path)
        assert [p.name for p in tmp_path.iterdir()] == ["BENCH_unit_exp.json"]

    def test_write_rejects_invalid(self, tmp_path):
        with pytest.raises(ValidationError):
            write_record({"name": "x"}, tmp_path)
        assert list(tmp_path.iterdir()) == []

    def test_load_rejects_corrupt_json(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text("{not json")
        with pytest.raises(ValidationError, match="not valid JSON"):
            load_record(path)

    def test_load_error_names_the_file(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps({"name": "bad"}))
        with pytest.raises(ValidationError, match="BENCH_bad.json"):
            load_record(path)


class TestDiff:
    def _pair(self, old_metrics, new_metrics):
        old = build_record("exp", metrics=old_metrics)
        new = build_record("exp", metrics=new_metrics)
        return old, new

    def test_unchanged_within_threshold_is_ok(self):
        old, new = self._pair({"t": 1.00}, {"t": 1.04})
        rows = diff_records(old, new, threshold=0.05)
        assert rows[0]["status"] == "ok"

    def test_change_beyond_threshold_flagged(self):
        old, new = self._pair({"t": 1.0}, {"t": 1.2})
        row = diff_records(old, new, threshold=0.05)[0]
        assert row["status"] == "changed"
        assert row["ratio"] == pytest.approx(1.2)
        assert row["delta"] == pytest.approx(0.2)

    def test_added_and_removed(self):
        old, new = self._pair({"a": 1.0}, {"b": 2.0})
        by_metric = {r["metric"]: r for r in diff_records(old, new)}
        assert by_metric["a"]["status"] == "removed"
        assert by_metric["b"]["status"] == "added"

    def test_zero_old_value(self):
        old, new = self._pair({"t": 0.0}, {"t": 0.5})
        row = diff_records(old, new)[0]
        assert row["status"] == "changed"

    def test_rows_sorted_by_metric(self):
        old, new = self._pair({"b": 1.0, "a": 1.0}, {"b": 1.0, "a": 1.0})
        assert [r["metric"] for r in diff_records(old, new)] == ["a", "b"]

    def test_threshold_validated(self):
        old, new = self._pair({}, {})
        with pytest.raises(ValidationError):
            diff_records(old, new, threshold=-0.1)
