"""Unit tests for the LSH partitioner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.trees import LSHSolver


class TestLSHSolver:
    def test_buckets_are_disjoint_within_table(self, rng):
        X = rng.random((300, 6))
        solver = LSHSolver(n_tables=2, seed=0)
        for table in solver.buckets(X):
            seen = set()
            for bucket in table:
                ids = set(bucket.tolist())
                assert not (seen & ids)
                seen |= ids

    def test_buckets_have_at_least_two_points(self, rng):
        X = rng.random((200, 4))
        for table in LSHSolver(n_tables=2, seed=1).buckets(X):
            for bucket in table:
                assert bucket.size >= 2

    def test_max_bucket_respected(self, rng):
        X = rng.random((500, 3))
        solver = LSHSolver(
            n_projections=1, bucket_width=100.0, n_tables=1, max_bucket=64, seed=0
        )
        for table in solver.buckets(X):
            for bucket in table:
                assert bucket.size <= 64

    def test_near_points_share_buckets_more_than_far_points(self, rng):
        """The LSH property: spatially close pairs collide more often."""
        base = rng.random((100, 8))
        near = base + rng.normal(scale=0.01, size=base.shape)
        far = rng.random((100, 8)) + 10.0
        X = np.vstack([base, near, far])
        solver = LSHSolver(n_projections=3, n_tables=5, seed=0)
        near_hits = far_hits = 0
        for table in solver.buckets(X):
            for bucket in table:
                members = set(bucket.tolist())
                for i in range(100):
                    if i in members and i + 100 in members:
                        near_hits += 1
                    if i in members and i + 200 in members:
                        far_hits += 1
        assert near_hits > far_hits

    def test_tables_differ(self, rng):
        X = rng.random((200, 5))
        tables = list(LSHSolver(n_tables=2, seed=3).buckets(X))
        sig = lambda t: sorted(tuple(sorted(b.tolist())) for b in t)
        assert sig(tables[0]) != sig(tables[1])

    def test_reproducible(self, rng):
        X = rng.random((150, 4))
        a = list(LSHSolver(n_tables=1, seed=5).buckets(X))[0]
        b = list(LSHSolver(n_tables=1, seed=5).buckets(X))[0]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_validation(self):
        with pytest.raises(ValidationError):
            LSHSolver(n_projections=0)
        with pytest.raises(ValidationError):
            LSHSolver(n_tables=0)
        with pytest.raises(ValidationError):
            LSHSolver(max_bucket=1)
        with pytest.raises(ValidationError):
            LSHSolver(bucket_width=0.0)

    def test_empty_input_rejected(self):
        with pytest.raises(ValidationError):
            list(LSHSolver().buckets(np.empty((0, 3))))
