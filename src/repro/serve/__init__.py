"""Online serving front-end: admission-controlled micro-batching.

Concurrent small kNN queries against one shared reference table are
coalesced into fused batched solves (see :mod:`repro.serve.service` for
the full design). Public surface::

    from repro.serve import KnnQueryService, ServeConfig

    with KnnQueryService(X, ServeConfig(max_wait_ms=2.0)) as svc:
        handle = svc.submit([3, 17], k=8, tenant="search")
        neighbors = handle.result()

Shed requests raise :class:`repro.errors.OverloadError` (with a
``retry_after`` estimate); deadline expiry raises
:class:`repro.errors.KernelTimeoutError` from ``handle.result()``.
"""

from .config import ServeConfig
from .loadgen import LoadReport, TenantStats, run_closed_loop
from .policy import ArrivalEstimator, CoalescingPolicy
from .queueing import FairQueue, PendingRequest
from .service import KnnQueryService, ServeHandle

__all__ = [
    "ServeConfig",
    "KnnQueryService",
    "ServeHandle",
    "CoalescingPolicy",
    "ArrivalEstimator",
    "FairQueue",
    "PendingRequest",
    "LoadReport",
    "TenantStats",
    "run_closed_loop",
]
