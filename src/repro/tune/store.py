"""Persisted per-host tuning cache: schema-versioned, fingerprint-keyed.

Tuned parameters are only valid on the machine (and numerical stack)
that produced them — a blocking choice sized for one cache hierarchy is
wrong on another, and the Var#1/Var#6 crossover moves with the BLAS.
The cache file therefore keys every entry by a **host fingerprint**
(cpu count, architecture, BLAS vendor, numpy version, python major) and
the loader returns nothing — never a wrong entry — when the running
host does not match.

File shape (``tuning.json``)::

    {
      "schema_version": 1,
      "hosts": {
        "<fingerprint key>": {
          "fingerprint": {...},        # the full dict, for humans
          "config": {...},             # TunedConfig fields
          "budget": "small",
          "created_unix": 1754500000.0
        }
      }
    }

Location: ``$REPRO_TUNE_CACHE`` if set, else
``~/.cache/repro-gsknn/tuning.json``. Writes are atomic (temp file +
rename); a corrupt or future-versioned file loads as empty rather than
raising, so ``gsknn(..., blocking="tuned")`` always degrades cleanly to
the defaults.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any

from ..errors import ValidationError
from ..ioutil import atomic_write_json

__all__ = [
    "TUNE_SCHEMA_VERSION",
    "TunedConfig",
    "host_fingerprint",
    "fingerprint_key",
    "default_cache_path",
    "save_tuned_config",
    "load_tuned_config",
]

TUNE_SCHEMA_VERSION = 1

_CACHE_ENV = "REPRO_TUNE_CACHE"


@dataclass(frozen=True)
class TunedConfig:
    """The autotuner's winning configuration for one host.

    ``block_m``/``block_n`` are the fast path's cache-block sizes (the
    numpy-scale ``m_c``/``n_c``); ``p`` and ``chunks_per_worker`` size
    the data-parallel decomposition; ``switch_k`` is the measured
    Var#1 -> Var#6 crossover; ``backend`` is the fastest execution
    backend for this host.
    """

    block_m: int = 1024
    block_n: int = 2048
    p: int = 1
    chunks_per_worker: int = 1
    switch_k: int = 256
    backend: str = "threads"

    def __post_init__(self) -> None:
        for name in ("block_m", "block_n", "p", "chunks_per_worker", "switch_k"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ValidationError(
                    f"tuned parameter {name} must be a positive int, got {value!r}"
                )
        if self.backend not in ("serial", "threads", "processes"):
            raise ValidationError(
                f"tuned backend must be serial/threads/processes, got "
                f"{self.backend!r}"
            )


def _blas_vendor() -> str:
    """Best-effort BLAS identification from numpy's build config."""
    try:
        import numpy

        config = numpy.show_config(mode="dicts")  # numpy >= 1.25
        blas = (config.get("Build Dependencies") or {}).get("blas") or {}
        name = blas.get("name") or "unknown"
        return str(name)
    except Exception:
        return "unknown"


def host_fingerprint() -> dict[str, Any]:
    """What the tuned numbers depend on: cores, arch, numpy, BLAS."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep
        numpy_version = "none"
    return {
        "cpu_count": os.cpu_count() or 1,
        "machine": platform.machine(),
        "numpy": numpy_version,
        "blas": _blas_vendor(),
        "python": ".".join(platform.python_version_tuple()[:2]),
    }


def fingerprint_key(fingerprint: dict[str, Any] | None = None) -> str:
    """Stable flat key for one fingerprint (the ``hosts`` dict key)."""
    fp = host_fingerprint() if fingerprint is None else fingerprint
    return "|".join(
        f"{field}={fp.get(field)}"
        for field in ("cpu_count", "machine", "numpy", "blas", "python")
    )


def default_cache_path() -> Path:
    env = os.environ.get(_CACHE_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-gsknn" / "tuning.json"


def _load_file(path: Path) -> dict[str, Any]:
    """Read the cache file; anything unusable degrades to empty."""
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return {"schema_version": TUNE_SCHEMA_VERSION, "hosts": {}}
    if (
        not isinstance(doc, dict)
        or not isinstance(doc.get("hosts"), dict)
        or not isinstance(doc.get("schema_version"), int)
        or doc["schema_version"] > TUNE_SCHEMA_VERSION
        or doc["schema_version"] < 1
    ):
        return {"schema_version": TUNE_SCHEMA_VERSION, "hosts": {}}
    return doc


def save_tuned_config(
    config: TunedConfig,
    *,
    cache_path: str | Path | None = None,
    budget: str = "small",
    extra: dict[str, Any] | None = None,
) -> Path:
    """Persist ``config`` under this host's fingerprint; returns the path.

    Entries for other hosts in the same file are preserved (a shared
    home directory may serve several machines).
    """
    path = Path(cache_path) if cache_path is not None else default_cache_path()
    doc = _load_file(path) if path.exists() else {
        "schema_version": TUNE_SCHEMA_VERSION,
        "hosts": {},
    }
    fp = host_fingerprint()
    entry: dict[str, Any] = {
        "fingerprint": fp,
        "config": asdict(config),
        "budget": budget,
        "created_unix": time.time(),
    }
    if extra:
        entry["extra"] = dict(extra)
    doc["schema_version"] = TUNE_SCHEMA_VERSION
    doc["hosts"][fingerprint_key(fp)] = entry
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_json(path, doc)
    return path


def load_tuned_config(
    cache_path: str | Path | None = None,
) -> TunedConfig | None:
    """This host's tuned configuration, or ``None``.

    ``None`` — never an exception — when the file is missing, corrupt,
    from a future schema, or holds no entry matching this host's
    fingerprint: the caller's contract is "use the tuned numbers if
    trustworthy, else the defaults".
    """
    path = Path(cache_path) if cache_path is not None else default_cache_path()
    if not path.exists():
        return None
    entry = _load_file(path)["hosts"].get(fingerprint_key())
    if not isinstance(entry, dict) or not isinstance(entry.get("config"), dict):
        return None
    fields = entry["config"]
    try:
        return TunedConfig(
            **{
                k: fields[k]
                for k in (
                    "block_m",
                    "block_n",
                    "p",
                    "chunks_per_worker",
                    "switch_k",
                    "backend",
                )
                if k in fields
            }
        )
    except (TypeError, ValidationError):
        return None
