"""Span-based structured tracing for the kNN kernels.

The paper's analysis is phase-level — ``T_coll + T_gemm + T_sq2d +
T_heap`` — but a flat phase timer cannot express *where inside the loop
nest* time goes (which 6th-loop block, which variant, nested pack inside
gemm inside gsknn). :class:`Tracer` records **nested timed spans** with
attributes, cheap enough to leave compiled into the hot paths:

* disabled (the default), ``tracer.span(...)`` returns a shared no-op
  context manager — one attribute read and one method call, **zero
  allocations** per use;
* enabled, each span records ``(name, start, duration, thread, depth,
  parent)`` plus user attributes, appended under a lock so concurrent
  kernel threads can share one tracer.

Exports:

* :meth:`Tracer.export_chrome` — the ``chrome://tracing`` / Perfetto
  JSON object format (complete "X" events, microsecond timestamps);
* :meth:`Tracer.export_jsonl` — one flat JSON event per line, for
  grep/jq pipelines;
* :meth:`Tracer.aggregate` — per-name call count and total seconds, the
  bridge from a trace to a Table-5-style phase breakdown.

A process-global tracer (:func:`get_tracer`) is what the instrumented
kernels use; :func:`enable_tracing` / :func:`disable_tracing` flip it.
Sampling: ``Tracer(sample_every=N)`` records only every Nth span, so a
benchmark loop can stay instrumented without tracing every iteration.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from ..errors import ValidationError

__all__ = [
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "enable_tracing",
    "disable_tracing",
    "span",
]


@dataclass(frozen=True)
class Span:
    """One completed span. Times are seconds on the tracer's clock."""

    span_id: int
    parent_id: int  # -1 for roots
    name: str
    start: float
    duration: float
    thread: int
    depth: int
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.duration

    def to_event(self) -> dict[str, Any]:
        """Flat JSONL shape (seconds, repo-native keys)."""
        event = {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "ts": self.start,
            "dur": self.duration,
            "tid": self.thread,
            "depth": self.depth,
        }
        if self.attrs:
            event["attrs"] = self.attrs
        return event

    def to_chrome_event(self) -> dict[str, Any]:
        """Chrome trace "complete" event (microsecond timestamps)."""
        return {
            "name": self.name,
            "ph": "X",
            "ts": self.start * 1e6,
            "dur": self.duration * 1e6,
            "pid": 0,
            "tid": self.thread,
            "args": dict(self.attrs),
        }


class _NullSpan:
    """Shared no-op context manager — the disabled-tracer hot path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """An open span; closing it appends a :class:`Span` to the tracer."""

    __slots__ = ("_tracer", "name", "attrs", "_start", "_id", "_parent", "_depth")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_LiveSpan":
        tracer = self._tracer
        stack = tracer._stack()
        self._parent = stack[-1] if stack else -1
        self._depth = len(stack)
        self._id = tracer._next_id()
        stack.append(self._id)
        self._start = tracer.clock()
        return self

    def __exit__(self, *exc: object) -> None:
        tracer = self._tracer
        duration = tracer.clock() - self._start
        stack = tracer._stack()
        if stack and stack[-1] == self._id:
            stack.pop()
        tracer._record(
            Span(
                span_id=self._id,
                parent_id=self._parent,
                name=self.name,
                start=self._start - tracer.epoch,
                duration=duration,
                thread=threading.get_ident() & 0xFFFF,
                depth=self._depth,
                attrs=self.attrs,
            )
        )


class Tracer:
    """Thread-safe nested-span recorder with near-zero disabled overhead."""

    def __init__(
        self,
        *,
        enabled: bool = False,
        sample_every: int = 1,
        clock=time.perf_counter,
    ) -> None:
        if sample_every < 1:
            raise ValidationError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        self.enabled = bool(enabled)
        self.sample_every = int(sample_every)
        self.clock = clock
        self.epoch = clock()
        self._spans: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._counter = 0
        # Unsynchronized sampling counter: approximate under threads,
        # which is fine — sampling is a rate, not an exact stride.
        self._sample_tick = 0

    # -- recording --------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """Open a span. Returns a context manager.

        Disabled tracers return a shared no-op instance: no allocation,
        no clock read. This is THE hot-path contract the kernels rely on.
        """
        if not self.enabled:
            return _NULL_SPAN
        if self.sample_every > 1:
            self._sample_tick += 1
            if self._sample_tick % self.sample_every:
                return _NULL_SPAN
        return _LiveSpan(self, name, attrs)

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _next_id(self) -> int:
        with self._lock:
            self._counter += 1
            return self._counter

    def _record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._counter = 0
        self.epoch = self.clock()

    # -- reading ----------------------------------------------------------

    @property
    def spans(self) -> list[Span]:
        """Completed spans, in completion order (children before parents)."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def find(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def aggregate(self) -> dict[str, dict[str, float]]:
        """Per-name totals: ``{name: {count, total_seconds, self_seconds}}``.

        ``self_seconds`` excludes time covered by the span's own children
        — the phase-breakdown view (summing self times over a tree equals
        the root's wall clock, so the table's rows add up).
        """
        spans = self.spans
        child_time: dict[int, float] = {}
        for s in spans:
            if s.parent_id != -1:
                child_time[s.parent_id] = (
                    child_time.get(s.parent_id, 0.0) + s.duration
                )
        out: dict[str, dict[str, float]] = {}
        for s in spans:
            row = out.setdefault(
                s.name, {"count": 0, "total_seconds": 0.0, "self_seconds": 0.0}
            )
            row["count"] += 1
            row["total_seconds"] += s.duration
            row["self_seconds"] += max(
                s.duration - child_time.get(s.span_id, 0.0), 0.0
            )
        return out

    def roots(self) -> list[Span]:
        return [s for s in self.spans if s.parent_id == -1]

    def children_of(self, span_id: int) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span_id]

    # -- export -----------------------------------------------------------

    def to_chrome(self) -> dict[str, Any]:
        """The ``chrome://tracing`` JSON object (load in Perfetto too)."""
        return {
            "traceEvents": [s.to_chrome_event() for s in self.spans],
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro-gsknn", "format_version": 1},
        }

    def export_chrome(self, path: str | Path) -> Path:
        """Write the Chrome trace JSON; returns the path written."""
        path = Path(path)
        path.write_text(json.dumps(self.to_chrome(), indent=1, sort_keys=True))
        return path

    def export_jsonl(self, path: str | Path) -> Path:
        """Write one flat JSON event per line (grep/jq-friendly)."""
        path = Path(path)
        with path.open("w") as fh:
            for s in self.spans:
                fh.write(json.dumps(s.to_event(), sort_keys=True) + "\n")
        return path

    def iter_events(self) -> Iterator[dict[str, Any]]:
        for s in self.spans:
            yield s.to_event()


#: Process-global tracer the instrumented kernels report to. Disabled by
#: default — the kernels pay one attribute check per span site.
_GLOBAL_TRACER = Tracer()


def get_tracer() -> Tracer:
    return _GLOBAL_TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the global tracer (tests use this to isolate); returns the old."""
    global _GLOBAL_TRACER
    old, _GLOBAL_TRACER = _GLOBAL_TRACER, tracer
    return old


def enable_tracing(*, sample_every: int = 1) -> Tracer:
    """Enable the global tracer (fresh buffer) and return it."""
    tracer = get_tracer()
    tracer.clear()
    tracer.sample_every = int(sample_every)
    tracer.enable()
    return tracer


def disable_tracing() -> Tracer:
    tracer = get_tracer()
    tracer.disable()
    return tracer


def span(name: str, **attrs: Any):
    """Open a span on the global tracer — the kernels' one-liner hook."""
    return _GLOBAL_TRACER.span(name, **attrs)
