"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors (``TypeError`` and friends still propagate).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ValidationError(ReproError, ValueError):
    """An input array or parameter failed validation.

    Subclasses ``ValueError`` so existing ``except ValueError`` call sites
    keep working.
    """


class ConfigurationError(ReproError, ValueError):
    """A configuration object is internally inconsistent.

    Raised e.g. when blocking parameters do not satisfy the constraints of
    the Goto partitioning (``m_r`` must divide into ``m_c`` panels, cache
    capacities must be positive, ...).
    """


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to reach its target within its budget."""


class BackendError(ReproError, RuntimeError):
    """An execution backend failed mid-flight.

    Raised e.g. when a worker process of the ``processes`` backend dies
    (OOM-kill, segfault in a native extension) — the pool's low-level
    ``BrokenProcessPool`` is translated into this library error so
    callers see one clean failure instead of a hang or a foreign
    exception type.
    """
