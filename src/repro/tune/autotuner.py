"""Guided per-host search over blocking, workers, and the variant switch.

The paper fixes its parameters analytically for one known machine
(Ivy Bridge, §2.4/§3). A reproduction running on arbitrary hosts cannot:
cache sizes, core counts, BLAS builds, and the Python selection-path
cost all move the optima. This module measures instead — a three-stage
**guided** search (each stage conditions on the previous stage's
winner, so the space stays tiny compared to a full grid):

1. **Blocking** — coordinate descent over ``block_m`` x ``block_n``
   (the fast path's ``m_c``/``n_c`` analogues) on a representative
   Var#1 problem, serial kernel, best-of-N timing.
2. **Execution** — worker count, chunk granularity, and backend
   (``threads`` vs ``processes`` vs staying ``serial``) on the winning
   blocks.
3. **Crossover** — the empirical Var#1 <-> Var#6 switch-``k``: time both
   variants at geometric ``k`` probes and take the measured crossover,
   replacing the hard-coded ``NUMPY_VARIANT_SWITCH_K``.

Candidate timings flow through the PR-1 observability layer — every
measurement is a ``tune_candidate`` trace span and lands in the metrics
registry (``tune.candidates``, ``tune.candidate_seconds``) when
enabled — and the winner is persisted via :mod:`repro.tune.store` for
``gsknn(..., blocking="tuned")`` to pick up transparently.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..errors import ValidationError
from ..obs import trace as _trace
from ..obs.metrics import get_registry as _get_registry
from .store import TunedConfig, save_tuned_config

__all__ = ["TuneBudget", "BUDGETS", "Autotuner", "TuneReport"]


@dataclass(frozen=True)
class TuneBudget:
    """How much measuring a tuning run may do."""

    name: str
    m: int  #: representative problem: queries
    n: int  #: representative problem: references
    d: int  #: representative problem: dimension
    k: int  #: representative problem: neighbors (Var#1 regime)
    repeats: int  #: best-of-N per candidate
    block_candidates: tuple[int, ...]  #: block_m / block_n grid values
    p_max: int | None  #: worker cap (None = host cores)
    chunk_multipliers: tuple[int, ...]  #: chunks per worker to try
    switch_probes: tuple[int, ...]  #: k values probed for the crossover


BUDGETS: dict[str, TuneBudget] = {
    "small": TuneBudget(
        name="small",
        m=1024, n=1024, d=32, k=16,
        repeats=2,
        block_candidates=(512, 1024, 2048),
        p_max=4,
        chunk_multipliers=(1,),
        switch_probes=(64, 256, 512),
    ),
    "medium": TuneBudget(
        name="medium",
        m=4096, n=4096, d=32, k=32,
        repeats=3,
        block_candidates=(256, 512, 1024, 2048, 4096),
        p_max=None,
        chunk_multipliers=(1, 2),
        switch_probes=(32, 64, 128, 256, 512, 1024),
    ),
    "large": TuneBudget(
        name="large",
        m=8192, n=8192, d=32, k=64,
        repeats=3,
        block_candidates=(256, 512, 1024, 2048, 4096, 8192),
        p_max=None,
        chunk_multipliers=(1, 2, 4),
        switch_probes=(32, 64, 128, 256, 512, 1024, 2048),
    ),
}


@dataclass
class TuneReport:
    """Everything a tuning run measured, plus the winner."""

    config: TunedConfig
    budget: str
    candidates: list[dict[str, Any]] = field(default_factory=list)
    seconds: float = 0.0

    def best_seconds(self, stage: str) -> float:
        times = [c["seconds"] for c in self.candidates if c["stage"] == stage]
        return min(times) if times else float("nan")


class Autotuner:
    """Measure this host, return (and optionally persist) the winner.

    Parameters
    ----------
    budget:
        ``"small"`` / ``"medium"`` / ``"large"`` or a custom
        :class:`TuneBudget`. Small finishes in seconds and is what the
        CI gate runs; large approaches the paper's problem sizes.
    seed:
        Seed of the synthetic tuning problem.
    """

    def __init__(
        self, budget: str | TuneBudget = "small", *, seed: int = 0
    ) -> None:
        if isinstance(budget, str):
            if budget not in BUDGETS:
                raise ValidationError(
                    f"unknown budget {budget!r}; choose from {sorted(BUDGETS)}"
                )
            budget = BUDGETS[budget]
        self.budget = budget
        self.seed = int(seed)

    # -- measurement core -------------------------------------------------

    def _time(self, fn, stage: str, **attrs: Any) -> float:
        """Best-of-repeats wall clock, reported through the obs layer."""
        best = float("inf")
        for _ in range(self.budget.repeats):
            with _trace.span("tune_candidate", stage=stage, **attrs):
                t0 = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - t0)
        registry = _get_registry()
        if registry.enabled:
            registry.inc("tune.candidates")
            registry.observe("tune.candidate_seconds", best)
        self._report.candidates.append(
            {"stage": stage, "seconds": best, **attrs}
        )
        return best

    def _problem(self, k: int | None = None):
        from ..data.synthetic import uniform_hypercube

        b = self.budget
        n_points = max(b.m, b.n)
        ds = uniform_hypercube(n_points, b.d, seed=self.seed)
        rng = np.random.default_rng(self.seed + 1)
        q = rng.permutation(n_points)[: b.m]
        r = rng.permutation(n_points)[: b.n]
        return ds.points, q, r, (b.k if k is None else k)

    # -- stages -----------------------------------------------------------

    def _tune_blocking(self, X, q, r, k) -> tuple[int, int]:
        """Coordinate descent: best block_m at default block_n, then best
        block_n at that block_m."""
        from ..core.gsknn import gsknn

        block_n = 2048
        timings: dict[int, float] = {}
        for bm in self.budget.block_candidates:
            timings[bm] = self._time(
                lambda: gsknn(X, q, r, k, variant=1,
                              block_m=bm, block_n=block_n),
                "blocking", block_m=bm, block_n=block_n,
            )
        block_m = min(timings, key=timings.get)
        timings = {}
        for bn in self.budget.block_candidates:
            timings[bn] = self._time(
                lambda: gsknn(X, q, r, k, variant=1,
                              block_m=block_m, block_n=bn),
                "blocking", block_m=block_m, block_n=bn,
            )
        return block_m, min(timings, key=timings.get)


    def _tune_execution(self, X, q, r, k, block_m, block_n):
        """Workers x chunk granularity x backend, on the tuned blocks."""
        import os

        from ..parallel.data_parallel import gsknn_data_parallel

        cores = os.cpu_count() or 1
        p_cap = cores if self.budget.p_max is None else min(
            cores, self.budget.p_max
        )
        p_grid = sorted({1, 2, p_cap} & set(range(1, p_cap + 1)))
        best = (float("inf"), 1, 1, "serial")
        for p in p_grid:
            backends = ("serial",) if p == 1 else ("threads", "processes")
            for backend in backends:
                for mult in self.budget.chunk_multipliers:
                    if p == 1 and mult > 1:
                        continue
                    seconds = self._time(
                        lambda: gsknn_data_parallel(
                            X, q, r, k, p=p, backend=backend,
                            block_m=block_m, block_n=block_n,
                            chunks_per_worker=mult, variant=1,
                        ),
                        "execution", p=p, backend=backend, chunks=mult,
                    )
                    if seconds < best[0]:
                        best = (seconds, p, mult, backend)
        return best[1], best[2], best[3]

    def _tune_switch_k(self, X, q, r, block_m, block_n) -> int:
        """Measured Var#1 <-> Var#6 crossover over geometric k probes.

        Returns the largest probed k where Var#1 still wins (i.e. the
        tuned rule is "Var#1 iff k <= switch_k").
        """
        from ..core.gsknn import NUMPY_VARIANT_SWITCH_K, gsknn

        n = r.size
        switch = 0
        for k in self.budget.switch_probes:
            if k > n:
                break
            t1 = self._time(
                lambda: gsknn(X, q, r, k, variant=1,
                              block_m=block_m, block_n=block_n),
                "switch", variant=1, k=k,
            )
            t6 = self._time(
                lambda: gsknn(X, q, r, k, variant=6,
                              block_m=block_m, block_n=block_n),
                "switch", variant=6, k=k,
            )
            if t1 <= t6:
                switch = k
            else:
                break  # crossover passed; larger k only favors Var#6 more
        return switch if switch > 0 else NUMPY_VARIANT_SWITCH_K

    # -- driver -----------------------------------------------------------

    def run(
        self,
        *,
        persist: bool = True,
        cache_path=None,
    ) -> TuneReport:
        """Run all three stages; optionally persist the winner."""
        self._report = TuneReport(
            config=TunedConfig(), budget=self.budget.name
        )
        t0 = time.perf_counter()
        with _trace.span("autotune", budget=self.budget.name):
            X, q, r, k = self._problem()
            block_m, block_n = self._tune_blocking(X, q, r, k)
            p, mult, backend = self._tune_execution(
                X, q, r, k, block_m, block_n
            )
            switch_k = self._tune_switch_k(X, q, r, block_m, block_n)
        self._report.config = TunedConfig(
            block_m=block_m,
            block_n=block_n,
            p=p,
            chunks_per_worker=mult,
            switch_k=switch_k,
            backend=backend,
        )
        self._report.seconds = time.perf_counter() - t0
        registry = _get_registry()
        if registry.enabled:
            registry.observe("tune.run_seconds", self._report.seconds)
        if persist:
            save_tuned_config(
                self._report.config,
                cache_path=cache_path,
                budget=self.budget.name,
                extra={"tune_seconds": self._report.seconds},
            )
        return self._report
