"""Approximate all-nearest-neighbor solvers that consume the kNN kernel.

The kNN kernel's consumers (paper §1): partition the dataset into
groups, run an exact m x n kernel per group, merge neighbor lists,
iterate with fresh groupings until convergence. Two partitioners are
provided, matching the solvers GSKNN was integrated with:

* :mod:`repro.trees.rkdtree` — randomized KD-trees (the Table 1 outer
  solver);
* :mod:`repro.trees.lsh` — locality-sensitive hashing via random
  projections;
* :mod:`repro.trees.allknn` — the driver (exact brute force included),
  with recall-vs-truth evaluation.
"""

from .allknn import AllKnnReport, all_nearest_neighbors, exact_all_knn
from .evaluation import distance_ratio, quality_curve, recall_at
from .graph import GraphStats, graph_stats, knn_graph, mutual_knn_graph
from .lsh import LSHSolver
from .rkdtree import RandomizedKDForest, RandomizedKDTree
from .rptree import RandomProjectionForest, RandomProjectionTree
from .streaming import StreamingAllKnn

__all__ = [
    "RandomizedKDTree",
    "RandomizedKDForest",
    "LSHSolver",
    "all_nearest_neighbors",
    "exact_all_knn",
    "AllKnnReport",
    "StreamingAllKnn",
    "RandomProjectionTree",
    "RandomProjectionForest",
    "knn_graph",
    "mutual_knn_graph",
    "graph_stats",
    "GraphStats",
    "distance_ratio",
    "recall_at",
    "quality_curve",
]
