"""Wall-clock budgets for long-running solves.

A :class:`Deadline` is an absolute point on a monotonic clock, created
from a relative budget and passed *down* the call stack — through
:func:`repro.parallel.data_parallel.gsknn_data_parallel`, the backend
wait loops, :func:`repro.parallel.scheduler.execute_schedule`, and
:meth:`repro.distributed.solver.DistributedAllKnn.solve` — so that
every layer slices its waits from the same shrinking budget instead of
each inventing its own timeout.

Expiry raises :class:`repro.errors.KernelTimeoutError` (never a hang):
the checking site attaches *partial-result metadata* (how many chunks
completed, where the budget died) so callers can distinguish "almost
done" from "never started". Enforcement is cooperative — checks happen
between chunks and at pool waits — so the guarantee is expiry within
one chunk's runtime past the budget, not preemption mid-GEMM.
"""

from __future__ import annotations

import math
import time
from typing import Any, Callable

from ..errors import KernelTimeoutError, ValidationError
from ..obs.metrics import get_registry as _get_registry

__all__ = ["Deadline"]


class Deadline:
    """A monotonic-clock budget shared by every layer of one solve.

    Parameters
    ----------
    seconds:
        Relative budget from *now*. ``math.inf`` (or ``None`` via
        :meth:`coerce`) means unlimited — every check is a no-op.
    clock:
        Injectable time source (tests pin expiry without sleeping).
    """

    __slots__ = ("budget", "_clock", "_t0")

    def __init__(
        self,
        seconds: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        seconds = float(seconds)
        if not seconds > 0:  # also rejects NaN
            raise ValidationError(
                f"deadline budget must be > 0 seconds, got {seconds}"
            )
        self.budget = seconds
        self._clock = clock
        self._t0 = clock()

    @classmethod
    def after(cls, seconds: float, **kwargs: Any) -> "Deadline":
        """Explicit-name alias for the constructor: a budget from now."""
        return cls(seconds, **kwargs)

    @classmethod
    def coerce(cls, value: "Deadline | float | None") -> "Deadline | None":
        """Accept a ready :class:`Deadline`, a budget in seconds, or ``None``."""
        if value is None or isinstance(value, Deadline):
            return value
        return cls(float(value))

    # -- state ---------------------------------------------------------------

    @property
    def unlimited(self) -> bool:
        return math.isinf(self.budget)

    def elapsed(self) -> float:
        return self._clock() - self._t0

    def remaining(self) -> float:
        """Seconds left; negative once expired, ``inf`` when unlimited."""
        return self.budget - self.elapsed()

    def expired(self) -> bool:
        return self.remaining() <= 0

    def timeout(self, cap: float | None = None) -> float | None:
        """A value for ``wait(timeout=...)``: remaining budget, >= 0.

        ``None`` when unlimited (block forever), optionally capped so
        pollers can interleave other bookkeeping.
        """
        if self.unlimited:
            return cap
        left = max(self.remaining(), 0.0)
        return left if cap is None else min(left, cap)

    # -- enforcement ---------------------------------------------------------

    def check(self, site: str = "", **partial: Any) -> None:
        """Raise :class:`KernelTimeoutError` if the budget is exhausted.

        ``partial`` keyword metadata (e.g. ``completed=7, total=12``)
        rides on the exception so the caller learns how far the solve
        got. Counts a ``resilience.deadline_hits`` metric on expiry.
        """
        if not self.expired():
            return
        self.raise_expired(site, **partial)

    def raise_expired(self, site: str = "", **partial: Any) -> None:
        """Unconditionally raise the expiry error (wait loops that
        already observed a timeout call this directly).

        When a :class:`~repro.obs.context.RequestContext` is active its
        request id rides on the exception's partial metadata (and labels
        the ``resilience.deadline_hits`` counter), so a timeout surfaced
        to a caller is attributable to the request that overran."""
        from ..obs.context import current_request

        elapsed = self.elapsed()
        ctx = current_request()
        if ctx is not None:
            partial.setdefault("request_id", ctx.request_id)
        registry = _get_registry()
        if registry.enabled:
            labels = {"tenant": ctx.tenant} if ctx is not None else None
            registry.inc("resilience.deadline_hits", labels=labels)
        where = f" at {site}" if site else ""
        detail = ""
        if partial:
            detail = " (" + ", ".join(
                f"{k}={v}" for k, v in sorted(partial.items())
            ) + ")"
        raise KernelTimeoutError(
            f"deadline of {self.budget:.3f}s exceeded{where}: "
            f"{elapsed:.3f}s elapsed{detail}",
            budget=self.budget,
            elapsed=elapsed,
            site=site or None,
            partial=partial,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Deadline(budget={self.budget:.3f}s, "
            f"remaining={self.remaining():.3f}s)"
        )
