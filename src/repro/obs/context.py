"""Request context: one id that follows a solve everywhere it goes.

The observability layer answers "where did request X spend its time?"
only if every span, counter label, and error produced on behalf of a
caller carries the same identifier — across thread pools, process
workers, retry rungs, and simulated ranks. :class:`RequestContext` is
that identifier plus the two things a serving front-end attaches to it:
a tenant tag (for per-tenant accounting) and a deadline handle (so the
budget travels with the request instead of being re-threaded through
every signature).

Propagation uses :mod:`contextvars`, with two deliberate caveats:

* **threads do not inherit context** — pools must capture the current
  context at submission time and re-enter it in the worker (see
  :func:`bind_request` and the wrappers in ``parallel/backends.py``);
* **process workers cannot share a ContextVar** — the spec shipped to
  ``_process_worker_init`` carries ``request_id``/``tenant`` and the
  worker re-binds them for its whole lifetime.

The context is intentionally tiny and dependency-free: ``deadline`` is
typed loosely so this module never imports the resilience layer.
"""

from __future__ import annotations

import contextvars
import itertools
import os
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Any, Iterator

__all__ = [
    "RequestContext",
    "new_request_id",
    "current_request",
    "current_request_id",
    "request_scope",
    "bind_request",
    "coerce_request",
]

# Monotone per-process sequence; combined with the pid it makes request
# ids unique across a whole host without any coordination.
_SEQ = itertools.count(1)


def new_request_id() -> str:
    """A host-unique request id: ``req-<pid>-<seq>``."""
    return f"req-{os.getpid():x}-{next(_SEQ):04x}"


@dataclass(frozen=True)
class RequestContext:
    """Identity and budget of one caller-visible operation.

    Attributes
    ----------
    request_id:
        Correlates spans, metric labels, and errors end to end.
    tenant:
        Accounting tag; ``"default"`` when single-tenant.
    deadline:
        Optional :class:`repro.resilience.Deadline`. Carried by
        reference so every layer slices the same shrinking budget;
        never serialized across process boundaries (workers receive
        only id + tenant).
    """

    request_id: str
    tenant: str = "default"
    deadline: Any = None

    @classmethod
    def new(
        cls, *, tenant: str = "default", deadline: Any = None
    ) -> "RequestContext":
        return cls(request_id=new_request_id(), tenant=tenant, deadline=deadline)

    def with_deadline(self, deadline: Any) -> "RequestContext":
        return replace(self, deadline=deadline)


_REQUEST: contextvars.ContextVar[RequestContext | None] = contextvars.ContextVar(
    "repro_request", default=None
)


def current_request() -> RequestContext | None:
    """The active request context, or ``None`` outside any scope."""
    return _REQUEST.get()


def current_request_id() -> str | None:
    """Convenience for span/label sites: the id alone, or ``None``."""
    ctx = _REQUEST.get()
    return ctx.request_id if ctx is not None else None


@contextmanager
def request_scope(ctx: RequestContext | None) -> Iterator[RequestContext | None]:
    """Enter a request scope; ``None`` is a no-op (nested calls inherit).

    Scopes nest: an inner solve issued on behalf of the same request
    simply does not open a new scope and inherits the outer id.
    """
    if ctx is None:
        yield None
        return
    token = _REQUEST.set(ctx)
    try:
        yield ctx
    finally:
        _REQUEST.reset(token)


def bind_request(ctx: RequestContext | None) -> None:
    """Bind a context for the rest of this thread/process lifetime.

    Worker entry points (process pool initializers, long-lived lane
    threads) use this instead of :func:`request_scope` because there is
    no enclosing frame to unwind to.
    """
    _REQUEST.set(ctx)


def coerce_request(value: "RequestContext | str | None") -> RequestContext | None:
    """Accept a ready context, a bare request-id string, or ``None``."""
    if value is None or isinstance(value, RequestContext):
        return value
    return RequestContext(request_id=str(value))
