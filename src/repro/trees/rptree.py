"""Random projection trees (Dasgupta & Freund — the paper's ref [6]).

The third partitioner family the paper's related work names: instead of
splitting on a coordinate axis (KD), each node splits on a *random
direction* — points are projected onto a random unit vector and cut
near the median. RP-trees adapt to low intrinsic dimension regardless
of how the data is oriented in the ambient space, which axis-aligned
splits only achieve after the embedding happens to align (the
embedded-Gaussian generator of Table 1 is exactly the case where this
matters: the latent subspace is randomly rotated).

Interface-compatible with :class:`~repro.trees.rkdtree.RandomizedKDTree`
so the all-NN driver accepts ``method="rptree"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ValidationError

__all__ = ["RandomProjectionTree", "RandomProjectionForest"]


@dataclass
class RandomProjectionTree:
    """One RP-tree; only the leaf partition is retained."""

    leaf_size: int
    jitter: float = 0.05  # split-point randomization around the median
    seed: int | None = None
    leaves: list[np.ndarray] = field(default_factory=list, repr=False)

    def fit(self, X: np.ndarray) -> "RandomProjectionTree":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] == 0:
            raise ValidationError(
                f"X must be a non-empty (N, d) array, got {X.shape}"
            )
        if self.leaf_size < 2:
            raise ValidationError(
                f"leaf_size must be >= 2, got {self.leaf_size}"
            )
        if not 0.0 <= self.jitter < 0.5:
            raise ValidationError(
                f"jitter must be in [0, 0.5), got {self.jitter}"
            )
        rng = np.random.default_rng(self.seed)
        self.leaves = []
        self._split(X, np.arange(X.shape[0], dtype=np.intp), rng)
        return self

    def _split(
        self, X: np.ndarray, idx: np.ndarray, rng: np.random.Generator
    ) -> None:
        if idx.size <= self.leaf_size:
            self.leaves.append(idx)
            return
        direction = rng.normal(size=X.shape[1])
        norm = np.linalg.norm(direction)
        if norm == 0.0:  # astronomically unlikely; retry deterministic-ish
            direction[0] = 1.0
            norm = 1.0
        direction /= norm
        projection = X[idx] @ direction
        order = np.argsort(projection, kind="stable")
        half = idx.size // 2
        spread = max(int(self.jitter * idx.size), 0)
        offset = int(rng.integers(-spread, spread + 1)) if spread else 0
        cut = int(np.clip(half + offset, 1, idx.size - 1))
        self._split(X, idx[order[:cut]], rng)
        self._split(X, idx[order[cut:]], rng)

    @property
    def n_leaves(self) -> int:
        return len(self.leaves)

    def leaf_sizes(self) -> np.ndarray:
        return np.array([leaf.size for leaf in self.leaves], dtype=np.intp)


@dataclass
class RandomProjectionForest:
    """Independently seeded RP-trees over the same points."""

    leaf_size: int
    n_trees: int = 8
    jitter: float = 0.05
    seed: int | None = 0

    def __post_init__(self) -> None:
        if self.n_trees < 1:
            raise ValidationError(f"n_trees must be >= 1, got {self.n_trees}")

    def trees(self, X: np.ndarray):
        root = np.random.default_rng(self.seed)
        for _ in range(self.n_trees):
            yield RandomProjectionTree(
                leaf_size=self.leaf_size,
                jitter=self.jitter,
                seed=int(root.integers(0, 2**63 - 1)),
            ).fit(X)
