"""Discrete memory-trace simulator for the kNN kernels.

Replays, against the :class:`~repro.machine.cache.CacheHierarchy`, the
sequence of memory accesses the three kernels of interest issue:

* ``"gsknn-var1"`` — Algorithm 2.2 with fused selection in the
  micro-kernel (distances live in registers, never stored);
* ``"gsknn-var6"`` — Algorithm 2.2 with selection after the 6th loop
  (the full ``m x n`` distance matrix is materialized);
* ``"gemm"`` — Algorithm 2.1: gather ``Q``/``R``, blocked GEMM into
  ``C``, post-pass for the norm terms, then selection.

Traces are at *span* granularity (one event per contiguous packed panel /
micro-panel / heap path, decomposed into lines by the hierarchy), which
keeps Python cost proportional to the number of loop iterations rather
than the number of bytes.

Heap-update accesses depend on the data (a candidate only walks the sift
path if it beats the root). The simulator uses the standard
random-stream insertion count — a query scanning ``n`` random candidates
performs about ``k + k * ln(n / k)`` insertions — and spreads those
insertions evenly over the candidate stream. This keeps the trace
deterministic and matches the expectation for the uniform datasets the
paper benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..config import BlockingParams, iter_blocks
from ..errors import ValidationError
from .cache import CacheHierarchy, CacheStats
from .params import MachineParams

__all__ = ["KnnTraceSimulator", "TraceResult"]

_DOUBLE = 8


@dataclass
class TraceResult:
    """Outcome of one simulated kernel execution."""

    kernel: str
    m: int
    n: int
    d: int
    k: int
    dram_read_bytes: int
    dram_total_bytes: int
    level_stats: dict[str, CacheStats]
    counts: dict[str, int] = field(default_factory=dict)
    #: region name -> {level name or "DRAM" -> lines satisfied there}
    region_stats: dict[str, dict[str, int]] = field(default_factory=dict)

    @property
    def dram_doubles(self) -> float:
        """DRAM traffic expressed in 8-byte units (the model's unit)."""
        return self.dram_total_bytes / _DOUBLE


def expected_heap_insertions(n: int, k: int) -> float:
    """E[# heap insertions] for one query scanning n random candidates.

    The first k candidates always insert; candidate i > k inserts with
    probability k/i, so the expectation is k + k*(H_n - H_k) ~
    k + k ln(n/k).
    """
    if k >= n:
        return float(n)
    return k + k * (math.log(n) - math.log(k))


class _InsertSchedule:
    """Deterministically spread ``total`` insertions over ``n`` candidates."""

    def __init__(self, n: int, total: float) -> None:
        self.step = n / max(total, 1e-12) if total > 0 else math.inf
        self.next_at = self.step / 2.0
        self.seen = 0.0

    def offer(self, count: int) -> int:
        """Advance by ``count`` candidates; return how many insert."""
        self.seen += count
        inserts = 0
        while self.next_at <= self.seen:
            inserts += 1
            self.next_at += self.step
        return inserts


class KnnTraceSimulator:
    """Walk a kNN kernel's loop nest against the simulated hierarchy."""

    def __init__(
        self,
        machine: MachineParams,
        blocking: BlockingParams,
    ) -> None:
        self.machine = machine
        self.blocking = blocking

    # -- address map -------------------------------------------------------

    def _layout(self, N: int, d: int, m: int, n: int, k: int) -> dict[str, int]:
        """Assign each logical buffer a disjoint byte range; returns bases."""
        bases: dict[str, int] = {}
        cursor = 0

        def region(name: str, size: int) -> None:
            nonlocal cursor
            bases[name] = cursor
            # pad to a line boundary so regions never share lines
            line = self.machine.caches[0].line_bytes
            cursor += ((size + line - 1) // line) * line

        region("X", N * d * _DOUBLE)
        region("X2", N * _DOUBLE)
        region("D", m * k * _DOUBLE)  # neighbor distances
        region("I", m * k * _DOUBLE)  # neighbor ids
        region("Qc", self.blocking.m_c * self.blocking.d_c * _DOUBLE)
        region("Rc", self.blocking.n_c * self.blocking.d_c * _DOUBLE)
        region("Q2c", self.blocking.m_c * _DOUBLE)
        region("R2c", self.blocking.n_c * _DOUBLE)
        region("C", m * n * _DOUBLE)
        region("Cc", m * min(n, self.blocking.n_c) * _DOUBLE)
        region("Q", m * d * _DOUBLE)
        region("R", n * d * _DOUBLE)
        return bases

    # -- public API --------------------------------------------------------

    def run(
        self,
        kernel: str,
        *,
        m: int,
        n: int,
        d: int,
        k: int,
        N: int | None = None,
        stride_gather: bool = True,
    ) -> TraceResult:
        """Simulate one kernel execution and return its traffic profile.

        ``stride_gather=True`` scatters the query/reference rows across
        ``X`` (the general-stride case); ``False`` uses the contiguous
        prefix (best case for the gather).
        """
        if min(m, n, d, k) < 1:
            raise ValidationError("m, n, d, k must all be >= 1")
        if k > n:
            raise ValidationError(f"k={k} > n={n}")
        N = max(m, n) if N is None else N
        if N < max(m, n):
            raise ValidationError(f"N={N} smaller than max(m, n)")

        hierarchy = CacheHierarchy(self.machine)
        self._heap_events = 0
        bases = self._layout(N, d, m, n, k)
        q_rows = self._row_ids(m, N, stride_gather, salt=1)
        r_rows = self._row_ids(n, N, stride_gather, salt=2)
        counts: dict[str, int] = {"microkernels": 0, "heap_insertions": 0}

        if kernel == "gsknn-var1":
            self._trace_gsknn(
                hierarchy, bases, q_rows, r_rows, m, n, d, k, fused=True, counts=counts
            )
        elif kernel == "gsknn-var5":
            self._trace_gsknn(
                hierarchy, bases, q_rows, r_rows, m, n, d, k,
                fused=False, slab=True, counts=counts,
            )
        elif kernel == "gsknn-var6":
            self._trace_gsknn(
                hierarchy, bases, q_rows, r_rows, m, n, d, k, fused=False, counts=counts
            )
        elif kernel == "gemm":
            self._trace_gemm_approach(
                hierarchy, bases, q_rows, r_rows, m, n, d, k, counts=counts
            )
        else:
            raise ValidationError(
                f"unknown kernel {kernel!r}; expected 'gsknn-var1', "
                "'gsknn-var5', 'gsknn-var6' or 'gemm'"
            )

        return TraceResult(
            kernel=kernel,
            m=m,
            n=n,
            d=d,
            k=k,
            dram_read_bytes=hierarchy.dram_read_bytes,
            dram_total_bytes=hierarchy.dram_bytes,
            level_stats=hierarchy.stats(),
            counts=counts,
            region_stats=hierarchy.region_stats,
        )

    @staticmethod
    def _row_ids(count: int, N: int, scattered: bool, salt: int) -> list[int]:
        if not scattered:
            return list(range(count))
        # fixed multiplicative shuffle: deterministic scattered gather
        stride = (2 * salt + 1) * 7919
        return [(i * stride + salt) % N for i in range(count)]

    # -- shared trace pieces -----------------------------------------------

    def _pack_points(
        self,
        h: CacheHierarchy,
        x_base: int,
        rows: list[int],
        d: int,
        p0: int,
        db: int,
        dest_base: int,
    ) -> None:
        """Gather rows' ``[p0, p0+db)`` slice from X into a packed buffer."""
        for offset, row in enumerate(rows):
            h.access(x_base + (row * d + p0) * _DOUBLE, db * _DOUBLE, region="X")
            h.access(
                dest_base + offset * db * _DOUBLE,
                db * _DOUBLE,
                write=True,
                region="pack-store",
            )

    def _gather_norms(
        self, h: CacheHierarchy, x2_base: int, rows: list[int], dest_base: int
    ) -> None:
        for offset, row in enumerate(rows):
            h.access(x2_base + row * _DOUBLE, _DOUBLE)
        h.access(dest_base, len(rows) * _DOUBLE, write=True)

    def _heap_update(
        self,
        h: CacheHierarchy,
        bases: dict[str, int],
        query: int,
        k: int,
        inserts: int,
    ) -> None:
        """Root probe plus ``inserts`` sift-down walks on query's heap."""
        d_row = bases["D"] + query * k * _DOUBLE
        i_row = bases["I"] + query * k * _DOUBLE
        h.access(d_row, _DOUBLE, region="heap")  # root probe (the filter)
        depth = max(1, math.ceil(math.log2(max(k, 2))))
        for _ in range(inserts):
            # sift path: one (value, id) line pair per level, at a
            # deterministically scattered position within the level —
            # real sift paths wander, which is what makes large heaps
            # spill out of L1 (§2.2's random-access penalty)
            self._heap_events += 1
            for level in range(depth):
                span = 2**level
                offset = (self._heap_events * 2654435761 + level) % span
                node = min(span + offset, k - 1)
                h.access(d_row + node * _DOUBLE, _DOUBLE, write=True, region="heap")
                h.access(i_row + node * _DOUBLE, _DOUBLE, write=True, region="heap")

    # -- GSKNN (Algorithm 2.2) ----------------------------------------------

    def _trace_gsknn(
        self,
        h: CacheHierarchy,
        bases: dict[str, int],
        q_rows: list[int],
        r_rows: list[int],
        m: int,
        n: int,
        d: int,
        k: int,
        *,
        fused: bool,
        slab: bool = False,
        counts: dict[str, int],
    ) -> None:
        blk = self.blocking
        per_query_inserts = expected_heap_insertions(n, k)
        schedules = [_InsertSchedule(n, per_query_inserts) for _ in range(m)]

        for j_c, n_b in iter_blocks(n, blk.n_c):  # 6th loop
            for p_c, d_b in iter_blocks(d, blk.d_c):  # 5th loop
                last_depth = p_c + d_b >= d
                self._pack_points(
                    h, bases["X"], r_rows[j_c : j_c + n_b], d, p_c, d_b, bases["Rc"]
                )
                if last_depth:
                    self._gather_norms(
                        h, bases["X2"], r_rows[j_c : j_c + n_b], bases["R2c"]
                    )
                for i_c, m_b in iter_blocks(m, blk.m_c):  # 4th loop
                    self._pack_points(
                        h,
                        bases["X"],
                        q_rows[i_c : i_c + m_b],
                        d,
                        p_c,
                        d_b,
                        bases["Qc"],
                    )
                    if last_depth:
                        self._gather_norms(
                            h, bases["X2"], q_rows[i_c : i_c + m_b], bases["Q2c"]
                        )
                    self._gsknn_macro(
                        h,
                        bases,
                        i_c,
                        j_c,
                        m_b,
                        n_b,
                        d_b,
                        k,
                        n,
                        last_depth=last_depth,
                        first_depth=(p_c == 0),
                        fused=fused,
                        slab=slab,
                        schedules=schedules,
                        counts=counts,
                    )

            if slab:
                # Var#5: select on the m x n_b slab before the next 6th-loop
                # block overwrites it — every heap reloads per slab.
                share = n_b / n
                for i in range(m):
                    row_base = bases["C"] + (i * blk.n_c) * _DOUBLE
                    h.access(row_base, n_b * _DOUBLE)
                    inserts = round(expected_heap_insertions(n, k) * share)
                    counts["heap_insertions"] += inserts
                    self._heap_update(h, bases, i, k, inserts)

        if not fused and not slab:
            # Var#6: selection over the stored m x n matrix
            for i in range(m):
                row_base = bases["C"] + i * n * _DOUBLE
                h.access(row_base, n * _DOUBLE)
                inserts = round(expected_heap_insertions(n, k))
                counts["heap_insertions"] += inserts
                self._heap_update(h, bases, i, k, inserts)

    def _gsknn_macro(
        self,
        h: CacheHierarchy,
        bases: dict[str, int],
        i_c: int,
        j_c: int,
        m_b: int,
        n_b: int,
        d_b: int,
        k: int,
        n: int,
        *,
        last_depth: bool,
        first_depth: bool,
        fused: bool,
        slab: bool = False,
        schedules: list[_InsertSchedule],
        counts: dict[str, int],
    ) -> None:
        blk = self.blocking
        for j_r, n_r in iter_blocks(n_b, blk.n_r):  # 3rd loop
            for i_r, m_r in iter_blocks(m_b, blk.m_r):  # 2nd loop
                counts["microkernels"] += 1
                # micro-panel streams (packed, contiguous)
                h.access(
                    bases["Qc"] + i_r * d_b * _DOUBLE,
                    m_r * d_b * _DOUBLE,
                    region="Qc-panel",
                )
                h.access(
                    bases["Rc"] + j_r * d_b * _DOUBLE,
                    n_r * d_b * _DOUBLE,
                    region="Rc-panel",
                )
                if not fused:
                    # Var#6 accumulates C in memory (row * n + column);
                    # Var#5 accumulates into the reused m x n_c slab.
                    for i in range(m_r):
                        row = i_c + i_r + i
                        if slab:
                            tile = bases["C"] + (row * blk.n_c + j_r) * _DOUBLE
                        else:
                            tile = bases["C"] + (row * n + j_c + j_r) * _DOUBLE
                        if not first_depth:
                            h.access(tile, n_r * _DOUBLE)
                        h.access(tile, n_r * _DOUBLE, write=True)
                    continue
                if not (first_depth and last_depth):
                    # Var#1 with d > d_c: partial rank-d_c sums live in the
                    # C_c buffer across the 5th loop (Table 4's
                    # (ceil(d/d_c) - 1) m n term).
                    for i in range(m_r):
                        row = i_c + i_r + i
                        tile = bases["Cc"] + (row * blk.n_c + j_r) * _DOUBLE
                        if not first_depth:
                            h.access(tile, n_r * _DOUBLE)
                        if not last_depth:
                            h.access(tile, n_r * _DOUBLE, write=True)
                if last_depth:
                    # Var#1: norms enter registers, heap updated in place.
                    h.access(bases["Q2c"] + i_r * _DOUBLE, m_r * _DOUBLE)
                    h.access(bases["R2c"] + j_r * _DOUBLE, n_r * _DOUBLE)
                    for i in range(m_r):
                        query = i_c + i_r + i
                        inserts = schedules[query].offer(n_r)
                        counts["heap_insertions"] += inserts
                        self._heap_update(h, bases, query, k, inserts)

    # -- GEMM approach (Algorithm 2.1) ---------------------------------------

    def _trace_gemm_approach(
        self,
        h: CacheHierarchy,
        bases: dict[str, int],
        q_rows: list[int],
        r_rows: list[int],
        m: int,
        n: int,
        d: int,
        k: int,
        *,
        counts: dict[str, int],
    ) -> None:
        blk = self.blocking
        # Phase 1: gather Q and R into dense matrices (T_coll).
        for offset, row in enumerate(q_rows):
            h.access(bases["X"] + row * d * _DOUBLE, d * _DOUBLE)
            h.access(bases["Q"] + offset * d * _DOUBLE, d * _DOUBLE, write=True)
        for offset, row in enumerate(r_rows):
            h.access(bases["X"] + row * d * _DOUBLE, d * _DOUBLE)
            h.access(bases["R"] + offset * d * _DOUBLE, d * _DOUBLE, write=True)

        # Phase 2: blocked GEMM C = Q R^T (Goto loop nest over Q, R).
        for j_c, n_b in iter_blocks(n, blk.n_c):
            for p_c, d_b in iter_blocks(d, blk.d_c):
                first_depth = p_c == 0
                self._pack_from_dense(h, bases["R"], j_c, n_b, d, p_c, d_b, bases["Rc"])
                for i_c, m_b in iter_blocks(m, blk.m_c):
                    self._pack_from_dense(
                        h, bases["Q"], i_c, m_b, d, p_c, d_b, bases["Qc"]
                    )
                    for j_r, n_r in iter_blocks(n_b, blk.n_r):
                        for i_r, m_r in iter_blocks(m_b, blk.m_r):
                            counts["microkernels"] += 1
                            h.access(
                                bases["Qc"] + i_r * d_b * _DOUBLE,
                                m_r * d_b * _DOUBLE,
                            )
                            h.access(
                                bases["Rc"] + j_r * d_b * _DOUBLE,
                                n_r * d_b * _DOUBLE,
                            )
                            for i in range(m_r):
                                row = i_c + i_r + i
                                tile = (
                                    bases["C"]
                                    + (row * n + j_c + j_r) * _DOUBLE
                                )
                                if not first_depth:
                                    h.access(tile, n_r * _DOUBLE)
                                h.access(tile, n_r * _DOUBLE, write=True)

        # Phase 3: norm accumulation — read/modify/write all of C (T_sq2d).
        h.access(bases["X2"], m * _DOUBLE)
        h.access(bases["X2"], n * _DOUBLE)
        for i in range(m):
            row_base = bases["C"] + i * n * _DOUBLE
            h.access(row_base, n * _DOUBLE, region="C")
            h.access(row_base, n * _DOUBLE, write=True, region="C")

        # Phase 4: heap selection over C rows (T_heap).
        for i in range(m):
            row_base = bases["C"] + i * n * _DOUBLE
            h.access(row_base, n * _DOUBLE, region="C")
            inserts = round(expected_heap_insertions(n, k))
            counts["heap_insertions"] += inserts
            self._heap_update(h, bases, i, k, inserts)

    def _pack_from_dense(
        self,
        h: CacheHierarchy,
        src_base: int,
        row0: int,
        rows: int,
        d: int,
        p0: int,
        db: int,
        dest_base: int,
    ) -> None:
        for i in range(rows):
            h.access(src_base + ((row0 + i) * d + p0) * _DOUBLE, db * _DOUBLE)
            h.access(dest_base + i * db * _DOUBLE, db * _DOUBLE, write=True)
