"""Neighbor-list result container and merge utilities.

Every kernel returns a :class:`KnnResult`: per-query distances and
*global* reference ids (values of the caller's ``r_idx``, exactly like
the paper's ``N(i, :)`` holds global indices ``r(j)``). The approximate
outer solvers (:mod:`repro.trees`) repeatedly merge kernel results from
different groupings — :func:`merge_neighbor_lists` implements that
update with id-level deduplication so a reference seen in two iterations
cannot occupy two slots of the same list.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError

__all__ = [
    "KnnResult",
    "merge_neighbor_lists",
    "merge_neighbor_lists_fast",
    "merge_topk",
    "intersection_counts",
    "recall",
]


@dataclass(frozen=True)
class KnnResult:
    """k nearest neighbors for ``m`` queries.

    Attributes
    ----------
    distances:
        ``(m, k)`` float64, each row ascending. Squared distances for
        the l2 kernel; natural distances otherwise. Unfilled slots (only
        possible mid-iteration in approximate solvers) hold ``+inf``.
    indices:
        ``(m, k)`` intp of global reference ids; ``-1`` marks unfilled.
    """

    distances: np.ndarray
    indices: np.ndarray

    def __post_init__(self) -> None:
        dist = np.asarray(self.distances, dtype=np.float64)
        idx = np.asarray(self.indices, dtype=np.intp)
        if dist.ndim != 2 or dist.shape != idx.shape:
            raise ValidationError(
                f"distances {dist.shape} and indices {idx.shape} must be "
                "equal 2-D shapes"
            )
        object.__setattr__(self, "distances", dist)
        object.__setattr__(self, "indices", idx)

    @property
    def m(self) -> int:
        return self.distances.shape[0]

    @property
    def k(self) -> int:
        return self.distances.shape[1]

    def is_sorted(self) -> bool:
        # direct comparison, not np.diff: inf - inf is nan, but
        # inf >= inf is True (unfilled tails are legitimately "sorted")
        return bool(
            (self.distances[:, 1:] >= self.distances[:, :-1]).all()
        )

    def sorted(self) -> "KnnResult":
        """Rows re-sorted ascending by distance (stable)."""
        order = np.argsort(self.distances, axis=1, kind="stable")
        rows = np.arange(self.m)[:, None]
        return KnnResult(self.distances[rows, order], self.indices[rows, order])

    def save(self, path) -> "Path":
        """Persist to an ``.npz`` archive (see :meth:`load`)."""
        from pathlib import Path

        path = Path(path)
        if path.suffix != ".npz":
            path = path.with_suffix(".npz")
        np.savez_compressed(
            path, distances=self.distances, indices=self.indices
        )
        return path

    @classmethod
    def load(cls, path) -> "KnnResult":
        """Reload a result written by :meth:`save`."""
        from pathlib import Path

        path = Path(path)
        if not path.exists():
            raise ValidationError(f"result file not found: {path}")
        with np.load(path) as archive:
            if "distances" not in archive or "indices" not in archive:
                raise ValidationError(f"{path} is not a KnnResult archive")
            return cls(archive["distances"], archive["indices"])


def merge_neighbor_lists(a: KnnResult, b: KnnResult) -> KnnResult:
    """Merge two neighbor lists for the same queries, deduplicating ids.

    Keeps, per query, the k smallest-distance entries over the union of
    both lists, counting each reference id at most once (the smaller
    distance wins; for exact kernels duplicates agree anyway). ``-1``
    (unfilled) entries never win over real candidates.
    """
    if a.distances.shape != b.distances.shape:
        raise ValidationError(
            f"cannot merge neighbor lists of shapes {a.distances.shape} "
            f"and {b.distances.shape}"
        )
    m, k = a.distances.shape
    cat_dist = np.concatenate([a.distances, b.distances], axis=1)
    cat_idx = np.concatenate([a.indices, b.indices], axis=1)

    # Sort each row by distance, then mask out repeated ids keeping the
    # first (= smallest-distance) occurrence.
    order = np.argsort(cat_dist, axis=1, kind="stable")
    rows = np.arange(m)[:, None]
    sorted_dist = cat_dist[rows, order]
    sorted_idx = cat_idx[rows, order]

    out_dist = np.full((m, k), np.inf, dtype=np.float64)
    out_idx = np.full((m, k), -1, dtype=np.intp)
    for i in range(m):
        seen: set[int] = set()
        pos = 0
        for dist, ident in zip(sorted_dist[i], sorted_idx[i]):
            if ident < 0 or ident in seen:
                continue
            seen.add(int(ident))
            out_dist[i, pos] = dist
            out_idx[i, pos] = ident
            pos += 1
            if pos == k:
                break
    return KnnResult(out_dist, out_idx)


def merge_topk(
    dist_a: np.ndarray,
    idx_a: np.ndarray,
    dist_b: np.ndarray,
    idx_b: np.ndarray,
    k: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise dedup-merge of two candidate lists into their top ``k``.

    The width-general core of :func:`merge_neighbor_lists_fast`: the two
    lists must agree on row count but may have different widths (the
    approximate tier merges a ``(m, k)`` pool with a ``(m, L)`` batch of
    freshly evaluated candidates, L != k). Assumes duplicate ids carry
    equal distances (true whenever both sides were computed exactly over
    the same coordinate table). ``-1`` marks empty slots; rows shorter
    than ``k`` distinct candidates pad with ``(+inf, -1)``.

    Strategy: concatenate, sort each row by id so duplicates are
    adjacent, blank repeats (id == previous and not the -1 sentinel) to
    +inf, then top-k by distance.
    """
    if dist_a.shape[0] != dist_b.shape[0]:
        raise ValidationError(
            f"cannot merge candidate lists with {dist_a.shape[0]} and "
            f"{dist_b.shape[0]} rows"
        )
    cat_dist = np.concatenate([dist_a, dist_b], axis=1)
    cat_idx = np.concatenate([idx_a, idx_b], axis=1)
    m, width = cat_dist.shape
    rows = np.arange(m)[:, None]

    by_id = np.argsort(cat_idx, axis=1, kind="stable")
    id_sorted = cat_idx[rows, by_id]
    dist_sorted = cat_dist[rows, by_id]
    dup = np.zeros_like(id_sorted, dtype=bool)
    dup[:, 1:] = (id_sorted[:, 1:] == id_sorted[:, :-1]) & (id_sorted[:, 1:] >= 0)
    dist_sorted = np.where(dup, np.inf, dist_sorted)
    # -1 sentinels must never beat real candidates
    dist_sorted = np.where(id_sorted < 0, np.inf, dist_sorted)

    if k < width:
        part = np.argpartition(dist_sorted, k - 1, axis=1)[:, :k]
        top_dist = dist_sorted[rows, part]
        top_idx = id_sorted[rows, part]
    else:
        top_dist, top_idx = dist_sorted, id_sorted
    order = np.argsort(top_dist, axis=1, kind="stable")
    out_dist = top_dist[rows, order]
    out_idx = np.where(np.isinf(out_dist), -1, top_idx[rows, order])
    if k > width:
        pad = k - width
        out_dist = np.pad(out_dist, ((0, 0), (0, pad)), constant_values=np.inf)
        out_idx = np.pad(out_idx, ((0, 0), (0, pad)), constant_values=-1)
    return out_dist, out_idx


def merge_neighbor_lists_fast(a: KnnResult, b: KnnResult) -> KnnResult:
    """Vectorized dedup-merge — the hot path of the iterative solvers.

    Semantics match :func:`merge_neighbor_lists` whenever duplicate ids
    carry equal distances (always true when both lists come from exact
    kernels over the same coordinate table, the solvers' case): rows are
    merged, each id kept once, the k smallest survive. See
    :func:`merge_topk` for the underlying algorithm.
    """
    if a.distances.shape != b.distances.shape:
        raise ValidationError(
            f"cannot merge neighbor lists of shapes {a.distances.shape} "
            f"and {b.distances.shape}"
        )
    out_dist, out_idx = merge_topk(
        a.distances, a.indices, b.distances, b.indices, a.k
    )
    return KnnResult(out_dist, out_idx)


def intersection_counts(want: np.ndarray, got: np.ndarray) -> np.ndarray:
    """Per-row ``|set(want[i]) & set(got[i])|`` for two 2-D id arrays.

    Set semantics: duplicates within a row collapse, and any shared
    value — including the ``-1`` sentinel — counts once. Vectorized by
    offsetting each row's ids into a disjoint range so one global
    membership test answers every row at once.
    """
    if want.ndim != 2 or got.ndim != 2 or want.shape[0] != got.shape[0]:
        raise ValidationError(
            f"want {want.shape} and got {got.shape} must be 2-D with "
            "equal row counts"
        )
    m = want.shape[0]
    if m == 0 or want.shape[1] == 0 or got.shape[1] == 0:
        return np.zeros(m, dtype=np.int64)
    lo = int(min(want.min(), got.min()))
    span = int(max(want.max(), got.max())) - lo + 1
    base = np.arange(m, dtype=np.int64)[:, None] * span
    w = want.astype(np.int64) - lo + base
    g = got.astype(np.int64) - lo + base
    sw = np.sort(w, axis=1)
    dup = np.zeros(sw.shape, dtype=bool)
    dup[:, 1:] = sw[:, 1:] == sw[:, :-1]
    hits = np.isin(sw, g) & ~dup
    return hits.sum(axis=1, dtype=np.int64)


def recall(candidate: KnnResult, truth: KnnResult) -> float:
    """Mean fraction of true neighbors present in the candidate lists.

    The standard accuracy metric for approximate all-NN solvers; id-based
    (hit iff the true neighbor's id appears anywhere in the row).
    """
    if candidate.indices.shape != truth.indices.shape:
        raise ValidationError(
            "candidate and truth must have identical shapes, got "
            f"{candidate.indices.shape} and {truth.indices.shape}"
        )
    m, k = truth.indices.shape
    hits = int(intersection_counts(truth.indices, candidate.indices).sum())
    return hits / (m * k)
