"""Unit tests for the binary and d-ary max heaps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.select import BinaryMaxHeap, DHeap, SelectionStats, heap_select_smallest


class TestBinaryMaxHeap:
    def test_starts_full_of_inf(self):
        heap = BinaryMaxHeap(4)
        assert heap.root == np.inf
        assert (heap.ids == -1).all()

    def test_invalid_capacity(self):
        with pytest.raises(ValidationError):
            BinaryMaxHeap(0)

    def test_update_accepts_below_root(self):
        heap = BinaryMaxHeap(3)
        assert heap.update(1.0, 10)
        assert heap.update(2.0, 20)
        assert heap.update(3.0, 30)
        assert heap.root == 3.0

    def test_update_rejects_at_or_above_root(self):
        heap = BinaryMaxHeap(2)
        heap.update(1.0, 1)
        heap.update(2.0, 2)
        assert not heap.update(2.0, 3)  # equal to root: reject
        assert not heap.update(5.0, 4)
        assert heap.root == 2.0

    def test_replaces_root_when_better(self):
        heap = BinaryMaxHeap(2)
        for value, ident in [(5.0, 5), (4.0, 4), (1.0, 1)]:
            heap.update(value, ident)
        values, ids = heap.sorted_pairs()
        np.testing.assert_array_equal(values, [1.0, 4.0])
        np.testing.assert_array_equal(ids, [1, 4])

    def test_keeps_k_smallest_of_stream(self, rng):
        values = rng.random(200)
        heap = BinaryMaxHeap(10)
        heap.update_many(values, np.arange(200))
        got, got_ids = heap.sorted_pairs()
        want = np.sort(values)[:10]
        np.testing.assert_allclose(got, want)
        np.testing.assert_allclose(values[got_ids], got)

    def test_heap_property_maintained(self, rng):
        heap = BinaryMaxHeap(17)
        for i, value in enumerate(rng.random(500)):
            heap.update(float(value), i)
            assert heap.is_valid()

    def test_heapify_bulk_load(self, rng):
        values = rng.random(16)
        heap = BinaryMaxHeap(16)
        heap.heapify(values, np.arange(16))
        assert heap.is_valid()
        assert heap.root == values.max()

    def test_heapify_wrong_size(self):
        heap = BinaryMaxHeap(4)
        with pytest.raises(ValidationError):
            heap.heapify(np.ones(3), np.arange(3))

    def test_best_case_is_one_comparison_per_reject(self):
        stats = SelectionStats()
        heap = BinaryMaxHeap(4, stats=stats)
        for value in [0.1, 0.2, 0.3, 0.4]:
            heap.update(value, 0)
        stats.reset()
        # all further candidates exceed the root -> 1 comparison each
        for value in [1.0, 2.0, 3.0]:
            assert not heap.update(value, 0)
        assert stats.comparisons == 3
        assert stats.moves == 0

    def test_duplicate_values_allowed(self):
        heap = BinaryMaxHeap(3)
        for ident in range(5):
            heap.update(1.0, ident)
        values, _ = heap.sorted_pairs()
        # first insert fills one slot per inf replaced; equal values then reject
        assert (values <= np.inf).all()

    def test_len(self):
        assert len(BinaryMaxHeap(7)) == 7


class TestDHeap:
    @pytest.mark.parametrize("arity", [2, 3, 4, 8])
    def test_keeps_k_smallest(self, rng, arity):
        values = rng.random(300)
        heap = DHeap(13, arity=arity)
        heap.update_many(values, np.arange(300))
        got, _ = heap.sorted_pairs()
        np.testing.assert_allclose(got, np.sort(values)[:13])

    def test_invalid_arity(self):
        with pytest.raises(ValidationError):
            DHeap(4, arity=1)

    def test_padding_layout(self):
        heap = DHeap(5, arity=4)
        # three leading pad slots at -inf, live slots at +inf
        assert heap.values.shape == (8,)
        assert (heap.values[:3] == -np.inf).all()
        assert (heap.values[3:] == np.inf).all()

    def test_padding_never_wins_max_child(self, rng):
        heap = DHeap(6, arity=4)
        for i, value in enumerate(rng.random(100)):
            heap.update(float(value), i)
            assert heap.is_valid()
        # pads untouched
        assert (heap.values[:3] == -np.inf).all()

    def test_depth_smaller_than_binary(self):
        four = DHeap(256, arity=4)
        two = DHeap(256, arity=2)
        assert four.depth() < two.depth()
        assert four.depth() == 4  # log4(256)

    def test_depth_of_single_element(self):
        assert DHeap(1, arity=4).depth() == 0

    def test_matches_binary_heap_result(self, rng):
        values = rng.random(150)
        binary = BinaryMaxHeap(9)
        dary = DHeap(9, arity=4)
        binary.update_many(values, np.arange(150))
        dary.update_many(values, np.arange(150))
        np.testing.assert_allclose(
            binary.sorted_pairs()[0], dary.sorted_pairs()[0]
        )


class TestHeapSelectSmallest:
    def test_matches_numpy_sort(self, rng):
        values = rng.random(77)
        got, pos = heap_select_smallest(values, 5)
        np.testing.assert_allclose(got, np.sort(values)[:5])
        np.testing.assert_allclose(values[pos], got)

    @pytest.mark.parametrize("arity", [2, 4])
    def test_k_equals_n(self, rng, arity):
        values = rng.random(10)
        got, _ = heap_select_smallest(values, 10, arity=arity)
        np.testing.assert_allclose(got, np.sort(values))

    def test_k_out_of_range(self):
        with pytest.raises(ValidationError):
            heap_select_smallest(np.ones(5), 6)
        with pytest.raises(ValidationError):
            heap_select_smallest(np.ones(5), 0)

    def test_stats_are_recorded(self, rng):
        stats = SelectionStats()
        heap_select_smallest(rng.random(64), 8, stats=stats)
        assert stats.comparisons > 0
        assert stats.sequential_accesses == 64
