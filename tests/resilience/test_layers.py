"""Resilience threaded through the scheduler and the distributed solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import gaussian_mixture
from repro.distributed import DistributedAllKnn
from repro.errors import KernelTimeoutError, ValidationError
from repro.parallel.scheduler import (
    ScheduledTask,
    execute_schedule,
    lpt_schedule,
)
from repro.resilience import FaultPlan, RetryPolicy


@pytest.fixture
def schedule():
    tasks = [ScheduledTask(i, 0.001 * (i + 1)) for i in range(9)]
    return lpt_schedule(tasks, 3)


class TestScheduleExecutor:
    def test_faults_recovered(self, schedule, metrics, clean_env):
        out = execute_schedule(
            schedule,
            lambda t: t.task_id * 10,
            fault_plan="seed=3,crash=0.6",
        )
        assert out == {i: i * 10 for i in range(9)}
        assert metrics.snapshot()["counters"]["resilience.retries"] >= 1

    def test_explicit_retry_budget(self, schedule, clean_env):
        out = execute_schedule(
            schedule,
            lambda t: t.task_id,
            fault_plan=FaultPlan(seed=1, alloc=0.5),
            retry=RetryPolicy(max_attempts=4, backoff_base=0.001),
        )
        assert len(out) == 9

    def test_deadline_expiry_carries_progress(self, schedule, clean_env):
        deadline_seen = {}

        def slow(t):
            import time

            time.sleep(0.05)
            return t.task_id

        with pytest.raises(KernelTimeoutError) as excinfo:
            execute_schedule(schedule, slow, backend="serial", deadline=0.08)
        deadline_seen = excinfo.value.partial
        assert set(deadline_seen) == {"executed", "total"}
        assert deadline_seen["total"] == 9
        assert 0 < deadline_seen["executed"] < 9

    def test_non_retryable_propagates(self, schedule, clean_env):
        def broken(t):
            raise ValidationError("shape mismatch")

        with pytest.raises(ValidationError):
            execute_schedule(
                schedule, broken, fault_plan=FaultPlan(seed=0)
            )


@pytest.fixture
def points():
    return gaussian_mixture(700, 6, n_clusters=4, seed=2).points


class TestDistributedSolver:
    def test_faults_do_not_change_result(self, points, metrics, clean_env):
        clean = DistributedAllKnn(
            n_ranks=3, leaf_size=96, iterations=2
        ).solve(points, 5)
        faulty = DistributedAllKnn(
            n_ranks=3, leaf_size=96, iterations=2
        ).solve(
            points, 5,
            fault_plan="seed=11,crash=0.5",
            retry=RetryPolicy(backoff_base=0.001),
        )
        assert np.array_equal(
            clean.result.distances, faulty.result.distances
        )
        assert np.array_equal(clean.result.indices, faulty.result.indices)
        counters = metrics.snapshot()["counters"]
        assert counters["resilience.rank_retries"] >= 1

    def test_deadline_raises_in_comm_or_kernel(self, points, clean_env):
        solver = DistributedAllKnn(n_ranks=3, leaf_size=96, iterations=2)
        with pytest.raises(KernelTimeoutError) as excinfo:
            solver.solve(points, 5, deadline=1e-6)
        assert excinfo.value.site in (
            "comm.send",
            "comm.recv",
            "rank kernel",
        )

    def test_env_plan_defaults_retry_on(self, points, monkeypatch):
        """$REPRO_FAULT_PLAN alone (the CI fault-matrix setup) must
        enable recovery, not convert every solve into a failure."""
        monkeypatch.setenv("REPRO_FAULT_PLAN", "seed=23,crash=0.4")
        clean = DistributedAllKnn(
            n_ranks=2, leaf_size=96, iterations=1
        ).solve(points, 4)
        monkeypatch.delenv("REPRO_FAULT_PLAN")
        want = DistributedAllKnn(
            n_ranks=2, leaf_size=96, iterations=1
        ).solve(points, 4)
        assert np.array_equal(
            clean.result.distances, want.result.distances
        )
