"""Unit tests for data-parallel GSKNN — parallel must equal serial."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gsknn import gsknn
from repro.errors import ValidationError
from repro.parallel import gsknn_data_parallel, gsknn_reference_parallel
from repro.parallel.chunking import contiguous_chunks


class TestQueryChunks:
    def test_covers_all_queries(self):
        chunks = contiguous_chunks(10, 3)
        covered = []
        for start, size in chunks:
            covered.extend(range(start, start + size))
        assert covered == list(range(10))

    def test_near_equal_sizes(self):
        sizes = [s for _, s in contiguous_chunks(10, 3)]
        assert max(sizes) - min(sizes) <= 1

    def test_more_workers_than_queries(self):
        chunks = contiguous_chunks(2, 5)
        assert len(chunks) == 2


class TestDataParallel:
    @pytest.mark.parametrize("p", [1, 2, 3, 7])
    def test_matches_serial(self, small_cloud, rng, p):
        q = rng.integers(0, 300, 50)
        r = rng.permutation(300)[:150]
        serial = gsknn(small_cloud, q, r, 8)
        parallel = gsknn_data_parallel(small_cloud, q, r, 8, p=p)
        np.testing.assert_allclose(serial.distances, parallel.distances)
        np.testing.assert_array_equal(serial.indices, parallel.indices)

    def test_invalid_p(self, small_cloud):
        with pytest.raises(ValidationError):
            gsknn_data_parallel(small_cloud, np.arange(3), np.arange(10), 2, p=0)

    def test_tiny_query_set_falls_back(self, small_cloud):
        res = gsknn_data_parallel(
            small_cloud, np.arange(2), np.arange(20), 3, p=8
        )
        assert res.m == 2

    def test_norms_supported(self, small_cloud, rng):
        q = rng.integers(0, 300, 20)
        r = rng.permutation(300)[:60]
        serial = gsknn(small_cloud, q, r, 4, norm="l1")
        parallel = gsknn_data_parallel(small_cloud, q, r, 4, p=3, norm="l1")
        np.testing.assert_allclose(serial.distances, parallel.distances)


class TestReferenceParallel:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_matches_serial_distances(self, small_cloud, rng, p):
        q = rng.integers(0, 300, 30)
        r = rng.permutation(300)[:200]
        serial = gsknn(small_cloud, q, r, 6)
        parallel = gsknn_reference_parallel(small_cloud, q, r, 6, p=p)
        np.testing.assert_allclose(
            serial.distances, parallel.distances, atol=1e-12
        )

    def test_small_reference_set_falls_back(self, small_cloud):
        res = gsknn_reference_parallel(
            small_cloud, np.arange(5), np.arange(8), 4, p=4
        )
        assert res.k == 4

    def test_chunk_smaller_than_k(self, small_cloud, rng):
        """Workers whose chunk has fewer than k references must pad, and
        the merge must still produce the exact global answer."""
        q = rng.integers(0, 300, 10)
        r = rng.permutation(300)[:21]
        serial = gsknn(small_cloud, q, r, 5)
        parallel = gsknn_reference_parallel(small_cloud, q, r, 5, p=4)
        np.testing.assert_allclose(
            serial.distances, parallel.distances, atol=1e-12
        )

    def test_k_exceeds_n_rejected(self, small_cloud):
        with pytest.raises(ValidationError):
            gsknn_reference_parallel(
                small_cloud, np.arange(3), np.arange(4), 5, p=2
            )
