"""Memory packing: gathering general-stride points into contiguous panels.

The Goto algorithm never multiplies operands in place; it first copies
("packs") each cache block into a contiguous buffer whose element order is
exactly the order the micro-kernel will stream it — micro-panels of
``m_r`` (or ``n_r``) rows laid out side by side, the "Z shape" of the
paper's Figure 2. Packing buys three things: contiguous access in the
macro-kernel, alignment, and — crucially for GSKNN — a free gather: since
GEMM repacks anyway, GSKNN packs *directly from the global table X via the
index arrays q/r*, skipping the separate coordinate-collection pass the
GEMM-based kernel needs (the ``T_coll`` term of Table 5).

Layout convention: a packed micro-panel buffer for a block of ``rows``
points and ``depth`` coordinates has shape ``(n_panels, depth, r)`` where
``r`` is the register block size; element ``[p, j, i]`` is coordinate
``j`` of point ``p*r + i``. Ragged final panels are zero-padded — zeros
contribute nothing to inner products, so padded lanes are harmless (the
corresponding C entries are simply never read).
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError

__all__ = [
    "gather_panel",
    "pack_block",
    "pack_micropanels",
    "unpack_micropanels",
]


def gather_panel(
    X: np.ndarray,
    idx: np.ndarray,
    col_start: int = 0,
    col_stop: int | None = None,
) -> np.ndarray:
    """Gather ``X[idx, col_start:col_stop]`` into a fresh contiguous array.

    This is the plain coordinate-collection step (``Q(:, i) = X(:, q(i))``
    in the paper's notation) that the GEMM-based kernel must perform
    before calling BLAS. Returns a C-contiguous ``(len(idx), cols)`` array.
    """
    X = np.asarray(X)
    if X.ndim != 2:
        raise ValidationError(f"X must be 2-D, got ndim={X.ndim}")
    idx = np.asarray(idx, dtype=np.intp)
    stop = X.shape[1] if col_stop is None else col_stop
    if not (0 <= col_start <= stop <= X.shape[1]):
        raise ValidationError(
            f"column range [{col_start}, {stop}) invalid for d={X.shape[1]}"
        )
    return np.ascontiguousarray(X[idx, col_start:stop], dtype=np.float64)


def pack_block(
    X: np.ndarray,
    idx: np.ndarray,
    col_start: int,
    col_stop: int,
    X2: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Pack a cache block plus (optionally) its squared norms.

    Mirrors the 5th/4th-loop packing of Algorithm 2.2: gather the
    ``[col_start, col_stop)`` coordinate slice of the indexed points, and
    when the slice is the *last* d-block also gather the squared norms
    ``X2[idx]`` (the paper only collects ``Q2``/``R2`` on the final
    ``p_c`` iteration because that is when distances are completed).
    """
    panel = gather_panel(X, idx, col_start, col_stop)
    norms = None
    if X2 is not None:
        X2 = np.asarray(X2, dtype=np.float64)
        if X2.ndim != 1 or X2.shape[0] != X.shape[0]:
            raise ValidationError(
                f"X2 must be 1-D of length {X.shape[0]}, got shape {X2.shape}"
            )
        norms = np.ascontiguousarray(X2[idx])
    return panel, norms


def pack_micropanels(panel: np.ndarray, r: int) -> np.ndarray:
    """Re-lay a ``(rows, depth)`` block into Z-shaped micro-panels.

    Output shape is ``(ceil(rows / r), depth, r)``: panel ``p`` holds
    points ``p*r .. p*r + r - 1`` *column-major within the panel* so the
    micro-kernel reads one length-``r`` vector of distinct points per
    depth step — exactly the vector-register load pattern of the paper's
    Figure 3. The ragged tail is zero-padded.
    """
    panel = np.asarray(panel, dtype=np.float64)
    if panel.ndim != 2:
        raise ValidationError(f"panel must be 2-D, got ndim={panel.ndim}")
    if r < 1:
        raise ValidationError(f"register block size must be >= 1, got {r}")
    rows, depth = panel.shape
    n_panels = -(-rows // r)
    packed = np.zeros((n_panels, depth, r), dtype=np.float64)
    padded = np.zeros((n_panels * r, depth), dtype=np.float64)
    padded[:rows] = panel
    # [p, j, i] = padded[p*r + i, j]
    packed[:] = padded.reshape(n_panels, r, depth).transpose(0, 2, 1)
    return packed


def unpack_micropanels(packed: np.ndarray, rows: int) -> np.ndarray:
    """Invert :func:`pack_micropanels`, dropping the zero padding."""
    packed = np.asarray(packed)
    if packed.ndim != 3:
        raise ValidationError(f"packed buffer must be 3-D, got ndim={packed.ndim}")
    n_panels, depth, r = packed.shape
    if not (0 < rows <= n_panels * r):
        raise ValidationError(
            f"rows={rows} incompatible with packed shape {packed.shape}"
        )
    flat = packed.transpose(0, 2, 1).reshape(n_panels * r, depth)
    return np.ascontiguousarray(flat[:rows])
