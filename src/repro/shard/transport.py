"""Shard transports: how the router reaches a shard's solve engine.

Two implementations of one contract (:class:`ShardTransport`):

* :class:`ProcessTransport` — the production path. One **long-lived**
  single-worker process per shard (a ``ProcessPoolExecutor`` with
  ``max_workers=1``, so the worker — and its packed panels — survives
  across calls; this is deliberately *not* a per-call pool). The
  reference table and its squared-norm side table live in shared-memory
  segments exported once and attached by every worker (the zero-copy
  protocol from :mod:`repro.parallel.backends`); only query ids/rows and
  the ``(m, k)`` partials cross the process boundary. Each worker holds
  its own :class:`~repro.core.plan.GsknnPlan` over its partition plus a
  :class:`~repro.core.plan.PlanCache` for ad-hoc group solves, both
  invalidated when the membership epoch moves.

* :class:`LocalTransport` — the same contract executed synchronously in
  the calling process (per-shard plans parent-side). This is the
  deterministic twin used by tests, the serial rung of the router's
  fallback ladder, and the moral successor of ``SimComm``'s in-process
  ranks on the scatter/gather path.

Both return :class:`concurrent.futures.Future`s from ``submit`` so the
router's scatter/gather loop is transport-agnostic.
"""

from __future__ import annotations

import pickle
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..errors import BackendError, ValidationError
from ..obs.metrics import get_registry as _get_registry
from ..obs.trace import get_tracer as _get_tracer
from ..parallel.backends import (
    _drain_worker_obs,
    _install_worker_obs,
    _obs_spec,
    shm_attach,
    shm_export,
)

__all__ = [
    "ShardWorld",
    "ShardTransport",
    "LocalTransport",
    "ProcessTransport",
    "resolve_transport",
    "TRANSPORTS",
]


@dataclass
class ShardWorld:
    """Everything a transport needs to host the shards of one table.

    ``local_ids[s]`` is shard ``s``'s partition (global ids, global
    order) at ``epoch``; ``kernel_kwargs`` carries the pinned
    ``norm`` / ``block_m`` / ``block_n`` the bit-identicality contract
    requires every shard to share with the single-process twin.
    """

    X: np.ndarray
    X2: np.ndarray | None
    local_ids: list[np.ndarray]
    epoch: int
    kernel_kwargs: dict[str, Any] = field(default_factory=dict)
    fault_spec: str | None = None

    @property
    def n_shards(self) -> int:
        return len(self.local_ids)


class ShardTransport:
    """Contract: start workers, submit solve tasks, propagate epochs.

    ``submit`` returns a Future resolving to
    ``(distances, global_indices, obs_payload)``; a dead shard rejects
    with :class:`BackendError` (or ``BrokenProcessPool``) and is brought
    back with ``restart``. ``refresh`` must be ordered before any
    subsequent ``submit`` for the same shard — both transports guarantee
    that by construction (single worker FIFO / synchronous execution).
    """

    name = "abstract"

    def start(self, world: ShardWorld) -> None:
        raise NotImplementedError

    def submit(
        self, shard: int, task: tuple, *, attempt: int = 0
    ) -> Future:
        raise NotImplementedError

    def refresh(self, world: ShardWorld) -> None:
        """Propagate a new membership epoch (and possibly a new table)."""
        raise NotImplementedError

    def restart(self, shard: int) -> None:
        """Recreate a shard's executor after a crash. No-op by default."""

    def close(self) -> None:
        raise NotImplementedError

    def __enter__(self) -> "ShardTransport":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def _solve_task(plan, plan_cache, X, task, kernel_kwargs):
    """Execute one solve task against a shard's engine.

    Shared verbatim by the in-process transport and the worker process,
    so both paths run the identical arithmetic. Task forms:

    * ``("idx", q_idx, k, variant)``  — partition solve, table-index queries
    * ``("rows", Q, k, variant)``     — partition solve, literal query rows
    * ``("group", q_idx, r_idx, k)``  — ad-hoc group solve (the
      distributed tree iteration's leaves), via the shard's PlanCache

    ``variant`` is the int the *caller* resolved against the global
    problem shape — a shard must never re-resolve it locally, where its
    smaller partition could flip the Var#1/Var#6 decision and perturb
    distance bits.
    """
    kind = task[0]
    if kind == "group":
        _, q_idx, r_idx, k = task
        group_plan = plan_cache.get(X, r_idx, **kernel_kwargs)
        res = group_plan.execute(q_idx, k, warm_start=False)
        return res.distances, res.indices
    if plan is None:
        raise BackendError("shard has an empty partition; nothing to solve")
    _, q, k, *rest = task
    variant = rest[0] if rest else None
    if kind == "idx":
        res = plan.execute(q, k, warm_start=False, variant=variant)
    elif kind == "rows":
        res = plan.execute_rows(q, k, variant=variant)
    else:  # pragma: no cover - defended against protocol drift
        raise ValidationError(f"unknown shard task kind {kind!r}")
    return res.distances, res.indices


def _shard_kwargs(kernel_kwargs: dict[str, Any], X2) -> dict[str, Any]:
    kwargs = dict(kernel_kwargs)
    if X2 is not None:
        kwargs["X2"] = X2
    return kwargs


# -- in-process transport ----------------------------------------------------


class LocalTransport(ShardTransport):
    """Synchronous in-process shards: per-shard plans, no IPC.

    Deterministic and dependency-free — the reference implementation of
    the contract, the test twin, and the engine the router's serial
    fallback rung re-solves failed partitions on.
    """

    name = "local"

    def __init__(self) -> None:
        self._world: ShardWorld | None = None
        self._plans: list[Any] = []
        self._cache = None

    def start(self, world: ShardWorld) -> None:
        from ..core.plan import PlanCache

        self._world = world
        self._cache = PlanCache()
        self._build_plans()

    def _build_plans(self) -> None:
        from ..core.plan import GsknnPlan

        assert self._world is not None
        kwargs = _shard_kwargs(self._world.kernel_kwargs, self._world.X2)
        self._plans = [
            GsknnPlan(self._world.X, ids, **kwargs) if ids.size else None
            for ids in self._world.local_ids
        ]

    def refresh(self, world: ShardWorld) -> None:
        self._world = world
        if self._cache is not None:
            self._cache.clear()
        self._build_plans()

    def submit(self, shard: int, task: tuple, *, attempt: int = 0) -> Future:
        assert self._world is not None
        fut: Future = Future()
        registry = _get_registry()
        try:
            with _get_tracer().span(
                "shard.solve", shard=shard, transport=self.name
            ):
                out = _solve_task(
                    self._plans[shard],
                    self._cache,
                    self._world.X,
                    task,
                    _shard_kwargs(
                        self._world.kernel_kwargs, self._world.X2
                    ),
                )
            if registry.enabled:
                registry.inc("shard.solves", labels={"shard": str(shard)})
            fut.set_result((*out, None))
        except BaseException as exc:  # rejected future, not a raise:
            fut.set_exception(exc)  # keep submit() non-throwing like a pool
        return fut

    def close(self) -> None:
        self._plans = []
        self._world = None
        self._cache = None


# -- process transport -------------------------------------------------------

# Per-worker module state, set by the pool initializer (one worker per
# shard pool, so this is effectively per-shard state that lives as long
# as the shard process does).
_SHARD_STATE: dict[str, Any] = {}


def _shard_worker_init(
    shard_id: int,
    specs: dict[str, Any],
    init_blob: bytes,
    fault_spec: str | None,
    obs_spec: dict[str, Any] | None,
) -> None:
    from ..core.plan import PlanCache
    from ..parallel.backends import _worker_fault_plan

    _install_worker_obs(obs_spec)
    _shard_worker_attach(specs, init_blob)
    _SHARD_STATE["shard_id"] = int(shard_id)
    _SHARD_STATE["fault_plan"] = _worker_fault_plan(fault_spec)
    _SHARD_STATE["cache"] = PlanCache()


def _shard_worker_attach(specs: dict[str, Any], init_blob: bytes) -> None:
    """(Re)attach shared segments and stage a fresh partition plan."""
    init = pickle.loads(init_blob)
    old = _SHARD_STATE.pop("segments", {})
    segments: dict[str, Any] = {}
    arrays: dict[str, Any] = {}
    for key, spec in specs.items():
        if spec is None:
            arrays[key] = None
            continue
        shm, view = shm_attach(spec)
        segments[key] = shm  # keep the handle alive for the view
        arrays[key] = view
    _SHARD_STATE["segments"] = segments
    _SHARD_STATE["arrays"] = arrays
    _SHARD_STATE["kernel_kwargs"] = init["kernel_kwargs"]
    _SHARD_STATE["local_ids"] = init["local_ids"]
    _SHARD_STATE["epoch"] = init["epoch"]
    # plan invalidation: the epoch moved (or this is the first attach),
    # so any packed panels refer to stale membership
    _SHARD_STATE.pop("plan", None)
    cache = _SHARD_STATE.get("cache")
    if cache is not None:
        cache.clear()
    for shm in old.values():
        try:
            shm.close()
        except OSError:  # pragma: no cover - segment already gone
            pass


def _shard_worker_refresh(specs: dict[str, Any], init_blob: bytes) -> int:
    """Epoch propagation, run *in* the worker (FIFO-ordered vs solves)."""
    _shard_worker_attach(specs, init_blob)
    return _SHARD_STATE["epoch"]


def _shard_worker_solve(
    task: tuple, epoch: int, attempt: int
) -> tuple[np.ndarray, np.ndarray, dict[str, Any] | None]:
    if epoch != _SHARD_STATE["epoch"]:
        raise BackendError(
            f"shard worker at epoch {_SHARD_STATE['epoch']} received a "
            f"task for epoch {epoch}"
        )
    shard_id = _SHARD_STATE["shard_id"]
    fault_plan = _SHARD_STATE.get("fault_plan")
    if fault_plan is not None:
        # hard_exit: an injected shard crash must be a real process
        # death so the router exercises BrokenProcessPool recovery
        fault_plan.apply(
            "shard", f"{epoch}:{shard_id}", attempt, hard_exit=True
        )
    arrays = _SHARD_STATE["arrays"]
    kwargs = _shard_kwargs(_SHARD_STATE["kernel_kwargs"], arrays.get("X2"))
    if "plan" not in _SHARD_STATE:
        from ..core.plan import GsknnPlan

        ids = _SHARD_STATE["local_ids"]
        _SHARD_STATE["plan"] = (
            GsknnPlan(arrays["X"], ids, **kwargs) if ids.size else None
        )
    with _get_tracer().span(
        "shard.solve", shard=shard_id, transport="process", epoch=epoch
    ):
        dist, idx = _solve_task(
            _SHARD_STATE["plan"],
            _SHARD_STATE["cache"],
            arrays["X"],
            task,
            kwargs,
        )
    registry = _get_registry()
    if registry.enabled:
        registry.inc("shard.solves", labels={"shard": str(shard_id)})
    return dist, idx, _drain_worker_obs()


class ProcessTransport(ShardTransport):
    """One long-lived single-worker process pool per shard."""

    name = "process"

    def __init__(self, mp_context: str | None = None) -> None:
        import multiprocessing

        self._ctx = (
            multiprocessing.get_context(mp_context)
            if mp_context
            else multiprocessing.get_context()
        )
        self._world: ShardWorld | None = None
        self._pools: list[ProcessPoolExecutor | None] = []
        self._segments: list[Any] = []
        self._specs: dict[str, Any] = {}
        self._init_blobs: list[bytes] = []

    # -- lifecycle -----------------------------------------------------------

    def start(self, world: ShardWorld) -> None:
        self._world = world
        self._unlink(self._export_table(world))
        self._init_blobs = [
            self._init_blob(world, s) for s in range(world.n_shards)
        ]
        self._pools = [None] * world.n_shards
        for s in range(world.n_shards):
            self._spawn(s)

    def _export_table(self, world: ShardWorld) -> list:
        """Export the world's table to fresh segments; returns the
        superseded ones. The caller unlinks those only once no worker
        can still need them — a pool created before this export may
        lazily spawn its first worker from init-args that reference the
        old segments, so ``refresh`` keeps them alive until every pool
        has round-tripped the new epoch."""
        old, self._segments = self._segments, []
        specs: dict[str, Any] = {}
        try:
            for key, arr in (("X", world.X), ("X2", world.X2)):
                if arr is None:
                    specs[key] = None
                    continue
                shm, spec = shm_export(np.asarray(arr))
                self._segments.append(shm)
                specs[key] = spec
        except BaseException:
            self._unlink(self._segments)
            self._segments = old
            raise
        self._specs = specs
        registry = _get_registry()
        if registry.enabled:
            registry.inc(
                "shard.shm_bytes", sum(s.size for s in self._segments)
            )
        return old

    @staticmethod
    def _init_blob(world: ShardWorld, shard: int) -> bytes:
        return pickle.dumps(
            {
                "kernel_kwargs": world.kernel_kwargs,
                "local_ids": world.local_ids[shard],
                "epoch": world.epoch,
            }
        )

    def _spawn(self, shard: int) -> None:
        assert self._world is not None
        self._pools[shard] = ProcessPoolExecutor(
            max_workers=1,
            mp_context=self._ctx,
            initializer=_shard_worker_init,
            initargs=(
                shard,
                self._specs,
                self._init_blobs[shard],
                self._world.fault_spec,
                _obs_spec(),
            ),
        )

    def restart(self, shard: int) -> None:
        pool = self._pools[shard]
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        self._spawn(shard)
        registry = _get_registry()
        if registry.enabled:
            registry.inc(
                "shard.worker_restarts", labels={"shard": str(shard)}
            )

    def refresh(self, world: ShardWorld) -> None:
        """New epoch: re-export the table if it changed, then push the
        new partition to every worker (FIFO-ordered before any
        subsequent solve on that worker)."""
        assert self._world is not None
        table_changed = world.X is not self._world.X
        self._world = world
        stale: list = []
        if table_changed:
            stale = self._export_table(world)
        self._init_blobs = [
            self._init_blob(world, s) for s in range(world.n_shards)
        ]
        for s, pool in enumerate(self._pools):
            if pool is None:
                continue
            try:
                pool.submit(
                    _shard_worker_refresh, self._specs, self._init_blobs[s]
                ).result()
            except Exception:
                # a worker that died before/during the refresh comes
                # back with the new state baked into its initargs
                self.restart(s)
        self._unlink(stale)

    # -- solve ---------------------------------------------------------------

    def submit(self, shard: int, task: tuple, *, attempt: int = 0) -> Future:
        assert self._world is not None
        pool = self._pools[shard]
        if pool is None:  # pragma: no cover - defensive
            raise BackendError(f"shard {shard} has no worker pool")
        return pool.submit(
            _shard_worker_solve, task, self._world.epoch, attempt
        )

    def close(self) -> None:
        # wait=True: an interpreter exiting while a pool's management
        # thread is still tearing down races the executor atexit hook
        # against the wakeup pipe's close (a spurious "Exception
        # ignored ... Bad file descriptor" on stderr)
        pools, self._pools = self._pools, []
        for pool in pools:
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)
        segments, self._segments = self._segments, []
        self._unlink(segments)
        self._world = None

    @staticmethod
    def _unlink(segments) -> None:
        for shm in segments:
            try:
                shm.close()
                shm.unlink()
            except OSError:  # pragma: no cover - already gone
                pass


TRANSPORTS = {
    "local": LocalTransport,
    "process": ProcessTransport,
}


def resolve_transport(transport) -> ShardTransport:
    """Accept a transport name or instance."""
    if isinstance(transport, ShardTransport):
        return transport
    try:
        factory = TRANSPORTS[transport]
    except (KeyError, TypeError):
        raise ValidationError(
            f"transport must be one of {sorted(TRANSPORTS)} or a "
            f"ShardTransport instance, got {transport!r}"
        ) from None
    return factory()
