"""Tests for the workspace arena (grow-only buffers, pools)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.arena import ArenaPool, NullArena, WorkspaceArena, null_arena_pool
from repro.errors import ValidationError


class TestWorkspaceArena:
    def test_same_shape_reuses_buffer(self):
        arena = WorkspaceArena()
        a = arena.take("tile", (4, 5))
        a[:] = 7.0
        b = arena.take("tile", (4, 5))
        assert b.base is a.base or b is a
        assert np.shares_memory(a, b)

    def test_grow_only(self):
        arena = WorkspaceArena()
        arena.take("tile", (4, 8))
        big = arena.take("tile", (6, 2))  # grows rows, keeps cols
        assert big.shape == (6, 2)
        again = arena.take("tile", (6, 8))
        assert again.shape == (6, 8)
        assert len(arena) == 1

    def test_smaller_request_returns_view(self):
        arena = WorkspaceArena()
        full = arena.take("tile", (8, 8))
        small = arena.take("tile", (3, 5))
        assert small.shape == (3, 5)
        assert np.shares_memory(full, small)

    def test_dtype_change_reallocates(self):
        arena = WorkspaceArena()
        a = arena.take("buf", (4,), np.float64)
        b = arena.take("buf", (4,), np.bool_)
        assert b.dtype == np.bool_
        assert not np.shares_memory(a, b)

    def test_distinct_keys_are_independent(self):
        arena = WorkspaceArena()
        a = arena.take("a", (4,))
        b = arena.take("b", (4,))
        assert not np.shares_memory(a, b)

    def test_nbytes_and_clear(self):
        arena = WorkspaceArena()
        arena.take("tile", (10, 10))
        assert arena.nbytes == 10 * 10 * 8
        arena.clear()
        assert arena.nbytes == 0 and len(arena) == 0

    def test_negative_shape_rejected(self):
        with pytest.raises(ValidationError):
            WorkspaceArena().take("x", (-1, 2))


class TestNullArena:
    def test_always_allocates(self):
        arena = NullArena()
        a = arena.take("tile", (4, 4))
        b = arena.take("tile", (4, 4))
        assert a.shape == b.shape == (4, 4)
        assert not np.shares_memory(a, b)
        assert arena.nbytes == 0


class TestArenaPool:
    def test_serial_borrow_reuses_one_arena(self):
        pool = ArenaPool()
        with pool.borrow() as a:
            a.take("t", (4,))
        with pool.borrow() as b:
            assert b.nbytes == 4 * 8  # the same arena came back
        assert pool.created == 1

    def test_nested_borrows_get_distinct_arenas(self):
        pool = ArenaPool()
        with pool.borrow() as a, pool.borrow() as b:
            assert a is not b
        assert pool.created == 2

    def test_null_pool_never_retains(self):
        pool = null_arena_pool()
        with pool.borrow() as a:
            a.take("t", (100,))
        assert pool.nbytes == 0


class TestBudgetedArena:
    def test_growth_charges_budget(self):
        from repro.core.membudget import MemoryBudget

        budget = MemoryBudget(10_000)
        arena = WorkspaceArena(budget=budget)
        arena.take("tile", (10, 10))  # 800 bytes
        assert budget.used_bytes == 800
        arena.take("tile", (20, 10))  # grows to 1600, releases 800 first
        assert budget.used_bytes == 1600
        assert budget.peak_bytes == 1600  # never 800 + 1600 at once
        assert arena.peak_nbytes == 1600

    def test_over_budget_refused_before_allocation(self):
        from repro.core.membudget import MemoryBudget
        from repro.errors import MemoryBudgetError

        budget = MemoryBudget(1000)
        arena = WorkspaceArena(budget=budget)
        arena.take("a", (100,))  # 800 bytes
        with pytest.raises(MemoryBudgetError):
            arena.take("b", (100,))  # another 800 would cross
        # the denied key allocated nothing and the old state is intact
        assert arena.nbytes == 800
        assert budget.used_bytes == 800
        # same-shape reuse still works after a denial
        assert arena.take("a", (100,)).shape == (100,)

    def test_grow_only_under_cap_many_rounds(self):
        # Repeatedly cycling shapes below the high-water mark must not
        # re-charge the budget: steady state means zero net reservations.
        from repro.core.membudget import MemoryBudget

        budget = MemoryBudget(100_000)
        arena = WorkspaceArena(budget=budget)
        arena.take("tile", (64, 64))
        settled = budget.used_bytes
        for rows in (8, 64, 17, 33, 64):
            arena.take("tile", (rows, 64))
        assert budget.used_bytes == settled
        assert arena.peak_nbytes == settled

    def test_clear_returns_charges(self):
        from repro.core.membudget import MemoryBudget

        budget = MemoryBudget(10_000)
        arena = WorkspaceArena(budget=budget)
        arena.take("a", (10,))
        arena.take_c("b", (10,))
        assert budget.used_bytes == 160
        arena.clear()
        assert budget.used_bytes == 0
        assert arena.peak_nbytes == 160  # peak is a lifetime property


class TestTakeCReshape:
    def test_ragged_shapes_reuse_flat_buffer(self):
        arena = WorkspaceArena()
        a = arena.take_c("buf", (6, 4))
        b = arena.take_c("buf", (4, 6))  # same size, different shape
        assert b.shape == (4, 6)
        assert b.flags["C_CONTIGUOUS"]
        assert np.shares_memory(a, b)
        assert len(arena) == 1

    def test_shrinking_request_is_contiguous_not_strided(self):
        arena = WorkspaceArena()
        arena.take_c("buf", (8, 8))
        small = arena.take_c("buf", (3, 5))
        assert small.shape == (3, 5)
        assert small.flags["C_CONTIGUOUS"]
        # a plain take() view of an (8, 8) buffer would be strided here;
        # take_c must hand out a dense prefix instead
        assert small.strides == (5 * 8, 8)

    def test_dimensionality_change(self):
        arena = WorkspaceArena()
        a = arena.take_c("buf", (24,))
        b = arena.take_c("buf", (2, 3, 4))
        assert b.shape == (2, 3, 4)
        assert np.shares_memory(a, b)

    def test_zero_size_shape(self):
        arena = WorkspaceArena()
        z = arena.take_c("buf", (0, 5))
        assert z.shape == (0, 5)
        assert z.size == 0

    def test_budgeted_pool_shares_one_budget(self):
        from repro.core.membudget import MemoryBudget

        budget = MemoryBudget(10_000)
        pool = ArenaPool(budget=budget)
        with pool.borrow() as a, pool.borrow() as b:
            a.take("t", (100,))
            b.take("t", (100,))
        assert budget.used_bytes == 1600  # both arenas charged the same cap
        assert pool.peak_nbytes == 1600

    def test_pool_rejects_factory_plus_budget(self):
        from repro.core.membudget import MemoryBudget

        with pytest.raises(ValidationError):
            ArenaPool(WorkspaceArena, budget=MemoryBudget(100))
