"""RequestContext: id generation, scoping, coercion, span tagging."""

from __future__ import annotations

import os
import threading

from repro.obs.context import (
    RequestContext,
    bind_request,
    coerce_request,
    current_request,
    current_request_id,
    new_request_id,
    request_scope,
)
from repro.obs.trace import Tracer


class TestRequestContext:
    def test_new_generates_unique_pid_prefixed_ids(self):
        a, b = RequestContext.new(), RequestContext.new()
        assert a.request_id != b.request_id
        prefix = f"req-{os.getpid():x}-"
        assert a.request_id.startswith(prefix)
        assert b.request_id.startswith(prefix)

    def test_defaults(self):
        ctx = RequestContext.new()
        assert ctx.tenant == "default"
        assert ctx.deadline is None

    def test_with_deadline_returns_new_context(self):
        ctx = RequestContext.new(tenant="t")
        bounded = ctx.with_deadline(1.5)
        assert bounded is not ctx
        assert bounded.request_id == ctx.request_id
        assert bounded.tenant == "t"
        assert bounded.deadline == 1.5
        assert ctx.deadline is None

    def test_new_request_id_monotonic_suffix(self):
        first, second = new_request_id(), new_request_id()
        assert first != second


class TestCoercion:
    def test_context_passes_through(self):
        ctx = RequestContext.new()
        assert coerce_request(ctx) is ctx

    def test_string_becomes_context(self):
        ctx = coerce_request("req-abc")
        assert isinstance(ctx, RequestContext)
        assert ctx.request_id == "req-abc"

    def test_none_stays_none(self):
        assert coerce_request(None) is None


class TestScoping:
    def test_scope_sets_and_restores(self):
        assert current_request() is None
        ctx = RequestContext.new()
        with request_scope(ctx):
            assert current_request() is ctx
            assert current_request_id() == ctx.request_id
        assert current_request() is None

    def test_none_scope_is_noop(self):
        outer = RequestContext.new()
        with request_scope(outer):
            with request_scope(None):
                # a None scope must not clear the ambient request: callers
                # forward their (possibly absent) request argument blindly
                assert current_request() is outer

    def test_nested_scopes_shadow(self):
        outer, inner = RequestContext.new(), RequestContext.new()
        with request_scope(outer):
            with request_scope(inner):
                assert current_request() is inner
            assert current_request() is outer

    def test_scope_restores_on_exception(self):
        ctx = RequestContext.new()
        try:
            with request_scope(ctx):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert current_request() is None

    def test_threads_do_not_inherit_scope(self):
        # a fresh thread starts with an empty contextvars context: worker
        # pools must capture + rebind explicitly (backends.py does)
        seen: list = []
        ctx = RequestContext.new()
        with request_scope(ctx):
            t = threading.Thread(target=lambda: seen.append(current_request()))
            t.start()
            t.join()
        assert seen == [None]

    def test_bind_request_is_permanent_for_thread(self):
        seen: list = []
        ctx = RequestContext.new()

        def worker():
            bind_request(ctx)
            seen.append(current_request())

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert seen == [ctx]
        assert current_request() is None  # the binding stayed in its thread


class TestSpanTagging:
    def test_spans_auto_carry_request_id(self):
        tracer = Tracer(enabled=True)
        ctx = RequestContext.new()
        with request_scope(ctx):
            with tracer.span("inside"):
                pass
        with tracer.span("outside"):
            pass
        spans = {s.name: s for s in tracer.spans}
        assert spans["inside"].attrs["request_id"] == ctx.request_id
        assert "request_id" not in spans["outside"].attrs

    def test_explicit_request_id_attr_wins(self):
        tracer = Tracer(enabled=True)
        with request_scope(RequestContext.new()):
            with tracer.span("s", request_id="req-custom"):
                pass
        assert tracer.spans[0].attrs["request_id"] == "req-custom"

    def test_span_under_carries_request_id(self):
        tracer = Tracer(enabled=True)
        ctx = RequestContext.new()
        with request_scope(ctx):
            with tracer.span_under(None, "forced"):
                pass
        assert tracer.spans[0].attrs["request_id"] == ctx.request_id
