"""Chunk-level resilient execution of the data-parallel decomposition.

The plain backends are fail-whole-solve: one dead worker aborts the
entire ``gsknn_data_parallel`` call. This executor keeps the *same*
chunk decomposition (so results stay bit-identical to the serial
backend — the variant was resolved once on the full problem and every
chunk is an independent sub-solve) but tracks each ``(chunk_m, k)``
chunk individually:

* a chunk whose worker dies, hits an injected fault, or raises a
  transient error is **resubmitted** with exponential backoff, up to
  :attr:`RetryPolicy.max_attempts` per ladder rung;
* a rung that cannot complete its chunks **degrades** —
  ``processes -> threads -> serial`` — carrying only the unfinished
  chunks; completed results are never recomputed. The final ``serial``
  rung executes fault-free, so under any fault plan the solve
  terminates with the correct answer (or a deliberate deadline error);
* a :class:`~repro.resilience.Deadline` bounds the whole solve: waits
  are sliced from the remaining budget, expiry reaps worker processes,
  unlinks shared segments, and raises
  :class:`~repro.errors.KernelTimeoutError` carrying
  ``completed``/``total`` chunk metadata instead of hanging.

Every recovery action is observable: ``resilience.retries``,
``resilience.fallbacks``, ``resilience.chunks_recovered``,
``resilience.pool_rebuilds``, ``resilience.deadline_hits``, and
``resilience.faults_injected`` counters plus ``resilience.rung`` spans
flow through the standard :mod:`repro.obs` registry/tracer.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Any, Sequence

import numpy as np

from ..errors import BackendError
from ..obs import trace as _trace
from ..obs.metrics import get_registry as _get_registry
from .deadline import Deadline
from .faults import FaultPlan
from .retry import FALLBACK_LADDER, RetryPolicy, is_retryable

__all__ = ["solve_chunks_resilient"]

#: Poll cap for pool waits, seconds. Bounds how stale a deadline check
#: can get while all in-flight futures are stuck on slow chunks.
_WAIT_SLICE = 0.05


def _reap_pool(pool) -> None:
    """Stop a process pool *now*: cancel queued work, terminate workers.

    ``shutdown(wait=False)`` alone leaves a worker grinding on its
    current chunk past the deadline; the acceptance contract is
    "workers reaped", so the pool's processes are terminated directly.
    """
    pool.shutdown(wait=False, cancel_futures=True)
    procs = getattr(pool, "_processes", None)
    if procs:
        for proc in list(procs.values()):
            try:
                proc.terminate()
            except Exception:  # pragma: no cover - already dead
                pass


class _ChunkLedger:
    """Progress accounting shared by every rung: what is done, what
    remains, how often each chunk has failed."""

    def __init__(self, chunks: Sequence[tuple[int, int]]) -> None:
        self.pending: dict[int, tuple[int, int]] = {c[0]: c for c in chunks}
        self.results: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self.attempts: dict[int, int] = {c[0]: 0 for c in chunks}
        self.total = len(chunks)

    def complete(self, start: int, dist: np.ndarray, idx: np.ndarray) -> None:
        self.results[start] = (dist, idx)
        self.pending.pop(start, None)

    def fail(self, start: int) -> None:
        self.attempts[start] += 1

    @property
    def recovered(self) -> int:
        """Chunks that failed at least once but completed anyway."""
        return sum(
            1 for s in self.results if self.attempts[s] > 0
        )

    def progress(self) -> dict[str, int]:
        return {"completed": len(self.results), "total": self.total}


def solve_chunks_resilient(
    X: np.ndarray,
    q_idx: np.ndarray,
    r_idx: np.ndarray,
    k: int,
    chunks: Sequence[tuple[int, int]],
    kernel_kwargs: dict[str, Any],
    *,
    backend: str = "processes",
    p: int = 2,
    retry: RetryPolicy | None = None,
    deadline: Deadline | None = None,
    fault_plan: FaultPlan | None = None,
    mp_context: str | None = None,
):
    """Run the chunk list to completion (or deadline) with recovery.

    Same contract as ``ExecutionBackend.solve_chunks`` plus the three
    resilience inputs. Results are bit-identical to the serial backend
    on the same chunk list, regardless of which rungs executed which
    chunks.
    """
    from ..core.neighbors import KnnResult
    from ..errors import ValidationError

    if backend not in FALLBACK_LADDER:
        raise ValidationError(
            f"resilient execution supports backends "
            f"{sorted(FALLBACK_LADDER)}, got {backend!r}"
        )
    retry = retry if retry is not None else RetryPolicy()
    ledger = _ChunkLedger(chunks)
    ladder = FALLBACK_LADDER[backend]
    registry = _get_registry()
    degraded_to = backend
    for rung_index, rung in enumerate(ladder):
        if not ledger.pending:
            break
        last_rung = rung_index == len(ladder) - 1
        if rung_index > 0:
            degraded_to = rung
            if registry.enabled:
                registry.inc("resilience.fallbacks")
                registry.inc(f"resilience.fallbacks.{rung}")
        with _trace.span(
            "resilience.rung",
            backend=rung,
            pending=len(ledger.pending),
            degraded=rung_index > 0,
        ):
            # the serial rung of last resort runs fault-free: injection
            # exercises recovery, it must never make completion impossible
            plan = None if (last_rung and rung == "serial") else fault_plan
            if rung == "processes":
                _run_processes_rung(
                    X, q_idx, r_idx, k, kernel_kwargs, ledger,
                    p=p, retry=retry, deadline=deadline,
                    fault_plan=plan, mp_context=mp_context,
                )
            elif rung == "threads":
                _run_threads_rung(
                    X, q_idx, r_idx, k, kernel_kwargs, ledger,
                    p=p, retry=retry, deadline=deadline, fault_plan=plan,
                )
            else:
                _run_serial_rung(
                    X, q_idx, r_idx, k, kernel_kwargs, ledger,
                    retry=retry, deadline=deadline, fault_plan=plan,
                )
    if ledger.pending:
        # serial is fault-free, so reaching here means a genuine,
        # non-transient failure happened on every rung
        raise BackendError(
            f"resilient execution exhausted the "
            f"{' -> '.join(ladder)} ladder with "
            f"{len(ledger.pending)}/{ledger.total} chunks unfinished"
        )
    if registry.enabled:
        registry.inc("resilience.solves")
        recovered = ledger.recovered
        if recovered:
            registry.inc("resilience.chunks_recovered", recovered)
        if degraded_to != backend:
            registry.inc("resilience.degraded_solves")
    m = q_idx.size
    dist = np.empty((m, k), dtype=np.float64)
    idx = np.empty((m, k), dtype=np.intp)
    for start, (d_chunk, i_chunk) in ledger.results.items():
        dist[start : start + d_chunk.shape[0]] = d_chunk
        idx[start : start + i_chunk.shape[0]] = i_chunk
    return KnnResult(dist, idx)


# -- rungs --------------------------------------------------------------------


def _note_retry(registry, ledger: _ChunkLedger, start: int) -> None:
    ledger.fail(start)
    if registry.enabled:
        registry.inc("resilience.retries")


def _run_serial_rung(
    X, q_idx, r_idx, k, kernel_kwargs, ledger, *, retry, deadline, fault_plan
):
    from ..parallel.backends import _plan_for, _solve_chunk

    registry = _get_registry()
    plan = _plan_for(X, r_idx, kernel_kwargs)
    for attempt_round in range(retry.max_attempts):
        for start in list(ledger.pending):
            chunk = ledger.pending[start]
            if deadline is not None:
                deadline.check("serial chunk", **ledger.progress())
            try:
                if fault_plan is not None:
                    fault_plan.apply("chunk", start, ledger.attempts[start])
                s, d, i = _solve_chunk(
                    X, q_idx, r_idx, k, chunk, kernel_kwargs, plan
                )
            except Exception as exc:
                if not is_retryable(exc):
                    raise
                _note_retry(registry, ledger, start)
            else:
                ledger.complete(s, d, i)
        if not ledger.pending or attempt_round == retry.max_attempts - 1:
            break
        retry.sleep(attempt_round, deadline)


def _drain_futures(futures, ledger, deadline, registry, site, parent_id=None):
    """Collect results from ``futures`` ({future: start}) under the
    deadline; returns True if the pool broke (processes only).

    Process-worker results carry a fourth element — the worker's
    span/metric payload — which is folded into the caller's tracer and
    registry here, re-parented under ``parent_id`` (the enclosing
    ``resilience.rung`` span).
    """
    from concurrent.futures.process import BrokenProcessPool

    from ..parallel.backends import _absorb_worker_obs

    broken = False
    not_done = set(futures)
    while not_done:
        if deadline is not None and deadline.expired():
            for f in not_done:
                f.cancel()
            deadline.raise_expired(site, **ledger.progress())
        timeout = (
            _WAIT_SLICE
            if deadline is None
            else deadline.timeout(cap=_WAIT_SLICE)
        )
        done, not_done = wait(
            not_done, timeout=timeout, return_when=FIRST_COMPLETED
        )
        for future in done:
            start = futures[future]
            try:
                res = future.result()
                if len(res) == 4:
                    s, d, i, obs = res
                    _absorb_worker_obs(obs, parent_id)
                else:
                    s, d, i = res
            except BrokenProcessPool:
                broken = True
                _note_retry(registry, ledger, start)
            except Exception as exc:
                if not is_retryable(exc):
                    raise
                _note_retry(registry, ledger, start)
            else:
                ledger.complete(s, d, i)
    return broken


def _run_threads_rung(
    X, q_idx, r_idx, k, kernel_kwargs, ledger, *, p, retry, deadline, fault_plan
):
    from ..parallel.backends import _plan_for, _solve_chunk
    from ..parallel.chunking import resolve_workers

    from ..obs.context import current_request, request_scope

    registry = _get_registry()
    plan = _plan_for(X, r_idx, kernel_kwargs)
    # pool threads inherit neither the request ContextVar nor the span
    # stack (the open resilience.rung span): capture both here
    ctx = current_request()
    tracer = _trace.get_tracer()
    parent_id = tracer.current_span_id()

    def solve_one(chunk: tuple[int, int], attempt: int):
        with request_scope(ctx):
            if fault_plan is not None:
                fault_plan.apply("chunk", chunk[0], attempt)
            with tracer.span_under(
                parent_id, "worker.chunk", chunk=chunk[0], size=chunk[1]
            ):
                return _solve_chunk(
                    X, q_idx, r_idx, k, chunk, kernel_kwargs, plan
                )

    pool = ThreadPoolExecutor(
        max_workers=resolve_workers(p, len(ledger.pending))
    )
    try:
        for attempt_round in range(retry.max_attempts):
            futures = {
                pool.submit(solve_one, chunk, ledger.attempts[start]): start
                for start, chunk in ledger.pending.items()
            }
            _drain_futures(
                futures, ledger, deadline, registry, "threads chunk wait"
            )
            if not ledger.pending or attempt_round == retry.max_attempts - 1:
                break
            retry.sleep(attempt_round, deadline)
    finally:
        # no waiting on stragglers: a slow chunk must not hold the
        # deadline error (or the fallback) hostage
        pool.shutdown(wait=False, cancel_futures=True)


def _run_processes_rung(
    X, q_idx, r_idx, k, kernel_kwargs, ledger,
    *, p, retry, deadline, fault_plan, mp_context,
):
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    from ..parallel.backends import (
        _obs_spec,
        _process_worker_init,
        _process_worker_solve,
        _SharedOperands,
    )
    from ..parallel.chunking import resolve_workers

    registry = _get_registry()
    if mp_context is None:
        methods = multiprocessing.get_all_start_methods()
        mp_context = "fork" if "fork" in methods else "spawn"
    ctx = multiprocessing.get_context(mp_context)
    fault_spec = fault_plan.spec() if fault_plan is not None else None
    obs_spec = _obs_spec()
    # worker spans re-parent under the open resilience.rung span
    parent_id = _trace.get_tracer().current_span_id()

    with _SharedOperands(X, q_idx, r_idx, kernel_kwargs) as ops:
        pool = None

        def make_pool():
            return ProcessPoolExecutor(
                max_workers=resolve_workers(p, len(ledger.pending)),
                mp_context=ctx,
                initializer=_process_worker_init,
                initargs=(ops.specs, ops.blob, fault_spec, obs_spec),
            )

        try:
            for attempt_round in range(retry.max_attempts):
                if deadline is not None:
                    deadline.check("processes round", **ledger.progress())
                if pool is None:
                    pool = make_pool()
                    if attempt_round > 0 and registry.enabled:
                        registry.inc("resilience.pool_rebuilds")
                futures = {
                    pool.submit(
                        _process_worker_solve,
                        (chunk, k, ledger.attempts[start]),
                    ): start
                    for start, chunk in ledger.pending.items()
                }
                broken = _drain_futures(
                    futures, ledger, deadline, registry,
                    "processes chunk wait", parent_id,
                )
                if broken:
                    # the executor marks itself unusable after a worker
                    # death; drop it so the next round starts fresh
                    _reap_pool(pool)
                    pool = None
                if not ledger.pending or attempt_round == retry.max_attempts - 1:
                    break
                retry.sleep(attempt_round, deadline)
        finally:
            if pool is not None:
                _reap_pool(pool)
