"""Ablations — the design choices §2.3/§2.4 argue for, isolated.

1. **Variant placement** (all six placements; Var#1/5/6 measured,
   Var#2/3 modeled — Var#4 cannot produce complete distances):
   measured wall-clock at small and large k, plus the model's costs for
   all four — showing the small-k/large-k flip the paper's variant
   analysis predicts.
2. **Early discard (root filter)**: Var#1 vs Var#5 on the same blocks —
   Var#5 merges every slab wholesale, so the gap is exactly the filter.
3. **Binary vs 4-heap**: measured scalar-selection operation counts and
   wall-clock for k large, reproducing the "4-heap is 30-50% more
   efficient for Var#6 (k = 2048)" observation at host scale.
4. **Block-size sensitivity**: the fused path's block_n swept across
   powers of two — the cache-blocking argument at numpy granularity.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gsknn import gsknn
from repro.core.ref_kernel import ref_knn
from repro.model import PerformanceModel
from repro.select import SelectionStats, heap_select_smallest

from .conftest import run_report, SCALE, best_time, uniform_problem

SIZE = 2048 * SCALE


def test_ablation_variant_placement(benchmark, report):
    def _run():
        rep = report(
            "ablation_variants",
            f"Variant placement (m=n={SIZE}, d=32; ms measured / model ms @8192)\n"
            f"{'k':>6} {'var1':>14} {'var5':>14} {'var6':>14} {'gemm':>14}",
        )
        model = PerformanceModel()
        X, q, r = uniform_problem(SIZE, SIZE, 32, seed=0)
        for k in (16, min(1024, SIZE // 2)):
            cells = []
            for kernel in ("var1", "var5", "var6", "gemm"):
                if kernel == "gemm":
                    t = best_time(lambda: ref_knn(X, q, r, k), repeats=2)
                else:
                    v = int(kernel[-1])
                    t = best_time(lambda: gsknn(X, q, r, k, variant=v), repeats=2)
                modeled = model.predict_seconds(kernel, 8192, 8192, 32, k)
                cells.append(f"{t * 1e3:>6.0f}/{modeled * 1e3:>6.0f}")
            rep.row(f"{k:>6} " + " ".join(f"{c:>14}" for c in cells))
        rep.row("all six placements, model ms @8192 (var4 not costable):")
        for k in (16, 1024):
            cells = []
            for kernel in ("var1", "var2", "var3", "var5", "var6", "gemm"):
                ms = model.predict_seconds(kernel, 8192, 8192, 32, k) * 1e3
                cells.append(f"{kernel}={ms:.0f}")
            rep.row(f"  k={k:>5}: " + "  ".join(cells))


    run_report(benchmark, _run)


def test_ablation_early_discard(benchmark, report):
    def _run():
        """Var#1 minus Var#5 is exactly the root filter; it must pay off."""
        rep = report(
            "ablation_early_discard",
            f"Early discard (m=n={SIZE}, k=16): var1 (filter on) vs var5 (off)",
        )
        # block_n << n so the stream has many blocks: the filter's job is to
        # skip later blocks row-by-row once the lists are warm.
        block_n = max(SIZE // 16, 64)
        for d in (8, 64):
            X, q, r = uniform_problem(SIZE, SIZE, d, seed=1)
            t_on = best_time(
                lambda: gsknn(X, q, r, 16, variant=1, block_n=block_n), repeats=3
            )
            t_off = best_time(
                lambda: gsknn(X, q, r, 16, variant=5, block_n=block_n), repeats=3
            )
            _, stats = gsknn(
                X, q, r, 16, variant=1, block_n=block_n, return_stats=True
            )
            rep.row(
                f"d={d}: filter on {t_on * 1e3:.0f} ms, off {t_off * 1e3:.0f} ms, "
                f"gain {t_off / t_on:.2f}x "
                f"(discard fraction {stats.discard_fraction:.0%})"
            )
            assert t_on <= t_off * 1.15  # the filter never hurts meaningfully


    run_report(benchmark, _run)


def test_ablation_heap_arity(benchmark, report):
    def _run():
        rep = report(
            "ablation_heap_arity",
            "Binary vs 4-heap selection (scalar path, random stream)",
        )
        rng = np.random.default_rng(0)
        n = 8192 * SCALE
        for k in (64, 2048):
            values = rng.random(n)
            res = {}
            for arity in (2, 4):
                stats = SelectionStats()
                t = best_time(
                    lambda: heap_select_smallest(values, k, arity=arity, stats=stats),
                    repeats=1,
                )
                res[arity] = (t, stats.random_accesses)
            rep.row(
                f"k={k}: binary {res[2][0] * 1e3:.0f} ms "
                f"({res[2][1]} random accesses), "
                f"4-heap {res[4][0] * 1e3:.0f} ms ({res[4][1]} random accesses)"
            )
            # the padded 4-heap touches fewer distinct lines per sift
            assert res[4][1] <= res[2][1]


    run_report(benchmark, _run)


def test_ablation_block_size(benchmark, report):
    def _run():
        rep = report(
            "ablation_block_size",
            f"block_n sweep (m=n={SIZE}, d=32, k=16, var1; ms)",
        )
        X, q, r = uniform_problem(SIZE, SIZE, 32, seed=2)
        times = {}
        for block_n in (128, 512, 2048, SIZE):
            times[block_n] = best_time(
                lambda: gsknn(X, q, r, 16, variant=1, block_n=block_n), repeats=3
            )
            rep.row(f"block_n={block_n:>6}: {times[block_n] * 1e3:.0f} ms")
        # mid-range blocks beat degenerate extremes on at least one side
        assert min(times.values()) <= times[128] + 1e-9


    run_report(benchmark, _run)


@pytest.mark.parametrize("variant", [1, 5])
def test_bench_filter_on_off(benchmark, variant):
    X, q, r = uniform_problem(SIZE, SIZE, 16, seed=3)
    benchmark.group = f"ablation filter m=n={SIZE} d=16 k=16"
    benchmark.name = {1: "var1 (filter)", 5: "var5 (no filter)"}[variant]
    benchmark(lambda: gsknn(X, q, r, 16, variant=variant))


def test_ablation_scheduling(benchmark, report):
    """§2.5's task-parallel claim: greedy first-termination scheduling on
    a runtime-sorted task list balances uneven leaf kernels better than
    naive round-robin. Makespans are modeled (the same estimates the
    production scheduler uses) over real rKD-tree leaf-size
    distributions."""

    def _run():
        import numpy as np

        from repro.data import embedded_gaussian
        from repro.model import PerformanceModel
        from repro.parallel import ScheduledTask, Schedule, lpt_schedule
        from repro.trees import RandomizedKDTree

        rep = report(
            "ablation_scheduling",
            "LPT vs round-robin makespan on rKD-tree leaf kernels "
            "(modeled, p=8)",
        )
        model = PerformanceModel()
        cloud = embedded_gaussian(8192, 32, intrinsic_dim=10, seed=0).points
        for leaf_size in (256, 512, 1024):
            tree = RandomizedKDTree(leaf_size=leaf_size, seed=1).fit(cloud)
            tasks = [
                ScheduledTask(
                    i,
                    model.estimate_kernel_runtime(
                        leaf.size, leaf.size, 32, min(16, leaf.size)
                    ),
                )
                for i, leaf in enumerate(tree.leaves)
            ]
            p = 8
            lpt = lpt_schedule(tasks, p)
            rr = Schedule(p, [[] for _ in range(p)])
            for i, task in enumerate(tasks):
                rr.assignments[i % p].append(task)
            rep.row(
                f"leaf={leaf_size:>5} ({len(tasks):>3} tasks): "
                f"LPT makespan {lpt.makespan * 1e3:7.2f} ms "
                f"(imbalance {lpt.imbalance:.3f}), "
                f"round-robin {rr.makespan * 1e3:7.2f} ms "
                f"(imbalance {rr.imbalance:.3f})"
            )
            assert lpt.makespan <= rr.makespan + 1e-12

    run_report(benchmark, _run)
