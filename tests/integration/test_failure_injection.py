"""Failure-injection tests: malformed inputs fail loudly and precisely."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ReproError, ValidationError, gsknn, ref_knn
from repro.data import Dataset
from repro.trees import all_nearest_neighbors


@pytest.fixture
def X(rng):
    return rng.random((50, 6))


class TestNonFiniteInjection:
    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    @pytest.mark.parametrize("kernel", [gsknn, ref_knn])
    def test_kernels_reject(self, X, bad, kernel):
        corrupted = X.copy()
        corrupted[7, 3] = bad
        with pytest.raises(ValidationError):
            kernel(corrupted, np.arange(5), np.arange(50), 3)

    def test_solver_rejects(self, X):
        corrupted = X.copy()
        corrupted[0, 0] = np.nan
        with pytest.raises(ValidationError):
            all_nearest_neighbors(corrupted, 3, leaf_size=16, iterations=1)


class TestDegenerateGeometry:
    def test_all_points_identical(self, X):
        same = np.ones_like(X)
        res = gsknn(same, np.arange(10), np.arange(50), 4)
        np.testing.assert_allclose(res.distances, 0.0, atol=1e-12)
        assert (res.indices >= 0).all()

    def test_single_dimension(self, rng):
        X = rng.random((30, 1))
        a = gsknn(X, np.arange(10), np.arange(30), 3)
        b = ref_knn(X, np.arange(10), np.arange(30), 3)
        np.testing.assert_allclose(a.distances, b.distances, atol=1e-12)

    def test_huge_coordinate_magnitudes(self, rng):
        """1e150-scale coordinates: the expansion squares them (1e300),
        just inside double range — results must stay finite and ordered."""
        X = rng.random((20, 3)) * 1e150
        res = gsknn(X, np.arange(5), np.arange(20), 3)
        assert np.isfinite(res.distances).all()
        assert res.is_sorted()

    def test_tiny_coordinate_magnitudes(self, rng):
        X = rng.random((20, 3)) * 1e-150
        res = gsknn(X, np.arange(5), np.arange(20), 3)
        assert (res.distances >= 0).all()

    def test_mixed_sign_coordinates(self, rng):
        X = rng.normal(size=(40, 5)) * 100
        a = gsknn(X, np.arange(10), np.arange(40), 4)
        b = ref_knn(X, np.arange(10), np.arange(40), 4)
        np.testing.assert_allclose(a.distances, b.distances, atol=1e-6)


class TestErrorHierarchy:
    def test_validation_error_is_value_error(self):
        assert issubclass(ValidationError, ValueError)
        assert issubclass(ValidationError, ReproError)

    def test_callers_can_catch_base(self, X):
        with pytest.raises(ReproError):
            gsknn(X, np.arange(3), np.arange(5), 100)

    def test_dataset_error_catchable(self):
        with pytest.raises(ReproError):
            Dataset(np.empty((0, 2)))


class TestAwkwardInputTypes:
    def test_list_inputs(self, X):
        res = gsknn(X.tolist(), [0, 1, 2], list(range(20)), 3)
        assert res.m == 3

    def test_uint_indices(self, X):
        res = gsknn(X, np.arange(3, dtype=np.uint32), np.arange(20, dtype=np.uint8), 3)
        assert res.m == 3

    def test_strided_index_views(self, X):
        q = np.arange(20)[::2]  # non-contiguous view
        res = gsknn(X, q, np.arange(30), 3)
        assert res.m == 10

    def test_readonly_arrays(self, X):
        X.setflags(write=False)
        res = gsknn(X, np.arange(5), np.arange(30), 3)
        assert res.m == 5
