"""Parallel kNN schemes (paper §2.5).

Two regimes, as in the paper:

* **task parallelism** (:mod:`repro.parallel.scheduler`) — many small
  independent kNN kernels (one per tree leaf / hash bucket) scheduled
  across processors by greedy first-termination list scheduling on a
  runtime-sorted task list (LPT), with runtimes estimated by the
  performance model;
* **data parallelism** (:mod:`repro.parallel.data_parallel`) — one big
  kernel parallelized over the 4th loop (query blocks), which is safe
  because each query owns its neighbor list; parallelizing the
  reference side instead requires per-thread private lists merged at
  the end (footnote 5), also provided.

Where the decomposed work executes is an orthogonal choice:
:mod:`repro.parallel.backends` provides interchangeable ``serial``,
``threads``, and ``processes`` (zero-copy shared-memory) execution
backends, and :mod:`repro.parallel.chunking` the shared partitioning /
worker-resolution arithmetic every driver uses.
"""

from .backends import (
    BACKENDS,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    resolve_backend,
)
from .chunking import block_aligned_chunks, contiguous_chunks, resolve_workers
from .scheduler import ScheduledTask, Schedule, lpt_schedule, graham_bound
from .data_parallel import gsknn_data_parallel, gsknn_reference_parallel

__all__ = [
    "BACKENDS",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "resolve_backend",
    "resolve_workers",
    "contiguous_chunks",
    "block_aligned_chunks",
    "ScheduledTask",
    "Schedule",
    "lpt_schedule",
    "graham_bound",
    "gsknn_data_parallel",
    "gsknn_reference_parallel",
]
