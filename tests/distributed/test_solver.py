"""Tests for the simulated distributed all-NN solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.neighbors import recall
from repro.data import embedded_gaussian
from repro.distributed import AlphaBetaModel, DistributedAllKnn
from repro.errors import ValidationError
from repro.trees import all_nearest_neighbors, exact_all_knn


@pytest.fixture(scope="module")
def cloud():
    return embedded_gaussian(800, 16, intrinsic_dim=6, seed=5).points


class TestValidation:
    def test_constructor(self):
        with pytest.raises(ValidationError):
            DistributedAllKnn(0)
        with pytest.raises(ValidationError):
            DistributedAllKnn(2, leaf_size=1)
        with pytest.raises(ValidationError):
            DistributedAllKnn(2, iterations=0)
        with pytest.raises(ValidationError):
            DistributedAllKnn(2, kernel="magic")

    def test_leaf_size_vs_k(self, cloud):
        solver = DistributedAllKnn(2, leaf_size=8)
        with pytest.raises(ValidationError):
            solver.solve(cloud, 8)


class TestCorrectness:
    def test_matches_shared_memory_solver_recall(self, cloud):
        """Same algorithm, same exact kernels: the distributed solve must
        reach comparable recall to the single-process solver."""
        truth = exact_all_knn(cloud, 5)
        dist_report = DistributedAllKnn(
            4, leaf_size=128, iterations=6, seed=0
        ).solve(cloud, 5)
        shared_report = all_nearest_neighbors(
            cloud, 5, leaf_size=128, iterations=6, seed=0, tol=0.0
        )
        r_dist = recall(dist_report.result, truth)
        r_shared = recall(shared_report.result, truth)
        assert r_dist > 0.85
        assert abs(r_dist - r_shared) < 0.1

    def test_distances_are_exact_for_reported_ids(self, cloud):
        report = DistributedAllKnn(3, leaf_size=128, iterations=2).solve(
            cloud, 4
        )
        res = report.result
        for i in range(0, 800, 97):
            for dist, j in zip(res.distances[i], res.indices[i]):
                if j >= 0:
                    true = float(((cloud[i] - cloud[j]) ** 2).sum())
                    assert abs(true - dist) < 1e-9

    def test_single_rank_degenerates_to_serial(self, cloud):
        one = DistributedAllKnn(1, leaf_size=128, iterations=2, seed=3).solve(
            cloud, 4
        )
        assert one.comm_bytes == 0  # everything is a self-send
        assert (one.result.indices >= 0).all()

    def test_rank_count_does_not_change_results(self, cloud):
        """The partitioning is rank-count-independent (same trees, same
        leaves) — only the projection changes."""
        a = DistributedAllKnn(2, leaf_size=128, iterations=2, seed=9).solve(
            cloud, 4
        )
        b = DistributedAllKnn(5, leaf_size=128, iterations=2, seed=9).solve(
            cloud, 4
        )
        np.testing.assert_allclose(
            a.result.distances, b.result.distances, atol=1e-12
        )


class TestProjection:
    def test_kernel_time_split_across_ranks(self, cloud):
        report = DistributedAllKnn(4, leaf_size=128, iterations=2).solve(
            cloud, 4
        )
        assert len(report.rank_kernel_seconds) == 4
        assert sum(report.rank_kernel_seconds) == pytest.approx(
            report.serial_kernel_seconds
        )
        assert max(report.rank_kernel_seconds) < report.serial_kernel_seconds

    def test_projected_speedup_grows_with_ranks(self, cloud):
        small = DistributedAllKnn(2, leaf_size=128, iterations=2, seed=1).solve(
            cloud, 4
        )
        large = DistributedAllKnn(8, leaf_size=128, iterations=2, seed=1).solve(
            cloud, 4
        )
        # modest margin: per-leaf kernel timings jitter on a loaded host
        assert large.projected_speedup > small.projected_speedup * 1.05

    def test_communication_accounted(self, cloud):
        report = DistributedAllKnn(4, leaf_size=128, iterations=2).solve(
            cloud, 4
        )
        assert report.comm_bytes > 0
        assert report.comm_seconds > 0

    def test_expensive_network_hurts_projection(self, cloud):
        cheap = DistributedAllKnn(
            4, leaf_size=128, iterations=2, seed=2,
            comm_model=AlphaBetaModel(alpha=1e-7, beta=1e-11),
        ).solve(cloud, 4)
        pricey = DistributedAllKnn(
            4, leaf_size=128, iterations=2, seed=2,
            comm_model=AlphaBetaModel(alpha=1e-3, beta=1e-6),
        ).solve(cloud, 4)
        assert pricey.projected_seconds > cheap.projected_seconds

    def test_schedule_imbalance_reported(self, cloud):
        report = DistributedAllKnn(4, leaf_size=128, iterations=1).solve(
            cloud, 4
        )
        assert report.schedule_imbalance >= 1.0


class TestKernelSwap:
    def test_gemm_kernel_same_answers(self, cloud):
        a = DistributedAllKnn(
            3, leaf_size=128, iterations=2, seed=4, kernel="gsknn"
        ).solve(cloud, 4)
        b = DistributedAllKnn(
            3, leaf_size=128, iterations=2, seed=4, kernel="gemm"
        ).solve(cloud, 4)
        np.testing.assert_allclose(
            a.result.distances, b.result.distances, atol=1e-9
        )
