"""Five-loop Goto-algorithm blocked GEMM over packed micro-panels.

This is the loop nest GSKNN refactors (remove the fused statements from
the paper's Algorithm 2.2 and this is what remains). It computes
``C = A @ B^T`` for row-major operands ``A (m, d)`` and ``B (n, d)`` —
the transpose-B form because both GEMM operands in the kNN kernel are
point sets stored one-point-per-row, and ``C[i, j] = <a_i, b_j>``.

Loop structure (outer to inner), matching Algorithm 2.2's numbering:

* 6th loop ``j_c``: columns of C in blocks of ``n_c`` (B panel → "L3");
* 5th loop ``p_c``: depth in blocks of ``d_c``, packing ``B_c``;
* 4th loop ``i_c``: rows of C in blocks of ``m_c``, packing ``A_c``;
* 3rd loop ``j_r``: ``n_r``-wide micro-panels of ``B_c``;
* 2nd loop ``i_r``: ``m_r``-tall micro-panels of ``A_c``;
* 1st loop (micro-kernel): rank-``d_c`` update of an ``m_r x n_r`` tile.

An optional observer receives one event per packing operation and per
micro-kernel call; the machine simulator plugs in there to count cache
traffic without duplicating the loop nest.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from ..config import BlockingParams, IVY_BRIDGE_BLOCKING, iter_blocks
from ..errors import ValidationError
from ..obs import trace as _trace
from .packing import pack_micropanels

__all__ = ["BlockedGemm", "blocked_gemm", "GemmObserver"]


class GemmObserver(Protocol):
    """Hook interface for instrumenting the blocked loop nest."""

    def on_pack(self, which: str, rows: int, depth: int) -> None:
        """A panel of ``rows`` points x ``depth`` coordinates was packed."""

    def on_microkernel(self, m_r: int, n_r: int, depth: int) -> None:
        """One rank-``depth`` micro-kernel tile of size m_r x n_r ran."""

    def on_c_block(self, rows: int, cols: int, is_first_depth: bool) -> None:
        """An ``rows x cols`` block of C was read-modify-written."""


class _NullObserver:
    def on_pack(self, which: str, rows: int, depth: int) -> None:
        pass

    def on_microkernel(self, m_r: int, n_r: int, depth: int) -> None:
        pass

    def on_c_block(self, rows: int, cols: int, is_first_depth: bool) -> None:
        pass


def _microkernel(
    a_panel: np.ndarray,
    b_panel: np.ndarray,
    c_tile: np.ndarray,
) -> None:
    """Rank-``depth`` update of one register tile: ``C_r += A_r^T B_r``.

    ``a_panel`` is ``(depth, m_r)``, ``b_panel`` is ``(depth, n_r)``;
    the sum over depth of outer products is exactly the paper's sequence
    of VFMA rank-1 updates (Figure 3), expressed as one small GEMM.
    """
    c_tile += a_panel.T @ b_panel


class BlockedGemm:
    """Reusable blocked-GEMM engine with pluggable instrumentation."""

    def __init__(
        self,
        blocking: BlockingParams = IVY_BRIDGE_BLOCKING,
        observer: GemmObserver | None = None,
    ) -> None:
        self.blocking = blocking
        self.observer = observer if observer is not None else _NullObserver()

    def multiply_nt(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        """Compute ``C = A @ B^T`` through the full packed loop nest."""
        A = np.ascontiguousarray(A, dtype=np.float64)
        B = np.ascontiguousarray(B, dtype=np.float64)
        if A.ndim != 2 or B.ndim != 2:
            raise ValidationError("operands must be 2-D")
        if A.shape[1] != B.shape[1]:
            raise ValidationError(
                f"depth mismatch: A is {A.shape}, B is {B.shape}"
            )
        m, d = A.shape
        n = B.shape[0]
        blk = self.blocking
        obs = self.observer
        C = np.zeros((m, n), dtype=np.float64)

        with _trace.span("blocked_gemm", m=m, n=n, d=d):
            for j_c, n_b in iter_blocks(n, blk.n_c):  # 6th loop
                for p_c, d_b in iter_blocks(d, blk.d_c):  # 5th loop
                    b_block = B[j_c : j_c + n_b, p_c : p_c + d_b]
                    with _trace.span("pack", which="R", rows=n_b, depth=d_b):
                        b_packed = pack_micropanels(b_block, blk.n_r)
                    obs.on_pack("R", n_b, d_b)
                    for i_c, m_b in iter_blocks(m, blk.m_c):  # 4th loop
                        a_block = A[i_c : i_c + m_b, p_c : p_c + d_b]
                        with _trace.span("pack", which="Q", rows=m_b, depth=d_b):
                            a_packed = pack_micropanels(a_block, blk.m_r)
                        obs.on_pack("Q", m_b, d_b)
                        obs.on_c_block(m_b, n_b, is_first_depth=(p_c == 0))
                        with _trace.span("rank_update", rows=m_b, cols=n_b, depth=d_b):
                            self._macro_kernel(
                                a_packed,
                                b_packed,
                                C[i_c : i_c + m_b, j_c : j_c + n_b],
                                m_b,
                                n_b,
                                d_b,
                            )
        return C

    def _macro_kernel(
        self,
        a_packed: np.ndarray,
        b_packed: np.ndarray,
        c_block: np.ndarray,
        m_b: int,
        n_b: int,
        d_b: int,
    ) -> None:
        """3rd/2nd loops: sweep micro-panels, firing the micro-kernel."""
        blk = self.blocking
        obs = self.observer
        m_r, n_r = blk.m_r, blk.n_r
        for jp in range(b_packed.shape[0]):  # 3rd loop
            j0 = jp * n_r
            cols = min(n_r, n_b - j0)
            for ip in range(a_packed.shape[0]):  # 2nd loop
                i0 = ip * m_r
                rows = min(m_r, m_b - i0)
                # Register tile is full m_r x n_r (padded lanes are zero);
                # only the live rows/cols land in C.
                c_tile = np.zeros((m_r, n_r), dtype=np.float64)
                c_tile[:rows, :cols] = c_block[i0 : i0 + rows, j0 : j0 + cols]
                _microkernel(a_packed[ip], b_packed[jp], c_tile)
                obs.on_microkernel(m_r, n_r, d_b)
                c_block[i0 : i0 + rows, j0 : j0 + cols] = c_tile[:rows, :cols]


def blocked_gemm(
    A: np.ndarray,
    B: np.ndarray,
    *,
    blocking: BlockingParams = IVY_BRIDGE_BLOCKING,
    observer: GemmObserver | None = None,
    transpose_b: bool = True,
) -> np.ndarray:
    """Convenience wrapper: ``A @ B^T`` (default) or ``A @ B`` blocked."""
    engine = BlockedGemm(blocking, observer)
    if transpose_b:
        return engine.multiply_nt(A, B)
    B = np.asarray(B, dtype=np.float64)
    if B.ndim != 2:
        raise ValidationError("operands must be 2-D")
    return engine.multiply_nt(A, np.ascontiguousarray(B.T))
