"""Unit tests for timers, counters, and efficiency helpers."""

from __future__ import annotations

import time

import pytest

from repro.errors import ValidationError
from repro.perf import (
    KernelCounters,
    PhaseBreakdown,
    PhaseTimer,
    efficiency,
    gflops,
    knn_flops,
)


class TestPhaseTimer:
    def test_accumulates_named_phases(self):
        timer = PhaseTimer()
        with timer.phase("gemm"):
            time.sleep(0.01)
        with timer.phase("gemm"):
            time.sleep(0.01)
        breakdown = timer.breakdown()
        assert breakdown.gemm >= 0.02
        assert breakdown.coll == 0.0

    def test_unknown_phase_lands_in_other(self):
        timer = PhaseTimer()
        with timer.phase("mystery"):
            pass
        assert timer.breakdown().other >= 0.0
        assert "mystery" in timer.seconds

    def test_exception_still_records(self):
        timer = PhaseTimer()
        with pytest.raises(RuntimeError):
            with timer.phase("heap"):
                raise RuntimeError("boom")
        assert timer.breakdown().heap > 0.0

    def test_reset(self):
        timer = PhaseTimer()
        with timer.phase("coll"):
            pass
        timer.reset()
        assert timer.breakdown().total == 0.0

    def test_reentrant_same_phase_counts_wall_clock_once(self):
        timer = PhaseTimer()
        with timer.phase("heap"):
            with timer.phase("heap"):  # nested same name: no double count
                time.sleep(0.02)
        recorded = timer.breakdown().heap
        assert 0.02 <= recorded < 0.04

    def test_reentrant_phase_still_accumulates_after_nesting(self):
        timer = PhaseTimer()
        with timer.phase("gemm"):
            with timer.phase("gemm"):
                pass
        with timer.phase("gemm"):
            time.sleep(0.01)
        assert timer.breakdown().gemm >= 0.01

    def test_nested_exception_unwinds_depth(self):
        timer = PhaseTimer()
        with pytest.raises(RuntimeError):
            with timer.phase("coll"):
                with timer.phase("coll"):
                    raise RuntimeError("boom")
        # depth fully unwound: a later phase records normally
        with timer.phase("coll"):
            time.sleep(0.01)
        assert timer.breakdown().coll >= 0.01


class TestPhaseBreakdown:
    def test_total_and_millis(self):
        b = PhaseBreakdown(coll=0.001, gemm=0.002, sq2d=0.003, heap=0.004)
        assert b.total == pytest.approx(0.01)
        millis = b.as_millis()
        assert millis["total"] == pytest.approx(10.0)
        assert millis["gemm"] == pytest.approx(2.0)

    def test_addition(self):
        a = PhaseBreakdown(coll=1.0)
        b = PhaseBreakdown(heap=2.0)
        c = a + b
        assert c.coll == 1.0 and c.heap == 2.0


class TestKernelCounters:
    def test_merge(self):
        a = KernelCounters(flops=10, slow_reads=5)
        b = KernelCounters(flops=1, slow_writes=2, discarded=3)
        a.merge(b)
        assert a.flops == 11
        assert a.slow_doubles == 7
        assert a.discarded == 3

    def test_add_returns_new_and_leaves_operands_alone(self):
        a = KernelCounters(flops=10, heap_updates=2)
        b = KernelCounters(flops=5, discarded=7)
        c = a + b
        assert c.flops == 15 and c.heap_updates == 2 and c.discarded == 7
        assert a.flops == 10 and b.flops == 5

    def test_sum_over_counters(self):
        parts = [KernelCounters(flops=i, slow_reads=i * 2) for i in (1, 2, 3)]
        total = sum(parts)
        assert isinstance(total, KernelCounters)
        assert total.flops == 6
        assert total.slow_reads == 12

    def test_add_rejects_foreign_types(self):
        with pytest.raises(TypeError):
            KernelCounters() + 1  # noqa: B018

    def test_as_dict(self):
        c = KernelCounters(flops=4, discarded=1)
        d = c.as_dict()
        assert d["flops"] == 4 and d["discarded"] == 1
        assert set(d) == {
            "flops", "slow_reads", "slow_writes", "heap_updates", "discarded"
        }


class TestGflops:
    def test_knn_flops_formula(self):
        assert knn_flops(10, 20, 30) == (2 * 30 + 3) * 10 * 20

    def test_gflops(self):
        assert gflops(1000, 1000, 100, 1.0) == pytest.approx(0.203)

    def test_efficiency(self):
        assert efficiency(1000, 1000, 100, 1.0, peak_gflops=0.406) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValidationError):
            knn_flops(0, 1, 1)
        with pytest.raises(ValidationError):
            efficiency(1, 1, 1, 1.0, 0.0)

    @pytest.mark.parametrize("seconds", [0.0, -1e-9])
    def test_nonpositive_time_warns_and_returns_nan(self, seconds):
        import math

        with pytest.warns(RuntimeWarning, match="elapsed time"):
            value = gflops(1, 1, 1, seconds)
        assert math.isnan(value)

    def test_nonpositive_time_propagates_nan_through_efficiency(self):
        import math

        with pytest.warns(RuntimeWarning):
            assert math.isnan(efficiency(1, 1, 1, 0.0, peak_gflops=1.0))
