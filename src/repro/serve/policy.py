"""Coalescing policy: how long a batch window stays open, model-informed.

The tension a micro-batching front-end has to resolve: every extra
request fused into a solve amortizes the kernel's fixed costs (panel
packing, variant resolution, python dispatch, the small-GEMM efficiency
cliff) over more queries — but waiting for that request *adds queue
delay to everyone already in the window*. The right window size is
where the marginal amortization gain stops paying for the marginal
wait.

Both sides of that trade are quantifiable here. The §2.6
:class:`~repro.model.PerformanceModel` predicts the fused kernel's
runtime at any batch size, so the *gain* of growing a window from
``b`` to ``b + 1`` requests is::

    gain(b) = T(rows(b)) / b  -  T(rows(b + 1)) / (b + 1)

(per-request predicted cost drop), while the *cost* is the expected
wait for the next arrival, estimated online from an EWMA of observed
inter-arrival times. :meth:`CoalescingPolicy.should_wait` keeps the
window open while ``gain > cost`` (scaled by ``patience``) and the hard
caps (``max_batch``, ``max_batch_rows``, ``max_wait_ms``) allow.

When traffic stalls mid-window the EWMA keeps the policy honest: a long
expected inter-arrival makes further waiting uneconomical immediately,
so light load degenerates to near-pass-through dispatch (single-request
"batches", no added latency) and heavy load grows windows toward
``max_batch``. That load-adaptivity is the whole point — the same
deployment serves both regimes without retuning.
"""

from __future__ import annotations

import math
import time

from ..errors import ValidationError
from ..model.perf_model import PerformanceModel

__all__ = ["ArrivalEstimator", "CoalescingPolicy"]


class ArrivalEstimator:
    """EWMA of request inter-arrival seconds (not thread-safe; the
    service notes arrivals under its own lock)."""

    def __init__(self, alpha: float = 0.2, initial: float = 1e-3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValidationError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.interval = float(initial)
        self._last: float | None = None

    def note_arrival(self, now: float | None = None) -> None:
        now = time.perf_counter() if now is None else now
        if self._last is not None:
            gap = max(now - self._last, 1e-9)
            self.interval += self.alpha * (gap - self.interval)
        self._last = now

    @property
    def rate(self) -> float:
        """Requests per second implied by the current EWMA."""
        return 1.0 / self.interval if self.interval > 0 else math.inf


class CoalescingPolicy:
    """Decide whether an open window should wait for one more request.

    Parameters
    ----------
    model:
        The performance model used to predict fused-kernel runtimes.
        ``None`` builds the default (paper-constants) model — relative
        costs are what matter here, and those transfer across hosts.
    n_refs, d:
        Shape of the shared reference table the service solves against.
    typical_rows:
        Expected query rows per request; per-arrival gain is evaluated
        at this granularity. Refined online from observed requests.
    patience:
        Gain must exceed ``patience * expected_wait`` to keep waiting;
        >1 biases toward latency, <1 toward throughput.
    fixed:
        ``True`` disables the model: the window always waits the full
        ``max_wait`` unless size caps close it (the ``policy="fixed"``
        config mode, and the fallback when the model cannot help).
    """

    #: Modeled fixed overhead per solve call (python dispatch, plan
    #: lookup, demux) added to the kernel prediction — measured at the
    #: ~hundreds-of-microseconds scale on the bench host and load-bearing
    #: for small problems where the kernel itself is tens of microseconds.
    CALL_OVERHEAD_SECONDS = 3e-4

    def __init__(
        self,
        model: PerformanceModel | None = None,
        *,
        n_refs: int,
        d: int,
        typical_rows: int = 4,
        typical_k: int = 16,
        patience: float = 1.0,
        fixed: bool = False,
    ) -> None:
        if n_refs < 1 or d < 1:
            raise ValidationError(
                f"n_refs and d must be >= 1, got ({n_refs}, {d})"
            )
        if typical_rows < 1:
            raise ValidationError(
                f"typical_rows must be >= 1, got {typical_rows}"
            )
        if patience <= 0:
            raise ValidationError(f"patience must be > 0, got {patience}")
        self.model = model if model is not None else PerformanceModel()
        self.n_refs = int(n_refs)
        self.d = int(d)
        self.typical_rows = int(typical_rows)
        self.typical_k = int(typical_k)
        self.patience = float(patience)
        self.fixed = bool(fixed)
        self.arrivals = ArrivalEstimator()
        self._rows_ewma = float(typical_rows)

    # -- online shape refinement ------------------------------------------

    def note_request(self, rows: int, now: float | None = None) -> None:
        """Record one arrival (rate EWMA + typical-rows EWMA)."""
        self.arrivals.note_arrival(now)
        self._rows_ewma += 0.2 * (rows - self._rows_ewma)

    # -- model terms ------------------------------------------------------

    def predicted_solve_seconds(self, rows: int, k: int) -> float:
        """Predicted wall time of one fused solve of ``rows`` queries."""
        rows = max(int(rows), 1)
        k = min(max(int(k), 1), self.n_refs)
        return (
            self.model.estimate_kernel_runtime(rows, self.n_refs, self.d, k)
            + self.CALL_OVERHEAD_SECONDS
        )

    def amortization_gain(self, batched: int, k: int | None = None) -> float:
        """Per-request predicted cost drop from admitting one more request.

        ``batched`` is the number of requests already in the window.
        """
        k = self.typical_k if k is None else k
        rows = max(int(round(self._rows_ewma)), 1)
        b = max(int(batched), 1)
        now_cost = self.predicted_solve_seconds(rows * b, k) / b
        next_cost = self.predicted_solve_seconds(rows * (b + 1), k) / (b + 1)
        return now_cost - next_cost

    # -- the decision ------------------------------------------------------

    def should_wait(self, batched: int, k: int | None = None) -> bool:
        """Keep the window open for one more arrival?

        True while the model's predicted per-request gain from one more
        fused request exceeds the expected wait for it. Size/time caps
        are enforced by the dispatcher, not here.
        """
        if self.fixed:
            return True
        expected_wait = self.arrivals.interval
        return self.amortization_gain(batched, k) > (
            self.patience * expected_wait
        )
