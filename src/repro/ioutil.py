"""Shared filesystem helpers: crash-safe small-file writes.

Both persisted-config stores (``tune/store.py``, ``approx/store.py``)
and the dataset sidecar writer need the same idiom — serialize to a
temporary file beside the destination, then ``os.replace`` so readers
only ever see a complete document. The historical copies of that idiom
leaked the ``.tmp`` file when serialization or the rename failed
mid-write; this single helper owns the cleanup.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

__all__ = ["atomic_write_text", "atomic_write_json"]


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Atomically replace ``path`` with ``text``.

    The temporary file lives beside the destination (same filesystem, so
    the ``os.replace`` is atomic) and is unlinked on *any* failure —
    a crashed write leaves the previous version intact and no ``.tmp``
    debris behind.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    try:
        tmp.write_text(text)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path


def atomic_write_json(path: str | Path, doc: Any, *, indent: int = 1) -> Path:
    """Atomically write ``doc`` as sorted-key JSON (trailing newline).

    Serialization happens *before* the temporary file is created, so an
    unserializable document touches nothing on disk at all.
    """
    text = json.dumps(doc, indent=indent, sort_keys=True) + "\n"
    return atomic_write_text(path, text)
