"""Unit tests for the auto-tuner."""

from __future__ import annotations

import pytest

from repro.core.autotune import (
    DecisionTable,
    measure_kernel_seconds,
    refine_threshold,
    tune_block_n,
)
from repro.core.variants import Variant
from repro.errors import ValidationError


class TestMeasureKernelSeconds:
    def test_returns_positive_time(self):
        assert measure_kernel_seconds(64, 64, 8, 4, 1, repeats=1) > 0

    def test_validation(self):
        with pytest.raises(ValidationError):
            measure_kernel_seconds(0, 64, 8, 4, 1)
        with pytest.raises(ValidationError):
            measure_kernel_seconds(64, 64, 8, 100, 1)


class TestDecisionTable:
    def test_from_model_covers_grid(self):
        table = DecisionTable.from_model(
            1024, 1024, [16, 64], [4, 64, 512]
        )
        assert len(table.choices) == 6
        assert table.source == "model"

    def test_model_table_monotone_in_k(self):
        """Along each d row the choice flips at most once, VAR1 -> VAR6."""
        table = DecisionTable.from_model(
            8192, 8192, [16, 64, 256], [4, 16, 64, 256, 1024, 4096]
        )
        for d in table.d_grid:
            row = [table.choices[(d, k)] for k in table.k_grid]
            assert row == sorted(row)

    def test_lookup_nearest_gridpoint(self):
        table = DecisionTable.from_model(8192, 8192, [16, 256], [4, 2048])
        assert table.lookup(20, 5) == Variant(table.choices[(16, 4)])
        assert table.lookup(300, 1500) == Variant(table.choices[(256, 2048)])

    def test_lookup_skipped_gridpoint_falls_back(self):
        # k_grid contains a k > n which is skipped at build time
        table = DecisionTable.from_model(128, 128, [16], [4, 64, 512])
        assert (16, 512) not in table.choices
        assert table.lookup(16, 512) in (Variant.VAR1, Variant.VAR6)

    def test_empty_lookup_rejected(self):
        table = DecisionTable(4, 4, [1], [1])
        with pytest.raises(ValidationError):
            table.lookup(1, 1)

    def test_grid_validation(self):
        with pytest.raises(ValidationError):
            DecisionTable(4, 4, [], [1])
        with pytest.raises(ValidationError):
            DecisionTable(4, 4, [4, 2], [1])

    def test_round_trip(self, tmp_path):
        table = DecisionTable.from_model(1024, 1024, [16, 64], [4, 256])
        path = table.save(tmp_path / "table.json")
        loaded = DecisionTable.load(path)
        assert loaded.choices == table.choices
        assert loaded.d_grid == table.d_grid

    def test_load_missing(self, tmp_path):
        with pytest.raises(ValidationError):
            DecisionTable.load(tmp_path / "nope.json")

    def test_from_measurements_small(self):
        table = DecisionTable.from_measurements(
            128, 128, [8], [2, 64], repeats=1
        )
        assert set(table.choices.values()) <= {1, 6}
        assert table.source == "measured"


class TestRefineThreshold:
    def test_validation(self):
        with pytest.raises(ValidationError):
            refine_threshold(64, 64, 8, span=1.0)
        with pytest.raises(ValidationError):
            refine_threshold(64, 64, 8, points=1)

    def test_returns_grid_value_or_none(self):
        got = refine_threshold(256, 256, 8, span=2.0, points=3, repeats=1)
        assert got is None or 1 <= got <= 256


class TestTuneBlockN:
    def test_returns_viable_candidate(self):
        best = tune_block_n(
            256, 256, 8, 4, candidates=(64, 128, 256, 1024), repeats=1
        )
        assert best in (64, 128, 256)  # 1024 > n filtered out

    def test_falls_back_when_all_too_big(self):
        best = tune_block_n(32, 32, 4, 2, candidates=(64, 128), repeats=1)
        assert best == 32
