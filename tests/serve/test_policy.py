"""The model-informed coalescing policy and its arrival estimator."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.serve import ArrivalEstimator, CoalescingPolicy


class TestArrivalEstimator:
    def test_ewma_tracks_injected_clock(self):
        est = ArrivalEstimator(alpha=0.5, initial=1.0)
        t = 0.0
        for _ in range(30):
            est.note_arrival(t)
            t += 0.01
        # EWMA converges onto the true 10 ms inter-arrival gap
        assert est.interval == pytest.approx(0.01, rel=0.05)
        assert est.rate == pytest.approx(100.0, rel=0.05)

    def test_first_arrival_sets_no_gap(self):
        est = ArrivalEstimator(initial=5.0)
        est.note_arrival(1.0)
        assert est.interval == 5.0  # one sample is not a gap

    def test_slowdown_raises_interval(self):
        est = ArrivalEstimator(alpha=0.5, initial=0.001)
        est.note_arrival(0.0)
        est.note_arrival(1.0)  # traffic stalled for a second
        assert est.interval > 0.1

    def test_alpha_validated(self):
        with pytest.raises(ValidationError):
            ArrivalEstimator(alpha=0.0)
        with pytest.raises(ValidationError):
            ArrivalEstimator(alpha=1.5)


class TestCoalescingPolicy:
    def _policy(self, **kwargs) -> CoalescingPolicy:
        kwargs.setdefault("n_refs", 4096)
        kwargs.setdefault("d", 32)
        return CoalescingPolicy(**kwargs)

    def test_validation(self):
        with pytest.raises(ValidationError):
            self._policy(n_refs=0)
        with pytest.raises(ValidationError):
            self._policy(d=0)
        with pytest.raises(ValidationError):
            self._policy(typical_rows=0)
        with pytest.raises(ValidationError):
            self._policy(patience=0.0)

    def test_gain_positive_and_diminishing(self):
        """Amortization gain is positive (batching always spreads the
        fixed cost thinner) and shrinks as the window grows — the
        marginal value of the 33rd request is far below the 2nd's."""
        policy = self._policy()
        gains = [policy.amortization_gain(b) for b in (1, 2, 4, 8, 16, 32)]
        assert all(g > 0 for g in gains)
        assert gains == sorted(gains, reverse=True)
        assert gains[0] > 10 * gains[-1]

    def test_waits_under_fast_arrivals_not_under_slow(self):
        policy = self._policy()
        # fast traffic: next arrival expected in 50 us -> keep waiting
        t = 0.0
        for _ in range(50):
            policy.note_request(rows=4, now=t)
            t += 50e-6
        assert policy.should_wait(batched=1)
        # traffic stalls: expected wait now ~1 s, gain can't pay for it
        for _ in range(10):
            policy.note_request(rows=4, now=t)
            t += 1.0
        assert not policy.should_wait(batched=1)

    def test_big_windows_stop_paying(self):
        """Even under fast arrivals the diminishing gain eventually drops
        below the expected wait, closing the window before max_batch."""
        policy = self._policy()
        t = 0.0
        for _ in range(50):
            policy.note_request(rows=4, now=t)
            t += 200e-6
        assert policy.should_wait(batched=1)
        assert not policy.should_wait(batched=4096)

    def test_fixed_mode_always_waits(self):
        policy = self._policy(fixed=True)
        t = 0.0
        for _ in range(5):
            policy.note_request(rows=4, now=t)
            t += 10.0  # glacial traffic
        assert policy.should_wait(batched=1)
        assert policy.should_wait(batched=10_000)

    def test_patience_biases_the_decision(self):
        """Same traffic, higher patience -> less willing to wait."""
        t_arrivals = [i * 1e-3 for i in range(50)]

        def decided(patience: float) -> bool:
            policy = self._policy(patience=patience)
            for t in t_arrivals:
                policy.note_request(rows=4, now=t)
            return policy.should_wait(batched=2)

        assert decided(0.01) and not decided(100.0)

    def test_rows_ewma_refines_typical_shape(self):
        policy = self._policy(typical_rows=1)
        for _ in range(50):
            policy.note_request(rows=16, now=None)
        assert policy._rows_ewma == pytest.approx(16.0, rel=0.05)

    def test_predicted_solve_seconds_monotone_in_rows(self):
        policy = self._policy()
        small = policy.predicted_solve_seconds(4, 8)
        big = policy.predicted_solve_seconds(4096, 8)
        assert 0 < small < big
