"""Unit tests for the Goto-blocked GEMM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import BlockingParams, TEST_BLOCKING
from repro.errors import ValidationError
from repro.gemm import BlockedGemm, blocked_gemm, naive_gemm


class _Recorder:
    """Observer that tallies loop-nest events."""

    def __init__(self):
        self.packs = []
        self.microkernels = 0
        self.c_blocks = []

    def on_pack(self, which, rows, depth):
        self.packs.append((which, rows, depth))

    def on_microkernel(self, m_r, n_r, depth):
        self.microkernels += 1

    def on_c_block(self, rows, cols, is_first_depth):
        self.c_blocks.append((rows, cols, is_first_depth))


class TestBlockedGemm:
    @pytest.mark.parametrize(
        "m,n,d",
        [(1, 1, 1), (4, 4, 3), (5, 7, 4), (9, 11, 10), (8, 8, 3), (13, 3, 7)],
    )
    def test_matches_blas(self, rng, m, n, d):
        A = rng.random((m, d))
        B = rng.random((n, d))
        got = blocked_gemm(A, B, blocking=TEST_BLOCKING)
        np.testing.assert_allclose(got, A @ B.T, atol=1e-12)

    def test_matches_naive(self, rng):
        A = rng.random((6, 5))
        B = rng.random((4, 5))
        np.testing.assert_allclose(
            blocked_gemm(A, B, blocking=TEST_BLOCKING),
            naive_gemm(A, B.T.copy()),
            atol=1e-12,
        )

    def test_transpose_b_false(self, rng):
        A = rng.random((4, 3))
        B = rng.random((3, 6))
        got = blocked_gemm(A, B, blocking=TEST_BLOCKING, transpose_b=False)
        np.testing.assert_allclose(got, A @ B, atol=1e-12)

    def test_depth_mismatch(self, rng):
        with pytest.raises(ValidationError):
            blocked_gemm(rng.random((2, 3)), rng.random((2, 4)))

    def test_observer_sees_expected_structure(self, rng):
        blk = BlockingParams(m_r=2, n_r=2, d_c=2, m_c=4, n_c=4)
        rec = _Recorder()
        m, n, d = 8, 8, 4
        BlockedGemm(blk, rec).multiply_nt(rng.random((m, d)), rng.random((n, d)))
        n_jc, n_pc, n_ic = 2, 2, 2
        # R packed once per (jc, pc); Q once per (jc, pc, ic)
        assert sum(1 for w, *_ in rec.packs if w == "R") == n_jc * n_pc
        assert sum(1 for w, *_ in rec.packs if w == "Q") == n_jc * n_pc * n_ic
        # micro-kernels: full tile grid per (jc, pc, ic)
        assert rec.microkernels == n_jc * n_pc * n_ic * (4 // 2) * (4 // 2)
        # first-depth flags: exactly the pc == 0 c-block visits
        assert sum(1 for *_, first in rec.c_blocks if first) == n_jc * n_ic

    def test_single_block_sizes(self, rng):
        """Blocks larger than the problem: one iteration per loop."""
        blk = BlockingParams(m_r=8, n_r=8, d_c=64, m_c=64, n_c=64)
        A, B = rng.random((5, 6)), rng.random((7, 6))
        np.testing.assert_allclose(
            BlockedGemm(blk).multiply_nt(A, B), A @ B.T, atol=1e-12
        )


class TestNaiveGemm:
    def test_alpha_beta(self, rng):
        A, B = rng.random((3, 2)), rng.random((2, 4))
        C = rng.random((3, 4))
        got = naive_gemm(A, B, C, alpha=2.0, beta=-1.0)
        np.testing.assert_allclose(got, 2.0 * A @ B - C, atol=1e-12)

    def test_c_shape_checked(self, rng):
        with pytest.raises(ValidationError):
            naive_gemm(rng.random((2, 2)), rng.random((2, 2)), np.ones((3, 3)))

    def test_inner_mismatch(self, rng):
        with pytest.raises(ValidationError):
            naive_gemm(rng.random((2, 3)), rng.random((2, 3)))
