"""Unit tests for randomized KD-trees."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.trees import RandomizedKDForest, RandomizedKDTree


class TestRandomizedKDTree:
    def test_leaves_partition_points(self, rng):
        X = rng.random((200, 6))
        tree = RandomizedKDTree(leaf_size=32, seed=0).fit(X)
        all_ids = np.concatenate(tree.leaves)
        assert sorted(all_ids.tolist()) == list(range(200))

    def test_leaf_sizes_bounded(self, rng):
        X = rng.random((500, 4))
        tree = RandomizedKDTree(leaf_size=64, seed=1).fit(X)
        assert tree.leaf_sizes().max() <= 64
        # median splits keep leaves from degenerating
        assert tree.leaf_sizes().min() >= 8

    def test_small_dataset_single_leaf(self, rng):
        X = rng.random((10, 3))
        tree = RandomizedKDTree(leaf_size=32, seed=0).fit(X)
        assert tree.n_leaves == 1

    def test_different_seeds_give_different_partitions(self, rng):
        X = rng.random((300, 8))
        t1 = RandomizedKDTree(leaf_size=32, seed=1).fit(X)
        t2 = RandomizedKDTree(leaf_size=32, seed=2).fit(X)
        sig1 = sorted(tuple(sorted(leaf.tolist())) for leaf in t1.leaves)
        sig2 = sorted(tuple(sorted(leaf.tolist())) for leaf in t2.leaves)
        assert sig1 != sig2

    def test_same_seed_reproducible(self, rng):
        X = rng.random((150, 5))
        t1 = RandomizedKDTree(leaf_size=20, seed=7).fit(X)
        t2 = RandomizedKDTree(leaf_size=20, seed=7).fit(X)
        for a, b in zip(t1.leaves, t2.leaves):
            np.testing.assert_array_equal(a, b)

    def test_leaves_are_spatially_coherent(self, rng):
        """Points in one leaf must on average be closer to each other
        than to random points — else the kernel would find nothing."""
        X = rng.random((400, 3))
        tree = RandomizedKDTree(leaf_size=50, seed=0).fit(X)
        leaf = tree.leaves[0]
        within = np.linalg.norm(
            X[leaf][:, None] - X[leaf][None, :], axis=2
        ).mean()
        everywhere = np.linalg.norm(
            X[leaf][:, None] - X[::7][None, :], axis=2
        ).mean()
        assert within < everywhere

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValidationError):
            RandomizedKDTree(leaf_size=1).fit(rng.random((10, 2)))
        with pytest.raises(ValidationError):
            RandomizedKDTree(leaf_size=8).fit(np.empty((0, 3)))
        with pytest.raises(ValidationError):
            RandomizedKDTree(leaf_size=8).fit(np.ones(5))


class TestRandomizedKDForest:
    def test_yields_n_trees(self, rng):
        X = rng.random((100, 4))
        forest = RandomizedKDForest(leaf_size=16, n_trees=3, seed=0)
        trees = list(forest.trees(X))
        assert len(trees) == 3
        assert all(t.n_leaves >= 4 for t in trees)

    def test_trees_differ(self, rng):
        X = rng.random((200, 4))
        forest = RandomizedKDForest(leaf_size=32, n_trees=2, seed=0)
        t1, t2 = forest.trees(X)
        sig = lambda t: sorted(tuple(sorted(l.tolist())) for l in t.leaves)
        assert sig(t1) != sig(t2)

    def test_invalid_n_trees(self):
        with pytest.raises(ValidationError):
            RandomizedKDForest(leaf_size=16, n_trees=0)
