"""Unit tests for dataset persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import load_dataset, save_dataset, uniform_hypercube
from repro.errors import ValidationError


def test_round_trip(tmp_path):
    ds = uniform_hypercube(20, 3, seed=5)
    path = save_dataset(ds, tmp_path / "cloud")
    loaded = load_dataset(path)
    np.testing.assert_array_equal(loaded.points, ds.points)
    assert loaded.name == ds.name
    assert loaded.intrinsic_dim == ds.intrinsic_dim
    assert loaded.params == ds.params


def test_suffix_appended(tmp_path):
    ds = uniform_hypercube(5, 2)
    path = save_dataset(ds, tmp_path / "noext")
    assert path.suffix == ".npz"


def test_missing_file(tmp_path):
    with pytest.raises(ValidationError):
        load_dataset(tmp_path / "nope.npz")


def test_not_a_dataset_archive(tmp_path):
    path = tmp_path / "other.npz"
    np.savez(path, stuff=np.ones(3))
    with pytest.raises(ValidationError):
        load_dataset(path)
