"""Incremental all-NN maintenance over a growing point set.

The paper's introduction motivates GSKNN with "streaming datasets
[where] there are frequent updates of X and computing all
nearest-neighbors fast efficiently is time-critical". This module is
that consumer: a :class:`StreamingAllKnn` structure that absorbs
batches of new points and keeps every point's k-nearest list
approximately current by re-solving only LSH-bucket-local exact kNN
kernels — never the O(N^2) global problem.

Maintenance per ingested batch:

1. new points get empty neighbor rows;
2. a few fresh LSH tables are hashed over the *current* table;
3. each bucket runs one exact GSKNN kernel (queries = references =
   bucket) and the results are dedup-merged into the global lists.

Old points' lists improve over time (each batch's fresh tables regroup
them too), so recall recovers after insertions instead of decaying —
the property the tests pin down.
"""

from __future__ import annotations

import numpy as np

from ..core.neighbors import KnnResult, merge_neighbor_lists_fast
from ..core.norm_cache import cached_squared_norms
from ..errors import ValidationError
from ..obs import trace as _trace
from ..obs.context import coerce_request, current_request, request_scope
from ..validation import as_coordinate_table, check_finite
from .lsh import LSHSolver

__all__ = ["StreamingAllKnn"]


class StreamingAllKnn:
    """Maintains approximate k-nearest lists under point insertions.

    Parameters
    ----------
    dim:
        Coordinate dimension of the stream.
    k:
        Neighbors maintained per point.
    tables_per_batch:
        Fresh LSH tables hashed per ingested batch (more = higher
        recall per batch, more kernel work).
    max_bucket:
        Bucket-size cap — the ``m`` of the exact kernels.
    memory_budget:
        Optional cap (a :class:`~repro.MemoryBudget`, byte count, or
        spec like ``"64MiB"``) on bucket/exact kernel workspace —
        budgeted bucket plans stream their panels and charge buffers
        against the budget (docs/MEMORY.md).
    shards:
        ``0`` (default) keeps everything in-process. ``>= 1`` mirrors
        the stream's membership into a
        :class:`~repro.shard.router.ShardedAllKnn` with that many
        shards: inserts re-export the table to the owning shard workers
        and deletes tombstone the rows out of their shards' partitions
        (both invalidate the affected shards' packed plans), so
        :meth:`exact_solve` scatter/gathers across real processes —
        bit-identical to a single-process solve on the same membership,
        including after arbitrary insert/delete churn.
    shard_transport:
        ``"process"`` or ``"local"`` (see :mod:`repro.shard`).
    """

    def __init__(
        self,
        dim: int,
        k: int,
        *,
        tables_per_batch: int = 3,
        max_bucket: int = 1024,
        seed: int | None = 0,
        shards: int = 0,
        shard_transport: str = "process",
        memory_budget=None,
    ) -> None:
        if dim < 1 or k < 1:
            raise ValidationError(f"need dim >= 1 and k >= 1, got {dim}, {k}")
        if tables_per_batch < 1:
            raise ValidationError("tables_per_batch must be >= 1")
        if shards < 0:
            raise ValidationError(f"shards must be >= 0, got {shards}")
        if shard_transport not in ("process", "local"):
            raise ValidationError(
                "shard_transport must be 'process' or 'local', "
                f"got {shard_transport!r}"
            )
        self.dim = int(dim)
        self.k = int(k)
        self.tables_per_batch = int(tables_per_batch)
        self.max_bucket = int(max_bucket)
        self._seed = 0 if seed is None else int(seed)
        from ..core.membudget import MemoryBudget

        self._memory_budget = MemoryBudget.coerce(memory_budget)
        self._batches_ingested = 0
        self._shards = int(shards)
        self._shard_transport = shard_transport
        self._sharded = None
        # Bucket kernels run through cached plans: repeated refresh()
        # rounds between inserts regenerate the same buckets (the LSH
        # seed is a function of the ingest count), so their gathered
        # panels are reused; all buckets share one workspace arena pool.
        from ..core.plan import PlanCache

        self._plans = PlanCache(max_plans=16)
        self._points = np.empty((0, dim), dtype=np.float64)
        self._distances = np.empty((0, k), dtype=np.float64)
        self._indices = np.empty((0, k), dtype=np.intp)
        self._alive = np.empty(0, dtype=bool)

    # -- state accessors -----------------------------------------------------

    @property
    def n_points(self) -> int:
        return self._points.shape[0]

    @property
    def points(self) -> np.ndarray:
        """The current coordinate table (read-only view)."""
        view = self._points.view()
        view.setflags(write=False)
        return view

    def neighbors(self) -> KnnResult:
        """Current neighbor lists for all ingested points."""
        return KnnResult(self._distances.copy(), self._indices.copy())

    # -- shard mirror --------------------------------------------------------

    @property
    def sharded(self):
        """The mounted :class:`ShardedAllKnn` mirror, or ``None``."""
        return self._sharded

    def _build_mirror(self):
        """(Re)build the shard router over the current membership."""
        from ..shard import ShardedAllKnn

        router = ShardedAllKnn(
            self._points, self._shards, transport=self._shard_transport
        )
        dead = np.flatnonzero(~self._alive)
        if dead.size:
            router.delete(dead)
        return router

    def close(self) -> None:
        """Release the shard mirror's worker processes (no-op unsharded)."""
        if self._sharded is not None:
            self._sharded.close()
            self._sharded = None

    def __enter__(self) -> "StreamingAllKnn":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def exact_solve(self, q_idx, k: int | None = None) -> KnnResult:
        """Exact top-``k`` of table rows against the alive membership.

        Routed through the shard mirror when one is mounted (each shard
        solves its partition on a warm plan; partials merge via
        :func:`~repro.select.mergeselect.merge_partial_topk`), otherwise
        one in-process fused kernel — the two are bit-identical on the
        same membership, which the shard tests assert after churn.
        """
        k = self.k if k is None else int(k)
        if self._sharded is not None:
            return self._sharded.solve(q_idx, k)
        from ..core.gsknn import gsknn

        return gsknn(
            self._points,
            np.asarray(q_idx, dtype=np.intp),
            np.flatnonzero(self._alive),
            k,
            X2=cached_squared_norms(self._points),
            memory_budget=self._memory_budget,
        )

    # -- updates ---------------------------------------------------------------

    def insert(self, batch: np.ndarray, *, request=None) -> int:
        """Ingest a batch of new points and refresh affected lists.

        Returns the number of bucket kernels solved. ``request`` (a
        :class:`~repro.obs.context.RequestContext` or bare request-id
        string) tags the spans and metrics of this update, including
        the bucket kernels of the triggered refresh.
        """
        batch = as_coordinate_table(batch, name="batch")
        check_finite(batch, name="batch")
        if batch.shape[1] != self.dim:
            raise ValidationError(
                f"batch dimension {batch.shape[1]} != stream dimension {self.dim}"
            )
        ctx = coerce_request(request) or current_request()
        with request_scope(ctx), _trace.span(
            "stream.insert", batch=int(batch.shape[0])
        ):
            n_new = batch.shape[0]
            self._points = np.vstack([self._points, batch])
            # the old table object is gone; drop plans built against it so
            # the cache never pins dead coordinate arrays in memory
            self._plans.clear()
            self._distances = np.vstack(
                [self._distances, np.full((n_new, self.k), np.inf)]
            )
            self._indices = np.vstack(
                [self._indices, np.full((n_new, self.k), -1, dtype=np.intp)]
            )
            self._alive = np.concatenate(
                [self._alive, np.ones(n_new, dtype=bool)]
            )
            self._batches_ingested += 1
            if self._shards:
                if self._sharded is None:
                    self._sharded = self._build_mirror()
                else:
                    self._sharded.insert(batch)
            if self.n_alive < 2:
                return 0
            return self.refresh()

    def delete(self, ids: np.ndarray, *, request=None) -> int:
        """Remove points from the structure.

        Deleted points keep their row slots (ids stay stable — the
        contract solvers and graphs rely on) but are tombstoned: their
        own lists are cleared, every occurrence of them in *other*
        points' lists is purged, and they stop participating in
        refreshes. The holes the purge leaves refill on subsequent
        :meth:`refresh`/:meth:`insert` rounds. Returns the number of
        list slots purged across the table.
        """
        ids = np.asarray(ids, dtype=np.intp).ravel()
        if ids.size == 0:
            return 0
        if ids.min() < 0 or ids.max() >= self.n_points:
            raise ValidationError(
                f"delete ids out of range for {self.n_points} points"
            )
        ctx = coerce_request(request) or current_request()
        with request_scope(ctx), _trace.span("stream.delete", ids=int(ids.size)):
            return self._delete(ids)

    def _delete(self, ids: np.ndarray) -> int:
        if self._sharded is not None:
            live = np.unique(ids[self._alive[ids]])
            if live.size >= self._sharded.map.n_alive:
                # wiping the whole live set: a shard router cannot hold
                # an empty table, so drop it; the next insert rebuilds
                # the mirror from the surviving membership
                self._sharded.close()
                self._sharded = None
            elif live.size:
                self._sharded.delete(live)
        self._alive[ids] = False
        # Cached plans were built before the tombstones: their gathered
        # reference panels and warm-start lists still contain the deleted
        # ids, so a post-delete refresh hitting a stale plan could
        # resurrect them into merged lists. Same invalidation insert()
        # performs, for the same reason: the cache must never outlive a
        # membership change.
        self._plans.clear()
        # clear the deleted rows
        self._distances[ids] = np.inf
        self._indices[ids] = -1
        # purge them from everyone else's lists
        dead = np.isin(self._indices, ids)
        purged = int(dead.sum())
        self._distances[dead] = np.inf
        self._indices[dead] = -1
        # re-sort rows so real entries precede the new holes
        order = np.argsort(self._distances, axis=1, kind="stable")
        rows = np.arange(self.n_points)[:, None]
        self._distances = self._distances[rows, order]
        self._indices = self._indices[rows, order]
        return purged

    @property
    def n_alive(self) -> int:
        return int(self._alive.sum())

    def refresh(self, tables: int | None = None, *, request=None) -> int:
        """Run one maintenance round over the current table.

        Callable independently of insertion (e.g. to trade background
        work for recall). Returns the number of bucket kernels solved.
        """
        if self.n_alive < 2:
            return 0
        tables = self.tables_per_batch if tables is None else int(tables)
        if tables < 1:
            raise ValidationError("tables must be >= 1")
        ctx = coerce_request(request) or current_request()
        with request_scope(ctx), _trace.span("stream.refresh", tables=tables):
            return self._refresh(tables)

    def _refresh(self, tables: int) -> int:
        alive_ids = np.flatnonzero(self._alive)
        # Identity-keyed cache: refresh() rounds between inserts reuse
        # the same table object, so only the first round pays the O(N d)
        # pass; an insert vstacks a new array and invalidates naturally.
        X2 = cached_squared_norms(self._points)
        if alive_ids.size <= self.max_bucket:
            # The whole live population fits one kernel: solve exactly —
            # hashing only starts paying once buckets are real subsets.
            self._solve_bucket(alive_ids, X2)
            return 1
        solver = LSHSolver(
            n_tables=tables,
            max_bucket=self.max_bucket,
            seed=self._seed + 1009 * self._batches_ingested,
        )
        kernels = 0
        for table in solver.buckets(self._points[alive_ids]):
            for bucket in table:
                self._solve_bucket(alive_ids[bucket], X2)
                kernels += 1
        return kernels

    def _solve_bucket(self, bucket: np.ndarray, X2: np.ndarray) -> None:
        k_eff = min(self.k, bucket.size)
        plan = self._plans.get(
            self._points, bucket, X2=X2, memory_budget=self._memory_budget
        )
        local = plan.execute(bucket, k_eff)
        if k_eff < self.k:
            pad = self.k - k_eff
            local = KnnResult(
                np.pad(local.distances, ((0, 0), (0, pad)),
                       constant_values=np.inf),
                np.pad(local.indices, ((0, 0), (0, pad)), constant_values=-1),
            )
        merged = merge_neighbor_lists_fast(
            KnnResult(self._distances[bucket], self._indices[bucket]), local
        )
        self._distances[bucket] = merged.distances
        self._indices[bucket] = merged.indices

    def recall_against_exact(self) -> float:
        """Recall of the maintained lists vs a fresh exact solve (O(N^2))."""
        from ..core.neighbors import recall
        from .allknn import exact_all_knn

        if self.n_alive < 2:
            return 1.0
        alive_ids = np.flatnonzero(self._alive)
        k_eff = min(self.k, alive_ids.size)
        truth_local = exact_all_knn(self._points[alive_ids], k_eff)
        # map local truth ids back to global row ids
        truth = KnnResult(
            truth_local.distances, alive_ids[truth_local.indices]
        )
        current = KnnResult(
            self._distances[alive_ids][:, :k_eff],
            self._indices[alive_ids][:, :k_eff],
        )
        return recall(current, truth)
