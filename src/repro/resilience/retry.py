"""Bounded retry with exponential backoff, and the backend fallback ladder.

The policy is deliberately small: a failed chunk is retried up to
``max_attempts`` times *per rung* of the backend ladder
(``processes -> threads -> serial``), sleeping ``backoff_base *
backoff_factor**attempt`` (capped) between rounds. Because the variant
and the chunk decomposition were resolved once on the full problem,
re-running a chunk on a different rung cannot change the answer — the
ladder trades throughput for completion, never correctness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..errors import (
    BackendError,
    InjectedFault,
    KernelTimeoutError,
    ReproError,
    ValidationError,
)

__all__ = ["RetryPolicy", "FALLBACK_LADDER", "is_retryable"]

#: Degradation order per primary backend. Each rung re-runs only the
#: chunks the previous rung failed to complete; ``serial`` is the rung
#: of last resort and executes fault-free.
FALLBACK_LADDER: dict[str, tuple[str, ...]] = {
    "processes": ("processes", "threads", "serial"),
    "threads": ("threads", "serial"),
    "serial": ("serial",),
}


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a failed chunk, and how long to wait.

    Parameters
    ----------
    max_attempts:
        Attempts per chunk *per ladder rung* (>= 1). ``1`` means no
        retry on a rung — a failure falls straight through to the next.
    backoff_base:
        Sleep before the second attempt, in seconds.
    backoff_factor:
        Multiplier per further attempt (exponential backoff).
    backoff_cap:
        Upper bound on any single sleep.
    """

    max_attempts: int = 3
    backoff_base: float = 0.01
    backoff_factor: float = 2.0
    backoff_cap: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValidationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValidationError("backoff times must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValidationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def backoff(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (0-based failed tries)."""
        return min(
            self.backoff_cap,
            self.backoff_base * self.backoff_factor ** max(attempt, 0),
        )

    def sleep(self, attempt: int, deadline=None) -> float:
        """Back off before the next round, never past the deadline.

        Returns the seconds actually slept.
        """
        duration = self.backoff(attempt)
        if deadline is not None:
            duration = min(duration, max(deadline.remaining(), 0.0))
        if duration > 0:
            time.sleep(duration)
        return duration


def is_retryable(exc: BaseException) -> bool:
    """Should a chunk failure be retried / degraded rather than raised?

    Worker deaths (:class:`BackendError`), injected faults, allocation
    failures, and OS-level errors are transient-by-assumption; a
    :class:`ValidationError` or :class:`KernelTimeoutError` is not — the
    first would fail identically forever, the second *is* the budget
    enforcement and must propagate.
    """
    if isinstance(exc, (KernelTimeoutError, ValidationError)):
        return False
    return isinstance(
        exc, (InjectedFault, BackendError, ReproError, MemoryError, OSError)
    )
