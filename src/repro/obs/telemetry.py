"""Machine-readable benchmark telemetry: schema-versioned ``BENCH_*.json``.

The benchmark harnesses historically wrote only human-oriented text
tables under ``benchmarks/results/`` — fine for eyeballs, useless for a
regression bot. This module defines the one record shape every bench
run emits alongside its text report:

* ``schema_version`` — bump on incompatible change; the checker and the
  differ both refuse records from the future;
* ``name`` — the experiment (file is ``BENCH_<name>.json``);
* ``environment`` — interpreter / numpy / host fingerprint plus the git
  SHA the run came from, so two records are comparable *or provably not*;
* ``problem`` — m/n/d/k-style size dict (free-form but flat);
* ``metrics`` — flat ``{key: number}`` map (seconds, GFLOPS, speedups) —
  this is what :func:`diff_records` compares;
* ``rows`` — optional structured per-row payloads (one per table row);
* ``snapshot`` — optional :meth:`MetricsRegistry.snapshot` dump.

Everything is stdlib-only and the writer is atomic-ish (temp file +
rename) so a crashed bench never leaves a half-written record.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from pathlib import Path
from typing import Any

from ..errors import ValidationError

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "git_sha",
    "environment_fingerprint",
    "build_record",
    "validate_record",
    "write_record",
    "load_record",
    "diff_records",
    "bench_filename",
]

BENCH_SCHEMA_VERSION = 1

#: Required top-level fields and their types.
_REQUIRED: dict[str, type] = {
    "schema_version": int,
    "name": str,
    "created_unix": (int, float),  # type: ignore[dict-item]
    "environment": dict,
    "problem": dict,
    "metrics": dict,
}


def git_sha(repo_root: str | Path | None = None) -> str | None:
    """The current git commit SHA, or None outside a repo / without git."""
    if repo_root is None:
        repo_root = Path(__file__).resolve().parents[3]
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(repo_root),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def environment_fingerprint() -> dict[str, Any]:
    """Who ran this: interpreter, numpy, host, core count, git SHA."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": numpy_version,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "git_sha": git_sha(),
    }


def bench_filename(name: str) -> str:
    return f"BENCH_{name}.json"


def build_record(
    name: str,
    *,
    problem: dict[str, Any] | None = None,
    metrics: dict[str, float] | None = None,
    rows: list[dict[str, Any]] | None = None,
    snapshot: dict[str, Any] | None = None,
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble (and validate) one telemetry record."""
    record: dict[str, Any] = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "name": name,
        "created_unix": time.time(),
        "environment": environment_fingerprint(),
        "problem": dict(problem or {}),
        "metrics": {k: float(v) for k, v in (metrics or {}).items()},
    }
    if rows is not None:
        record["rows"] = rows
    if snapshot is not None:
        record["snapshot"] = snapshot
    if extra:
        record["extra"] = dict(extra)
    validate_record(record)
    return record


def validate_record(record: Any) -> None:
    """Raise :class:`ValidationError` listing every schema violation."""
    problems: list[str] = []
    if not isinstance(record, dict):
        raise ValidationError(
            f"telemetry record must be a JSON object, got {type(record).__name__}"
        )
    for key, expected in _REQUIRED.items():
        if key not in record:
            problems.append(f"missing required field {key!r}")
        elif not isinstance(record[key], expected):
            problems.append(
                f"field {key!r} must be {getattr(expected, '__name__', expected)}, "
                f"got {type(record[key]).__name__}"
            )
    if not problems:
        version = record["schema_version"]
        if version < 1 or version > BENCH_SCHEMA_VERSION:
            problems.append(
                f"schema_version {version} outside supported range "
                f"[1, {BENCH_SCHEMA_VERSION}]"
            )
        if not record["name"]:
            problems.append("name must be non-empty")
        for key, value in record["metrics"].items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(
                    f"metrics[{key!r}] must be a number, got {type(value).__name__}"
                )
        if "rows" in record and not isinstance(record["rows"], list):
            problems.append("rows must be a list")
    if problems:
        raise ValidationError(
            "invalid telemetry record: " + "; ".join(problems)
        )


def write_record(record: dict[str, Any], directory: str | Path) -> Path:
    """Validate then write ``BENCH_<name>.json``; returns the path."""
    validate_record(record)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / bench_filename(record["name"])
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(record, indent=1, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return path


def load_record(path: str | Path) -> dict[str, Any]:
    """Read and validate one record file."""
    path = Path(path)
    try:
        record = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValidationError(f"{path}: not valid JSON ({exc})") from exc
    try:
        validate_record(record)
    except ValidationError as exc:
        raise ValidationError(f"{path}: {exc}") from exc
    return record


def diff_records(
    old: dict[str, Any],
    new: dict[str, Any],
    *,
    threshold: float = 0.05,
) -> list[dict[str, Any]]:
    """Metric-by-metric comparison of two records of the same experiment.

    Returns one row per metric key present in either record::

        {"metric", "old", "new", "ratio", "delta", "status"}

    ``status`` is ``"ok"`` (|relative change| <= threshold), ``"changed"``
    (beyond threshold), or ``"added"``/``"removed"``. Whether a change is
    a regression depends on the metric's polarity — that judgment lives
    in ``benchmarks/compare_runs.py``, which knows the naming convention.
    """
    if threshold < 0:
        raise ValidationError(f"threshold must be >= 0, got {threshold}")
    rows: list[dict[str, Any]] = []
    old_metrics = old.get("metrics", {})
    new_metrics = new.get("metrics", {})
    for key in sorted(set(old_metrics) | set(new_metrics)):
        if key not in old_metrics:
            rows.append(
                {"metric": key, "old": None, "new": new_metrics[key],
                 "ratio": None, "delta": None, "status": "added"}
            )
            continue
        if key not in new_metrics:
            rows.append(
                {"metric": key, "old": old_metrics[key], "new": None,
                 "ratio": None, "delta": None, "status": "removed"}
            )
            continue
        a, b = float(old_metrics[key]), float(new_metrics[key])
        delta = b - a
        ratio = b / a if a not in (0, 0.0) else (1.0 if b == a else float("inf"))
        rel = abs(delta) / abs(a) if a else (0.0 if b == a else float("inf"))
        rows.append(
            {
                "metric": key,
                "old": a,
                "new": b,
                "ratio": ratio,
                "delta": delta,
                "status": "ok" if rel <= threshold else "changed",
            }
        )
    return rows
