"""Resilience layer — what recovery and budget enforcement cost.

The paper positions GSKNN inside long-running production solvers, where
the execution layer has to survive worker deaths and bounded-latency
demands. This bench quantifies the price of that machinery on the
data-parallel driver:

* **clean overhead**: the resilient chunk executor (per-chunk ledger,
  deadline checks, retry accounting) vs the plain backend on the same
  decomposition, no faults injected — the tax every budgeted solve pays;
* **recovery cost**: the same solve with a seeded crash plan that kills
  a worker on its first chunk every attempt, forcing the full
  ``processes -> threads -> serial`` ladder — wall clock and the
  ``resilience.*`` counters that recovery produced (bit-identity
  asserted against the plain serial kernel);
* **deadline enforcement latency**: how far past an impossible budget
  the ``KernelTimeoutError`` actually lands (the cooperative-check
  guarantee is "within one chunk", the acceptance bound is 2x).

Numbers land in ``results/BENCH_resilience.json`` via ``rep.metric``.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.gsknn import gsknn
from repro.errors import KernelTimeoutError
from repro.obs.metrics import disable_metrics, enable_metrics
from repro.parallel import gsknn_data_parallel
from repro.resilience import FaultPlan, RetryPolicy

from .conftest import run_report, SCALE, best_time, uniform_problem

SIZE = 1024 * SCALE


def test_resilience_report(benchmark, report):
    def _run():
        cores = os.cpu_count() or 1
        p = max(2, min(4, cores))
        rep = report(
            "resilience",
            f"resilience layer overhead and recovery (m=n={SIZE}, d=32, "
            f"k=16; {cores}-core host, p={p})",
        )
        rep.problem(m=SIZE, n=SIZE, d=32, k=16, p=p, cores=cores)
        X, q, r = uniform_problem(SIZE, SIZE, 32, seed=0)
        truth = gsknn(X, q, r, 16)

        plain = best_time(
            lambda: gsknn_data_parallel(X, q, r, 16, p=p, backend="threads"),
            repeats=3,
        )
        # any resilience input routes through the resilient executor;
        # a generous deadline keeps the solve itself unconstrained
        resilient = best_time(
            lambda: gsknn_data_parallel(
                X, q, r, 16, p=p, backend="threads", deadline=600.0
            ),
            repeats=3,
        )
        rep.row(
            f"threads p={p}: plain {plain * 1e3:.0f} ms, resilient "
            f"executor {resilient * 1e3:.0f} ms "
            f"({resilient / plain - 1:+.1%} overhead)"
        )
        rep.metric("plain_seconds", plain)
        rep.metric("resilient_clean_seconds", resilient)
        rep.metric("clean_overhead_ratio", resilient / plain)

        # recovery: kill the first chunk's worker on every attempt, so
        # the solve must walk the whole ladder — and still be bit-exact
        registry = enable_metrics()
        try:
            t0 = time.perf_counter()
            recovered = gsknn_data_parallel(
                X, q, r, 16,
                p=p, backend="processes",
                fault_plan=FaultPlan(crash_at=(0,)),
                retry=RetryPolicy(backoff_base=0.001),
            )
            recovery = time.perf_counter() - t0
            counters = registry.snapshot()["counters"]
        finally:
            disable_metrics()
        assert np.array_equal(recovered.distances, truth.distances)
        assert np.array_equal(recovered.indices, truth.indices)
        retries = counters.get("resilience.retries", 0)
        fallbacks = counters.get("resilience.fallbacks", 0)
        rep.row(
            f"crash_at=0 recovery (processes, full ladder): "
            f"{recovery * 1e3:.0f} ms, {retries} retries, "
            f"{fallbacks} fallbacks; bit-identity asserted"
        )
        rep.metric("recovery_seconds", recovery)
        rep.metric("recovery_retries", retries)
        rep.metric("recovery_fallbacks", fallbacks)

        # deadline enforcement: every chunk sleeps past an 80 ms budget;
        # measure how far past the budget the timeout error lands
        budget = 0.08
        t0 = time.perf_counter()
        with pytest.raises(KernelTimeoutError):
            gsknn_data_parallel(
                X, q, r, 16,
                p=p, backend="threads",
                deadline=budget,
                fault_plan=FaultPlan(slow=1.0, slow_seconds=10 * budget),
            )
        landed = time.perf_counter() - t0
        rep.row(
            f"deadline {budget * 1e3:.0f} ms vs all-slow chunks: error "
            f"raised at {landed * 1e3:.0f} ms "
            f"({landed / budget:.2f}x budget; acceptance bound 2x)"
        )
        rep.metric("deadline_budget_seconds", budget)
        rep.metric("deadline_landed_seconds", landed)
        rep.metric("deadline_overrun_ratio", landed / budget)

    run_report(benchmark, _run)
