"""The approximate search tier: graph index, beam search, query planner.

Exact brute force pays O(n d) per query no matter how large the
reference set grows; this package is the sub-linear tier on top of the
same fused blocked distance evaluation the exact kernel uses:

* :mod:`~repro.approx.nndescent` — NN-descent k-NN graph construction,
  initialized from randomized KD-tree leaf solves and refined with
  blocked batched candidate evaluation;
* :mod:`~repro.approx.search` — batched greedy beam search over the
  built graph (one fused evaluation per hop), with optional exact
  re-rank of the final pool;
* :mod:`~repro.approx.planner` — the recall-aware
  :class:`~repro.approx.planner.QueryPlanner` choosing exact vs tree vs
  LSH vs graph from measured, host-fingerprinted calibration curves
  (persisted next to ``tuning.json``), falling back to exact whenever a
  measurement is missing;
* :mod:`~repro.approx.blockeval` — the shared blocked norm-trick
  evaluation primitive.

See ``docs/APPROX.md`` for the recall contract and policy.
"""

from .blockeval import candidate_distances, pairwise_sq_distances
from .nndescent import GraphBuildReport, GraphIndex, build_graph_index
from .planner import (
    OperatingPoint,
    PlanDecision,
    PlannerCalibration,
    QueryPlanner,
    calibrate_planner,
)
from .search import SearchStats, beam_search
from .store import default_planner_path, load_calibration, save_calibration

__all__ = [
    "candidate_distances",
    "pairwise_sq_distances",
    "GraphBuildReport",
    "GraphIndex",
    "build_graph_index",
    "OperatingPoint",
    "PlanDecision",
    "PlannerCalibration",
    "QueryPlanner",
    "calibrate_planner",
    "SearchStats",
    "beam_search",
    "default_planner_path",
    "load_calibration",
    "save_calibration",
]
