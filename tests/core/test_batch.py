"""Tests for the batch kNN API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import KnnProblem, gsknn_batch
from repro.core.gsknn import gsknn
from repro.errors import ValidationError


@pytest.fixture
def table(rng):
    return rng.random((200, 8))


def _problems(rng, count=6):
    out = []
    for _ in range(count):
        m = int(rng.integers(2, 30))
        n = int(rng.integers(5, 80))
        q = rng.integers(0, 200, m)
        r = rng.choice(200, size=n, replace=False)
        out.append(KnnProblem(q, r, int(rng.integers(1, min(n, 8) + 1))))
    return out


class TestKnnProblem:
    def test_validation(self):
        with pytest.raises(ValidationError):
            KnnProblem(np.array([], dtype=int), np.arange(3), 1)
        with pytest.raises(ValidationError):
            KnnProblem(np.arange(3), np.arange(3), 4)
        with pytest.raises(ValidationError):
            KnnProblem(np.zeros((2, 2), dtype=int), np.arange(3), 1)


class TestGsknnBatch:
    def test_matches_individual_solves(self, table, rng):
        problems = _problems(rng)
        batch = gsknn_batch(table, problems)
        for prob, res in zip(problems, batch):
            single = gsknn(table, prob.q_idx, prob.r_idx, prob.k)
            np.testing.assert_allclose(
                res.distances, single.distances, atol=1e-12
            )

    @pytest.mark.parametrize("p", [2, 4])
    def test_parallel_matches_serial(self, table, rng, p):
        problems = _problems(rng)
        serial = gsknn_batch(table, problems, p=1)
        parallel = gsknn_batch(table, problems, p=p)
        for a, b in zip(serial, parallel):
            np.testing.assert_allclose(a.distances, b.distances, atol=1e-12)

    def test_order_preserved(self, table, rng):
        problems = _problems(rng, count=10)
        results = gsknn_batch(table, problems, p=3)
        for prob, res in zip(problems, results):
            assert res.m == prob.q_idx.size
            assert res.k == prob.k

    def test_empty_batch(self, table):
        assert gsknn_batch(table, []) == []

    def test_index_range_checked(self, table):
        with pytest.raises(ValidationError):
            gsknn_batch(table, [KnnProblem(np.array([500]), np.arange(5), 2)])

    def test_invalid_workers(self, table, rng):
        with pytest.raises(ValidationError):
            gsknn_batch(table, _problems(rng), p=0)

    def test_norms_pass_through(self, table, rng):
        problems = _problems(rng, count=3)
        results = gsknn_batch(table, problems, norm="l1", p=2)
        for prob, res in zip(problems, results):
            single = gsknn(table, prob.q_idx, prob.r_idx, prob.k, norm="l1")
            np.testing.assert_allclose(
                res.distances, single.distances, atol=1e-12
            )
