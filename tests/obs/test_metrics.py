"""Metrics registry: counters, gauges, log-bucket histograms, merging."""

from __future__ import annotations

import math
import threading

import pytest

from repro.errors import ValidationError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    get_registry,
    set_registry,
)


class TestCounter:
    def test_monotonic(self):
        c = Counter("c")
        c.inc()
        c.inc(41)
        assert c.snapshot() == 42

    def test_rejects_negative(self):
        with pytest.raises(ValidationError, match="must be >= 0"):
            Counter("c").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("g")
        g.set(3.0)
        g.set(1.5)
        assert g.snapshot() == 1.5

    def test_inc_dec(self):
        g = Gauge("g")
        g.inc(2.0)
        g.dec(0.5)
        assert g.snapshot() == pytest.approx(1.5)


class TestHistogramBuckets:
    """Bucket-edge semantics: geometric edges, ``le`` placement."""

    def test_edges_are_geometric(self):
        h = Histogram("h", start=1.0, factor=2.0, count=4)
        assert h.edges == [1.0, 2.0, 4.0, 8.0]
        assert len(h.bucket_counts) == 5  # + overflow

    def test_value_on_edge_lands_in_that_bucket(self):
        h = Histogram("h", start=1.0, factor=2.0, count=3)
        for v in (1.0, 2.0, 4.0):
            h.observe(v)
        assert h.bucket_counts == [1, 1, 1, 0]

    def test_value_between_edges_rounds_up(self):
        h = Histogram("h", start=1.0, factor=2.0, count=3)
        h.observe(1.5)  # (1, 2] -> bucket of edge 2
        h.observe(3.0)  # (2, 4] -> bucket of edge 4
        assert h.bucket_counts == [0, 1, 1, 0]

    def test_value_below_first_edge_lands_in_first_bucket(self):
        h = Histogram("h", start=1.0, factor=2.0, count=3)
        h.observe(0.001)
        assert h.bucket_counts[0] == 1

    def test_overflow_bucket(self):
        h = Histogram("h", start=1.0, factor=2.0, count=3)
        h.observe(100.0)
        assert h.bucket_counts == [0, 0, 0, 1]

    def test_stats(self):
        h = Histogram("h", start=1.0, factor=2.0, count=4)
        for v in (1.0, 3.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 2
        assert snap["sum"] == pytest.approx(4.0)
        assert snap["mean"] == pytest.approx(2.0)
        assert snap["min"] == 1.0 and snap["max"] == 3.0

    def test_quantile_returns_covering_edge(self):
        h = Histogram("h", start=1.0, factor=2.0, count=4)
        for v in (0.5, 1.5, 3.0, 7.0):
            h.observe(v)
        assert h.quantile(0.0) == 1.0  # first non-empty bucket's edge
        assert h.quantile(0.25) == 1.0
        assert h.quantile(1.0) == 8.0

    def test_quantile_overflow_is_inf(self):
        h = Histogram("h", start=1.0, factor=2.0, count=2)
        h.observe(50.0)
        assert h.quantile(0.9) == math.inf

    def test_quantile_validates_range(self):
        with pytest.raises(ValidationError):
            Histogram("h").quantile(1.5)

    def test_constructor_validation(self):
        with pytest.raises(ValidationError):
            Histogram("h", start=0.0)
        with pytest.raises(ValidationError):
            Histogram("h", factor=1.0)
        with pytest.raises(ValidationError):
            Histogram("h", count=0)

    def test_merge_adds_bucketwise(self):
        a = Histogram("h", start=1.0, factor=2.0, count=3)
        b = Histogram("h", start=1.0, factor=2.0, count=3)
        a.observe(1.0)
        b.observe(3.0)
        b.observe(100.0)
        a.merge(b)
        assert a.bucket_counts == [1, 0, 1, 1]
        assert a.count == 3
        assert a.snapshot()["max"] == 100.0

    def test_merge_rejects_differing_edges(self):
        a = Histogram("h", start=1.0, factor=2.0, count=3)
        b = Histogram("h", start=1.0, factor=4.0, count=3)
        with pytest.raises(ValidationError, match="bucket edges"):
            a.merge(b)


class TestRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.gauge("y") is reg.gauge("y")
        assert reg.histogram("z") is reg.histogram("z")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.inc("calls", 3)
        reg.set("imbalance", 1.25)
        reg.observe("seconds", 0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"calls": 3}
        assert snap["gauges"] == {"imbalance": 1.25}
        assert snap["histograms"]["seconds"]["count"] == 1

    def test_snapshot_is_sorted_plain_data(self):
        reg = MetricsRegistry()
        for name in ("b", "a", "c"):
            reg.inc(name)
        assert list(reg.snapshot()["counters"]) == ["a", "b", "c"]

    def test_clear(self):
        reg = MetricsRegistry()
        reg.inc("x")
        reg.clear()
        assert reg.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_merge_registries(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("calls", 2)
        b.inc("calls", 3)
        b.set("gauge", 9.0)
        b.observe("h", 1.0)
        a.merge(b)
        snap = a.snapshot()
        assert snap["counters"]["calls"] == 5
        assert snap["gauges"]["gauge"] == 9.0
        assert snap["histograms"]["h"]["count"] == 1

    def test_merge_adopts_layout_into_empty_histogram(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.observe("h", 5.0, start=1.0, factor=2.0, count=3)
        a.merge(b)
        assert a.histogram("h").edges == [1.0, 2.0, 4.0]
        assert a.histogram("h").count == 1


class TestThreadSafety:
    def test_concurrent_writes_to_one_registry(self):
        """Snapshot after a threaded storm sees every update."""
        reg = MetricsRegistry(enabled=True)
        n_threads, n_iter = 8, 2000
        barrier = threading.Barrier(n_threads)

        def work(tag: int) -> None:
            barrier.wait()
            for i in range(n_iter):
                reg.inc("calls")
                reg.observe("seconds", 1e-6 * (i + 1))
                reg.set(f"last.{tag}", i)

        threads = [
            threading.Thread(target=work, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = reg.snapshot()
        assert snap["counters"]["calls"] == n_threads * n_iter
        assert snap["histograms"]["seconds"]["count"] == n_threads * n_iter
        for tag in range(n_threads):
            assert snap["gauges"][f"last.{tag}"] == n_iter - 1

    def test_per_thread_registries_merge(self):
        """The fan-out pattern: private registry per worker, fold at join."""
        main = MetricsRegistry()
        locals_: list[MetricsRegistry] = []
        lock = threading.Lock()

        def work() -> None:
            mine = MetricsRegistry(enabled=True)
            for _ in range(100):
                mine.inc("tasks")
                mine.observe("h", 0.25)
            with lock:
                locals_.append(mine)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for part in locals_:
            main.merge(part)
        snap = main.snapshot()
        assert snap["counters"]["tasks"] == 400
        assert snap["histograms"]["h"]["count"] == 400


class TestGlobals:
    def test_enable_clears_and_flags(self):
        old = set_registry(MetricsRegistry())
        try:
            get_registry().inc("stale")
            reg = enable_metrics()
            assert reg is get_registry() and reg.enabled
            assert reg.snapshot()["counters"] == {}
            disable_metrics()
            assert not get_registry().enabled
        finally:
            set_registry(old)

    def test_set_registry_returns_previous(self):
        mine = MetricsRegistry()
        old = set_registry(mine)
        try:
            assert get_registry() is mine
        finally:
            assert set_registry(old) is mine
