"""Simulated distributed randomized-KD-tree all-NN (the Table 1 solver).

One iteration of the distributed algorithm, following the structure of
the paper's outer solver ([34], Xiao & Biros):

1. rank 0 builds this iteration's randomized tree over the global point
   ids and assigns whole leaves to ranks with LPT scheduling on modeled
   kernel runtimes (§2.5's task-parallel scheme across nodes);
2. every rank ships the coordinates of points whose leaves it was
   assigned but whose *home* rank (block distribution) is elsewhere —
   the alltoallv that dominates the real solver's communication;
3. each rank solves one exact kNN kernel per assigned leaf (measured
   wall-clock, attributed to that rank);
4. updated neighbor lists travel back to the points' home ranks and
   merge into the global table.

Everything computes for real in one process, so results are bit-exact
against the shared-memory solver; the *projection* combines the
busiest rank's measured kernel seconds with the alpha-beta-priced
communication to estimate multi-node wall clock.

The rank execution substrate is pluggable (``transport=``): ``"sim"``
keeps the historical in-process ranks over :class:`SimComm`, while
``"process"`` places each rank's leaf kernels in a **real, long-lived
worker process** (the shard transport of :mod:`repro.shard.transport`,
shared-memory table, per-worker :class:`~repro.core.plan.PlanCache`
kept warm across leaves and iterations). Both produce bit-identical
results; SimComm still prices the communication volume in either mode.
See docs/DISTRIBUTED.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.neighbors import KnnResult, merge_neighbor_lists_fast
from ..core.norm_cache import cached_squared_norms
from ..core.ref_kernel import ref_knn
from ..errors import ValidationError
from ..model.perf_model import PerformanceModel
from ..obs import trace as _trace
from ..obs.metrics import get_registry as _get_registry
from ..parallel.scheduler import ScheduledTask, lpt_schedule
from ..trees.rkdtree import RandomizedKDTree
from ..validation import as_coordinate_table, check_finite, check_k
from .comm import AlphaBetaModel, SimComm

__all__ = ["DistributedAllKnn", "DistributedReport"]

#: Chrome-trace tid base for simulated-rank lanes (rank r renders on
#: lane ``_RANK_LANE + r``, away from any real thread id).
_RANK_LANE = 1000


@dataclass
class DistributedReport:
    """Outcome of a simulated distributed solve."""

    result: KnnResult
    n_ranks: int
    iterations: int
    rank_kernel_seconds: list[float]
    comm_seconds: float
    comm_bytes: int
    serial_kernel_seconds: float = 0.0
    schedule_imbalance: float = 1.0

    @property
    def projected_seconds(self) -> float:
        """Estimated multi-node wall clock: busiest rank + communication."""
        return max(self.rank_kernel_seconds) + self.comm_seconds

    @property
    def projected_speedup(self) -> float:
        """Serial kernel time over the projection — the multi-node gain."""
        if self.projected_seconds <= 0:
            return 1.0
        return self.serial_kernel_seconds / self.projected_seconds


class DistributedAllKnn:
    """Simulated multi-rank randomized-KD-tree all-NN solver."""

    def __init__(
        self,
        n_ranks: int = 8,
        *,
        leaf_size: int = 512,
        iterations: int = 2,
        kernel: str = "gsknn",
        comm_model: AlphaBetaModel | None = None,
        seed: int | None = 0,
        backend: str = "serial",
        workers_per_rank: int = 1,
        transport: str = "sim",
    ) -> None:
        if n_ranks < 1:
            raise ValidationError(f"need n_ranks >= 1, got {n_ranks}")
        if leaf_size < 2:
            raise ValidationError("leaf_size must be >= 2")
        if iterations < 1:
            raise ValidationError("iterations must be >= 1")
        if kernel not in ("gsknn", "gemm"):
            raise ValidationError(
                f"kernel must be 'gsknn' or 'gemm', got {kernel!r}"
            )
        from ..parallel.backends import BACKENDS

        if backend not in BACKENDS:
            raise ValidationError(
                f"backend must be one of {sorted(BACKENDS)}, got {backend!r}"
            )
        if workers_per_rank < 1:
            raise ValidationError(
                f"workers_per_rank must be >= 1, got {workers_per_rank}"
            )
        if transport not in ("sim", "process"):
            raise ValidationError(
                f"transport must be 'sim' or 'process', got {transport!r}"
            )
        if transport == "process" and kernel != "gsknn":
            raise ValidationError(
                "the process transport runs the fused gsknn kernel in "
                "shard workers; kernel='gemm' requires transport='sim'"
            )
        self.n_ranks = int(n_ranks)
        self.leaf_size = int(leaf_size)
        self.iterations = int(iterations)
        self.kernel = kernel
        self.comm_model = comm_model if comm_model is not None else AlphaBetaModel()
        self.seed = 0 if seed is None else int(seed)
        #: execution backend for the per-leaf kernels: each simulated
        #: rank's leaf kernel may itself run data-parallel (the paper's
        #: node-level §2.5 scheme nested under the rank-level one)
        self.backend = backend
        self.workers_per_rank = int(workers_per_rank)
        #: "sim" = in-process ranks over SimComm (historical behavior);
        #: "process" = per-rank leaf kernels in long-lived worker
        #: processes over shared memory (bit-identical results)
        self.transport = transport
        self._rank_workers = None
        # Per-leaf kernels on the serial path run through cached plans:
        # every leaf of a solve shares one workspace arena pool, and a
        # leaf that recurs across iterations reuses its gathered panels.
        from ..core.plan import PlanCache

        self._plans = PlanCache(max_plans=32)

    # -- pieces ---------------------------------------------------------------

    def _home_rank(self, n: int) -> np.ndarray:
        """Block distribution: point i lives on rank i * n_ranks // n."""
        return (np.arange(n) * self.n_ranks // n).astype(np.intp)

    def _assign_leaves(
        self, leaves: list[np.ndarray], d: int, k: int, model: PerformanceModel
    ) -> list[list[np.ndarray]]:
        """LPT-schedule whole leaves onto ranks by modeled kernel time."""
        tasks = [
            ScheduledTask(
                i,
                model.estimate_kernel_runtime(
                    leaf.size, leaf.size, d, min(k, leaf.size)
                ),
                payload=leaf,
            )
            for i, leaf in enumerate(leaves)
        ]
        schedule = lpt_schedule(tasks, self.n_ranks)
        self._last_imbalance = schedule.imbalance
        return [[t.payload for t in rank] for rank in schedule.assignments]

    def _run_kernel(
        self,
        X: np.ndarray,
        group: np.ndarray,
        k: int,
        X2: np.ndarray,
        rank: int | None = None,
        deadline=None,
    ) -> KnnResult:
        k_eff = min(k, group.size)
        if (
            self._rank_workers is not None
            and rank is not None
            and self.kernel == "gsknn"
        ):
            res = self._run_kernel_remote(group, k_eff, rank, deadline)
        elif self.kernel == "gsknn":
            if self.backend != "serial" and self.workers_per_rank > 1:
                from ..parallel.data_parallel import gsknn_data_parallel

                res = gsknn_data_parallel(
                    X, group, group, k_eff,
                    p=self.workers_per_rank, backend=self.backend, X2=X2,
                )
            else:
                plan = self._plans.get(X, group, X2=X2)
                res = plan.execute(group, k_eff)
        else:
            res = ref_knn(X, group, group, k_eff, X2=X2)
        if k_eff == k:
            return res
        pad = k - k_eff
        return KnnResult(
            np.pad(res.distances, ((0, 0), (0, pad)), constant_values=np.inf),
            np.pad(res.indices, ((0, 0), (0, pad)), constant_values=-1),
        )

    def _run_kernel_remote(
        self, group: np.ndarray, k_eff: int, rank: int, deadline
    ) -> KnnResult:
        """One leaf kernel on rank ``rank``'s long-lived worker process.

        The worker holds the table via shared memory and a warm
        :class:`~repro.core.plan.PlanCache`, so a leaf recurring across
        iterations reuses its packed panels just like the sim path. A
        dead worker is restarted and the leaf re-raises as a
        :class:`~repro.errors.BackendError` so the caller's rank-level
        retry (or its fault-free last attempt, run locally) recovers.
        """
        from ..errors import BackendError
        from ..parallel.backends import _absorb_worker_obs

        future = self._rank_workers.submit(
            rank, ("group", group, group, k_eff)
        )
        try:
            out = future.result(
                timeout=None if deadline is None else deadline.timeout()
            )
        except TimeoutError:
            future.cancel()
            if deadline is not None:
                deadline.raise_expired("rank kernel", rank=rank)
            raise
        except Exception as exc:
            try:
                self._rank_workers.restart(rank)
            except Exception:  # pragma: no cover - restart best-effort
                pass
            raise BackendError(
                f"rank {rank} worker failed solving a leaf of "
                f"{group.size} points"
            ) from exc
        dist, idx, obs = out
        _absorb_worker_obs(obs, _trace.get_tracer().current_span_id())
        return KnnResult(dist, idx)

    def _run_kernel_resilient(
        self,
        X: np.ndarray,
        group: np.ndarray,
        k: int,
        X2: np.ndarray,
        *,
        key: str,
        deadline=None,
        retry=None,
        fault_plan=None,
        rank: int | None = None,
    ) -> KnnResult:
        """Per-leaf kernel with rank-level retry and fault injection.

        ``key`` identifies the leaf deterministically across runs
        (``iteration:rank:leaf``), so a seeded :class:`FaultPlan` fails
        the same leaves every time. The last attempt runs fault-free and
        a failed leaf re-runs on the same (simulated) rank, so the
        merged table is unchanged by injection.
        """
        from ..resilience import is_retryable

        if retry is None and fault_plan is None:
            try:
                return self._run_kernel(X, group, k, X2, rank, deadline)
            except Exception as exc:
                if self._rank_workers is None or not is_retryable(exc):
                    raise
                # a dead rank worker without a retry policy still
                # recovers: re-solve this leaf in-parent, bit-identically
                return self._run_kernel(X, group, k, X2, None, deadline)
        attempts = retry.max_attempts if retry is not None else 1
        registry = _get_registry()
        for attempt in range(attempts):
            try:
                if fault_plan is not None and attempt < attempts - 1:
                    fault_plan.apply("rank", key, attempt)
                return self._run_kernel(X, group, k, X2, rank, deadline)
            except Exception as exc:
                if not is_retryable(exc):
                    raise
                if attempt == attempts - 1:
                    if self._rank_workers is not None and rank is not None:
                        # rank worker unrecoverable after its retries:
                        # fault-free in-parent serial fallback
                        return self._run_kernel(X, group, k, X2, None, deadline)
                    raise
                if registry.enabled:
                    registry.inc("resilience.retries")
                    registry.inc("resilience.rank_retries")
                if retry is not None:
                    retry.sleep(attempt, deadline)
        raise AssertionError("unreachable")  # pragma: no cover

    # -- the solve ---------------------------------------------------------------

    def solve(
        self,
        X: np.ndarray,
        k: int,
        *,
        deadline=None,
        retry=None,
        fault_plan=None,
        request=None,
    ) -> DistributedReport:
        """Run the simulated distributed solve.

        Resilience: ``deadline`` (a :class:`~repro.resilience.Deadline`
        or a budget in seconds) bounds the whole solve — it is checked
        before every leaf kernel *and* on every simulated send/recv, so
        expiry raises :class:`~repro.errors.KernelTimeoutError` (with
        iteration/rank progress metadata) instead of grinding on.
        ``fault_plan`` (or ``$REPRO_FAULT_PLAN``) injects deterministic
        rank-level faults into leaf kernels; ``retry`` (defaulted on
        when faults are active) re-runs a failed leaf on the same rank
        with backoff — the recovery the paper's outer solver [34]
        assumes at rank level. The final attempt is fault-free, so
        results are unchanged by injection.

        ``request`` (a :class:`~repro.obs.context.RequestContext` or
        bare request-id string) tags every span and metric of the solve;
        a context deadline becomes the solve deadline unless one is
        passed explicitly. Per-rank kernel spans carry a ``lane``
        attribute, so a Chrome trace shows each simulated rank on its
        own timeline lane.
        """
        from ..obs.context import coerce_request, current_request, request_scope

        ctx = coerce_request(request) or current_request()
        if deadline is None and ctx is not None:
            deadline = ctx.deadline
        with request_scope(ctx):
            with _trace.span(
                "dist.solve", n_ranks=self.n_ranks, kernel=self.kernel
            ):
                return self._solve(
                    X, k, deadline=deadline, retry=retry, fault_plan=fault_plan
                )

    def _solve(
        self,
        X: np.ndarray,
        k: int,
        *,
        deadline=None,
        retry=None,
        fault_plan=None,
    ) -> DistributedReport:
        from ..resilience import Deadline, FaultPlan, RetryPolicy

        X = as_coordinate_table(X)
        check_finite(X)
        n, d = X.shape
        k = check_k(k, n)
        if self.leaf_size <= k:
            raise ValidationError(
                f"leaf_size ({self.leaf_size}) must exceed k ({k})"
            )
        deadline = Deadline.coerce(deadline)
        fault_plan = FaultPlan.coerce(fault_plan)
        if fault_plan is None:
            fault_plan = FaultPlan.from_env()
        if retry is None and fault_plan is not None:
            retry = RetryPolicy()

        comm = SimComm(self.n_ranks, deadline=deadline)
        model = PerformanceModel()
        home = self._home_rank(n)
        X2 = cached_squared_norms(X)
        if self.transport == "process":
            from ..shard.transport import ProcessTransport, ShardWorld

            workers = ProcessTransport()
            # group-only world: the rank workers attach the table but own
            # no partition — every leaf arrives as an explicit group task
            # served from the worker's warm PlanCache
            workers.start(
                ShardWorld(
                    X=X,
                    X2=X2,
                    local_ids=[
                        np.empty(0, dtype=np.intp)
                        for _ in range(self.n_ranks)
                    ],
                    epoch=0,
                )
            )
            self._rank_workers = workers
        try:
            return self._solve_inner(
                X, k, n, d, comm, model, home, X2,
                deadline=deadline, retry=retry, fault_plan=fault_plan,
            )
        finally:
            if self._rank_workers is not None:
                self._rank_workers.close()
                self._rank_workers = None

    def _solve_inner(
        self,
        X: np.ndarray,
        k: int,
        n: int,
        d: int,
        comm: SimComm,
        model: PerformanceModel,
        home: np.ndarray,
        X2: np.ndarray,
        *,
        deadline=None,
        retry=None,
        fault_plan=None,
    ) -> DistributedReport:
        current = KnnResult(
            np.full((n, k), np.inf), np.full((n, k), -1, dtype=np.intp)
        )
        rank_kernel_seconds = [0.0] * self.n_ranks
        serial_kernel = 0.0
        imbalances: list[float] = []
        rng = np.random.default_rng(self.seed)

        for iteration in range(self.iterations):
            # rank-owned phases carry a ``lane`` attr (an int tid
            # override) so every simulated rank renders on its own
            # Chrome-trace lane; 1000+ keeps clear of real thread ids
            with _trace.span("tree_build", iteration=iteration, lane=_RANK_LANE):
                tree = RandomizedKDTree(
                    leaf_size=self.leaf_size,
                    seed=int(rng.integers(0, 2**63 - 1)),
                ).fit(X)
                # rank 0 owns the tree; leaf assignments are broadcast
                assignments = self._assign_leaves(tree.leaves, d, k, model)
            imbalances.append(self._last_imbalance)
            comm.broadcast(
                0, np.concatenate([leaf for leaf in tree.leaves]), tag="tree"
            )

            # coordinate exchange: each solving rank receives the rows of
            # its leaves that live on other home ranks
            with _trace.span("exchange", what="coords", iteration=iteration):
                shuffle: list[list] = [
                    [np.empty((0, d)) for _ in range(self.n_ranks)]
                    for _ in range(self.n_ranks)
                ]
                for solver_rank, rank_leaves in enumerate(assignments):
                    for leaf in rank_leaves:
                        owners = home[leaf]
                        for src in np.unique(owners):
                            if src == solver_rank:
                                continue
                            rows = leaf[owners == src]
                            shuffle[src][solver_rank] = np.vstack(
                                [shuffle[src][solver_rank], X[rows]]
                            )
                comm.alltoallv(shuffle, tag="coords")

            # each rank solves its leaves (measured, attributed per rank);
            # list updates destined for other home ranks accumulate per
            # (solver, dst) pair and travel in one alltoallv
            pending: list[list[list]] = [
                [[] for _ in range(self.n_ranks)] for _ in range(self.n_ranks)
            ]
            for solver_rank, rank_leaves in enumerate(assignments):
                for leaf_index, leaf in enumerate(rank_leaves):
                    if deadline is not None:
                        deadline.check(
                            "rank kernel",
                            iteration=iteration,
                            rank=solver_rank,
                        )
                    t0 = time.perf_counter()
                    with _trace.span(
                        "kernel",
                        rank=solver_rank,
                        leaf_size=int(leaf.size),
                        lane=_RANK_LANE + solver_rank,
                    ):
                        local = self._run_kernel_resilient(
                            X, leaf, k, X2,
                            key=f"{iteration}:{solver_rank}:{leaf_index}",
                            deadline=deadline,
                            retry=retry,
                            fault_plan=fault_plan,
                            rank=solver_rank,
                        )
                    elapsed = time.perf_counter() - t0
                    rank_kernel_seconds[solver_rank] += elapsed
                    serial_kernel += elapsed
                    owners = home[leaf]
                    for dst in np.unique(owners):
                        mask = owners == dst
                        payload = (
                            leaf[mask],
                            local.distances[mask],
                            local.indices[mask],
                        )
                        if dst == solver_rank:
                            self._merge_rows(current, *payload)
                        else:
                            pending[solver_rank][dst].append(payload)
            with _trace.span("exchange", what="lists", iteration=iteration):
                results_back = [
                    [self._stack_payloads(cell, k) for cell in row]
                    for row in pending
                ]
                inboxes = comm.alltoallv(results_back, tag="lists")
                for dst in range(self.n_ranks):
                    for payload in inboxes[dst]:
                        rows, dists, ids = payload
                        if rows.size:
                            self._merge_rows(current, rows, dists, ids)

        registry = _get_registry()
        if registry.enabled:
            registry.inc("dist.solves")
            registry.inc("dist.comm_bytes", comm.total_bytes())
            registry.set(
                "dist.imbalance", max(imbalances) if imbalances else 1.0
            )
            for seconds in rank_kernel_seconds:
                registry.observe("dist.rank_kernel_seconds", seconds)
        return DistributedReport(
            result=current,
            n_ranks=self.n_ranks,
            iterations=self.iterations,
            rank_kernel_seconds=rank_kernel_seconds,
            comm_seconds=comm.max_rank_seconds(self.comm_model),
            comm_bytes=comm.total_bytes(),
            serial_kernel_seconds=serial_kernel,
            schedule_imbalance=max(imbalances) if imbalances else 1.0,
        )

    @staticmethod
    def _stack_payloads(cell: list, k: int):
        """Concatenate a (solver, dst) cell's leaf payloads into one message."""
        if not cell:
            return (
                np.empty(0, dtype=np.intp),
                np.empty((0, k)),
                np.empty((0, k), dtype=np.intp),
            )
        rows = np.concatenate([p[0] for p in cell])
        dists = np.vstack([p[1] for p in cell])
        ids = np.vstack([p[2] for p in cell])
        return rows, dists, ids

    @staticmethod
    def _merge_rows(
        current: KnnResult,
        rows: np.ndarray,
        dists: np.ndarray,
        ids: np.ndarray,
    ) -> None:
        merged = merge_neighbor_lists_fast(
            KnnResult(current.distances[rows], current.indices[rows]),
            KnnResult(dists, ids),
        )
        current.distances[rows] = merged.distances
        current.indices[rows] = merged.indices
