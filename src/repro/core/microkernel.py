"""Micro-kernel semantics: the m_r x n_r register tile (Algorithm 2.3).

The paper's architecture-dependent core is a tile of vector registers
``C_r`` updated by a rank-``d_c`` sequence of FMAs over one packed
``Q_c`` micro-panel and one packed ``R_c`` micro-panel (Figure 3), then
— on the final depth block only — finalized into squared distances and
fed straight into the per-query heaps (Var#1's fused tail).

This module reproduces those semantics exactly over the packed-panel
layout of :func:`repro.gemm.packing.pack_micropanels`, in three steps
that mirror the paper's four (its steps 2 and 3 merge here):

1. :func:`rank_update` — accumulate one depth block into the tile;
2. :func:`finalize_tile` — turn accumulators into distances (applying
   the ``-2`` scale and the ``Q2 + R2`` norm terms for l2, or the
   root/identity for lp norms);
3. :func:`fused_select` — root-filter the tile against the heaps and
   insert survivors (the Var#1 placement).

The exact-loop GSKNN implementation composes these; the fast numpy path
uses block-level equivalents but is tested against this one.
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError
from ..select.heap import BinaryMaxHeap, DHeap
from .norms import Norm

__all__ = ["rank_update", "finalize_tile", "fused_select", "init_tile"]

Heap = BinaryMaxHeap | DHeap


def init_tile(m_r: int, n_r: int, norm: Norm) -> np.ndarray:
    """Fresh accumulator tile: zeros, except -inf-free max-identity for linf.

    l2 accumulates inner products, lp (p < inf) accumulates sums of
    powered differences — both start at 0. l-inf accumulates a running
    max of absolute differences, whose identity is also 0 (distances are
    non-negative).
    """
    if m_r < 1 or n_r < 1:
        raise ValidationError("tile dimensions must be >= 1")
    return np.zeros((m_r, n_r), dtype=np.float64)


def rank_update(
    c_tile: np.ndarray,
    q_panel: np.ndarray,
    r_panel: np.ndarray,
    norm: Norm,
) -> None:
    """Accumulate one depth block into the register tile, in place.

    ``q_panel`` is ``(d_b, m_r)`` and ``r_panel`` is ``(d_b, n_r)`` — one
    length-m_r / length-n_r register vector per depth step, the packed
    layout's natural slices.

    * l2: ``C_r += sum_p q[p] outer r[p]`` (the -2 scale is deferred to
      finalization, as in the paper);
    * lp, p < inf: ``C_r += sum_p |q[p] - r[p]|^p`` (VSUB+VAND+VPOW+VADD);
    * l-inf: ``C_r = max(C_r, max_p |q[p] - r[p]|)`` (VSUB+VAND+VMAX).
    """
    if q_panel.shape[0] != r_panel.shape[0]:
        raise ValidationError(
            f"depth mismatch: q panel {q_panel.shape}, r panel {r_panel.shape}"
        )
    if c_tile.shape != (q_panel.shape[1], r_panel.shape[1]):
        raise ValidationError(
            f"tile shape {c_tile.shape} does not match panels "
            f"{q_panel.shape} x {r_panel.shape}"
        )
    if norm.is_l2 or norm.is_cosine:
        c_tile += q_panel.T @ r_panel
        return
    diff = np.abs(q_panel.T[:, None, :] - r_panel.T[None, :, :])  # (m_r, n_r, d_b)
    if norm.is_linf:
        np.maximum(c_tile, diff.max(axis=2), out=c_tile)
    elif norm.p == 1.0:
        c_tile += diff.sum(axis=2)
    else:
        c_tile += np.power(diff, norm.p).sum(axis=2)


def finalize_tile(
    c_tile: np.ndarray,
    q2: np.ndarray | None,
    r2: np.ndarray | None,
    norm: Norm,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Convert a fully accumulated tile into distances.

    For l2: ``dist = q2 + r2 - 2 * acc`` (clamped at 0). For p < inf:
    ``dist = acc^(1/p)`` (identity for p = 1). For l-inf the accumulator
    already is the distance.

    ``out`` is an opt-in destination buffer (the plan path passes arena
    tiles so the steady state allocates nothing). Without it, behavior
    is unchanged — in particular l1/l-inf return a *copy* so the caller
    may keep mutating the accumulator. With ``out is c_tile`` the
    finalization is fully in place and the l1/l-inf copy disappears.
    """
    if out is not None and out.shape != c_tile.shape:
        raise ValidationError(
            f"out shape {out.shape} does not match tile {c_tile.shape}"
        )
    if norm.is_cosine:
        if q2 is None or r2 is None:
            raise ValidationError("cosine finalization requires q2 and r2 norms")
        denom = np.sqrt(np.maximum(q2[:, None] * r2[None, :], 0.0))
        with np.errstate(divide="ignore", invalid="ignore"):
            sim = c_tile / denom
        sim = np.where(denom > 0.0, sim, 0.0)
        np.clip(sim, -1.0, 1.0, out=sim)
        if out is not None:
            np.subtract(1.0, sim, out=out)
            return out
        return 1.0 - sim
    if norm.is_l2:
        if q2 is None or r2 is None:
            raise ValidationError("l2 finalization requires q2 and r2 norms")
        if out is not None and out is not c_tile:
            np.add(q2[:, None], r2[None, :], out=out)
            np.subtract(out, 2.0 * c_tile, out=out)
            np.maximum(out, 0.0, out=out)
            return out
        dist = q2[:, None] + r2[None, :] - 2.0 * c_tile
        np.maximum(dist, 0.0, out=dist)
        if out is not None:
            np.copyto(out, dist)
            return out
        return dist
    if norm.is_linf or norm.p == 1.0:
        if out is None:
            return c_tile.copy()
        if out is not c_tile:
            np.copyto(out, c_tile)
        return out
    if out is not None:
        np.power(c_tile, 1.0 / norm.p, out=out)
        return out
    return np.power(c_tile, 1.0 / norm.p)


def fused_select(
    dist_tile: np.ndarray,
    heaps: list[Heap],
    row0: int,
    ref_ids: np.ndarray,
    live_rows: int | None = None,
    live_cols: int | None = None,
) -> int:
    """Var#1's fused tail: root-filter the tile, insert survivors.

    ``heaps[row0 + i]`` receives row ``i`` of the tile. ``live_rows`` /
    ``live_cols`` restrict to the non-padded part of a ragged edge tile.
    Returns the number of accepted insertions. The per-row vectorized
    compare against the heap root is the paper's broadcast-VCMP
    early-discard: rows whose minimum beats nothing are skipped whole.
    """
    m_r, n_r = dist_tile.shape
    rows = m_r if live_rows is None else live_rows
    cols = n_r if live_cols is None else live_cols
    if rows > m_r or cols > n_r:
        raise ValidationError("live region exceeds tile size")
    if len(ref_ids) < cols:
        raise ValidationError(
            f"need at least {cols} reference ids, got {len(ref_ids)}"
        )
    accepted = 0
    for i in range(rows):
        heap = heaps[row0 + i]
        root = heap.root
        row = dist_tile[i, :cols]
        # broadcast compare against the root: if nothing survives, the
        # whole row is discarded without storing a single distance
        survivors = np.flatnonzero(row < root)
        heap.stats.comparisons += 1
        if survivors.size == 0:
            continue
        # insert in ascending distance so the root tightens as fast as
        # possible: later (larger) survivors then fail the root check
        # inside ``update`` instead of sifting. The final heap contents
        # are identical either way (same multiset of accepted pairs).
        order = np.argsort(row[survivors], kind="stable")
        for j in survivors[order]:
            if heap.update(float(row[j]), int(ref_ids[j])):
                accepted += 1
    return accepted
