"""Unit tests for host calibration."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.machine import IVY_BRIDGE, calibrate_host
from repro.machine.calibrate import measure_tau_b, measure_tau_f, measure_tau_l
from repro.model import PerformanceModel


class TestProbes:
    def test_tau_f_positive_and_plausible(self):
        tau_f = measure_tau_f(size=256, repeats=2)
        assert 1e8 < tau_f < 1e13  # 0.1 GFLOPS .. 10 TFLOPS

    def test_tau_b_plausible(self):
        tau_b = measure_tau_b(n_doubles=2_000_000, repeats=2)
        assert 1e-11 < tau_b < 1e-7

    def test_tau_l_slower_than_tau_b(self):
        """Random access must cost more per element than streaming."""
        tau_b = measure_tau_b(n_doubles=2_000_000, repeats=2)
        tau_l = measure_tau_l(
            table_doubles=2_000_000, n_gathers=200_000, repeats=2
        )
        assert tau_l > tau_b

    def test_probe_validation(self):
        with pytest.raises(ValidationError):
            measure_tau_f(size=8)
        with pytest.raises(ValidationError):
            measure_tau_b(n_doubles=10)
        with pytest.raises(ValidationError):
            measure_tau_l(n_gathers=10)


class TestCalibrateHost:
    def test_returns_usable_machine(self):
        host = calibrate_host(quick=True)
        assert host.peak_gflops > 0.1
        assert host.caches == IVY_BRIDGE.caches
        assert "host-calibrated" in host.name

    def test_model_accepts_calibrated_machine(self):
        host = calibrate_host(quick=True)
        model = PerformanceModel(host)
        pred = model.predict("var1", 1024, 1024, 64, 16)
        assert 0 < pred.gflops <= host.peak_gflops
