"""Reference matrix products.

Two baselines live here:

* :func:`naive_gemm` — the textbook triple loop, used only by tests as
  ground truth for the blocked implementation;
* :func:`blas_gemm` — this platform's vendor GEMM (``numpy.dot``), the
  stand-in for the paper's MKL baseline. It also reports the flop count
  so efficiency (GFLOPS) can be computed uniformly.
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError

__all__ = ["naive_gemm", "blas_gemm", "gemm_flops"]


def gemm_flops(m: int, n: int, d: int) -> int:
    """Flops of an ``m x d`` by ``d x n`` product (multiply + add)."""
    return 2 * m * n * d


def _check_operands(A: np.ndarray, B: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    A = np.asarray(A, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    if A.ndim != 2 or B.ndim != 2:
        raise ValidationError("GEMM operands must be 2-D")
    if A.shape[1] != B.shape[0]:
        raise ValidationError(
            f"inner dimensions mismatch: A is {A.shape}, B is {B.shape}"
        )
    return A, B


def naive_gemm(
    A: np.ndarray,
    B: np.ndarray,
    C: np.ndarray | None = None,
    alpha: float = 1.0,
    beta: float = 0.0,
) -> np.ndarray:
    """``C = alpha * A @ B + beta * C`` via explicit scalar loops.

    O(mnd) Python-level work — only for small test problems.
    """
    A, B = _check_operands(A, B)
    m, d = A.shape
    n = B.shape[1]
    if C is None:
        C = np.zeros((m, n), dtype=np.float64)
        beta = 0.0
    else:
        C = np.array(C, dtype=np.float64, copy=True)
        if C.shape != (m, n):
            raise ValidationError(f"C must be {(m, n)}, got {C.shape}")
    out = np.empty_like(C)
    for i in range(m):
        for j in range(n):
            acc = 0.0
            for p in range(d):
                acc += A[i, p] * B[p, j]
            out[i, j] = alpha * acc + beta * C[i, j]
    return out


def blas_gemm(
    A: np.ndarray,
    B: np.ndarray,
    C: np.ndarray | None = None,
    alpha: float = 1.0,
    beta: float = 0.0,
) -> np.ndarray:
    """``C = alpha * A @ B + beta * C`` via the platform BLAS."""
    A, B = _check_operands(A, B)
    product = A @ B
    if alpha != 1.0:
        product *= alpha
    if C is not None and beta != 0.0:
        C = np.asarray(C, dtype=np.float64)
        if C.shape != product.shape:
            raise ValidationError(f"C must be {product.shape}, got {C.shape}")
        product += beta * C
    return product
