"""Admission control: bounded queue, load shedding, graceful overload."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.errors import OverloadError
from repro.serve import KnnQueryService, ServeConfig


class TestShedding:
    def test_queue_bound_sheds_with_attributes(self, table):
        """The (depth+1)-th submit into a stalled window is rejected
        synchronously, never queued."""
        config = ServeConfig(
            max_queue_depth=2, max_wait_ms=500.0, policy="fixed"
        )
        with KnnQueryService(table, config) as svc:
            handles = [svc.submit([i], 2, tenant="burst") for i in range(2)]
            with pytest.raises(OverloadError) as err:
                svc.submit([9], 2, tenant="burst")
            assert err.value.queue_depth == 2
            assert err.value.tenant == "burst"
            # no windows have completed yet, so no drain estimate exists
            assert err.value.retry_after is None
            for h in handles:
                assert h.result(timeout=30).m == 1

    def test_retry_after_measured_after_first_window(self, table):
        """Once a window has served, rejections carry a drain estimate
        derived from the measured batch service rate."""
        config = ServeConfig(
            max_queue_depth=2, max_wait_ms=400.0, policy="fixed"
        )
        with KnnQueryService(table, config) as svc:
            warm = svc.submit([0], 2)
            svc.stop()  # drains the warm-up window -> EWMAs seeded
            assert warm.result(timeout=30).m == 1
            svc.start()
            for i in range(2):
                svc.submit([i], 2)
            with pytest.raises(OverloadError) as err:
                svc.submit([5], 2)
            assert isinstance(err.value.retry_after, float)
            assert err.value.retry_after > 0

    def test_shed_counted_in_stats_and_metrics(self, table, metrics):
        config = ServeConfig(
            max_queue_depth=1, max_wait_ms=400.0, policy="fixed"
        )
        with KnnQueryService(table, config) as svc:
            svc.submit([0], 2, tenant="a")
            for _ in range(3):
                with pytest.raises(OverloadError):
                    svc.submit([1], 2, tenant="a")
            stats = svc.stats()
        assert stats["shed"] == 3
        counters = metrics.snapshot()["counters"]
        assert counters.get('serve.shed{tenant="a"}') == 3

    def test_shed_requests_never_enter_queue(self, table):
        config = ServeConfig(
            max_queue_depth=1, max_wait_ms=400.0, policy="fixed"
        )
        with KnnQueryService(table, config) as svc:
            svc.submit([0], 2)
            with pytest.raises(OverloadError):
                svc.submit([1], 2)
            assert svc.queue_depth == 1


class TestGracefulOverload:
    def test_overload_degrades_to_explicit_rejection(self, table):
        """An open-loop burst far past the admission bound: some requests
        shed (explicitly), every admitted request completes correctly,
        and no tenant's goodput collapses to zero."""
        config = ServeConfig(
            max_queue_depth=16,
            max_batch=8,
            max_wait_ms=1.0,
            tenant_weights={"a": 2, "b": 1},
        )
        outcomes = {"a": {"ok": 0, "shed": 0}, "b": {"ok": 0, "shed": 0}}
        lock = threading.Lock()

        def blast(tenant: str, count: int):
            handles = []
            for i in range(count):
                try:
                    handles.append(
                        svc.submit([i % table.shape[0]], 2, tenant=tenant)
                    )
                except OverloadError:
                    with lock:
                        outcomes[tenant]["shed"] += 1
            for h in handles:
                res = h.result(timeout=60)
                assert res.m == 1 and res.k == 2
                with lock:
                    outcomes[tenant]["ok"] += 1

        with KnnQueryService(table, config) as svc:
            threads = [
                threading.Thread(target=blast, args=(t, 120))
                for t in ("a", "b")
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(120)

        total_shed = sum(o["shed"] for o in outcomes.values())
        total_ok = sum(o["ok"] for o in outcomes.values())
        assert total_ok + total_shed == 240  # nothing silently dropped
        for tenant, o in outcomes.items():
            assert o["ok"] > 0, f"tenant {tenant} starved: {outcomes}"

    def test_served_results_stay_correct_under_pressure(self, table):
        """Under a sustained burst the demuxed slices still match the
        direct kernel (spot-checked via known self-neighbors)."""
        config = ServeConfig(max_queue_depth=64, max_batch=16, max_wait_ms=1.0)
        with KnnQueryService(table, config) as svc:
            admitted = []
            for i in range(200):
                try:
                    admitted.append((i % table.shape[0], svc.submit(
                        [i % table.shape[0]], 1
                    )))
                except OverloadError:
                    pass
            assert admitted
            for idx, handle in admitted:
                res = handle.result(timeout=60)
                # k=1 against the full table: a point's nearest neighbor
                # is itself at distance ~0
                assert res.indices[0, 0] == idx
                assert res.distances[0, 0] == pytest.approx(0.0, abs=1e-9)
