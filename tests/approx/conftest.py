"""Fixtures for the approximate-tier suite.

One shared small cloud + exact truth + built graph index per module:
NN-descent builds are the slow part of these tests, so the index is
session-scoped and every consumer treats it as read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.approx import build_graph_index
from repro.trees.allknn import exact_all_knn


@pytest.fixture(scope="session")
def cloud() -> np.ndarray:
    return np.random.default_rng(42).standard_normal((1200, 10))


@pytest.fixture(scope="session")
def cloud_truth(cloud):
    return exact_all_knn(cloud, 16)


@pytest.fixture(scope="session")
def graph_index(cloud):
    return build_graph_index(cloud, k_build=16, seed=0)


@pytest.fixture
def metrics():
    from repro.obs.metrics import disable_metrics, enable_metrics

    registry = enable_metrics()
    yield registry
    disable_metrics()
