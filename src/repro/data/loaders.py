"""Persist and reload :class:`~repro.data.synthetic.Dataset` objects.

Datasets are stored as ``.npz`` archives carrying the coordinate table plus
the generator provenance, so a benchmark run can be re-executed on exactly
the same points.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..errors import ValidationError
from .synthetic import Dataset

__all__ = ["save_dataset", "load_dataset"]


def save_dataset(dataset: Dataset, path: str | Path) -> Path:
    """Write ``dataset`` to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    np.savez_compressed(
        path,
        points=dataset.points,
        meta=np.frombuffer(
            json.dumps(
                {
                    "name": dataset.name,
                    "intrinsic_dim": dataset.intrinsic_dim,
                    "params": dataset.params,
                }
            ).encode("utf-8"),
            dtype=np.uint8,
        ),
    )
    return path


def load_dataset(path: str | Path) -> Dataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    path = Path(path)
    if not path.exists():
        raise ValidationError(f"dataset file not found: {path}")
    with np.load(path) as archive:
        if "points" not in archive:
            raise ValidationError(f"{path} is not a repro dataset archive")
        points = archive["points"]
        meta = json.loads(archive["meta"].tobytes().decode("utf-8"))
    return Dataset(
        points,
        name=meta["name"],
        intrinsic_dim=meta["intrinsic_dim"],
        params=meta["params"],
    )
