"""Goto-algorithm blocked GEMM substrate (paper §2.1, §2.3).

GSKNN is a refactoring of the Goto/BLIS GEMM loop nest, so this package
provides that loop nest in reusable form:

* :mod:`repro.gemm.packing` — gathering rows of the coordinate table into
  contiguous "Z-shaped" micro-panel buffers (the paper's ``Qc``/``Rc``
  packing, which GSKNN performs *directly from X* using index arrays);
* :mod:`repro.gemm.blocked` — the five-loop blocked matrix multiply with
  the same ``(n_c, d_c, m_c, n_r, m_r)`` partitioning GSKNN inherits;
* :mod:`repro.gemm.reference` — naive and BLAS-backed reference products.

The blocked implementation exists to expose the loop *structure* (it is
what the machine simulator walks and what the fused kernel refactors); for
raw throughput the library calls the platform BLAS via ``numpy.dot``.
"""

from .blocked import BlockedGemm, blocked_gemm
from .parallel import parallel_blocked_gemm
from .packing import (
    gather_panel,
    pack_micropanels,
    pack_block,
    unpack_micropanels,
)
from .reference import blas_gemm, naive_gemm

__all__ = [
    "BlockedGemm",
    "blocked_gemm",
    "parallel_blocked_gemm",
    "gather_panel",
    "pack_block",
    "pack_micropanels",
    "unpack_micropanels",
    "naive_gemm",
    "blas_gemm",
]
