"""The approximate tier's recall/latency pareto frontier.

The exact fused kernel answers a 256-query batch against n reference
points in O(n d) per query; the graph tier (NN-descent index + beam
search through the same fused evaluation) answers the same batch in
a number of fused hops that does not grow with n. This benchmark
measures both at the acceptance scale (n = 65536, d = 16, k = 10,
m = 256 by default) and records one row per beam operating point:
recall@10 against the exact answers, wall-clock per batch, and the
end-to-end speedup over the exact solve.

The build cost is reported separately (``build.seconds``) — it
amortizes over every query the index ever serves and is *not* charged
to the per-batch speedup (the planner charges it when asked to via
``include_build=True``).

Environment knobs::

    REPRO_APPROX_BENCH_N=4096   # shrink for local smoke runs
    REPRO_APPROX_BENCH_M=256    # query batch size

The committed baseline (``benchmarks/baselines/BENCH_approx_pareto.json``)
was recorded at the full acceptance scale; the CI ``approx-smoke`` job
reruns the same experiment at the default (acceptance) scale and gates
the record against the baseline via ``compare_runs.py --threshold 0.75``
(the loose threshold absorbs the host-class difference, not a lost
sub-linear win).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.approx import build_graph_index, beam_search
from repro.core.neighbors import KnnResult
from repro.core.plan import GsknnPlan
from repro.trees.evaluation import recall_at

from .conftest import run_report, best_time

N = int(os.environ.get("REPRO_APPROX_BENCH_N", "65536"))
M = int(os.environ.get("REPRO_APPROX_BENCH_M", "256"))
D = 16
K = 10

#: (ef, expand, max_hops) — the frontier from fast/loose to slow/tight.
POINTS = [
    (24, 3, 3),
    (32, 4, 3),
    (24, 3, 4),
    (48, 4, 4),
]

#: Build parameters matched to the acceptance scale; at smoke sizes the
#: same settings simply converge earlier.
BUILD_KWARGS = dict(
    k_build=32,
    seed=0,
    init_trees=3,
    leaf_size=1024,
    rounds=10,
    n_entry_points=max(64, N // 64),
)


def _problem():
    rng = np.random.default_rng(0)
    X = rng.standard_normal((N, D))
    Q = X[rng.choice(N, size=M, replace=False)] + 0.1 * rng.standard_normal(
        (M, D)
    )
    return X, Q


def _exact_batch(X, Q):
    plan = GsknnPlan(X, np.arange(X.shape[0]))
    seconds = best_time(lambda: plan.execute_rows(Q, K, validate=False), repeats=3)
    truth = plan.execute_rows(Q, K, validate=False)
    return truth, seconds


def test_approx_pareto(benchmark, report):
    def _run():
        X, Q = _problem()
        rep = report(
            "approx_pareto",
            f"Approximate tier pareto (n={N}, d={D}, k={K}, m={M})\n"
            f"{'point':>22} {'batch_ms':>10} {'recall@10':>10} "
            f"{'speedup':>8}",
        )
        rep.problem(n=N, d=D, k=K, m=M, **{
            key: val for key, val in BUILD_KWARGS.items() if key != "seed"
        })

        truth, exact_seconds = _exact_batch(X, Q)
        rep.row(
            f"{'exact gsknn':>22} {exact_seconds * 1e3:>10.2f} "
            f"{'1.0000':>10} {'1.00':>8}"
        )
        rep.metric("exact.batch_seconds", exact_seconds)

        t0 = time.perf_counter()
        index = build_graph_index(X, **BUILD_KWARGS)
        build_seconds = time.perf_counter() - t0
        rep.row(
            f"  graph build: {build_seconds:.1f}s "
            f"(k_build={BUILD_KWARGS['k_build']}, "
            f"rounds={index.build_report.rounds}, "
            f"converged={index.build_report.converged})"
        )
        rep.metric("build.seconds", build_seconds)

        best_speedup = 0.0
        for ef, expand, max_hops in POINTS:
            run = lambda: beam_search(
                index, Q, K, ef=ef, expand=expand, max_hops=max_hops,
                validate=False,
            )
            seconds = best_time(run, repeats=3)
            result = run()
            rec = recall_at(
                result,
                KnnResult(truth.distances[:, :K], truth.indices[:, :K]),
                K,
            )
            speedup = exact_seconds / seconds
            best_speedup = max(best_speedup, speedup)
            label = f"ef={ef}/ex={expand}/mh={max_hops}"
            rep.row(
                f"{label:>22} {seconds * 1e3:>10.2f} {rec:>10.4f} "
                f"{speedup:>8.2f}"
            )
            tag = f"ef{ef}.ex{expand}.mh{max_hops}"
            rep.metric(f"{tag}.recall_at_10", rec)
            rep.metric(f"{tag}.batch_seconds", seconds)
            rep.metric(f"{tag}.speedup", speedup)
            rep.data_row(
                ef=ef, expand=expand, max_hops=max_hops,
                batch_seconds=seconds, recall_at_10=rec, speedup=speedup,
            )
        rep.metric("best.speedup", best_speedup)

    run_report(benchmark, _run)


class TestParetoShape:
    """Cheap structural checks — run at whatever N is configured."""

    def test_frontier_meets_recall_floor(self):
        rng = np.random.default_rng(0)
        n = min(N, 4096)
        X = rng.standard_normal((n, D))
        Q = X[:64] + 0.05 * rng.standard_normal((64, D))
        plan = GsknnPlan(X, np.arange(X.shape[0]))
        truth = plan.execute_rows(Q, K, validate=False)
        index = build_graph_index(X, k_build=32, seed=0)
        for ef, expand, max_hops in POINTS:
            result = beam_search(
                index, Q, K, ef=ef, expand=expand, max_hops=max_hops,
                validate=False,
            )
            rec = recall_at(
                result,
                KnnResult(truth.distances[:, :K], truth.indices[:, :K]),
                K,
            )
            assert rec >= 0.9, f"ef={ef} recall {rec:.4f} below floor"

    def test_wider_points_never_cheaper_recall(self):
        """The frontier must be a frontier: the widest configured point
        reaches at least the recall of the narrowest."""
        rng = np.random.default_rng(1)
        n = min(N, 4096)
        X = rng.standard_normal((n, D))
        Q = X[:64]
        plan = GsknnPlan(X, np.arange(X.shape[0]))
        truth = plan.execute_rows(Q, K, validate=False)
        index = build_graph_index(X, k_build=32, seed=0)

        def rec_of(ef, expand, max_hops):
            result = beam_search(
                index, Q, K, ef=ef, expand=expand, max_hops=max_hops,
                validate=False,
            )
            return recall_at(
                result,
                KnnResult(truth.distances[:, :K], truth.indices[:, :K]),
                K,
            )

        narrow = rec_of(*POINTS[0])
        wide = rec_of(*POINTS[-1])
        assert wide >= narrow - 1e-9
