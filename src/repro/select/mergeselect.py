"""Chunked merge-sort selection (paper §2.2, "Merge sort").

The candidate stream is cut into ``ceil(n/k)`` chunks of length ``k``;
each chunk is sorted (k log k) and merged into the running neighbor list,
keeping only the first ``k`` elements at every merge. Complexity is
Theta(n log k) in best *and* worst case, with perfectly sequential memory
access (the property that makes it bitonic-merge vectorizable on SIMD
hardware). The paper rejects it for GSKNN because the fixed log k factor
is too expensive for the small-``n`` updates the fused kernel performs,
and because updating an existing list always costs O(k log k).
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError
from .counters import SelectionStats

__all__ = ["merge_partial_topk", "merge_select", "merge_sorted_lists"]


def merge_sorted_lists(
    a_values: np.ndarray,
    a_ids: np.ndarray,
    b_values: np.ndarray,
    b_ids: np.ndarray,
    k: int,
    *,
    stats: SelectionStats | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge two ascending (value, id) lists, keeping the k smallest.

    The scalar two-finger merge; every step is one comparison plus one
    sequential move, which is what a bitonic merge network vectorizes.
    """
    stats = stats if stats is not None else SelectionStats()
    out_n = min(k, a_values.size + b_values.size)
    out_values = np.empty(out_n, dtype=np.float64)
    out_ids = np.empty(out_n, dtype=np.intp)
    i = j = 0
    for pos in range(out_n):
        take_a = j >= b_values.size or (
            i < a_values.size and a_values[i] <= b_values[j]
        )
        if i < a_values.size and j < b_values.size:
            stats.comparisons += 1
        stats.sequential_accesses += 1
        stats.moves += 1
        if take_a:
            out_values[pos] = a_values[i]
            out_ids[pos] = a_ids[i]
            i += 1
        else:
            out_values[pos] = b_values[j]
            out_ids[pos] = b_ids[j]
            j += 1
    return out_values, out_ids


def merge_partial_topk(
    distances: np.ndarray,
    indices: np.ndarray,
    k: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge per-shard partial top-k lists into the global top-k.

    ``distances`` / ``indices`` are ``(m, R*k_part)`` row-wise
    concatenations of R partial neighbor lists over *disjoint* reference
    partitions, each ascending, padded with ``+inf`` / ``-1`` where a
    partition held fewer than ``k_part`` candidates. Returns the global
    ``(m, k)`` top-k per row, ascending by distance with ties broken by
    ascending reference id — the canonical order the scatter/gather
    router's single-process twin produces on tie-free data, and the
    deterministic tie policy on degenerate data.

    This is the vectorized gather-path counterpart of folding
    :func:`merge_sorted_lists` over the R partials (the property tests
    assert the equivalence); one stable lexsort over ``R*k_part``
    candidates per row replaces R-1 scalar two-finger merges.
    """
    distances = np.asarray(distances, dtype=np.float64)
    indices = np.asarray(indices)
    if distances.shape != indices.shape or distances.ndim != 2:
        raise ValidationError(
            "distances/indices must be matching (m, R*k) arrays, got "
            f"{distances.shape} and {indices.shape}"
        )
    total = distances.shape[1]
    if k < 1 or k > total:
        raise ValidationError(f"k must be in [1, {total}], got {k}")
    # one flattened stable lexsort: primary distance, secondary id; the
    # +inf pads (id -1) land after every finite candidate per row
    order = np.lexsort((indices, distances), axis=1)[:, :k]
    rows = np.arange(distances.shape[0])[:, None]
    return distances[rows, order], indices[rows, order].astype(np.intp)


def merge_select(
    values: np.ndarray,
    k: int,
    *,
    stats: SelectionStats | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Select the ``k`` smallest values (and positions), sorted ascending.

    Implements the paper's chunked scheme: sort k-length chunks, then fold
    them into the running top-k list one merge at a time.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    if k < 1 or k > values.size:
        raise ValidationError(f"k must be in [1, {values.size}], got {k}")
    stats = stats if stats is not None else SelectionStats()
    n = values.size
    ids = np.arange(n, dtype=np.intp)

    best_values: np.ndarray | None = None
    best_ids: np.ndarray | None = None
    for start in range(0, n, k):
        chunk_values = values[start : start + k]
        chunk_ids = ids[start : start + k]
        order = np.argsort(chunk_values, kind="stable")
        # a comparison sort of c elements costs ~c log2 c comparisons
        c = chunk_values.size
        stats.comparisons += int(c * max(np.log2(max(c, 2)), 1))
        stats.sequential_accesses += c
        stats.moves += c
        sorted_values = chunk_values[order]
        sorted_ids = chunk_ids[order]
        if best_values is None:
            best_values, best_ids = sorted_values.copy(), sorted_ids.copy()
        else:
            best_values, best_ids = merge_sorted_lists(
                best_values, best_ids, sorted_values, sorted_ids, k, stats=stats
            )
    assert best_values is not None and best_ids is not None
    return best_values, best_ids
