"""Query planner: the fallback ladder and cost-based selection.

The contract under test: ``plan()`` never raises past input validation,
and every rung of the ladder — no target, effectively-exact target,
missing calibration, regime mismatch, infeasible target — lands on
exact, with fallback rungs counted on ``plan.fallback``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.approx import (
    OperatingPoint,
    PlannerCalibration,
    QueryPlanner,
)
from repro.errors import ValidationError


def make_calibration(**overrides):
    base = dict(
        n=4096,
        d=16,
        k=10,
        m_queries=64,
        exact_query_seconds=0.02,
        model_ratio=1.0,
        graph_build_seconds=2.0,
        points=[
            OperatingPoint(
                method="graph",
                workload="query",
                params={"ef": 24, "expand": 3, "max_hops": 3},
                recall=0.95,
                query_seconds=5e-5,
            ),
            OperatingPoint(
                method="graph",
                workload="query",
                params={"ef": 64, "expand": 4, "max_hops": None},
                recall=0.99,
                query_seconds=4e-4,
            ),
            OperatingPoint(
                method="graph",
                workload="allknn",
                params={"stage": "build", "k_build": 16},
                recall=0.96,
                solve_seconds=0.3,
            ),
            OperatingPoint(
                method="rkdtree",
                workload="allknn",
                params={"iterations": 6},
                recall=0.97,
                solve_seconds=0.6,
            ),
        ],
    )
    base.update(overrides)
    return PlannerCalibration(**base)


class TestFallbackLadder:
    def test_no_target_is_exact(self):
        planner = QueryPlanner(make_calibration())
        decision = planner.plan(4096, 16, 10, None)
        assert decision.method == "exact"
        assert not decision.fallback

    def test_effectively_exact_target(self):
        planner = QueryPlanner(make_calibration())
        decision = planner.plan(4096, 16, 10, 0.9995)
        assert decision.method == "exact"
        assert not decision.fallback

    def test_no_calibration_falls_back_silently(self, metrics):
        planner = QueryPlanner(None)
        decision = planner.plan(4096, 16, 10, 0.9)
        assert decision.method == "exact"
        assert decision.fallback
        assert decision.reason == "no_calibration"
        counters = metrics.snapshot()["counters"]
        assert any(
            name.startswith("plan.fallback") and "no_calibration" in name
            for name in counters
        )

    def test_missing_cache_file_means_no_calibration(
        self, tmp_path, monkeypatch
    ):
        """Unknown host / missing file: the constructor itself degrades
        to None and planning falls back — no exception anywhere."""
        monkeypatch.setenv(
            "REPRO_PLANNER_CACHE", str(tmp_path / "absent.json")
        )
        planner = QueryPlanner()
        decision = planner.plan(4096, 16, 10, 0.9)
        assert decision.method == "exact"
        assert decision.fallback

    def test_corrupt_cache_file_degrades(self, tmp_path, monkeypatch):
        path = tmp_path / "planner.json"
        path.write_text("{ not json")
        monkeypatch.setenv("REPRO_PLANNER_CACHE", str(path))
        decision = QueryPlanner().plan(4096, 16, 10, 0.9)
        assert decision.method == "exact"
        assert decision.fallback

    def test_dimension_regime_mismatch(self, metrics):
        planner = QueryPlanner(make_calibration(d=16))
        decision = planner.plan(4096, 200, 10, 0.9)
        assert decision.method == "exact"
        assert decision.fallback
        assert decision.reason == "regime_mismatch"
        counters = metrics.snapshot()["counters"]
        assert any(
            name.startswith("plan.fallback") and "regime_mismatch" in name
            for name in counters
        )

    def test_k_regime_mismatch(self):
        planner = QueryPlanner(make_calibration(k=10))
        decision = planner.plan(4096, 16, 64, 0.9)
        assert decision.method == "exact"
        assert decision.fallback

    def test_infeasible_target_is_exact_not_fallback(self):
        """A target above every calibrated point is answered exactly —
        correct by construction, not a degraded state."""
        planner = QueryPlanner(make_calibration())
        decision = planner.plan(100_000, 16, 10, 0.995)
        assert decision.method == "exact"
        assert not decision.fallback

    def test_never_raises_on_any_ladder_input(self):
        planner = QueryPlanner(None)
        for n, d, k, rt in [
            (10, 1, 1, 0.5),
            (10**7, 512, 100, 0.99),
            (2, 2, 1, 1.0),
        ]:
            assert planner.plan(n, d, k, rt).method == "exact"


class TestSelection:
    def test_large_n_picks_graph(self):
        planner = QueryPlanner(make_calibration())
        decision = planner.plan(65536, 16, 10, 0.9, workload="query")
        assert decision.method == "graph"
        assert decision.expected_recall >= 0.9
        assert decision.params["ef"] == 24

    def test_small_n_picks_exact(self):
        planner = QueryPlanner(make_calibration())
        decision = planner.plan(64, 16, 10, 0.9, workload="query")
        assert decision.method == "exact"
        assert not decision.fallback

    def test_higher_target_picks_wider_point(self):
        planner = QueryPlanner(make_calibration())
        decision = planner.plan(65536, 16, 10, 0.98, workload="query")
        assert decision.method == "graph"
        assert decision.params["ef"] == 64

    def test_allknn_workload_uses_allknn_points(self):
        planner = QueryPlanner(make_calibration())
        decision = planner.plan(65536, 16, 10, 0.9, workload="allknn")
        assert decision.method == "graph"
        assert decision.params.get("stage") == "build"

    def test_include_build_charges_the_build(self):
        planner = QueryPlanner(make_calibration())
        without = planner.plan(
            65536, 16, 10, 0.9, workload="query", m_queries=1
        )
        with_build = planner.plan(
            65536, 16, 10, 0.9, workload="query", m_queries=1,
            include_build=True,
        )
        # one query never amortizes a multi-second build
        assert without.method == "graph"
        assert with_build.method == "exact"

    def test_decision_counter(self, metrics):
        planner = QueryPlanner(make_calibration())
        planner.plan(65536, 16, 10, 0.9, workload="query")
        counters = metrics.snapshot()["counters"]
        assert any(
            name.startswith("plan.decisions") and "graph" in name
            for name in counters
        )


class TestInputValidation:
    def test_bad_workload(self):
        with pytest.raises(ValidationError):
            QueryPlanner(None).plan(10, 2, 1, 0.9, workload="nope")

    def test_bad_target(self):
        with pytest.raises(ValidationError):
            QueryPlanner(None).plan(10, 2, 1, 1.5)
        with pytest.raises(ValidationError):
            QueryPlanner(None).plan(10, 2, 1, 0.0)

    def test_bad_sizes(self):
        with pytest.raises(ValidationError):
            QueryPlanner(None).plan(0, 2, 1, 0.9)
