"""Table 4 cost terms.

Notation (all times in seconds):

* ``T_f`` — floating-point time: ``(2d + 3) m n / tau_f`` (rank-d update
  plus the three flops per entry of the norm accumulation);
* ``T_o`` — non-flop instruction time of heap selection: each heap
  adjustment costs ~12 instructions (~24 flop-equivalents), each
  candidate pays a root-filter probe, and ``epsilon`` scales the
  expected-case cost: ``T_o = 24 epsilon (m n + m k log2 k) / tau_f``;
* ``T_m`` — slow-memory time, the sum of read terms in Table 4 (the
  model's lazy-write-back assumption drops write costs):

  - packing reads of ``X``/``X2`` for R (once) and Q (once per 6th-loop
    block): ``tau_b (n d + 2 n) + tau_b (d m + 2 m) ceil(n / n_c)``;
  - the ``C_c`` accumulator re-read every extra depth block:
    ``tau_b (ceil(d / d_c) - 1) m n``;
  - heap traffic at latency cost: ``2 tau_l epsilon m k log2 k``
    (read + write of the D and N arrays along sift paths).

Variant deltas (Equations 4 and 5):

* Var#6 adds ``tau_b m n`` for storing the full distance matrix;
* Var#5 stores only an ``m x n_c`` slab but reloads every heap
  ``n / n_c`` times — modeled as Var#1 plus the slab traffic
  ``tau_b m n`` plus the extra heap reload term
  ``2 tau_b m k (ceil(n / n_c) - 1)``;
* Algorithm 2.1 adds ``tau_b (d m + d n + 2 m n)`` — the explicit
  ``Q``/``R`` gather plus writing and re-reading ``C`` through the
  standard GEMM interface;
* Var#2/Var#3 are costed by an *estimate* (the paper only argues them
  away qualitatively): a cache-conflict fraction of an extra
  ``tau_b m n`` stream per depth block once the hot heap working set
  crowds the packed panels out of L2 (Var#2) or L1 (Var#3).

The d-heap effect (§2.6): a binary heap's sift path touches one line per
level at full random-access cost (``tau_l ~ 2 tau_b`` empirically), while
a padded 4-heap touches one line per *sibling group* (``tau_l ~ tau_b``).
:func:`effective_tau_l` applies that correction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import BlockingParams
from ..errors import ValidationError
from ..machine.params import MachineParams

__all__ = ["CostTerms", "compute_terms", "memory_terms", "effective_tau_l"]


@dataclass(frozen=True)
class CostTerms:
    """One kernel's predicted time, split the way Table 4 splits it."""

    t_f: float
    t_o: float
    t_pack: float
    t_cc: float
    t_heap_mem: float
    t_extra: float  # variant-specific delta (C store, gather, ...)

    @property
    def t_m(self) -> float:
        return self.t_pack + self.t_cc + self.t_heap_mem + self.t_extra

    @property
    def total(self) -> float:
        return self.t_f + self.t_o + self.t_m

    def as_dict(self) -> dict[str, float]:
        return {
            "t_f": self.t_f,
            "t_o": self.t_o,
            "t_pack": self.t_pack,
            "t_cc": self.t_cc,
            "t_heap_mem": self.t_heap_mem,
            "t_extra": self.t_extra,
            "t_m": self.t_m,
            "total": self.total,
        }


def _check_sizes(m: int, n: int, d: int, k: int) -> None:
    if min(m, n, d, k) < 1:
        raise ValidationError("m, n, d, k must all be >= 1")
    if k > n:
        raise ValidationError(f"k={k} exceeds n={n}")


def effective_tau_l(machine: MachineParams, heap_arity: int) -> float:
    """Latency cost per heap access, corrected for heap arity.

    The paper: binary heap ``tau_l ~ 2 tau_b``-ish (full random access,
    one line per level); a padded 4-heap's sibling group shares a line so
    ``tau_l ~ tau_b``. We interpolate: arity >= 4 pays ``tau_b``-scale
    latency, arity 2 pays the machine's full ``tau_l``.
    """
    if heap_arity < 2:
        raise ValidationError(f"heap arity must be >= 2, got {heap_arity}")
    if heap_arity >= 4:
        return machine.tau_b
    return machine.tau_l


def compute_terms(
    m: int, n: int, d: int, k: int, machine: MachineParams
) -> tuple[float, float]:
    """``(T_f, T_o)`` — identical for every kernel (Equation 3)."""
    _check_sizes(m, n, d, k)
    log_k = math.log2(k) if k > 1 else 1.0
    t_f = (2 * d + 3) * m * n / machine.tau_f
    t_o = 24.0 * machine.epsilon * (m * n + m * k * log_k) / machine.tau_f
    return t_f, t_o


def memory_terms(
    m: int,
    n: int,
    d: int,
    k: int,
    machine: MachineParams,
    blocking: BlockingParams,
    kernel: str,
    heap_arity: int = 2,
) -> CostTerms:
    """Full Table 4 prediction for ``kernel`` in
    ``{"var1", "var5", "var6", "gemm"}``."""
    _check_sizes(m, n, d, k)
    t_f, t_o = compute_terms(m, n, d, k, machine)
    tau_b = machine.tau_b
    tau_l = effective_tau_l(machine, heap_arity)
    log_k = math.log2(k) if k > 1 else 1.0
    n_blocks = math.ceil(n / blocking.n_c)
    d_blocks = math.ceil(d / blocking.d_c)

    t_pack = tau_b * (n * d + 2 * n) + tau_b * (d * m + 2 * m) * n_blocks
    t_cc = tau_b * (d_blocks - 1) * m * n
    t_heap_mem = 2.0 * tau_l * machine.epsilon * m * k * log_k

    if kernel == "var1":
        t_extra = 0.0
    elif kernel in ("var2", "var3"):
        # Estimated, not from Table 4 (the paper dismisses these
        # placements qualitatively in §2.3): selection after the 2nd/3rd
        # loop keeps every heap of the current Q_c block hot, and once
        # that working set overflows the cache level holding the packed
        # panels, Q_c/R_c micro-panels reload from the next level on
        # every pass — modeled as a conflict fraction of an extra
        # tau_b * m * n stream. Var#3 holds the heaps hot against the
        # smaller L1 (harsher); Var#2 against L2.
        heap_bytes = blocking.m_c * k * 16  # (value, id) per slot
        level = "L1" if kernel == "var3" else "L2"
        try:
            capacity = 0.75 * machine.cache(level).size_bytes
        except Exception:  # machines without cache geometry: worst case
            capacity = heap_bytes
        conflict = min(1.0, heap_bytes / capacity)
        # both packed operands re-stream from the slower level, every
        # depth block — strictly worse than Var#6's single m*n store
        # once the conflict saturates (the §2.3 claim)
        t_extra = conflict * 2.0 * tau_b * m * n * d_blocks
        # their heap accesses are cache-resident, so re-price the heap
        # term at bandwidth cost rather than latency
        t_heap_mem = 2.0 * machine.tau_b * machine.epsilon * m * k * log_k
    elif kernel == "var6":
        t_extra = tau_b * m * n  # Equation (4): storing C
    elif kernel == "var5":
        t_extra = tau_b * m * n + 2.0 * tau_b * m * k * max(n_blocks - 1, 0)
    elif kernel == "gemm":
        # Equation (5): explicit Q/R gather plus C through the GEMM
        # interface (write by GEMM, read + write by the norm pass).
        t_extra = tau_b * (d * m + d * n + 2 * m * n)
    else:
        raise ValidationError(
            f"unknown kernel {kernel!r}; expected var1/var2/var3/var5/var6/gemm"
        )
    return CostTerms(t_f, t_o, t_pack, t_cc, t_heap_mem, t_extra)
