"""Unit tests for the variant-threshold prediction (Figure 5)."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.machine.params import IVY_BRIDGE
from repro.model import PerformanceModel, predict_variant_threshold, threshold_table


class TestPredictThreshold:
    def test_threshold_exists_for_moderate_d(self):
        thr = predict_variant_threshold(8192, 8192, 64, k_max=4096)
        assert thr is not None
        assert 16 < thr < 4096

    def test_threshold_is_exact_crossover(self):
        """At the threshold Var#6 wins; one below, Var#1 wins."""
        model = PerformanceModel()
        m = n = 8192
        thr = predict_variant_threshold(m, n, 64, k_max=4096)
        assert model.predict_seconds("var6", m, n, 64, thr) <= model.predict_seconds(
            "var1", m, n, 64, thr
        )
        assert model.predict_seconds("var6", m, n, 64, thr - 1) > model.predict_seconds(
            "var1", m, n, 64, thr - 1
        )

    def test_none_when_var1_always_wins(self):
        # tiny k_max: crossover not reached
        thr = predict_variant_threshold(8192, 8192, 64, k_max=8)
        assert thr is None

    def test_invalid_k_max(self):
        with pytest.raises(ValidationError):
            predict_variant_threshold(10, 10, 4, k_max=0)
        with pytest.raises(ValidationError):
            predict_variant_threshold(10, 10, 4, k_max=11)

    def test_ten_core_threshold_matches_figure5_range(self):
        """Figure 5 (p=10, m=n=8192): the predicted switch falls in the
        hundreds-of-neighbors range for d in {16, 64}."""
        ten = IVY_BRIDGE.scaled(10, clock_hz=3.10e9)
        for d in (16, 64):
            thr = predict_variant_threshold(
                8192, 8192, d, machine=ten, k_max=4096
            )
            assert thr is not None
            assert 32 <= thr <= 2048


class TestThresholdTable:
    def test_covers_requested_dims(self):
        table = threshold_table(4096, 4096, [16, 64, 256], k_max=2048)
        assert [p.d for p in table] == [16, 64, 256]

    def test_points_consistent_with_direct_call(self):
        table = threshold_table(4096, 4096, [64], k_max=2048)
        direct = predict_variant_threshold(4096, 4096, 64, k_max=2048)
        assert table[0].k_threshold == direct
