"""Unit tests for dataset persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import load_dataset, save_dataset, uniform_hypercube
from repro.errors import ValidationError


def test_round_trip(tmp_path):
    ds = uniform_hypercube(20, 3, seed=5)
    path = save_dataset(ds, tmp_path / "cloud")
    loaded = load_dataset(path)
    np.testing.assert_array_equal(loaded.points, ds.points)
    assert loaded.name == ds.name
    assert loaded.intrinsic_dim == ds.intrinsic_dim
    assert loaded.params == ds.params


def test_suffix_appended(tmp_path):
    ds = uniform_hypercube(5, 2)
    path = save_dataset(ds, tmp_path / "noext")
    assert path.suffix == ".npz"


def test_missing_file(tmp_path):
    with pytest.raises(ValidationError):
        load_dataset(tmp_path / "nope.npz")


def test_not_a_dataset_archive(tmp_path):
    path = tmp_path / "other.npz"
    np.savez(path, stuff=np.ones(3))
    with pytest.raises(ValidationError):
        load_dataset(path)


def test_archive_with_points_but_no_meta(tmp_path):
    # regression: used to escape as a bare KeyError from np.load's dict
    path = tmp_path / "half.npz"
    np.savez(path, points=np.ones((4, 2)))
    with pytest.raises(ValidationError, match="no meta"):
        load_dataset(path)


def test_corrupt_meta_record(tmp_path):
    path = tmp_path / "bad.npz"
    np.savez(
        path,
        points=np.ones((4, 2)),
        meta=np.frombuffer(b"{not json", dtype=np.uint8),
    )
    with pytest.raises(ValidationError, match="corrupt meta"):
        load_dataset(path)


def test_meta_missing_field(tmp_path):
    import json

    path = tmp_path / "partial.npz"
    np.savez(
        path,
        points=np.ones((4, 2)),
        meta=np.frombuffer(json.dumps({"name": "x"}).encode(), dtype=np.uint8),
    )
    with pytest.raises(ValidationError, match="missing"):
        load_dataset(path)


def test_dotted_name_appends_suffix(tmp_path):
    # regression: with_suffix would mangle "run.v1" into "run.npz"
    ds = uniform_hypercube(5, 2)
    path = save_dataset(ds, tmp_path / "run.v1")
    assert path.name == "run.v1.npz"
    loaded = load_dataset(path)
    np.testing.assert_array_equal(loaded.points, ds.points)


def test_npy_round_trip(tmp_path):
    ds = uniform_hypercube(20, 3, seed=5)
    path = save_dataset(ds, tmp_path / "cloud.npy")
    assert path.suffix == ".npy"
    assert (tmp_path / "cloud.meta.json").exists()
    loaded = load_dataset(path)
    np.testing.assert_array_equal(loaded.points, ds.points)
    assert loaded.name == ds.name
    assert loaded.params == ds.params


def test_npy_dotted_name_sidecar(tmp_path):
    ds = uniform_hypercube(5, 2)
    path = save_dataset(ds, tmp_path / "run.v1.npy")
    assert (tmp_path / "run.v1.meta.json").exists()
    loaded = load_dataset(path)
    np.testing.assert_array_equal(loaded.points, ds.points)


def test_npy_mmap_round_trip(tmp_path):
    ds = uniform_hypercube(64, 4, seed=1)
    path = save_dataset(ds, tmp_path / "big.npy", chunk_rows=7)
    loaded = load_dataset(path, mmap_mode="r")
    assert isinstance(loaded.points, np.memmap) or isinstance(
        getattr(loaded.points, "base", None), np.memmap
    )
    np.testing.assert_array_equal(np.asarray(loaded.points), ds.points)


def test_npy_missing_sidecar(tmp_path):
    path = tmp_path / "orphan.npy"
    np.save(path, np.ones((4, 2)))
    with pytest.raises(ValidationError, match="sidecar"):
        load_dataset(path)


def test_npy_corrupt_sidecar(tmp_path):
    ds = uniform_hypercube(5, 2)
    path = save_dataset(ds, tmp_path / "c.npy")
    (tmp_path / "c.meta.json").write_text("{nope")
    with pytest.raises(ValidationError, match="JSON"):
        load_dataset(path)


def test_npz_refuses_mmap_mode(tmp_path):
    ds = uniform_hypercube(5, 2)
    path = save_dataset(ds, tmp_path / "z.npz")
    with pytest.raises(ValidationError, match="memory-mapped"):
        load_dataset(path, mmap_mode="r")


def test_bad_chunk_rows(tmp_path):
    ds = uniform_hypercube(5, 2)
    with pytest.raises(ValidationError):
        save_dataset(ds, tmp_path / "x.npy", chunk_rows=0)
