"""Streaming lifecycle: churn, tombstones, and the plan-cache contract.

The headline regression here is tombstone resurrection: ``delete()``
must invalidate the cached kernel plans exactly as ``insert()`` does.
A stale plan carries gathered reference panels and warm-start neighbor
lists built *before* the tombstones, so a post-delete ``refresh()``
served from it could merge deleted ids back into live lists. The
churn tests assert that no deleted id ever reappears, through any
interleaving of insert / delete / refresh.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import gaussian_mixture
from repro.obs.metrics import disable_metrics, enable_metrics
from repro.trees.streaming import StreamingAllKnn


@pytest.fixture
def stream():
    return gaussian_mixture(1500, 8, n_clusters=5, seed=42).points


@pytest.fixture
def metrics():
    registry = enable_metrics()
    try:
        yield registry
    finally:
        disable_metrics()


def assert_no_dead_ids(s: StreamingAllKnn, dead: np.ndarray) -> None:
    if dead.size == 0:
        return
    result = s.neighbors()
    resurrected = np.isin(result.indices, dead)
    assert not resurrected.any(), (
        f"deleted ids reappeared in {int(resurrected.sum())} list slots"
    )


class TestTombstoneRegression:
    def test_delete_invalidates_plan_cache(self, stream):
        """delete() must clear cached plans exactly like insert() does —
        the cache must never outlive a membership change."""
        s = StreamingAllKnn(8, 4, seed=0, max_bucket=256)
        s.insert(stream[:300])
        assert len(s._plans) > 0  # refresh built plans
        s.delete(np.arange(5))
        assert len(s._plans) == 0

    def test_no_resurrection_insert_delete_refresh(self, stream):
        """The acceptance cycle: insert -> delete -> refresh (and more
        inserts) must never re-surface a deleted id."""
        s = StreamingAllKnn(8, 5, seed=1, max_bucket=256)
        s.insert(stream[:400])
        dead = np.arange(0, 400, 7)
        s.delete(dead)
        assert_no_dead_ids(s, dead)
        for _ in range(3):
            s.refresh(tables=2)
            assert_no_dead_ids(s, dead)
        s.insert(stream[400:550])
        assert_no_dead_ids(s, dead)

    def test_no_resurrection_across_repeated_cycles(self, stream):
        """Heavier interleaving: several insert/delete/refresh rounds,
        tracking the union of everything ever deleted."""
        rng = np.random.default_rng(3)
        s = StreamingAllKnn(8, 4, seed=2, max_bucket=256)
        dead_ever = np.empty(0, dtype=np.intp)
        cursor = 0
        for round_i in range(4):
            batch = stream[cursor : cursor + 250]
            cursor += 250
            s.insert(batch)
            alive = np.flatnonzero(s._alive)
            victims = rng.choice(alive, size=alive.size // 5, replace=False)
            s.delete(victims)
            dead_ever = np.union1d(dead_ever, victims)
            assert_no_dead_ids(s, dead_ever)
            s.refresh()
            assert_no_dead_ids(s, dead_ever)


class TestLifecycleEdgeCases:
    def test_delete_already_deleted_is_idempotent(self, stream):
        s = StreamingAllKnn(8, 4, seed=4, max_bucket=256)
        s.insert(stream[:200])
        victims = np.array([10, 20, 30])
        s.delete(victims)
        purged_again = s.delete(victims)  # already tombstoned
        assert purged_again == 0  # nothing left to purge
        assert s.n_alive == 197
        assert_no_dead_ids(s, victims)
        s.refresh()
        assert_no_dead_ids(s, victims)

    def test_delete_all_then_insert(self, stream):
        s = StreamingAllKnn(8, 4, seed=5, max_bucket=256)
        s.insert(stream[:150])
        dead = np.arange(150)
        s.delete(dead)
        assert s.n_alive == 0
        assert s.refresh() == 0  # nothing to maintain
        assert s.recall_against_exact() == 1.0  # vacuously
        s.insert(stream[150:300])
        assert s.n_alive == 150
        assert_no_dead_ids(s, dead)
        result = s.neighbors()
        alive = np.arange(150, 300)
        assert (result.indices[alive] >= 0).mean() > 0.9

    def test_recall_recovers_after_heavy_churn(self, stream):
        """Recall on the survivors must climb back after deleting a
        third of the population, given refresh rounds."""
        s = StreamingAllKnn(8, 5, seed=6, max_bucket=512)
        s.insert(stream[:600])
        rng = np.random.default_rng(9)
        victims = rng.choice(600, size=200, replace=False)
        s.delete(victims)
        for _ in range(3):
            s.refresh()
        assert s.recall_against_exact() > 0.8
        assert_no_dead_ids(s, victims)


class TestPlanCacheCounters:
    def test_hit_miss_accounting_across_lifecycle(self, stream, metrics):
        """refresh() between membership changes hits the cache; any
        insert or delete invalidates it, forcing misses."""
        s = StreamingAllKnn(8, 4, seed=7, max_bucket=4096)
        s.insert(stream[:300])  # whole population -> one bucket, one plan

        def counters():
            snap = metrics.snapshot()["counters"]
            return (
                snap.get("plan.cache_hits", 0),
                snap.get("plan.cache_misses", 0),
            )

        hits0, misses0 = counters()
        assert misses0 >= 1  # the insert's refresh built a plan
        s.refresh()  # same table object, same bucket -> cache hit
        hits1, misses1 = counters()
        assert hits1 > hits0
        assert misses1 == misses0
        s.delete(np.array([0]))  # invalidates
        s.refresh()
        hits2, misses2 = counters()
        assert misses2 > misses1  # post-delete refresh had to rebuild
