"""Machine descriptions and the paper's model constants.

The paper's performance model (§2.6) is parameterized by:

* ``tau_f`` — peak floating-point throughput (flops/second);
* ``tau_b`` — seconds per unit (one double) of *contiguous* slow-memory
  movement (bandwidth term);
* ``tau_l`` — seconds per *random* slow-memory access (latency term);
* ``epsilon`` — expected heap-selection cost factor in [0, 1].

Figure 4's caption fixes the Maverick Ivy Bridge values: for one core
``tau_f = 8 x 3.54e9`` (8 DP flops/cycle at 3.54 GHz), ``tau_b =
2.2e-9``, ``tau_l = 13.91e-9``, ``epsilon = 0.5``; for ten cores
``tau_f = 10 x 8 x 3.10e9`` and ``tau_b``, ``tau_l`` are 1/5 of the
single-core values. :meth:`MachineParams.scaled` reproduces exactly that
scaling rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import ConfigurationError

__all__ = ["CacheLevel", "MachineParams", "IVY_BRIDGE", "HASWELL", "TINY_MACHINE"]


@dataclass(frozen=True)
class CacheLevel:
    """One level of the cache hierarchy."""

    name: str
    size_bytes: int
    line_bytes: int = 64
    associativity: int = 8

    def __post_init__(self) -> None:
        if self.size_bytes < self.line_bytes:
            raise ConfigurationError(
                f"{self.name}: size {self.size_bytes} smaller than one line"
            )
        if self.line_bytes < 8 or self.line_bytes & (self.line_bytes - 1):
            raise ConfigurationError(
                f"{self.name}: line size must be a power of two >= 8, "
                f"got {self.line_bytes}"
            )
        if self.associativity < 1:
            raise ConfigurationError(
                f"{self.name}: associativity must be >= 1"
            )
        n_lines = self.size_bytes // self.line_bytes
        if n_lines % self.associativity:
            raise ConfigurationError(
                f"{self.name}: {n_lines} lines not divisible by "
                f"associativity {self.associativity}"
            )

    @property
    def n_sets(self) -> int:
        return self.size_bytes // self.line_bytes // self.associativity


@dataclass(frozen=True)
class MachineParams:
    """A machine: model constants plus cache geometry.

    ``tau_b`` and ``tau_l`` are in seconds per double / per access;
    ``flops_per_cycle`` is per core (8 = 4-wide AVX double FMA-equivalent
    on Sandy/Ivy Bridge, counting mul+add).
    """

    name: str
    flops_per_cycle: int
    clock_hz: float
    tau_b: float
    tau_l: float
    epsilon: float = 0.5
    cores: int = 1
    bandwidth_scale_cap: int = 5
    caches: tuple[CacheLevel, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.flops_per_cycle < 1 or self.clock_hz <= 0:
            raise ConfigurationError("invalid compute throughput parameters")
        if self.tau_b <= 0 or self.tau_l <= 0:
            raise ConfigurationError("tau_b and tau_l must be positive")
        if not 0.0 <= self.epsilon <= 1.0:
            raise ConfigurationError(
                f"epsilon must be in [0, 1], got {self.epsilon}"
            )
        if self.cores < 1:
            raise ConfigurationError("cores must be >= 1")
        sizes = [c.size_bytes for c in self.caches]
        if sizes != sorted(sizes):
            raise ConfigurationError(
                "cache levels must be ordered smallest (L1) to largest"
            )

    @property
    def tau_f(self) -> float:
        """Peak flops/second across all active cores."""
        return self.flops_per_cycle * self.clock_hz * self.cores

    @property
    def peak_gflops(self) -> float:
        return self.tau_f / 1e9

    def scaled(self, cores: int, clock_hz: float | None = None) -> "MachineParams":
        """Return this machine running on ``cores`` cores.

        Follows the paper's Figure 4 scaling: aggregate flop rate grows
        linearly with cores (at the all-core clock if given), while the
        effective per-double bandwidth and latency costs shrink with core
        count but saturate at ``bandwidth_scale_cap`` (the paper divides
        both by 5 when going from 1 to 10 cores — memory channels, not
        cores, bound the gain).
        """
        if cores < 1:
            raise ConfigurationError("cores must be >= 1")
        mem_scale = min(cores, self.bandwidth_scale_cap)
        base_b = self.tau_b * min(self.cores, self.bandwidth_scale_cap)
        base_l = self.tau_l * min(self.cores, self.bandwidth_scale_cap)
        return replace(
            self,
            cores=cores,
            clock_hz=self.clock_hz if clock_hz is None else clock_hz,
            tau_b=base_b / mem_scale,
            tau_l=base_l / mem_scale,
        )

    def cache(self, name: str) -> CacheLevel:
        for level in self.caches:
            if level.name == name:
                return level
        raise ConfigurationError(f"{self.name} has no cache level {name!r}")


#: TACC Maverick node, one Xeon E5-2680 v2 socket, single core at the
#: paper's measured 3.54 GHz turbo clock and Figure 4 constants.
IVY_BRIDGE = MachineParams(
    name="ivy-bridge-e5-2680v2",
    flops_per_cycle=8,
    clock_hz=3.54e9,
    tau_b=2.2e-9,
    tau_l=13.91e-9,
    epsilon=0.5,
    cores=1,
    caches=(
        CacheLevel("L1", 32 * 1024, 64, 8),
        CacheLevel("L2", 256 * 1024, 64, 8),
        CacheLevel("L3", 25 * 1024 * 1024, 64, 20),
    ),
)

#: A deliberately small machine for the discrete trace simulator: problems
#: a test can afford to trace show realistic capacity behaviour.
TINY_MACHINE = MachineParams(
    name="tiny",
    flops_per_cycle=8,
    clock_hz=3.54e9,
    tau_b=2.2e-9,
    tau_l=13.91e-9,
    epsilon=0.5,
    cores=1,
    caches=(
        CacheLevel("L1", 2 * 1024, 64, 2),
        CacheLevel("L2", 8 * 1024, 64, 4),
        CacheLevel("L3", 64 * 1024, 64, 8),
    ),
)


#: A Haswell-class socket (FMA doubles the per-cycle flops to 16, bigger
#: L3) — the "future x86" port target the paper's conclusion mentions:
#: only the block sizes and the micro-kernel change, which on the model
#: side means only these numbers.
HASWELL = MachineParams(
    name="haswell-e5-2680v3",
    flops_per_cycle=16,
    clock_hz=3.3e9,
    tau_b=1.9e-9,
    tau_l=12.0e-9,
    epsilon=0.5,
    cores=1,
    caches=(
        CacheLevel("L1", 32 * 1024, 64, 8),
        CacheLevel("L2", 256 * 1024, 64, 8),
        CacheLevel("L3", 30 * 1024 * 1024, 64, 20),
    ),
)
