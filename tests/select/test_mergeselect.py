"""Unit tests for chunked merge-sort selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.select import SelectionStats, merge_select
from repro.select.mergeselect import merge_sorted_lists


class TestMergeSortedLists:
    def test_basic_merge(self):
        values, ids = merge_sorted_lists(
            np.array([1.0, 3.0]),
            np.array([1, 3]),
            np.array([2.0, 4.0]),
            np.array([2, 4]),
            k=3,
        )
        np.testing.assert_allclose(values, [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(ids, [1, 2, 3])

    def test_truncates_to_k(self):
        values, _ = merge_sorted_lists(
            np.arange(5.0), np.arange(5), np.arange(5.0), np.arange(5), k=4
        )
        assert values.shape == (4,)

    def test_one_empty_side(self):
        values, ids = merge_sorted_lists(
            np.array([]), np.array([], dtype=np.intp),
            np.array([1.0, 2.0]), np.array([1, 2]), k=2,
        )
        np.testing.assert_allclose(values, [1.0, 2.0])

    def test_result_smaller_than_k_when_inputs_short(self):
        values, _ = merge_sorted_lists(
            np.array([1.0]), np.array([1]), np.array([2.0]), np.array([2]), k=5
        )
        assert values.shape == (2,)


class TestMergeSelect:
    def test_matches_sort(self, rng):
        values = rng.random(100)
        got, pos = merge_select(values, 9)
        np.testing.assert_allclose(got, np.sort(values)[:9])
        np.testing.assert_allclose(values[pos], got)

    @pytest.mark.parametrize("n,k", [(10, 10), (10, 1), (7, 3), (64, 16), (65, 16)])
    def test_various_shapes(self, rng, n, k):
        values = rng.random(n)
        got, _ = merge_select(values, k)
        np.testing.assert_allclose(got, np.sort(values)[:k])

    def test_n_not_multiple_of_k(self, rng):
        """Ragged final chunk must still be merged correctly."""
        values = rng.random(23)
        got, _ = merge_select(values, 5)
        np.testing.assert_allclose(got, np.sort(values)[:5])

    def test_k_out_of_range(self):
        with pytest.raises(ValidationError):
            merge_select(np.ones(4), 5)

    def test_fixed_complexity(self, rng):
        """Best case equals worst case: comparisons do not depend on
        whether the data is favorable (the paper's reason to reject it)."""
        n, k = 256, 16
        easy = SelectionStats()
        merge_select(np.sort(rng.random(n)), k, stats=easy)
        hard = SelectionStats()
        merge_select(np.sort(rng.random(n))[::-1].copy(), k, stats=hard)
        # same chunking, same merges: counts agree within the merge
        # short-circuit wiggle (one side exhausting early)
        assert abs(easy.comparisons - hard.comparisons) < 0.35 * hard.comparisons
