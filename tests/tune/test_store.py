"""Tests for the persisted per-host tuning cache."""

from __future__ import annotations

import json

import pytest

from repro.errors import ValidationError
from repro.tune.store import (
    TUNE_SCHEMA_VERSION,
    TunedConfig,
    default_cache_path,
    fingerprint_key,
    host_fingerprint,
    load_tuned_config,
    save_tuned_config,
)


@pytest.fixture
def cache_file(tmp_path):
    return tmp_path / "tuning.json"


class TestTunedConfig:
    def test_defaults_valid(self):
        cfg = TunedConfig()
        assert cfg.block_m == 1024 and cfg.backend == "threads"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"block_m": 0},
            {"p": -1},
            {"switch_k": 0},
            {"chunks_per_worker": True},
            {"backend": "mpi"},
        ],
    )
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ValidationError):
            TunedConfig(**kwargs)


class TestFingerprint:
    def test_contains_the_load_bearing_fields(self):
        fp = host_fingerprint()
        assert set(fp) == {"cpu_count", "machine", "numpy", "blas", "python"}
        assert fp["cpu_count"] >= 1

    def test_key_is_stable(self):
        assert fingerprint_key() == fingerprint_key(host_fingerprint())


class TestRoundTrip:
    def test_save_then_load(self, cache_file):
        cfg = TunedConfig(block_m=512, block_n=4096, p=3, switch_k=128)
        path = save_tuned_config(cfg, cache_path=cache_file, budget="small")
        assert path == cache_file
        assert load_tuned_config(cache_file) == cfg

    def test_other_hosts_preserved(self, cache_file):
        save_tuned_config(TunedConfig(), cache_path=cache_file)
        doc = json.loads(cache_file.read_text())
        doc["hosts"]["cpu_count=999|other=host"] = {
            "config": {"block_m": 64}
        }
        cache_file.write_text(json.dumps(doc))
        save_tuned_config(TunedConfig(block_m=256), cache_path=cache_file)
        doc = json.loads(cache_file.read_text())
        assert "cpu_count=999|other=host" in doc["hosts"]
        assert load_tuned_config(cache_file).block_m == 256

    def test_env_var_overrides_path(self, cache_file, monkeypatch):
        monkeypatch.setenv("REPRO_TUNE_CACHE", str(cache_file))
        assert default_cache_path() == cache_file
        save_tuned_config(TunedConfig(block_m=2048))
        assert load_tuned_config().block_m == 2048


class TestDegradation:
    """Every unusable cache state loads as None, never an exception."""

    def test_missing_file(self, tmp_path):
        assert load_tuned_config(tmp_path / "nope.json") is None

    def test_corrupt_json(self, cache_file):
        cache_file.write_text("{not json")
        assert load_tuned_config(cache_file) is None

    def test_future_schema(self, cache_file):
        save_tuned_config(TunedConfig(), cache_path=cache_file)
        doc = json.loads(cache_file.read_text())
        doc["schema_version"] = TUNE_SCHEMA_VERSION + 1
        cache_file.write_text(json.dumps(doc))
        assert load_tuned_config(cache_file) is None

    def test_fingerprint_mismatch(self, cache_file):
        save_tuned_config(TunedConfig(), cache_path=cache_file)
        doc = json.loads(cache_file.read_text())
        entry = doc["hosts"].pop(fingerprint_key())
        doc["hosts"]["cpu_count=999|machine=m|numpy=0|blas=?|python=0"] = entry
        cache_file.write_text(json.dumps(doc))
        assert load_tuned_config(cache_file) is None

    def test_bad_config_fields(self, cache_file):
        save_tuned_config(TunedConfig(), cache_path=cache_file)
        doc = json.loads(cache_file.read_text())
        doc["hosts"][fingerprint_key()]["config"]["block_m"] = -5
        cache_file.write_text(json.dumps(doc))
        assert load_tuned_config(cache_file) is None
