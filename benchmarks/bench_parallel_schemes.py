"""§2.5 — the two parallel schemes and the three execution backends.

The paper describes task parallelism (many small kernels, greedy list
scheduling on model-estimated runtimes) and data parallelism (one big
kernel split over the 4th loop). Neither has a paper table of its own —
they underlie the 10-core numbers of Figures 4-6 — so this bench
reports the properties that make those numbers possible:

* **correctness under decomposition**: every execution backend
  (serial / threads / zero-copy shared-memory processes) produces
  bit-equal results on the same chunk decomposition (asserted);
* **backend cost**: wall clock of the data-parallel driver per backend
  at ``p = min(4, cores)``, plus the ``processes_speedup`` ratio the
  regression gate tracks — on a multi-core host the shared-memory
  backend must win for the selection-heavy Var#1 regime, on a 1-core
  host it reports its (honest) overhead;
* **balance quality**: LPT-scheduled batches of uneven kernels vs a
  serial sweep (printed and recorded).

Every number lands in ``results/BENCH_parallel_schemes.json`` via
``rep.metric(...)`` so ``compare_runs.py`` can gate regressions against
the committed baseline in ``benchmarks/baselines/``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.batch import KnnProblem, gsknn_batch
from repro.core.gsknn import gsknn
from repro.parallel import gsknn_data_parallel

from .conftest import run_report, SCALE, best_time, uniform_problem

SIZE = 2048 * SCALE
BACKENDS = ("serial", "threads", "processes")


def test_parallel_schemes_report(benchmark, report):
    def _run():
        cores = os.cpu_count() or 1
        # at least 2 workers: p=1 short-circuits to the plain kernel and
        # would measure nothing about the backends
        p = max(2, min(4, cores))
        rep = report(
            "parallel_schemes",
            f"§2.5 parallel schemes (m=n={SIZE}, d=32, k=16; "
            f"{cores}-core host, p={p})",
        )
        rep.problem(m=SIZE, n=SIZE, d=32, k=16, p=p, cores=cores)
        X, q, r = uniform_problem(SIZE, SIZE, 32, seed=0)
        serial = best_time(lambda: gsknn(X, q, r, 16), repeats=3)
        rep.row(f"serial kernel: {serial * 1e3:.0f} ms")
        rep.metric("serial_kernel_seconds", serial)

        # one decomposition, three backends; bit-identity asserted
        # against the serial *backend* (same chunk list)
        base = gsknn_data_parallel(X, q, r, 16, p=p, backend="serial")
        times: dict[str, float] = {}
        for backend in BACKENDS:
            times[backend] = best_time(
                lambda: gsknn_data_parallel(X, q, r, 16, p=p,
                                            backend=backend),
                repeats=3,
            )
            rep.row(
                f"data-parallel backend={backend} p={p}: "
                f"{times[backend] * 1e3:.0f} ms "
                f"(vs serial kernel {times[backend] / serial - 1:+.1%})"
            )
            rep.metric(f"backend_{backend}_seconds", times[backend])
            res = gsknn_data_parallel(X, q, r, 16, p=p, backend=backend)
            assert np.array_equal(res.distances, base.distances)
            assert np.array_equal(res.indices, base.indices)
        rep.row("backend bit-identity on shared chunk list: asserted")
        # The acceptance ratio: >1 means the zero-copy process pool beat
        # the single-process serial kernel (expected on >= 2 cores).
        rep.metric("processes_speedup", serial / times["processes"])
        rep.metric("threads_speedup", serial / times["threads"])
        rep.row(
            f"processes speedup vs serial kernel: "
            f"{serial / times['processes']:.2f}x "
            f"(host has {cores} core(s))"
        )

        # acceptance-size Var#1 run (m=n=8192, d=16, k=128): serial
        # kernel vs the zero-copy process pool. Opt-in (seconds per
        # timing) — run with REPRO_BENCH_ACCEPTANCE=1 to refresh.
        if os.environ.get("REPRO_BENCH_ACCEPTANCE"):
            Xa, qa, ra = uniform_problem(8192, 8192, 16, seed=7)
            pa = min(8, cores) if cores > 1 else 2
            t_ser = best_time(
                lambda: gsknn(Xa, qa, ra, 128, variant=1), repeats=2
            )
            t_proc = best_time(
                lambda: gsknn_data_parallel(
                    Xa, qa, ra, 128, p=pa, backend="processes", variant=1
                ),
                repeats=2,
            )
            rep.row(
                f"acceptance m=n=8192 d=16 k=128 Var#1: serial "
                f"{t_ser:.2f} s, processes p={pa} {t_proc:.2f} s "
                f"({t_ser / t_proc:.2f}x on {cores} core(s))"
            )
            rep.metric("acceptance_serial_seconds", t_ser)
            rep.metric("acceptance_processes_seconds", t_proc)
            rep.metric("acceptance_processes_speedup", t_ser / t_proc)

        # task-parallel batch of uneven kernels
        rng = np.random.default_rng(1)
        problems = [
            KnnProblem(
                rng.integers(0, SIZE, int(s)),
                rng.choice(SIZE, size=int(2 * s), replace=False),
                8,
            )
            for s in rng.integers(SIZE // 32, SIZE // 4, 12)
        ]
        t_serial = best_time(lambda: gsknn_batch(X, problems, p=1), repeats=2)
        t_sched = best_time(lambda: gsknn_batch(X, problems, p=4), repeats=2)
        rep.row(
            f"batch of {len(problems)} uneven kernels: serial "
            f"{t_serial * 1e3:.0f} ms, LPT-scheduled p=4 "
            f"{t_sched * 1e3:.0f} ms"
        )
        rep.metric("batch_serial_seconds", t_serial)
        rep.metric("batch_lpt_seconds", t_sched)
        a = gsknn_batch(X, problems, p=1)
        b = gsknn_batch(X, problems, p=4)
        for x, y in zip(a, b):
            assert np.allclose(x.distances, y.distances, atol=1e-12)
        rep.row("decomposition correctness: serial == parallel (asserted)")

    run_report(benchmark, _run)


@pytest.mark.parametrize("p", [1, 2, 4])
def test_bench_data_parallel(benchmark, p):
    X, q, r = uniform_problem(SIZE, SIZE, 32, seed=2)
    benchmark.group = f"§2.5 data-parallel m=n={SIZE}"
    benchmark.name = f"p={p}"
    benchmark(lambda: gsknn_data_parallel(X, q, r, 16, p=p))


@pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
def test_bench_backends(benchmark, backend):
    X, q, r = uniform_problem(SIZE, SIZE, 32, seed=3)
    p = max(2, min(4, os.cpu_count() or 1))
    benchmark.group = f"§2.5 execution backends m=n={SIZE} p={p}"
    benchmark.name = backend
    benchmark(lambda: gsknn_data_parallel(X, q, r, 16, p=p, backend=backend))
