"""repro — a reproduction of GSKNN (Yu et al., SC '15).

*Performance Optimization for the K-Nearest Neighbors Kernel on x86
Architectures*: a fused blocked-GEMM + neighbor-selection kernel, its
GEMM-based baseline, the paper's performance model, a simulated memory
hierarchy standing in for the Ivy Bridge testbed, and the approximate
all-nearest-neighbor solvers (randomized KD-trees, LSH) that consume the
kernel.

Quickstart::

    import numpy as np
    from repro import gsknn

    X = np.random.default_rng(0).random((10_000, 64))
    idx = np.arange(len(X))
    result = gsknn(X, q_idx=idx[:512], r_idx=idx, k=16)
    result.indices  # (512, 16) global neighbor ids
"""

from .core.gsknn import gsknn, gsknn_exact_loops
from .core.membudget import MemoryBudget
from .core.neighbors import KnnResult, merge_neighbor_lists, recall
from .core.ref_kernel import ref_knn, ref_knn_timed
from .errors import (
    ConfigurationError,
    ConvergenceError,
    MemoryBudgetError,
    ReproError,
    ValidationError,
)

__version__ = "0.1.0"

__all__ = [
    "gsknn",
    "gsknn_exact_loops",
    "ref_knn",
    "ref_knn_timed",
    "KnnResult",
    "merge_neighbor_lists",
    "recall",
    "all_nearest_neighbors",
    "MemoryBudget",
    "ReproError",
    "ValidationError",
    "ConfigurationError",
    "ConvergenceError",
    "MemoryBudgetError",
    "__version__",
]


def all_nearest_neighbors(X, k, **kwargs):
    """Convenience alias for :func:`repro.trees.allknn.all_nearest_neighbors`.

    Imported lazily so ``import repro`` stays light.
    """
    from .trees.allknn import all_nearest_neighbors as _impl

    return _impl(X, k, **kwargs)
