"""§2.5 — the two parallel schemes, exercised on real kernels.

The paper describes task parallelism (many small kernels, greedy list
scheduling on model-estimated runtimes) and data parallelism (one big
kernel split over the 4th loop). Neither has a paper table of its own —
they underlie the 10-core numbers of Figures 4-6 — so this bench
reports the two properties that make those numbers possible:

* **correctness under decomposition**: both schemes produce bit-equal
  results to the serial kernel (asserted);
* **balance quality**: LPT schedules of real rKD-tree leaf workloads
  stay near imbalance 1.0 while naive round-robin drifts (printed,
  modeled with the same estimates the production scheduler uses);
* **thread-driver overhead**: wall clock of the data-parallel driver at
  p in {1, 2, 4} on a single-core host — the decomposition must not
  cost more than a few percent when it cannot win (printed).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import KnnProblem, gsknn_batch
from repro.core.gsknn import gsknn
from repro.parallel import gsknn_data_parallel

from .conftest import run_report, SCALE, best_time, uniform_problem

SIZE = 2048 * SCALE


def test_parallel_schemes_report(benchmark, report):
    def _run():
        rep = report(
            "parallel_schemes",
            f"§2.5 parallel schemes (m=n={SIZE}, d=32, k=16; 1-core host)",
        )
        X, q, r = uniform_problem(SIZE, SIZE, 32, seed=0)
        serial = best_time(lambda: gsknn(X, q, r, 16), repeats=3)
        rep.row(f"serial kernel: {serial * 1e3:.0f} ms")
        for p in (2, 4):
            t = best_time(
                lambda: gsknn_data_parallel(X, q, r, 16, p=p), repeats=3
            )
            rep.row(
                f"data-parallel p={p}: {t * 1e3:.0f} ms "
                f"(overhead {t / serial - 1:+.1%})"
            )
            res = gsknn_data_parallel(X, q, r, 16, p=p)
            base = gsknn(X, q, r, 16)
            assert np.array_equal(res.distances, base.distances)

        # task-parallel batch of uneven kernels
        rng = np.random.default_rng(1)
        problems = [
            KnnProblem(
                rng.integers(0, SIZE, int(s)),
                rng.choice(SIZE, size=int(2 * s), replace=False),
                8,
            )
            for s in rng.integers(SIZE // 32, SIZE // 4, 12)
        ]
        t_serial = best_time(lambda: gsknn_batch(X, problems, p=1), repeats=2)
        t_sched = best_time(lambda: gsknn_batch(X, problems, p=4), repeats=2)
        rep.row(
            f"batch of {len(problems)} uneven kernels: serial "
            f"{t_serial * 1e3:.0f} ms, LPT-scheduled p=4 "
            f"{t_sched * 1e3:.0f} ms"
        )
        a = gsknn_batch(X, problems, p=1)
        b = gsknn_batch(X, problems, p=4)
        for x, y in zip(a, b):
            assert np.allclose(x.distances, y.distances, atol=1e-12)
        rep.row("decomposition correctness: serial == parallel (asserted)")

    run_report(benchmark, _run)


@pytest.mark.parametrize("p", [1, 2, 4])
def test_bench_data_parallel(benchmark, p):
    X, q, r = uniform_problem(SIZE, SIZE, 32, seed=2)
    benchmark.group = f"§2.5 data-parallel m=n={SIZE}"
    benchmark.name = f"p={p}"
    benchmark(lambda: gsknn_data_parallel(X, q, r, 16, p=p))
