"""Figure 4 — modeled vs measured floating-point efficiency vs dimension.

Paper: six panels (p ∈ {1, 10} x k ∈ {16, 512, 2048}), m = n = 8192,
GFLOPS = (2d + 3) m n / T as a function of d, with the model's dashed
curves over the measured solid ones; the model constants are tau_f =
8 x 3.54e9 (x10 x 3.10 GHz for ten cores), tau_b = 2.2e-9, tau_l =
13.91e-9, epsilon = 0.5.

Reproduced in two layers:

* the *model* series are regenerated exactly — same constants, same
  sizes (m = n = 8192) — and printed per (p, k) panel;
* the *measured* series come from this host's numpy kernels at scaled
  sizes; absolute GFLOPS differ (no AVX assembly here) but the shape —
  rising with d, Var#1 over the GEMM approach, model overestimating at
  low d — is checked.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gsknn import gsknn
from repro.core.ref_kernel import ref_knn
from repro.machine.params import IVY_BRIDGE
from repro.model import PerformanceModel
from repro.perf.gflops import gflops

from .conftest import run_report, SCALE, best_time, uniform_problem

PAPER_M = 8192
MODEL_DIMS = [16, 32, 64, 128, 256, 512, 768, 1024]
MEASURED_M = 1024 * SCALE
MEASURED_DIMS = [16, 64, 256, 1024]


def _panel(model, kernel, k):
    return [
        model.predict(kernel, PAPER_M, PAPER_M, d, min(k, PAPER_M)).gflops
        for d in MODEL_DIMS
    ]


def test_fig4_model_series(benchmark, report):
    def _run():
        rep = report(
            "fig4_model",
            "Figure 4, model series (m=n=8192; GFLOPS vs d)\n"
            f"{'panel':>22} " + "".join(f"{f'd={d}':>8}" for d in MODEL_DIMS),
        )
        for cores, clock in [(1, None), (10, 3.10e9)]:
            machine = IVY_BRIDGE.scaled(cores, clock)
            model = PerformanceModel(machine)
            for k in (16, 512, 2048):
                kernel = "var1" if k <= 512 else "var6"
                series = _panel(model, kernel, k)
                rep.row(
                    f"{f'p={cores} k={k} {kernel}':>22} "
                    + "".join(f"{g:>8.1f}" for g in series)
                )
            gemm = _panel(model, "gemm", 16)
            rep.row(
                f"{f'p={cores} k=16 gemm':>22} "
                + "".join(f"{g:>8.1f}" for g in gemm)
            )


    run_report(benchmark, _run)


def test_fig4_measured_series(benchmark, report):
    def _run():
        rep = report(
            "fig4_measured",
            f"Figure 4, measured on this host (m=n={MEASURED_M}; GFLOPS vs d)\n"
            f"{'series':>14} " + "".join(f"{f'd={d}':>8}" for d in MEASURED_DIMS),
        )
        for k in (16, 512):
            for name, fn in [("gsknn", gsknn), ("gemm", ref_knn)]:
                series = []
                for d in MEASURED_DIMS:
                    X, q, r = uniform_problem(MEASURED_M, MEASURED_M, d, seed=1)
                    t = best_time(lambda: fn(X, q, r, k), repeats=2)
                    series.append(gflops(MEASURED_M, MEASURED_M, d, t))
                rep.row(
                    f"{f'k={k} {name}':>14} "
                    + "".join(f"{g:>8.2f}" for g in series)
                )


    run_report(benchmark, _run)


class TestFigure4Shapes:
    @pytest.fixture(scope="class")
    def model10(self):
        return PerformanceModel(IVY_BRIDGE.scaled(10, 3.10e9))

    def test_model_efficiency_rises_with_d(self, model10):
        """Rising toward peak through d = 256 (one depth block); the
        10-core curve then flattens ~13% below peak once C_c traffic
        starts (the paper's periodic-drop regime)."""
        series = _panel(model10, "var1", 16)
        d256 = MODEL_DIMS.index(256)
        assert series[:d256 + 1] == sorted(series[:d256 + 1])
        assert series[d256] > series[0] * 1.25

    def test_model_var1_above_gemm_everywhere(self, model10):
        var1 = _panel(model10, "var1", 16)
        gemm = _panel(model10, "gemm", 16)
        assert all(a >= b for a, b in zip(var1, gemm))

    def test_model_reaches_80pct_peak_high_d_small_k(self, model10):
        series = _panel(model10, "var1", 16)
        assert series[-1] > 0.8 * 248.0

    def test_measured_shape_matches_model_shape(self):
        """Monotone agreement between model and measurement: both the
        modeled and the measured GSKNN efficiency rise with d."""
        measured = []
        for d in (16, 256):
            X, q, r = uniform_problem(MEASURED_M, MEASURED_M, d, seed=2)
            t = best_time(lambda: gsknn(X, q, r, 16), repeats=2)
            measured.append(gflops(MEASURED_M, MEASURED_M, d, t))
        assert measured[1] > measured[0]

    def test_model_overestimates_low_d_more(self, model10):
        """The paper notes the prediction 'is too optimistic in low d'.
        On the model's own terms: the ratio of modeled VAR1 efficiency
        to modeled GEMM efficiency compresses as d grows, so any real
        kernel with fixed overheads falls shorter of the model at low d.
        Verified against this host: model/measured ratio shrinks with d."""
        ratios = []
        for d in (16, 256):
            X, q, r = uniform_problem(MEASURED_M, MEASURED_M, d, seed=3)
            t = best_time(lambda: gsknn(X, q, r, 16), repeats=2)
            measured = gflops(MEASURED_M, MEASURED_M, d, t)
            modeled = PerformanceModel().predict(
                "var1", MEASURED_M, MEASURED_M, d, 16
            ).gflops
            ratios.append(modeled / measured)
        assert ratios[0] > ratios[1]
