"""CLI smoke tests — every subcommand runs end to end."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0


class TestCommands:
    def test_kernel(self, capsys):
        assert main(["kernel", "-m", "64", "-n", "128", "-d", "8", "-k", "4"]) == 0
        out = capsys.readouterr().out
        assert "gsknn" in out and "gflops" in out

    def test_kernel_gemm_l1(self, capsys):
        assert main(
            ["kernel", "-m", "32", "-n", "64", "-d", "4", "-k", "2",
             "--kernel", "gemm", "--norm", "l1"]
        ) == 0

    def test_compare(self, capsys):
        assert main(
            ["compare", "-m", "64", "-n", "64", "-d", "8", "-k", "4",
             "--repeats", "1"]
        ) == 0
        assert "speedup" in capsys.readouterr().out

    def test_allknn(self, capsys):
        assert main(
            ["allknn", "-N", "400", "-d", "8", "-k", "4",
             "--leaf-size", "64", "--iterations", "2", "--evaluate"]
        ) == 0
        out = capsys.readouterr().out
        assert "recall" in out

    def test_allknn_lsh(self, capsys):
        assert main(
            ["allknn", "-N", "300", "-d", "8", "-k", "4",
             "--method", "lsh", "--leaf-size", "64", "--iterations", "2"]
        ) == 0

    def test_model(self, capsys):
        assert main(["model", "-m", "1024", "-n", "1024", "-d", "64",
                     "-k", "16", "--cores", "10"]) == 0
        out = capsys.readouterr().out
        assert "threshold" in out
        assert "GFLOPS" in out

    def test_trace(self, capsys):
        assert main(["trace", "-m", "32", "-n", "32", "-d", "8", "-k", "4"]) == 0
        assert "DRAM" in capsys.readouterr().out

    def test_tune(self, capsys):
        assert main(["tune", "-m", "512", "-n", "512", "-d", "32", "-k", "64"]) == 0
        out = capsys.readouterr().out
        assert "decision table" in out
        assert "threshold" in out

    def test_tune_save(self, capsys, tmp_path):
        path = str(tmp_path / "table.json")
        assert main(
            ["tune", "-m", "256", "-n", "256", "-d", "16", "-k", "8",
             "--save", path]
        ) == 0
        assert "saved" in capsys.readouterr().out

    def test_distributed(self, capsys):
        assert main(
            ["distributed", "-N", "512", "-d", "8", "-k", "4",
             "--ranks", "4", "--leaf-size", "128", "--iterations", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "projected wall clock" in out

    def test_kernel_cosine(self, capsys):
        assert main(
            ["kernel", "-m", "32", "-n", "64", "-d", "8", "-k", "4",
             "--norm", "cosine"]
        ) == 0

    def test_kernel_explicit_variant(self, capsys):
        assert main(
            ["kernel", "-m", "32", "-n", "64", "-d", "8", "-k", "4",
             "--variant", "6"]
        ) == 0

    def test_allknn_gemm_kernel(self, capsys):
        assert main(
            ["allknn", "-N", "300", "-d", "8", "-k", "4",
             "--kernel", "gemm", "--leaf-size", "64", "--iterations", "1"]
        ) == 0


class TestObservabilityCommands:
    def test_kernel_trace_out_writes_chrome_trace(self, capsys, tmp_path):
        import json

        path = tmp_path / "trace.json"
        assert main(
            ["kernel", "-m", "48", "-n", "96", "-d", "8", "-k", "4",
             "--trace-out", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert "phase" in out  # the breakdown table printed
        doc = json.loads(path.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"pack", "rank_update", "heap"} <= names
        assert all(e["ph"] == "X" for e in doc["traceEvents"])

    def test_compare_trace_out(self, capsys, tmp_path):
        import json

        path = tmp_path / "trace.json"
        assert main(
            ["compare", "-m", "48", "-n", "48", "-d", "8", "-k", "4",
             "--repeats", "1", "--trace-out", str(path)]
        ) == 0
        doc = json.loads(path.read_text())
        assert {e["name"] for e in doc["traceEvents"]} >= {"run"}

    def test_stats(self, capsys):
        assert main(
            ["stats", "-m", "48", "-n", "96", "-d", "8", "-k", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "counters" in out
        assert "gsknn.calls" in out

    def test_stats_json(self, capsys):
        import json

        assert main(
            ["stats", "-m", "32", "-n", "64", "-d", "8", "-k", "4", "--json"]
        ) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["counters"]["gsknn.calls"] >= 1

    def test_trace_json(self, capsys):
        import json

        assert main(
            ["trace", "-m", "32", "-n", "32", "-d", "8", "-k", "4", "--json"]
        ) == 0
        records = json.loads(capsys.readouterr().out)
        assert isinstance(records, list) and records
