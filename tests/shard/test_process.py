"""The same contracts over real long-lived worker processes.

These are the acceptance tests of the sharding PR: two or more actual
OS processes, shared-memory reference table, scatter/gather merge —
bit-identical (indices AND distances) to the single-process fused
solve, including after streaming churn and under an injected shard
crash recovered through the failure ladder.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.resilience.retry import RetryPolicy
from repro.shard import ShardedAllKnn

BLOCKS = {"block_m": 64, "block_n": 64}


def assert_bit_identical(got, want):
    np.testing.assert_array_equal(got.indices, want.indices)
    np.testing.assert_array_equal(got.distances, want.distances)


@pytest.fixture
def router(table):
    with ShardedAllKnn(table, 2, transport="process", **BLOCKS) as r:
        yield r


class TestProcessBitIdenticality:
    def test_two_processes_match_single_process(self, router):
        q = np.arange(0, 300, 3)
        got = router.solve(q, 12)
        want = router.solve_reference(q, 12)
        assert_bit_identical(got, want)

    def test_rows_and_repeat_batches(self, router, rng):
        """Second batch hits warm per-shard plans — same answer."""
        Q = rng.random((7, router.dim))
        first = router.solve_rows(Q, 9)
        second = router.solve_rows(Q, 9)
        assert_bit_identical(first, second)
        q = np.arange(20)
        assert_bit_identical(
            router.solve(q, 9), router.solve_reference(q, 9)
        )

    def test_bit_identical_after_churn(self, router, rng):
        """Insert + delete re-export the table to fresh shared segments
        and re-derive the panel grid; workers re-attach and drop their
        packed plans. The merged result must still be exact."""
        router.insert(rng.random((23, router.dim)))
        router.delete(np.arange(0, 100, 4))
        q = np.arange(0, router.map.n_total, 6)
        got = router.solve(q, 8)
        want = router.solve_reference(q, 8)
        assert_bit_identical(got, want)


class TestProcessCrashRecovery:
    def test_worker_crash_recovered_through_ladder(self, table):
        """crash=1.0 in scope "shard" makes every worker attempt die via
        ``os._exit`` (a genuine BrokenProcessPool) and the threads rung
        raise InjectedFault; the serial rung recovers, bit-identically,
        and the restarted pool serves the next epoch."""
        with ShardedAllKnn(
            table,
            2,
            transport="process",
            fault_plan="seed=5,crash=1.0",
            retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
            **BLOCKS,
        ) as router:
            q = np.arange(40)
            assert_bit_identical(
                router.solve(q, 6), router.solve_reference(q, 6)
            )
            # the broken pools were restarted; a second solve (new
            # attempt coordinates, same crash rate) recovers again
            assert_bit_identical(
                router.solve(q, 6), router.solve_reference(q, 6)
            )

    def test_partial_crash_leaves_healthy_shards_untouched(self, table):
        """A crash rate below 1 kills some (epoch, shard) keys and not
        others; whichever mix fires, the merge must stay exact and the
        healthy shards' futures are consumed as-is."""
        with ShardedAllKnn(
            table,
            3,
            transport="process",
            fault_plan="seed=11,crash=0.5",
            retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
            **BLOCKS,
        ) as router:
            q = np.arange(0, 300, 5)
            for _ in range(3):
                assert_bit_identical(
                    router.solve(q, 7), router.solve_reference(q, 7)
                )
