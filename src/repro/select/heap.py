"""Array-embedded max heaps: binary and padded d-ary (paper §2.2, Figure 1).

GSKNN keeps each query's current ``k`` nearest neighbors in a *max* heap so
the largest retained distance (the root) is readable in O(1). A candidate
survives only if it beats the root, in which case it replaces the root and
sifts down — O(log k) worst case, O(1) (one comparison) when the candidate
is filtered out. That filter is what gives heap selection its O(n) best
case and is the hook GSKNN's micro-kernel uses to discard distance tiles
without ever storing them.

Two layouts are provided:

* :class:`BinaryMaxHeap` — each node has 2 children; cheapest max-child
  search (one comparison) but depth ``log2 k``. Used by Var#1 (small k).
* :class:`DHeap` — each node has ``d`` children (default 4) and the array
  is front-padded so every sibling group starts at an index that is a
  multiple of ``d``; with 64-byte lines and 8-byte keys a 4-heap sibling
  group occupies one cache line half, cutting the random-access count per
  level. Depth is ``log_d k``. Used by Var#6 (large k).

Both heaps store ``(value, id)`` pairs in parallel arrays and count their
work in a :class:`~repro.select.counters.SelectionStats`.
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError
from ..obs import trace as _trace
from ..obs.metrics import get_registry as _get_registry
from .counters import SelectionStats

__all__ = ["BinaryMaxHeap", "DHeap", "heap_select_smallest"]


class BinaryMaxHeap:
    """Fixed-capacity binary max heap of ``(value, id)`` pairs.

    The heap is created *full*: every slot starts at ``+inf`` with id
    ``-1``, matching the paper's neighbor-list initialization (any real
    candidate beats an empty slot). ``values``/``ids`` expose the raw
    array embedding; index 0 is the root.
    """

    ARITY = 2

    def __init__(self, k: int, *, stats: SelectionStats | None = None) -> None:
        if k < 1:
            raise ValidationError(f"heap capacity k must be >= 1, got {k}")
        self.k = int(k)
        self.values = np.full(self.k, np.inf, dtype=np.float64)
        self.ids = np.full(self.k, -1, dtype=np.intp)
        self.stats = stats if stats is not None else SelectionStats()

    # -- core heap primitives -------------------------------------------

    @property
    def root(self) -> float:
        """Largest retained value — the candidate-filter threshold."""
        return float(self.values[0])

    def _max_child(self, i: int) -> int:
        """Index of the larger child of node ``i`` (assumes one exists)."""
        left = 2 * i + 1
        right = left + 1
        if right < self.k:
            self.stats.comparisons += 1
            self.stats.random_accesses += 1
            if self.values[right] > self.values[left]:
                return right
        return left

    def _sift_down(self, i: int) -> None:
        value = self.values[i]
        ident = self.ids[i]
        while True:
            left = 2 * i + 1
            if left >= self.k:
                break
            child = self._max_child(i)
            self.stats.comparisons += 1
            self.stats.random_accesses += 1
            if self.values[child] <= value:
                break
            self.values[i] = self.values[child]
            self.ids[i] = self.ids[child]
            self.stats.moves += 1
            i = child
        self.values[i] = value
        self.ids[i] = ident
        self.stats.moves += 1

    # -- kNN-facing operations -------------------------------------------

    def update(self, value: float, ident: int) -> bool:
        """Offer a candidate; keep it iff it beats the current root.

        Returns True when the candidate was inserted. The single
        comparison on the reject path is the O(1) filter the paper's
        best-case O(n) analysis relies on.
        """
        self.stats.comparisons += 1
        if value >= self.values[0]:
            return False
        self.values[0] = value
        self.ids[0] = ident
        self._sift_down(0)
        return True

    def update_many(self, values: np.ndarray, ids: np.ndarray) -> int:
        """Offer a candidate batch in order; returns the number accepted."""
        accepted = 0
        self.stats.sequential_accesses += len(values)
        for value, ident in zip(values, ids):
            if self.update(float(value), int(ident)):
                accepted += 1
        return accepted

    def heapify(self, values: np.ndarray, ids: np.ndarray) -> None:
        """Bulk-load exactly ``k`` pairs with Floyd's O(k) heapify."""
        values = np.asarray(values, dtype=np.float64)
        ids = np.asarray(ids, dtype=np.intp)
        if values.shape != (self.k,) or ids.shape != (self.k,):
            raise ValidationError(
                f"heapify needs exactly k={self.k} values and ids, got "
                f"{values.shape} and {ids.shape}"
            )
        self.values[:] = values
        self.ids[:] = ids
        for i in range(self.k // 2 - 1, -1, -1):
            self._sift_down(i)

    def sorted_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """Return (values, ids) ascending by value; the heap is unchanged."""
        order = np.argsort(self.values, kind="stable")
        return self.values[order].copy(), self.ids[order].copy()

    def is_valid(self) -> bool:
        """Check the max-heap invariant (used by property tests)."""
        for i in range(self.k):
            for child in (2 * i + 1, 2 * i + 2):
                if child < self.k and self.values[child] > self.values[i]:
                    return False
        return True

    def __len__(self) -> int:
        return self.k


class DHeap:
    """Padded d-ary max heap (default 4-heap) of ``(value, id)`` pairs.

    Logical node ``j`` has children ``d*j + 1 .. d*j + d``; physically the
    array is shifted by ``d - 1`` slots so each sibling group begins at a
    physical index divisible by ``d`` (the paper's "padding the root with
    three empty spaces" for the 4-heap, Figure 1 right). The padding slots
    hold ``-inf`` so they can never win a max-child comparison.
    """

    def __init__(
        self,
        k: int,
        *,
        arity: int = 4,
        stats: SelectionStats | None = None,
    ) -> None:
        if k < 1:
            raise ValidationError(f"heap capacity k must be >= 1, got {k}")
        if arity < 2:
            raise ValidationError(f"heap arity must be >= 2, got {arity}")
        self.k = int(k)
        self.arity = int(arity)
        self._pad = self.arity - 1
        size = self.k + self._pad
        self.values = np.full(size, -np.inf, dtype=np.float64)
        self.ids = np.full(size, -1, dtype=np.intp)
        # live slots start +inf (empty neighbor list)
        self.values[self._pad :] = np.inf
        self.stats = stats if stats is not None else SelectionStats()

    # physical index of logical node j
    def _phys(self, j: int) -> int:
        return j + self._pad

    @property
    def root(self) -> float:
        return float(self.values[self._pad])

    def _max_child(self, j: int) -> int:
        """Logical index of the largest child of logical node ``j``."""
        first = self.arity * j + 1
        last = min(first + self.arity, self.k)
        # One sibling group = one padded, aligned physical span: a single
        # cache-line-sized random access followed by in-line comparisons.
        self.stats.random_accesses += 1
        span = self.values[self._phys(first) : self._phys(last)]
        self.stats.comparisons += max(len(span) - 1, 0)
        return first + int(np.argmax(span))

    def _sift_down(self, j: int) -> None:
        value = self.values[self._phys(j)]
        ident = self.ids[self._phys(j)]
        while True:
            first = self.arity * j + 1
            if first >= self.k:
                break
            child = self._max_child(j)
            self.stats.comparisons += 1
            if self.values[self._phys(child)] <= value:
                break
            self.values[self._phys(j)] = self.values[self._phys(child)]
            self.ids[self._phys(j)] = self.ids[self._phys(child)]
            self.stats.moves += 1
            j = child
        self.values[self._phys(j)] = value
        self.ids[self._phys(j)] = ident
        self.stats.moves += 1

    def update(self, value: float, ident: int) -> bool:
        """Offer a candidate; keep it iff it beats the current root."""
        self.stats.comparisons += 1
        if value >= self.values[self._pad]:
            return False
        self.values[self._pad] = value
        self.ids[self._pad] = ident
        self._sift_down(0)
        return True

    def update_many(self, values: np.ndarray, ids: np.ndarray) -> int:
        accepted = 0
        self.stats.sequential_accesses += len(values)
        for value, ident in zip(values, ids):
            if self.update(float(value), int(ident)):
                accepted += 1
        return accepted

    def sorted_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        live_values = self.values[self._pad :]
        live_ids = self.ids[self._pad :]
        order = np.argsort(live_values, kind="stable")
        return live_values[order].copy(), live_ids[order].copy()

    def is_valid(self) -> bool:
        for j in range(self.k):
            first = self.arity * j + 1
            for child in range(first, min(first + self.arity, self.k)):
                if self.values[self._phys(child)] > self.values[self._phys(j)]:
                    return False
        return True

    def depth(self) -> int:
        """Tree height — ``ceil(log_arity k)``; smaller than binary for d>2."""
        depth, span = 0, 1
        total = 1
        while total < self.k:
            span *= self.arity
            total += span
            depth += 1
        return depth

    def __len__(self) -> int:
        return self.k


def heap_select_smallest(
    values: np.ndarray,
    k: int,
    *,
    arity: int = 2,
    stats: SelectionStats | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Select the ``k`` smallest values (and their positions) via a max heap.

    Reference scalar implementation of the paper's chosen selection
    algorithm: stream the candidates through a capacity-``k`` max heap.
    Returns ``(values, positions)`` sorted ascending.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    if k < 1 or k > values.size:
        raise ValidationError(
            f"k must be in [1, {values.size}], got {k}"
        )
    heap: BinaryMaxHeap | DHeap
    if arity == 2:
        heap = BinaryMaxHeap(k, stats=stats)
    else:
        heap = DHeap(k, arity=arity, stats=stats)
    with _trace.span("heap", stage="stream_select", n=values.size, k=k, arity=arity):
        heap.update_many(values, np.arange(values.size, dtype=np.intp))
        pairs = heap.sorted_pairs()
    # Per-candidate counting happens inside the heap; publication to the
    # metrics registry is once per pass, so the hot loop stays scalar.
    registry = _get_registry()
    if registry.enabled:
        from ..obs.adapters import absorb_selection_stats

        absorb_selection_stats(heap.stats, registry)
        registry.inc("select.passes")
    return pairs
