"""FaultPlan: grammar, determinism, and the three fault kinds."""

from __future__ import annotations

import time

import pytest

from repro.errors import InjectedFault, ValidationError
from repro.resilience import FaultPlan
from repro.resilience.faults import _unit


class TestGrammar:
    def test_full_spec(self):
        plan = FaultPlan.parse(
            "seed=7,crash=0.3,slow=0.2,slow_ms=20,alloc=0.1,crash_at=0|128"
        )
        assert plan.seed == 7
        assert plan.crash == 0.3
        assert plan.slow == 0.2
        assert plan.alloc == 0.1
        assert plan.slow_seconds == pytest.approx(0.02)
        assert plan.crash_at == (0, 128)

    def test_whitespace_and_empty_parts_tolerated(self):
        plan = FaultPlan.parse(" seed=3 , crash=0.5 ,, ")
        assert plan.seed == 3 and plan.crash == 0.5

    def test_slow_s_alias(self):
        assert FaultPlan.parse("slow_s=0.5").slow_seconds == 0.5

    @pytest.mark.parametrize(
        "bad",
        ["crash", "bogus=1", "crash=lots", "crash=1.5", "seed=x", "slow=-0.1"],
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValidationError):
            FaultPlan.parse(bad)

    def test_spec_round_trips(self):
        plan = FaultPlan.parse(
            "seed=9,crash=0.25,slow=0.5,slow_ms=35,alloc=0.1,crash_at=64"
        )
        assert FaultPlan.parse(plan.spec()) == plan

    def test_coerce(self):
        assert FaultPlan.coerce(None) is None
        plan = FaultPlan(crash=0.1)
        assert FaultPlan.coerce(plan) is plan
        assert FaultPlan.coerce("crash=0.1").crash == 0.1

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv("REPRO_FAULT_PLAN", "seed=4,alloc=0.2")
        plan = FaultPlan.from_env()
        assert plan.seed == 4 and plan.alloc == 0.2

    def test_active(self):
        assert not FaultPlan().active
        assert FaultPlan(crash=0.1).active
        assert FaultPlan(crash_at=(5,)).active


class TestDeterminism:
    def test_unit_hash_is_stable(self):
        a = _unit(7, "crash", "chunk", 128, 0)
        b = _unit(7, "crash", "chunk", 128, 0)
        assert a == b
        assert 0.0 <= a < 1.0

    def test_decisions_repeat_exactly(self):
        plan = FaultPlan(seed=11, crash=0.3, slow=0.3, alloc=0.2)
        sites = [("chunk", s, a) for s in range(0, 512, 64) for a in range(3)]
        first = [plan.decide(*site) for site in sites]
        second = [plan.decide(*site) for site in sites]
        assert first == second
        assert any(first)  # at these rates something must fire

    def test_attempt_rolls_fresh_dice(self):
        plan = FaultPlan(seed=0, crash=0.5)
        decisions = {
            plan.decide("chunk", 64, attempt) for attempt in range(12)
        }
        assert decisions == {None, "crash"}  # both outcomes occur

    def test_crash_at_fires_every_attempt(self):
        plan = FaultPlan(crash_at=(64,))
        for attempt in range(5):
            assert plan.decide("chunk", 64, attempt) == "crash"
        assert plan.decide("chunk", 0, 0) is None
        # crash_at is chunk-scope only
        assert plan.decide("task", 64, 0) is None

    def test_rate_zero_never_fires(self):
        plan = FaultPlan(seed=3)
        assert all(
            plan.decide("chunk", key, a) is None
            for key in range(100)
            for a in range(2)
        )


class TestApply:
    def test_crash_raises_injected_fault(self):
        plan = FaultPlan(crash_at=(0,))
        with pytest.raises(InjectedFault):
            plan.apply("chunk", 0, 0)

    def test_alloc_raises_memory_error(self):
        plan = FaultPlan(seed=0, alloc=1.0)
        with pytest.raises(MemoryError):
            plan.apply("chunk", 1, 0)

    def test_slow_sleeps(self):
        plan = FaultPlan(seed=0, slow=1.0, slow_seconds=0.03)
        t0 = time.perf_counter()
        plan.apply("chunk", 1, 0)
        assert time.perf_counter() - t0 >= 0.025

    def test_counters(self, metrics):
        plan = FaultPlan(crash_at=(0,))
        with pytest.raises(InjectedFault):
            plan.apply("chunk", 0, 0)
        counters = metrics.snapshot()["counters"]
        assert counters["resilience.faults_injected"] == 1
        assert counters["resilience.faults_injected.crash"] == 1
