"""Out-of-core streaming: a table several times the workspace budget.

The memory tier's contract (docs/MEMORY.md) is measured end to end: a
coordinate table is written to disk in bounded chunks, memory-mapped
back, and solved under a :class:`~repro.MemoryBudget` a quarter of the
table's size. Before timing anything the bench asserts the two halves
of the contract:

* **bit-identity** — the budgeted, panel-streaming solve over the
  memmap equals the in-RAM fused solve at the same blocking, indices
  AND distances;
* **enforcement** — the :func:`repro.perf.memory_checker` harness
  confirms the measured peak workspace stayed under the budget.

What is then measured:

* **cold** — first budgeted solve (panels streamed, arena buffers
  grown, table pages faulted in);
* **warm** — the same budgeted plan re-executed (arena at steady state,
  pages hot; panels are *still* streamed per tile — that is the tier's
  steady-state cost);
* **in-RAM** — the unbudgeted fused solve over the materialized table
  at the same blocking, for scale.

The gated metrics are ``peak_workspace_bytes`` (byte-exact arena
accounting; must never creep toward the table size) and
``outofcore_stream_efficiency`` (in-RAM seconds / warm streamed
seconds: how much of the fused kernel's throughput survives streaming
panels from a memmap). Raw wall-clock values are recorded for context.

Results land in ``results/BENCH_outofcore.json``; the CI
``mem-budget-smoke`` job regenerates them and gates against the
committed baseline via ``compare_runs.py``.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.gsknn import gsknn
from repro.core.plan import GsknnPlan
from repro.data import uniform_hypercube
from repro.data.loaders import load_dataset, save_dataset
from repro.perf import memory_checker

from .conftest import SCALE, best_time, run_report

N_REFS = 262144 * SCALE  # 32 MiB of float64 at d=16 — 4x the budget
D = 16
K = 10
M_QUERIES = 1024
BUDGET = "8MiB"
BUDGET_BYTES = 8 << 20
SEED = 31


def _bit_identical(a, b) -> bool:
    return bool(
        np.array_equal(a.indices, b.indices)
        and np.array_equal(a.distances, b.distances)
    )


def _run(report_factory) -> None:
    rep = report_factory(
        "outofcore",
        f"out-of-core streaming  n={N_REFS} d={D} k={K} m={M_QUERIES} "
        f"budget={BUDGET} (table {N_REFS * D * 8 >> 20} MiB)",
    )
    rep.problem(
        n=N_REFS,
        d=D,
        k=K,
        m=M_QUERIES,
        budget_bytes=BUDGET_BYTES,
        table_bytes=N_REFS * D * 8,
    )
    ds = uniform_hypercube(N_REFS, D, seed=SEED)
    q_idx = np.arange(M_QUERIES, dtype=np.intp)
    r_idx = np.arange(N_REFS, dtype=np.intp)

    with tempfile.TemporaryDirectory(prefix="repro-ooc-") as tmp:
        path = Path(tmp) / "table.npy"
        save_dataset(ds, path)  # chunked: never materializes a copy
        mm = load_dataset(path, mmap_mode="r").points

        # the contract first: budgeted memmap solve == in-RAM fused
        # solve at the same (budget-fitted) blocking, bitwise — and the
        # measured peak workspace respects the budget
        with memory_checker(BUDGET) as check:
            plan = GsknnPlan(mm, r_idx, memory_budget=check.budget)
            t0 = time.perf_counter()
            got = plan.execute(q_idx, K)
            cold = time.perf_counter() - t0
        check.assert_within()
        want = gsknn(
            ds.points, q_idx, r_idx, K,
            block_m=plan.block_m, block_n=plan.block_n,
        )
        assert _bit_identical(got, want), "streamed result diverged"
        assert plan.streams_panels, "budget too large: panels were cached"

        warm = best_time(lambda: plan.execute(q_idx, K), repeats=3)
        peak = check.workspace_peak_bytes
        traced = check.traced_peak_bytes
        block_m, block_n = plan.block_m, plan.block_n
        plan.release()

    in_ram = best_time(
        lambda: gsknn(
            ds.points, q_idx, r_idx, K, block_m=block_m, block_n=block_n
        ),
        repeats=3,
    )

    efficiency = in_ram / warm
    rep.metric("peak_workspace_bytes", peak)
    rep.metric("outofcore_stream_efficiency", efficiency)
    rep.metric("outofcore_cold_sec", cold)
    rep.metric("outofcore_warm_sec", warm)
    rep.metric("in_ram_sec", in_ram)
    rep.data_row(
        bit_identical=True,
        within_budget=True,
        traced_peak_bytes=traced,
        budget_bytes=BUDGET_BYTES,
        block_m=block_m,
        block_n=block_n,
    )
    rep.row(f"{'bit-identical':26s} True")
    rep.row(
        f"{'peak workspace':26s} {peak / 2**20:8.2f} MiB "
        f"of {BUDGET_BYTES / 2**20:.0f} MiB budget   (gated)"
    )
    rep.row(f"{'tracemalloc peak':26s} {traced / 2**20:8.2f} MiB")
    rep.row(f"{'fitted blocks':26s} {block_m} x {block_n}")
    rep.row(f"{'cold (stream + grow)':26s} {cold * 1e3:8.2f} ms")
    rep.row(f"{'warm (steady stream)':26s} {warm * 1e3:8.2f} ms")
    rep.row(f"{'in-RAM same blocks':26s} {in_ram * 1e3:8.2f} ms")
    rep.row(f"{'stream efficiency':26s} {efficiency:8.2f}x   (gated)")


def test_outofcore_report(benchmark, report):
    run_report(benchmark, lambda: _run(report))
