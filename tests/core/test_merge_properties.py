"""Property-based tests for neighbor-list merging."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.neighbors import (
    KnnResult,
    merge_neighbor_lists,
    merge_neighbor_lists_fast,
)


@st.composite
def consistent_lists(draw):
    """Two (m, k) lists over a shared (id -> distance) table, with some
    overlap and some unfilled slots — the solvers' exact situation."""
    m = draw(st.integers(min_value=1, max_value=6))
    k = draw(st.integers(min_value=1, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    pool = rng.random(64)

    def make():
        dist = np.full((m, k), np.inf)
        idx = np.full((m, k), -1, dtype=np.intp)
        for i in range(m):
            fill = int(rng.integers(0, k + 1))
            ids = rng.choice(64, size=fill, replace=False)
            order = np.argsort(pool[ids])
            dist[i, :fill] = pool[ids][order]
            idx[i, :fill] = ids[order]
        return KnnResult(dist, idx)

    return make(), make(), pool


@given(consistent_lists())
@settings(max_examples=80, deadline=None)
def test_fast_merge_matches_slow_merge(data):
    a, b, _pool = data
    slow = merge_neighbor_lists(a, b)
    fast = merge_neighbor_lists_fast(a, b)
    np.testing.assert_allclose(slow.distances, fast.distances)
    # id sets per row agree wherever distances are unique
    for i in range(slow.m):
        assert set(slow.indices[i].tolist()) == set(fast.indices[i].tolist())


@given(consistent_lists())
@settings(max_examples=60, deadline=None)
def test_merge_is_commutative(data):
    a, b, _ = data
    ab = merge_neighbor_lists_fast(a, b)
    ba = merge_neighbor_lists_fast(b, a)
    np.testing.assert_allclose(ab.distances, ba.distances)


@given(consistent_lists())
@settings(max_examples=60, deadline=None)
def test_merge_is_idempotent(data):
    a, b, _ = data
    once = merge_neighbor_lists_fast(a, b)
    twice = merge_neighbor_lists_fast(once, b)
    np.testing.assert_allclose(once.distances, twice.distances)


@given(consistent_lists())
@settings(max_examples=60, deadline=None)
def test_merge_never_worsens_any_slot(data):
    a, b, _ = data
    merged = merge_neighbor_lists_fast(a, b)
    # row-wise: merged slot j is <= both inputs' slot j (sorted lists)
    a_sorted = np.sort(a.distances, axis=1)
    merged_sorted = np.sort(merged.distances, axis=1)
    assert (merged_sorted <= a_sorted + 1e-12).all()


@given(consistent_lists())
@settings(max_examples=60, deadline=None)
def test_merged_ids_unique_per_row(data):
    a, b, _ = data
    merged = merge_neighbor_lists_fast(a, b)
    for i in range(merged.m):
        real = [j for j in merged.indices[i] if j >= 0]
        assert len(real) == len(set(real))
