"""General lp-norm matching — beyond the GEMM expansion.

The GEMM-based kernel only supports distances with an inner-product
expansion (Euclidean, cosine). GSKNN's micro-kernel owns its inner
loop, so any lp norm works (paper §2.4). This example runs the same
matching task under l2, l1 (robust to outlier coordinates) and l-inf
(worst-coordinate matching) and shows how the answers differ — then
verifies each against scipy's reference distances.

Run:  python examples/lp_norm_matching.py
"""

from __future__ import annotations

import numpy as np
from scipy.spatial.distance import cdist

from repro import gsknn
from repro.data import gaussian_mixture


def main() -> None:
    k = 5
    dataset = gaussian_mixture(3000, 16, n_clusters=8, seed=2)
    X = dataset.points.copy()
    # inject heavy-tailed corruption into a few coordinates of some
    # points — the situation where l1 matching beats l2
    rng = np.random.default_rng(0)
    corrupt = rng.choice(len(X), size=len(X) // 10, replace=False)
    X[corrupt, rng.integers(0, 16, size=corrupt.size)] += rng.normal(
        scale=5.0, size=corrupt.size
    )

    queries = np.arange(50)
    refs = np.arange(len(X))

    results = {}
    for norm in ("l2", "l1", "linf", 3.0):
        results[norm] = gsknn(X, queries, refs, k, norm=norm)

    # verify against scipy for the first few queries
    metrics = {"l2": "sqeuclidean", "l1": "cityblock", "linf": "chebyshev"}
    for norm, metric in metrics.items():
        want = np.sort(cdist(X[queries[:5]], X), axis=1)[:, :k]
        got = results[norm].distances[:5]
        ref = np.sort(cdist(X[queries[:5]], X, metric), axis=1)[:, :k]
        assert np.allclose(got, ref, atol=1e-9), norm
    print("scipy cross-check passed for l2 / l1 / linf")

    overlap_12 = overlap_2inf = 0
    for i in range(len(queries)):
        s2 = set(results["l2"].indices[i].tolist())
        s1 = set(results["l1"].indices[i].tolist())
        sinf = set(results["linf"].indices[i].tolist())
        overlap_12 += len(s2 & s1)
        overlap_2inf += len(s2 & sinf)
    total = len(queries) * k
    print(f"neighbor overlap l2 vs l1:   {overlap_12 / total:.0%}")
    print(f"neighbor overlap l2 vs linf: {overlap_2inf / total:.0%}")
    print(
        "(the corrupted coordinates push l2 and l-inf toward different\n"
        " neighbors, while l1 discounts single-coordinate outliers)"
    )


if __name__ == "__main__":
    main()
