"""Host calibration: measure the model constants on the running machine.

The paper's performance model is parameterized by three hardware
numbers — peak flop rate ``tau_f``, streaming cost per double ``tau_b``,
and random-access cost ``tau_l``. The paper measured them on Maverick
(Figure 4's caption); this module measures them on whatever host the
library is running on, so the model's *absolute* predictions can be
re-based to the current substrate:

* ``tau_f`` — best-of-N time of a square ``numpy.dot`` (the vendor GEMM
  is this platform's peak-flop workload, exactly as MKL was the paper's);
* ``tau_b`` — best-of-N time of a large contiguous copy, charged per
  double moved (read + write);
* ``tau_l`` — best-of-N time of a large random gather, charged per
  element.

Note the limit the library's variant selection respects: constants fix
the model's scale, not its structure. The Table 4 selection term models
a *scalar heap* per candidate; the numpy fast path selects with batched
introselect whose k-dependence is milder, so its Var#1/Var#6 switch uses
an empirical threshold rather than this model (see
``repro.core.gsknn.NUMPY_VARIANT_SWITCH_K``).
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np

from ..errors import ValidationError
from .params import IVY_BRIDGE, MachineParams

__all__ = ["calibrate_host", "measure_tau_f", "measure_tau_b", "measure_tau_l"]


def _best_seconds(fn, repeats: int) -> float:
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_tau_f(size: int = 768, repeats: int = 3) -> float:
    """Peak flops/second via a square double-precision GEMM."""
    if size < 64:
        raise ValidationError(f"calibration GEMM must be >= 64, got {size}")
    rng = np.random.default_rng(0)
    a = rng.random((size, size))
    b = rng.random((size, size))
    a @ b  # warm the BLAS threads / pages
    best = _best_seconds(lambda: a @ b, repeats)
    return 2.0 * size**3 / best


def measure_tau_b(n_doubles: int = 16_000_000, repeats: int = 3) -> float:
    """Seconds per double of contiguous movement (copy = read + write)."""
    if n_doubles < 1_000_000:
        raise ValidationError("calibration stream too small to be meaningful")
    src = np.random.default_rng(1).random(n_doubles)
    dst = np.empty_like(src)
    np.copyto(dst, src)
    best = _best_seconds(lambda: np.copyto(dst, src), repeats)
    return best / (2.0 * n_doubles)


def measure_tau_l(
    table_doubles: int = 16_000_000,
    n_gathers: int = 2_000_000,
    repeats: int = 3,
) -> float:
    """Seconds per random 8-byte access via a permutation gather."""
    if n_gathers < 100_000:
        raise ValidationError("calibration gather too small to be meaningful")
    rng = np.random.default_rng(2)
    table = rng.random(table_doubles)
    idx = rng.permutation(table_doubles)[:n_gathers]
    table[idx]
    best = _best_seconds(lambda: table[idx], repeats)
    return best / n_gathers


def calibrate_host(
    template: MachineParams = IVY_BRIDGE,
    *,
    quick: bool = False,
) -> MachineParams:
    """Return a machine description with this host's measured constants.

    Cache geometry (and epsilon) are taken from ``template`` — they are
    not probed. ``quick=True`` shrinks the probes for test suites.
    """
    if quick:
        tau_f = measure_tau_f(size=256, repeats=2)
        tau_b = measure_tau_b(n_doubles=2_000_000, repeats=2)
        tau_l = measure_tau_l(
            table_doubles=2_000_000, n_gathers=200_000, repeats=2
        )
    else:
        tau_f = measure_tau_f()
        tau_b = measure_tau_b()
        tau_l = measure_tau_l()
    return replace(
        template,
        name=f"host-calibrated({template.name})",
        # express tau_f through the template's flops_per_cycle so
        # peak_gflops lands on the measured number
        clock_hz=tau_f / (template.flops_per_cycle * template.cores),
        tau_b=tau_b,
        tau_l=tau_l,
    )
