"""Unit tests for the panel-aligned consistent shard map."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.shard import ShardMap


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValidationError):
            ShardMap(100, 0)
        with pytest.raises(ValidationError):
            ShardMap(100, 2, panel_width=0)
        with pytest.raises(ValidationError):
            ShardMap(0, 2)

    def test_initial_state(self):
        m = ShardMap(100, 3, panel_width=16)
        assert m.n_total == 100
        assert m.n_alive == 100
        assert m.epoch == 0
        np.testing.assert_array_equal(m.alive_ids(), np.arange(100))


class TestOwnership:
    def test_partitions_are_disjoint_and_cover(self):
        m = ShardMap(100, 3, panel_width=16)
        parts = [m.local_ids(s) for s in range(3)]
        allids = np.concatenate(parts)
        assert allids.size == 100
        np.testing.assert_array_equal(np.sort(allids), np.arange(100))

    def test_panels_never_split(self):
        """Every run of panel_width consecutive alive ids lands on one
        shard — the grid the bit-identicality contract rests on."""
        m = ShardMap(100, 3, panel_width=16)
        owner = m.owner_of(np.arange(100))
        for start in range(0, 100, 16):
            panel = owner[start : start + 16]
            assert np.unique(panel).size == 1

    def test_round_robin_panel_assignment(self):
        m = ShardMap(100, 3, panel_width=16)
        owner = m.owner_of(np.arange(100))
        for j, start in enumerate(range(0, 100, 16)):
            assert owner[start] == j % 3

    def test_owner_of_matches_partitions(self):
        m = ShardMap(75, 4, panel_width=8)
        for s in range(4):
            np.testing.assert_array_equal(m.owner_of(m.local_ids(s)), s)

    def test_local_ids_ascending(self):
        m = ShardMap(200, 3, panel_width=16)
        for s in range(3):
            ids = m.local_ids(s)
            assert (np.diff(ids) > 0).all()

    def test_more_shards_than_panels(self):
        """Shards past the panel count own nothing; solves must skip them."""
        m = ShardMap(10, 5, panel_width=8)  # only 2 panels
        sizes = [m.local_ids(s).size for s in range(5)]
        assert sizes[:2] == [8, 2]
        assert sizes[2:] == [0, 0, 0]

    def test_shard_index_validated(self):
        m = ShardMap(10, 2, panel_width=8)
        with pytest.raises(ValidationError):
            m.local_ids(2)
        with pytest.raises(ValidationError):
            m.owner_of([10])


class TestMutation:
    def test_append_returns_fresh_ids_and_bumps_epoch(self):
        m = ShardMap(20, 2, panel_width=8)
        ids = m.append(5)
        np.testing.assert_array_equal(ids, np.arange(20, 25))
        assert m.epoch == 1
        assert m.n_alive == 25

    def test_tombstone_removes_from_partitions(self):
        m = ShardMap(40, 2, panel_width=8)
        m.tombstone([3, 17, 31])
        assert m.epoch == 1
        assert m.n_alive == 37
        np.testing.assert_array_equal(m.owner_of([3, 17, 31]), -1)
        allids = np.concatenate([m.local_ids(s) for s in range(2)])
        assert not np.isin([3, 17, 31], allids).any()
        assert allids.size == 37

    def test_grid_rederived_after_tombstone(self):
        """Deleting ids shifts later ids into earlier panels — the map
        is a pure function of the current alive sequence."""
        m = ShardMap(32, 2, panel_width=8)
        before = int(m.owner_of([8])[0])
        m.tombstone(np.arange(8))  # first panel gone; id 8 now rank 0
        after = int(m.owner_of([8])[0])
        assert before == 1 and after == 0

    def test_tombstone_validation(self):
        m = ShardMap(10, 2, panel_width=4)
        with pytest.raises(ValidationError):
            m.tombstone([10])
        m.tombstone([4])
        with pytest.raises(ValidationError):
            m.tombstone([4])  # already dead
        with pytest.raises(ValidationError):
            m.tombstone(np.setdiff1d(np.arange(10), [4]))  # last alive

    def test_append_validation(self):
        m = ShardMap(10, 2)
        with pytest.raises(ValidationError):
            m.append(0)


class TestDeterminism:
    def test_same_history_same_ownership(self):
        a = ShardMap(90, 3, panel_width=8)
        b = ShardMap(90, 3, panel_width=8)
        for m in (a, b):
            m.append(14)
            m.tombstone([0, 9, 55, 91])
        for s in range(3):
            np.testing.assert_array_equal(a.local_ids(s), b.local_ids(s))
        assert a.epoch == b.epoch == 2

    def test_spec_snapshot(self):
        m = ShardMap(10, 2, panel_width=4)
        m.append(1)
        assert m.spec() == {"n_shards": 2, "panel_width": 4, "epoch": 1}
