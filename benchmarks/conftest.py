"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark module regenerates one table or figure of the paper.
Each prints its rows/series to stdout (run with ``pytest -s`` to watch)
*and* appends them to ``benchmarks/results/<experiment>.txt`` so the
output survives pytest's capture and can be diffed across runs.

Alongside the text table, every report now also emits a
**schema-versioned telemetry record** ``results/BENCH_<experiment>.json``
(:mod:`repro.obs.telemetry`): problem sizes via :meth:`Report.problem`,
numeric series via :meth:`Report.metric`, structured per-row payloads
via :meth:`Report.data_row`, plus the host/git fingerprint — the
machine-readable artifact ``benchmarks/compare_runs.py`` diffs between
runs and ``benchmarks/check_bench_schema.py`` validates in CI.

Problem sizes are scaled down from the paper's (this substrate is a
single-core numpy stack, not a 20-core Ivy Bridge node with AVX
assembly); the scale factor is recorded in every report header. Set
``REPRO_BENCH_SCALE=2`` (or higher) to move closer to paper sizes.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.obs import telemetry

RESULTS_DIR = Path(__file__).parent / "results"

#: 1 = quick CI-friendly sizes; larger values approach the paper's sizes.
SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "1"))


@pytest.fixture(scope="session")
def bench_scale() -> int:
    return SCALE


class Report:
    """Accumulates table rows + structured metrics, then persists both."""

    def __init__(self, experiment: str, header: str) -> None:
        self.experiment = experiment
        self.lines: list[str] = [header]
        self.problem_dict: dict = {"scale": SCALE}
        self.metrics: dict[str, float] = {}
        self.rows: list[dict] = []

    def row(self, text: str) -> None:
        """One human-readable table row (text report only)."""
        self.lines.append(text)

    def problem(self, **sizes) -> None:
        """Record problem-size metadata (m, n, d grid, k grid, ...)."""
        self.problem_dict.update(sizes)

    def metric(self, key: str, value: float) -> None:
        """One scalar the regression differ compares across runs."""
        self.metrics[key] = float(value)

    def data_row(self, **fields) -> None:
        """One structured per-row payload (kept verbatim in the record)."""
        self.rows.append(fields)

    def finish(self) -> str:
        RESULTS_DIR.mkdir(exist_ok=True)
        body = "\n".join(self.lines) + "\n"
        path = RESULTS_DIR / f"{self.experiment}.txt"
        path.write_text(body)
        record = telemetry.build_record(
            self.experiment,
            problem=self.problem_dict,
            metrics=self.metrics,
            rows=self.rows or None,
            extra={"text_report": f"{self.experiment}.txt"},
        )
        telemetry.write_record(record, RESULTS_DIR)
        print(f"\n=== {self.experiment} ===\n{body}", flush=True)
        return body


@pytest.fixture
def report(request):
    """Per-test Report factory; finished automatically at teardown."""
    created: list[Report] = []

    def make(experiment: str, header: str) -> Report:
        rep = Report(experiment, header)
        created.append(rep)
        return rep

    yield make
    for rep in created:
        rep.finish()


def run_report(benchmark, fn) -> None:
    """Run a table-generator exactly once under pytest-benchmark.

    The report tests must also execute under ``--benchmark-only`` (the
    canonical invocation), so each is registered as a single-round
    benchmark whose measured quantity is the whole experiment.
    """
    benchmark.pedantic(fn, rounds=1, iterations=1)


def best_time(fn, repeats: int = 3) -> float:
    """Best-of-N wall clock of ``fn()`` in seconds (paper: average of 3
    consecutive kernels; min is the lower-noise choice on a busy host)."""
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def uniform_problem(m: int, n: int, d: int, seed: int = 0):
    """The paper's kernel benchmark setup: uniform [0,1]^d points with
    query/reference index sets drawn from one table."""
    rng = np.random.default_rng(seed)
    N = max(m, n)
    X = rng.random((N, d))
    q = rng.permutation(N)[:m]
    r = rng.permutation(N)[:n]
    return X, q, r
