"""Pluggable execution backends for the data-parallel GSKNN driver.

The paper's §2.5 parallelizes the 4th loop: query chunks go to cores,
each core updates a disjoint slice of the neighbor lists. *How* those
chunks reach the cores is an execution-policy question this module makes
explicit — one :class:`ExecutionBackend` contract, three interchangeable
implementations:

* :class:`SerialBackend` — runs the chunk list in-process, in order.
  The reference point every other backend must be bit-identical to.
* :class:`ThreadBackend` — a ``ThreadPoolExecutor``. The right choice
  when runtime is dominated by BLAS blocks that release the GIL
  (Var#6, large d).
* :class:`ProcessBackend` — a ``ProcessPoolExecutor`` over
  **zero-copy shared memory**. The coordinate table ``X``, the
  squared-norm side table, and the index arrays are placed in
  ``multiprocessing.shared_memory`` segments; workers attach by name
  (no pickling, no copy — the kernel's working set is mapped, not
  moved) and only the small ``(chunk_m, k)`` neighbor lists travel back
  through the result pipe. This escapes the GIL for the selection-heavy
  Var#1 regime, where per-query heap/merge work serializes threads.

All three backends consume the *same* chunk list (produced by
:func:`repro.parallel.chunking.contiguous_chunks`), so their results
are bit-identical by construction — the cross-backend equivalence suite
asserts exactly that.

A dead worker process surfaces as :class:`repro.errors.BackendError`
(a :class:`ReproError`), never a hang: the pool's ``BrokenProcessPool``
is caught and translated, and the shared segments are unlinked by a
:class:`_SharedOperands` context manager so neither a crash, a pool
startup failure, nor a ``KeyboardInterrupt`` mid-map can leak
``/dev/shm`` space.

Chunk-level recovery (retry a failed chunk, degrade
``processes -> threads -> serial``) lives one layer up, in
:mod:`repro.resilience.executor`, which reuses this module's
shared-memory session and worker entry points.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from ..errors import BackendError, ValidationError
from ..obs.context import (
    RequestContext,
    bind_request,
    current_request,
    request_scope,
)
from ..obs.metrics import MetricsRegistry, get_registry as _get_registry
from ..obs.metrics import set_registry as _set_registry
from ..obs.trace import Tracer, get_tracer as _get_tracer
from ..obs.trace import set_tracer as _set_tracer

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "resolve_backend",
    "BACKENDS",
    "shm_export",
    "shm_attach",
]

#: Legacy environment hook: a worker whose chunk start matches this
#: value exits hard, simulating an OOM-kill / segfault. Kept for
#: backward compatibility but now implemented as a one-entry
#: :class:`repro.resilience.FaultPlan` (``crash_at``) in the worker
#: initializer.
_CRASH_ENV = "REPRO_BACKEND_TEST_CRASH_AT"


#: kernel_kwargs keys that map one-to-one onto GsknnPlan configuration;
#: anything else (e.g. initial=, return_stats=) falls back to plain
#: per-chunk gsknn calls.
_PLAN_KWARGS = frozenset(
    {"norm", "variant", "X2", "block_m", "block_n", "blocking", "memory_budget"}
)


def _plan_for(X, r_idx, kernel_kwargs):
    """One reusable plan per backend run (or worker attach), or ``None``.

    Every chunk of a data-parallel solve shares the same reference set,
    so the gathered panels and workspace buffers are built once and
    reused across chunks instead of once per chunk.
    """
    if set(kernel_kwargs) - _PLAN_KWARGS:
        return None
    from ..core.plan import GsknnPlan

    return GsknnPlan(X, r_idx, **kernel_kwargs)


# -- cross-process observability propagation ---------------------------------
#
# Process workers cannot share the parent's tracer, registry, or
# ContextVars. The parent captures its observability state as a small
# picklable spec, ships it through the pool initializer, and each worker
# installs *fresh* local equivalents (also neutralizing any enabled
# tracer/registry a fork-started worker inherited — recording into the
# parent's buffers from the wrong pid would corrupt the trace). After
# each chunk the worker drains its buffers into a payload that rides
# back with the chunk result; the parent re-parents the spans under its
# own driver span and folds the metric deltas in.


def _obs_spec() -> dict[str, Any] | None:
    """Picklable snapshot of the caller's observability state, or ``None``."""
    tracer = _get_tracer()
    registry = _get_registry()
    ctx = current_request()
    if not tracer.enabled and not registry.enabled and ctx is None:
        return None
    return {
        "trace": tracer.enabled,
        "sample_every": tracer.sample_every,
        "metrics": registry.enabled,
        "request_id": ctx.request_id if ctx is not None else None,
        "tenant": ctx.tenant if ctx is not None else None,
    }


def _install_worker_obs(spec: dict[str, Any] | None) -> None:
    """Install fresh per-worker tracer/registry/request state.

    Runs in the worker via the pool initializer. Always replaces the
    globals — even with no spec — so fork-inherited enabled instruments
    never record on the parent's behalf.
    """
    if spec is None:
        _set_tracer(Tracer())
        _set_registry(MetricsRegistry())
        bind_request(None)
        return
    _set_tracer(
        Tracer(enabled=spec["trace"], sample_every=spec.get("sample_every", 1))
    )
    _set_registry(MetricsRegistry(enabled=spec["metrics"]))
    if spec.get("request_id"):
        bind_request(
            RequestContext(
                request_id=spec["request_id"],
                tenant=spec.get("tenant") or "default",
            )
        )
    else:
        bind_request(None)


def _drain_worker_obs() -> dict[str, Any] | None:
    """The worker-side span/metric deltas accumulated since last drain."""
    payload: dict[str, Any] = {}
    tracer = _get_tracer()
    if tracer.enabled:
        spans = tracer.export_payload()
        if spans:
            payload["spans"] = spans
    registry = _get_registry()
    if registry.enabled:
        payload["metrics"] = registry.drain()
    return payload or None


def _absorb_worker_obs(
    payload: dict[str, Any] | None, parent_id: int | None
) -> None:
    """Caller side: fold a worker's shipped payload into the live
    tracer/registry, re-parenting worker roots under ``parent_id``."""
    if not payload:
        return
    spans = payload.get("spans")
    if spans:
        _get_tracer().adopt_payload(spans, parent_id=parent_id)
    metrics = payload.get("metrics")
    if metrics:
        registry = _get_registry()
        if registry.enabled:
            registry.merge_snapshot(metrics)


def _solve_chunk(
    X: np.ndarray,
    q_idx: np.ndarray,
    r_idx: np.ndarray,
    k: int,
    chunk: tuple[int, int],
    kernel_kwargs: dict[str, Any],
    plan=None,
) -> tuple[int, np.ndarray, np.ndarray]:
    """Solve one query chunk; shared by every backend."""
    start, size = chunk
    if plan is not None:
        # warm_start off: chunks are disjoint query slices, never repeats
        res = plan.execute(q_idx[start : start + size], k, warm_start=False)
    else:
        from ..core.gsknn import gsknn

        res = gsknn(X, q_idx[start : start + size], r_idx, k, **kernel_kwargs)
    return start, res.distances, res.indices


class ExecutionBackend:
    """Contract: run the query-chunk decomposition and map generic tasks.

    ``solve_chunks`` is the GSKNN-specific entry point (assembles the
    full ``(m, k)`` result from per-chunk pieces); ``map`` is the
    generic fan-out the LPT schedule executor uses.
    """

    name = "abstract"

    def solve_chunks(
        self,
        X: np.ndarray,
        q_idx: np.ndarray,
        r_idx: np.ndarray,
        k: int,
        chunks: Sequence[tuple[int, int]],
        kernel_kwargs: dict[str, Any],
    ):
        from ..core.neighbors import KnnResult

        m = q_idx.size
        dist = np.empty((m, k), dtype=np.float64)
        idx = np.empty((m, k), dtype=np.intp)
        runs = self._run(X, q_idx, r_idx, k, chunks, kernel_kwargs)
        try:
            for start, d_chunk, i_chunk in runs:
                dist[start : start + d_chunk.shape[0]] = d_chunk
                idx[start : start + i_chunk.shape[0]] = i_chunk
        finally:
            # close the generator NOW, not at garbage collection: its
            # finally blocks unlink shared-memory segments, and a
            # KeyboardInterrupt (or an assembly error above) must not
            # leave /dev/shm space pinned until the GC gets around to it
            runs.close()
        registry = _get_registry()
        if registry.enabled:
            registry.inc(f"backend.{self.name}.solves")
            registry.inc(f"backend.{self.name}.chunks", len(chunks))
        return KnnResult(dist, idx)

    def _run(
        self,
        X: np.ndarray,
        q_idx: np.ndarray,
        r_idx: np.ndarray,
        k: int,
        chunks: Sequence[tuple[int, int]],
        kernel_kwargs: dict[str, Any],
    ) -> Iterable[tuple[int, np.ndarray, np.ndarray]]:
        raise NotImplementedError

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        """Generic ordered fan-out (used by the schedule executor)."""
        raise NotImplementedError


class SerialBackend(ExecutionBackend):
    """In-process, in-order execution — the bit-exact reference."""

    name = "serial"

    def __init__(self, p: int = 1) -> None:
        # p accepted (and ignored) so backends are constructor-compatible
        self.p = 1

    def _run(self, X, q_idx, r_idx, k, chunks, kernel_kwargs):
        plan = _plan_for(X, r_idx, kernel_kwargs)
        for chunk in chunks:
            yield _solve_chunk(X, q_idx, r_idx, k, chunk, kernel_kwargs, plan)

    def map(self, fn, items):
        return [fn(item) for item in items]


class ThreadBackend(ExecutionBackend):
    """``ThreadPoolExecutor`` fan-out — today's default path."""

    name = "threads"

    def __init__(self, p: int = 2) -> None:
        if p < 1:
            raise ValidationError(f"need p >= 1 workers, got {p}")
        self.p = int(p)

    def _run(self, X, q_idx, r_idx, k, chunks, kernel_kwargs):
        from .chunking import resolve_workers

        workers = resolve_workers(self.p, len(chunks))
        # one shared plan: concurrent executes each borrow a private
        # arena from its pool, so reuse never races
        plan = _plan_for(X, r_idx, kernel_kwargs)
        # pool threads inherit neither the request ContextVar nor the
        # caller's span stack: capture both at submission time
        ctx = current_request()
        tracer = _get_tracer()
        parent_id = tracer.current_span_id()

        def run_one(c):
            with request_scope(ctx):
                with tracer.span_under(
                    parent_id, "worker.chunk", chunk=c[0], size=c[1]
                ):
                    return _solve_chunk(
                        X, q_idx, r_idx, k, c, kernel_kwargs, plan
                    )

        with ThreadPoolExecutor(max_workers=workers) as pool:
            yield from pool.map(run_one, chunks)

    def map(self, fn, items):
        from .chunking import resolve_workers

        if not items:
            return []
        workers = resolve_workers(self.p, len(items))
        ctx = current_request()

        def run_one(item):
            with request_scope(ctx):
                return fn(item)

        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(run_one, items))


# -- process backend ---------------------------------------------------------
#
# Worker-side state: one attach per worker process (via the pool
# initializer), reused across every chunk that worker executes. The
# arrays are ndarray views over the shared segments — zero-copy.

_WORKER_STATE: dict[str, Any] = {}


def _shm_export(arr: np.ndarray):
    """Copy ``arr`` into a fresh shared-memory segment; returns (shm, spec).

    If the copy into the segment fails (or is interrupted) the segment
    is unlinked before re-raising — a half-exported segment is not yet
    in any caller's cleanup list, so it must clean up after itself.
    """
    from multiprocessing import shared_memory

    arr = np.ascontiguousarray(arr)
    shm = shared_memory.SharedMemory(create=True, size=max(arr.nbytes, 1))
    try:
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
        view[:] = arr
    except BaseException:
        try:
            shm.close()
            shm.unlink()
        except OSError:  # pragma: no cover - already gone
            pass
        raise
    return shm, (shm.name, arr.shape, arr.dtype.str)


class _SharedOperands:
    """One solve's shared-memory session: export on enter, unlink on exit.

    Owns the ``X`` / ``q_idx`` / ``r_idx`` / ``X2`` segments plus the
    pickled kernel kwargs, so both :class:`ProcessBackend` and the
    resilient executor (which may rebuild the worker pool several times
    against the *same* segments) manage the lifecycle identically: no
    matter how the block is left — clean finish, worker crash, pool
    startup failure, deadline expiry, ``KeyboardInterrupt`` — the
    segments are unlinked exactly once.
    """

    def __init__(
        self,
        X: np.ndarray,
        q_idx: np.ndarray,
        r_idx: np.ndarray,
        kernel_kwargs: dict[str, Any],
    ) -> None:
        from ..core.norms import resolve_norm, squared_norms

        # Pre-compute the l2 side table once in the parent so workers
        # never redo it per chunk; ship it through shared memory too.
        kwargs = dict(kernel_kwargs)
        X2 = kwargs.pop("X2", None)
        norm = resolve_norm(kwargs.get("norm", "l2"))
        if (norm.is_l2 or norm.is_cosine) and X2 is None:
            X2 = squared_norms(np.ascontiguousarray(X, dtype=np.float64))
        self._segments: list[Any] = []
        self.specs: dict[str, Any] = {}
        try:
            for key, arr in (
                ("X", X),
                ("q_idx", q_idx),
                ("r_idx", r_idx),
                ("X2", X2),
            ):
                if arr is None:
                    self.specs[key] = None
                    continue
                shm, spec = _shm_export(np.asarray(arr))
                self._segments.append(shm)
                self.specs[key] = spec
        except BaseException:
            self.unlink()
            raise
        self.blob = pickle.dumps(kwargs)
        registry = _get_registry()
        if registry.enabled:
            registry.inc(
                "backend.processes.shm_bytes",
                sum(s.size for s in self._segments),
            )

    def __enter__(self) -> "_SharedOperands":
        return self

    def __exit__(self, *exc: object) -> None:
        self.unlink()

    def unlink(self) -> None:
        segments, self._segments = self._segments, []
        for shm in segments:
            try:
                shm.close()
                shm.unlink()
            except OSError:  # pragma: no cover - already gone
                pass


def _shm_attach(spec):
    """Attach to an exported segment; returns (shm, zero-copy ndarray view)."""
    from multiprocessing import shared_memory

    name, shape, dtype = spec
    shm = shared_memory.SharedMemory(name=name)
    return shm, np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)


# Public aliases: the shard transport (src/repro/shard/) builds its
# long-lived worker processes on the same zero-copy segment protocol the
# per-solve ProcessBackend uses, so the export/attach pair is part of the
# module's supported surface, not an implementation detail.
shm_export = _shm_export
shm_attach = _shm_attach


def _worker_fault_plan(fault_spec: str | None):
    """The worker's fault plan: the explicit spec merged with the legacy
    ``REPRO_BACKEND_TEST_CRASH_AT`` env hook (now just a one-entry
    ``crash_at`` plan)."""
    from ..resilience.faults import FaultPlan

    plan = FaultPlan.parse(fault_spec) if fault_spec else None
    crash_at = os.environ.get(_CRASH_ENV)
    if crash_at is not None:
        legacy = (int(crash_at),)
        if plan is None:
            plan = FaultPlan(crash_at=legacy)
        else:
            plan = FaultPlan(
                seed=plan.seed,
                crash=plan.crash,
                slow=plan.slow,
                alloc=plan.alloc,
                slow_seconds=plan.slow_seconds,
                crash_at=tuple(plan.crash_at) + legacy,
            )
    return plan


def _process_worker_init(
    specs: dict,
    kernel_blob: bytes,
    fault_spec: str | None = None,
    obs_spec: dict[str, Any] | None = None,
) -> None:
    _install_worker_obs(obs_spec)
    segments = {}
    arrays = {}
    for key, spec in specs.items():
        if spec is None:
            arrays[key] = None
            continue
        shm, view = _shm_attach(spec)
        segments[key] = shm  # keep the handle alive for the view's lifetime
        arrays[key] = view
    _WORKER_STATE["segments"] = segments
    _WORKER_STATE["arrays"] = arrays
    _WORKER_STATE["kernel_kwargs"] = pickle.loads(kernel_blob)
    _WORKER_STATE["fault_plan"] = _worker_fault_plan(fault_spec)
    # a fork-started worker inherits the parent's module state; drop any
    # stale plan so this attach builds its own against the new segments
    _WORKER_STATE.pop("plan", None)


def _process_worker_solve(
    task: tuple[tuple[int, int], int] | tuple[tuple[int, int], int, int]
) -> tuple[int, np.ndarray, np.ndarray, dict[str, Any] | None]:
    chunk, k = task[0], task[1]
    attempt = task[2] if len(task) > 2 else 0
    fault_plan = _WORKER_STATE.get("fault_plan")
    if fault_plan is not None:
        # hard_exit: in a pool worker an injected crash must be a real
        # process death so the parent exercises its BrokenProcessPool
        # handling, not a tidy in-band exception
        fault_plan.apply("chunk", chunk[0], attempt, hard_exit=True)
    arrays = _WORKER_STATE["arrays"]
    kwargs = dict(_WORKER_STATE["kernel_kwargs"])
    if arrays.get("X2") is not None:
        kwargs["X2"] = arrays["X2"]
    if "plan" not in _WORKER_STATE:
        # one plan per shared-memory attach: built on the worker's first
        # chunk, reused for every later chunk this worker executes
        _WORKER_STATE["plan"] = _plan_for(arrays["X"], arrays["r_idx"], kwargs)
    with _get_tracer().span("worker.chunk", chunk=chunk[0], size=chunk[1]):
        start, dist, idx = _solve_chunk(
            arrays["X"],
            arrays["q_idx"],
            arrays["r_idx"],
            k,
            chunk,
            kwargs,
            _WORKER_STATE["plan"],
        )
    # span/metric deltas ride back with the chunk result; ``None`` when
    # observability was off (the common path ships nothing extra)
    return start, dist, idx, _drain_worker_obs()


class ProcessBackend(ExecutionBackend):
    """``ProcessPoolExecutor`` over zero-copy shared-memory operands.

    Parameters
    ----------
    p:
        Worker processes.
    mp_context:
        ``multiprocessing`` start method. Defaults to ``fork`` where
        available (cheap worker startup; the initializer re-attaches by
        name regardless, so ``spawn`` is equally correct — just slower
        to warm up).
    """

    name = "processes"

    def __init__(self, p: int = 2, *, mp_context: str | None = None) -> None:
        import multiprocessing

        if p < 1:
            raise ValidationError(f"need p >= 1 workers, got {p}")
        self.p = int(p)
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        self.mp_context = mp_context

    def _run(self, X, q_idx, r_idx, k, chunks, kernel_kwargs):
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        from .chunking import resolve_workers

        with _SharedOperands(X, q_idx, r_idx, kernel_kwargs) as ops:
            workers = resolve_workers(self.p, len(chunks))
            ctx = multiprocessing.get_context(self.mp_context)
            # re-parent shipped worker spans under the caller's current
            # span (the driver span of this solve)
            parent_id = _get_tracer().current_span_id()
            try:
                with ProcessPoolExecutor(
                    max_workers=workers,
                    mp_context=ctx,
                    initializer=_process_worker_init,
                    initargs=(ops.specs, ops.blob, None, _obs_spec()),
                ) as pool:
                    for start, dist, idx, obs in pool.map(
                        _process_worker_solve, [(c, k) for c in chunks]
                    ):
                        _absorb_worker_obs(obs, parent_id)
                        yield start, dist, idx
            except BrokenProcessPool as exc:
                raise BackendError(
                    "processes backend: a worker process died before "
                    "returning its chunk (killed, out-of-memory, or a "
                    "crash in native code); partial results were "
                    "discarded"
                ) from exc

    def map(self, fn, items):
        raise ValidationError(
            "the processes backend only executes GSKNN query chunks "
            "(its operands travel via shared memory, not pickles); use "
            "the serial or threads backend for generic task fan-out"
        )


BACKENDS: dict[str, type[ExecutionBackend]] = {
    "serial": SerialBackend,
    "threads": ThreadBackend,
    "processes": ProcessBackend,
}


def resolve_backend(
    backend: str | ExecutionBackend, p: int | str = 1
) -> ExecutionBackend:
    """Turn a backend name (or ready instance) into an instance.

    ``p`` is the worker count forwarded to a by-name construction
    (``"auto"`` resolves to the host's core count); an instance passes
    through unchanged.
    """
    from .chunking import resolve_workers

    if isinstance(backend, ExecutionBackend):
        return backend
    if not isinstance(backend, str) or backend not in BACKENDS:
        raise ValidationError(
            f"unknown backend {backend!r}; choose from "
            f"{sorted(BACKENDS)} or pass an ExecutionBackend instance"
        )
    return BACKENDS[backend](resolve_workers(p))
