"""Unit tests for kNN-graph construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.neighbors import KnnResult
from repro.errors import ValidationError
from repro.trees.graph import GraphStats, graph_stats, knn_graph, mutual_knn_graph


def _result():
    # 0 <-> 1 mutually; 2 lists 0 but 0 does not list 2; 3 isolated-ish
    dist = np.array(
        [[0.0, 1.0], [0.0, 1.0], [0.0, 2.0], [0.0, 9.0]]
    )
    idx = np.array([[0, 1], [1, 0], [2, 0], [3, -1]])
    return KnnResult(dist, idx)


class TestKnnGraph:
    def test_edges_and_self_loops(self):
        graph = knn_graph(_result())
        assert graph.number_of_nodes() == 4
        assert graph.has_edge(0, 1)
        assert graph.has_edge(2, 0)
        assert not graph.has_edge(0, 0)

    def test_include_self(self):
        graph = knn_graph(_result(), include_self=True)
        assert graph.has_edge(0, 0)

    def test_unfilled_slots_skipped(self):
        graph = knn_graph(_result())
        assert graph.degree[3] == 0

    def test_distance_weights(self):
        graph = knn_graph(_result())
        assert graph[0][1]["weight"] == 1.0

    def test_similarity_weights(self):
        graph = knn_graph(_result(), weight="similarity")
        assert graph[0][1]["weight"] == pytest.approx(0.5)

    def test_weight_validation(self):
        with pytest.raises(ValidationError):
            knn_graph(_result(), weight="magic")


class TestMutualKnnGraph:
    def test_only_mutual_edges(self):
        graph = mutual_knn_graph(_result())
        assert graph.has_edge(0, 1)       # mutual
        assert not graph.has_edge(2, 0)   # one-directional
        assert graph.number_of_edges() == 1

    def test_subset_of_knn_graph(self):
        full = knn_graph(_result())
        mutual = mutual_knn_graph(_result())
        for u, v in mutual.edges():
            assert full.has_edge(u, v)


class TestGraphStats:
    def test_summary(self):
        stats = graph_stats(knn_graph(_result()))
        assert isinstance(stats, GraphStats)
        assert stats.n_nodes == 4
        assert stats.min_degree == 0
        assert stats.n_components >= 2
        assert 0 < stats.largest_component_fraction <= 1.0

    def test_empty_rejected(self):
        import networkx as nx

        with pytest.raises(ValidationError):
            graph_stats(nx.Graph())


class TestEndToEnd:
    def test_solver_output_builds_connected_graph(self):
        from repro.data import embedded_gaussian
        from repro.trees import all_nearest_neighbors

        cloud = embedded_gaussian(400, 12, intrinsic_dim=5, seed=1).points
        report = all_nearest_neighbors(cloud, 6, leaf_size=64, iterations=6)
        stats = graph_stats(knn_graph(report.result))
        assert stats.largest_component_fraction > 0.9
        assert stats.min_degree >= 1
