"""Model-anchored efficiency accounting: ratios, anomalies, labels."""

from __future__ import annotations

import pytest

from repro.obs.efficiency import (
    efficiency_floor,
    record_solve_efficiency,
    set_efficiency_floor,
)
from repro.obs.metrics import MetricsRegistry
from repro.perf.gflops import knn_flops


@pytest.fixture
def registry():
    return MetricsRegistry(enabled=True)


@pytest.fixture
def default_floor():
    set_efficiency_floor(0.05)
    try:
        yield
    finally:
        set_efficiency_floor(None)


LABELS = '{scope="kernel",variant="var1"}'


class TestRecord:
    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        rec = record_solve_efficiency(
            256, 256, 16, 8, 1, 0.01, registry=registry
        )
        assert rec is None
        assert registry.snapshot()["counters"] == {}

    def test_achieved_gflops_matches_flops_convention(
        self, registry, default_floor
    ):
        seconds = 0.01
        rec = record_solve_efficiency(
            256, 256, 16, 8, 1, seconds, registry=registry
        )
        expected = knn_flops(256, 256, 16) / seconds / 1e9
        assert rec["achieved_gflops"] == pytest.approx(expected)
        assert rec["model_gflops"] > 0
        assert rec["model_ratio"] == pytest.approx(
            rec["achieved_gflops"] / rec["model_gflops"]
        )
        assert rec["est_bytes_moved"] > 0

    def test_emits_labeled_series(self, registry, default_floor):
        record_solve_efficiency(256, 256, 16, 8, 1, 0.01, registry=registry)
        snap = registry.snapshot()
        assert snap["counters"][f"efficiency.solves{LABELS}"] == 1
        for gauge in (
            "efficiency.achieved_gflops",
            "efficiency.model_gflops",
            "efficiency.model_ratio",
        ):
            assert f"{gauge}{LABELS}" in snap["gauges"]
        assert f"efficiency.model_ratio.dist{LABELS}" in snap["histograms"]

    def test_scope_label(self, registry, default_floor):
        record_solve_efficiency(
            64, 64, 8, 4, 1, 0.01, scope="solve", registry=registry
        )
        snap = registry.snapshot()
        assert (
            'efficiency.solves{scope="solve",variant="var1"}'
            in snap["counters"]
        )

    def test_unmeasurable_on_zero_seconds(self, registry, default_floor):
        rec = record_solve_efficiency(64, 64, 8, 4, 1, 0.0, registry=registry)
        assert rec is None
        snap = registry.snapshot()
        assert snap["counters"]["efficiency.unmeasurable"] == 1
        assert not any(
            key.startswith("efficiency.solves") for key in snap["counters"]
        )

    def test_unanchored_when_model_has_no_kernel(
        self, registry, default_floor
    ):
        # variant 99 has no perf-model calibration: the achieved rate is
        # still recorded, just without a model ratio
        import math

        rec = record_solve_efficiency(64, 64, 8, 4, 99, 0.01, registry=registry)
        assert rec is not None
        assert rec["achieved_gflops"] > 0
        assert math.isnan(rec["model_gflops"])
        assert math.isnan(rec["model_ratio"])
        snap = registry.snapshot()
        keys = list(snap["gauges"])
        assert any(k.startswith("efficiency.achieved_gflops{") for k in keys)
        assert not any(k.startswith("efficiency.model_ratio") for k in keys)


class TestAnomalies:
    def test_ratio_below_floor_counts_anomaly(self, registry):
        set_efficiency_floor(1e9)  # everything is anomalous under this floor
        try:
            rec = record_solve_efficiency(
                256, 256, 16, 8, 1, 0.01, registry=registry
            )
            assert rec["anomaly"] == 1.0
            snap = registry.snapshot()
            assert snap["counters"][f"efficiency.anomalies{LABELS}"] == 1
        finally:
            set_efficiency_floor(None)

    def test_healthy_ratio_is_not_anomalous(self, registry):
        set_efficiency_floor(0.0)
        try:
            rec = record_solve_efficiency(
                256, 256, 16, 8, 1, 0.01, registry=registry
            )
            assert rec["anomaly"] == 0.0
            snap = registry.snapshot()
            assert not any(
                key.startswith("efficiency.anomalies")
                for key in snap["counters"]
            )
        finally:
            set_efficiency_floor(None)


class TestFloor:
    def test_default_floor(self, default_floor):
        assert efficiency_floor() == pytest.approx(0.05)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_EFFICIENCY_FLOOR", "0.25")
        set_efficiency_floor(None)  # re-read the environment
        try:
            assert efficiency_floor() == pytest.approx(0.25)
        finally:
            monkeypatch.delenv("REPRO_EFFICIENCY_FLOOR")
            set_efficiency_floor(None)

    def test_set_floor_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EFFICIENCY_FLOOR", "0.25")
        set_efficiency_floor(0.5)
        try:
            assert efficiency_floor() == pytest.approx(0.5)
        finally:
            set_efficiency_floor(None)


class TestEndToEnd:
    def test_gsknn_records_kernel_efficiency(self, default_floor):
        import numpy as np

        from repro.core.gsknn import gsknn
        from repro.obs.metrics import disable_metrics, enable_metrics

        rng = np.random.default_rng(3)
        X = rng.standard_normal((128, 8))
        registry = enable_metrics()
        try:
            gsknn(X, np.arange(64), np.arange(128), 4)
            snap = registry.snapshot()
        finally:
            disable_metrics()
        solves = [
            key for key in snap["counters"]
            if key.startswith("efficiency.solves")
        ]
        assert solves, f"no efficiency.solves in {sorted(snap['counters'])}"
