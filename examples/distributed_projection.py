"""Projecting the multi-node solve — Table 1's actual setting.

The paper reports the randomized-KD-tree all-NN solver on 8 MPI nodes.
:class:`repro.distributed.DistributedAllKnn` simulates that: the same
trees and exact kernels run in one process (results are bit-exact
against the shared-memory solver), but kernel time is attributed to the
rank that would have executed each leaf, and every inter-rank transfer
is carried through a simulated communicator and priced with an
alpha-beta model. The projection combines the busiest rank's kernel
time with the communication estimate.

The example sweeps rank counts and both kernels, showing (a) near-linear
projected kernel scaling thanks to LPT leaf scheduling, (b) where
communication starts to bite, and (c) the GSKNN-vs-GEMM gap surviving
the distributed setting.

Run:  python examples/distributed_projection.py
"""

from __future__ import annotations

from repro.core.neighbors import recall
from repro.data import embedded_gaussian
from repro.distributed import AlphaBetaModel, DistributedAllKnn
from repro.trees import exact_all_knn


def main() -> None:
    n_points, dim, k = 8192, 32, 16
    dataset = embedded_gaussian(n_points, dim, intrinsic_dim=10, seed=0)
    truth = exact_all_knn(dataset.points, k)

    print(f"N={n_points}, d={dim}, k={k}, leaves of 1024, 3 trees\n")
    print(
        f"{'ranks':>6} {'kernel':>7} {'serial s':>9} {'busiest s':>10} "
        f"{'comm s':>8} {'projected':>10} {'speedup':>8} {'recall':>7}"
    )
    for kernel in ("gemm", "gsknn"):
        for ranks in (1, 2, 4, 8, 16):
            solver = DistributedAllKnn(
                ranks,
                leaf_size=1024,
                iterations=3,
                kernel=kernel,
                seed=42,
            )
            report = solver.solve(dataset.points, k)
            print(
                f"{ranks:>6} {kernel:>7} "
                f"{report.serial_kernel_seconds:>9.2f} "
                f"{max(report.rank_kernel_seconds):>10.2f} "
                f"{report.comm_seconds:>8.4f} "
                f"{report.projected_seconds:>10.2f} "
                f"{report.projected_speedup:>7.1f}x "
                f"{recall(report.result, truth):>7.3f}"
            )
        print()

    print("with a 100x worse network (alpha=1e-4, beta=1e-8):")
    slow_net = DistributedAllKnn(
        8, leaf_size=1024, iterations=3, kernel="gsknn", seed=42,
        comm_model=AlphaBetaModel(alpha=1e-4, beta=1e-8),
    ).solve(dataset.points, k)
    print(
        f"  8 ranks: comm {slow_net.comm_seconds:.2f} s, projected "
        f"{slow_net.projected_seconds:.2f} s "
        f"({slow_net.projected_speedup:.1f}x) — communication-bound"
    )


if __name__ == "__main__":
    main()
