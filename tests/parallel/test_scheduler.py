"""Unit tests for the task-parallel LPT scheduler."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.parallel import ScheduledTask, Schedule, graham_bound, lpt_schedule
from repro.parallel.scheduler import execute_schedule


def _tasks(estimates):
    return [ScheduledTask(i, e) for i, e in enumerate(estimates)]


class TestLptSchedule:
    def test_all_tasks_assigned_once(self):
        tasks = _tasks([5, 4, 3, 2, 1])
        sched = lpt_schedule(tasks, 2)
        assigned = [t.task_id for procs in sched.assignments for t in procs]
        assert sorted(assigned) == [0, 1, 2, 3, 4]

    def test_classic_lpt_example(self):
        # LPT on {5,3,3,2,2,2} with p=2: optimal makespan 9 wait compute:
        # total=17, LPT: p0:5+2+2=9? p0:5, p1:3 -> p1:3+3=6 ... check bound instead
        tasks = _tasks([5, 3, 3, 2, 2, 2])
        sched = lpt_schedule(tasks, 2)
        total = sum(t.estimate for t in tasks)
        optimal_lower = total / 2
        assert sched.makespan <= graham_bound(2) * max(optimal_lower, 5)

    def test_descending_assignment_order(self):
        sched = lpt_schedule(_tasks([1, 9, 5]), 1)
        order = [t.estimate for t in sched.assignments[0]]
        assert order == [9, 5, 1]

    def test_balances_equal_tasks(self):
        sched = lpt_schedule(_tasks([1.0] * 12), 4)
        assert sched.loads == [3.0, 3.0, 3.0, 3.0]
        assert sched.imbalance == pytest.approx(1.0)

    def test_single_processor(self):
        sched = lpt_schedule(_tasks([2, 3]), 1)
        assert sched.makespan == 5.0

    def test_more_processors_than_tasks(self):
        sched = lpt_schedule(_tasks([2, 3]), 5)
        assert sched.makespan == 3.0
        assert sum(len(a) for a in sched.assignments) == 2

    def test_empty_tasks(self):
        sched = lpt_schedule([], 3)
        assert sched.makespan == 0.0
        assert sched.imbalance == 1.0

    def test_invalid_processors(self):
        with pytest.raises(ValidationError):
            lpt_schedule(_tasks([1]), 0)

    def test_negative_estimate_rejected(self):
        with pytest.raises(ValidationError):
            ScheduledTask(0, -1.0)

    def test_makespan_within_graham_bound_random(self, rng):
        """LPT is a (4/3 - 1/3p)-approximation; check against the trivial
        lower bound max(total/p, longest task)."""
        for _ in range(20):
            estimates = rng.random(15) * 10
            p = int(rng.integers(2, 6))
            sched = lpt_schedule(_tasks(estimates), p)
            lower = max(estimates.sum() / p, estimates.max())
            assert sched.makespan <= graham_bound(p) * lower + 1e-9


class TestGrahamBound:
    def test_values(self):
        assert graham_bound(1) == pytest.approx(1.0)
        assert graham_bound(2) == pytest.approx(4 / 3 - 1 / 6)
        assert graham_bound(10) < 4 / 3

    def test_invalid(self):
        with pytest.raises(ValidationError):
            graham_bound(0)


class TestExecuteSchedule:
    def test_runs_all_tasks(self):
        tasks = _tasks([3, 1, 2, 5])
        sched = lpt_schedule(tasks, 2)
        results = execute_schedule(sched, lambda t: t.estimate * 2)
        assert results == {0: 6, 1: 2, 2: 4, 3: 10}

    def test_payload_passed_through(self):
        tasks = [ScheduledTask(0, 1.0, payload="hello")]
        sched = lpt_schedule(tasks, 1)
        results = execute_schedule(sched, lambda t: t.payload.upper())
        assert results[0] == "HELLO"
