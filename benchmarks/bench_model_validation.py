"""Model-validation sweep — how well does Table 4 predict this substrate?

The paper validates its model against its own measurements (Figure 4's
overlays). A reproduction owes the same accounting against *its*
substrate: this bench runs a (d, k) grid of real kernels, compares
measured times to model predictions (Ivy Bridge constants and
host-calibrated constants), and reports the two agreement statistics
that matter for each of the model's jobs:

* **rank correlation** (Spearman) between predicted and measured times —
  what scheduling and variant selection depend on;
* **mean |log2(predicted/measured)|** — the absolute-scale error, which
  the paper's own model also does not promise (it "always overestimates
  the efficiency").
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy.stats import spearmanr

from repro.core.gsknn import gsknn
from repro.core.ref_kernel import ref_knn
from repro.machine.calibrate import calibrate_host
from repro.model import PerformanceModel

from .conftest import run_report, SCALE, best_time, uniform_problem

SIZE = 1024 * SCALE
GRID = [(d, k) for d in (8, 32, 128, 512) for k in (4, 32, 256)]


def _measure(kernel_name):
    times = {}
    for d, k in GRID:
        X, q, r = uniform_problem(SIZE, SIZE, d, seed=0)
        fn = gsknn if kernel_name != "gemm" else ref_knn
        kwargs = {"variant": 1} if kernel_name == "var1" else {}
        times[(d, k)] = best_time(lambda: fn(X, q, r, k, **kwargs), repeats=2)
    return times


def test_model_validation_report(benchmark, report):
    def _run():
        rep = report(
            "model_validation",
            f"Model-vs-measured agreement (m=n={SIZE}, {len(GRID)} gridpoints)",
        )
        host = calibrate_host(quick=True)
        models = {
            "ivy-bridge": PerformanceModel(),
            "host-calibrated": PerformanceModel(host),
        }
        for kernel in ("var1", "gemm"):
            measured = _measure(kernel)
            meas_vec = np.array([measured[g] for g in GRID])
            for name, model in models.items():
                pred_vec = np.array(
                    [
                        model.predict_seconds(kernel, SIZE, SIZE, d, k)
                        for d, k in GRID
                    ]
                )
                rho = spearmanr(pred_vec, meas_vec).statistic
                log_err = float(
                    np.mean(np.abs(np.log2(pred_vec / meas_vec)))
                )
                rep.row(
                    f"{kernel:>5} x {name:>16}: Spearman rho {rho:5.2f}, "
                    f"mean |log2 err| {log_err:4.2f}"
                )
                if name == "host-calibrated":
                    # ranking quality is the model's actual job; demand it
                    assert rho > 0.7

    run_report(benchmark, _run)


@pytest.mark.parametrize("kernel", ["var1", "gemm"])
def test_bench_grid_corner(benchmark, kernel):
    X, q, r = uniform_problem(SIZE, SIZE, 32, seed=1)
    fn = gsknn if kernel == "var1" else ref_knn
    benchmark.group = f"model-validation corner m=n={SIZE} d=32 k=32"
    benchmark.name = kernel
    benchmark(lambda: fn(X, q, r, 32))
