"""Command-line interface: ``repro-gsknn``.

Subcommands:

* ``kernel`` — run one kNN kernel (gsknn / gemm) on synthetic data and
  report timing, achieved GFLOPS, and the span-derived phase breakdown;
  ``--backend {serial,threads,processes}`` / ``-p`` pick the execution
  backend, ``--blocking tuned`` applies the persisted autotuner result,
  and ``--trace-out PATH`` also writes a ``chrome://tracing`` JSON;
* ``compare`` — run both kernels on the same problem and print the
  speedup (a one-problem slice of the Figure 6 grid); also accepts
  ``--backend``/``-p``/``--blocking`` and ``--trace-out``;

``kernel``, ``compare``, and ``distributed`` additionally take the
resilience flags ``--deadline-ms`` (budget the solve; expiry exits 3
with partial progress on stderr), ``--fault-plan SPEC`` (deterministic
fault injection — see ``docs/RESILIENCE.md``), and ``--retries N``;
any ``resilience.*`` counters the run produced are printed after the
phase table.

* ``stats`` — run one kernel with full observability on and print the
  metrics-registry snapshot (``--json`` for the raw dict);
* ``allknn`` — run the approximate all-NN solver and report recall;
  ``--method graph`` answers with an NN-descent build, ``--method
  auto`` lets the recall-aware planner choose per ``--recall-target``;
  ``--shards S`` instead solves exactly through the scatter/gather
  shard router (real worker processes; see ``docs/DISTRIBUTED.md``)
  and ``--evaluate`` asserts bit-identity to the single-process solve;
* ``approx`` — the approximate tier directly: ``approx build`` grows
  an NN-descent graph index (optionally saved to ``.npz``), ``approx
  query`` beam-searches a saved index and reports recall, ``approx
  calibrate`` measures this host's recall/latency operating points and
  persists them for the recall-aware planner;
* ``tune`` — print the variant decision table, or with ``--budget
  {small,medium,large}`` run the persistent per-host autotuner and
  save the winner to the tuning cache;
* ``model`` — print the performance model's prediction (and the
  Var#1/Var#6 threshold) for a problem size;
* ``trace`` — run the cache-trace simulator and print DRAM traffic per
  kernel (``--json`` for machine-readable output);
* ``serve`` — start the micro-batching query service
  (:mod:`repro.serve`) over a synthetic table and drive it with the
  built-in multi-tenant closed-loop traffic generator; ``--tenants`` /
  ``--weights`` shape the load, ``--slo-ms`` sets per-request
  deadlines, ``--fault-plan`` injects window-level faults,
  ``--metrics-port`` exposes the live ``serve.*`` series on
  ``/metrics`` while the run is up, and ``--shards S`` scatter/gathers
  every exact window across S shard worker processes;
* ``distributed`` — the multi-rank all-NN projection;
  ``--transport process`` backs each rank's leaf solves with a real
  long-lived worker process instead of the in-process simulation.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from . import __version__
from .config import BlockingParams, IVY_BRIDGE_BLOCKING
from .machine import IVY_BRIDGE, TINY_MACHINE, KnnTraceSimulator
from .obs import enable_metrics, enable_tracing, disable_tracing
from .obs.adapters import absorb_tracer
from .perf.gflops import gflops

__all__ = ["main", "build_parser"]


def _print_phase_table(snapshot: dict, total_seconds: float) -> None:
    """Render ``phase.*`` histograms as a Table-5-style breakdown."""
    rows = []
    for name, hist in snapshot["histograms"].items():
        if not name.startswith("phase."):
            continue
        phase = name[len("phase.") :]
        spans = snapshot["counters"].get(f"{name}.spans", hist["count"])
        rows.append((phase, int(spans), hist["sum"]))
    if not rows:
        return
    rows.sort(key=lambda r: -r[2])
    covered = sum(r[2] for r in rows)
    print(f"{'phase':>12} {'spans':>7} {'ms':>9} {'%':>6}")
    for phase, spans, seconds in rows:
        pct = 100.0 * seconds / total_seconds if total_seconds > 0 else 0.0
        print(f"{phase:>12} {spans:>7} {seconds * 1e3:>9.2f} {pct:>5.1f}%")
    untraced = max(total_seconds - covered, 0.0)
    pct = 100.0 * untraced / total_seconds if total_seconds > 0 else 0.0
    print(f"{'(untraced)':>12} {'':>7} {untraced * 1e3:>9.2f} {pct:>5.1f}%")


def _export_trace(tracer, trace_out: str) -> int:
    """Write the Chrome trace; a bad path is a clean error, not a traceback."""
    try:
        path = tracer.export_chrome(trace_out)
    except OSError as exc:
        print(f"error: cannot write trace to {trace_out}: {exc}", file=sys.stderr)
        return 1
    print(f"trace written to {path} ({len(tracer)} spans)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gsknn",
        description="GSKNN reproduction (Yu et al., SC'15) command line",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_problem_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("-m", type=int, default=2048, help="queries")
        p.add_argument("-n", type=int, default=2048, help="references")
        p.add_argument("-d", type=int, default=64, help="dimension")
        p.add_argument("-k", type=int, default=16, help="neighbors")
        p.add_argument("--seed", type=int, default=0)

    def add_resilience_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--deadline-ms",
            type=float,
            default=None,
            metavar="MS",
            help="wall-clock budget for the solve; expiry raises a clean "
            "KernelTimeoutError with partial-progress metadata",
        )
        p.add_argument(
            "--fault-plan",
            type=str,
            default=None,
            metavar="SPEC",
            help="deterministic fault injection, e.g. "
            "'seed=7,crash=0.3,slow=0.2,slow_ms=20,crash_at=0|128' "
            "(also read from $REPRO_FAULT_PLAN)",
        )
        p.add_argument(
            "--retries",
            type=int,
            default=None,
            metavar="N",
            help="max attempts per failed chunk before backend fallback "
            "(default 3 when a fault plan or deadline is active)",
        )

    def add_backend_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--backend",
            choices=("serial", "threads", "processes"),
            default="serial",
            help="execution backend for the data-parallel driver",
        )
        p.add_argument(
            "-p",
            "--workers",
            default="1",
            metavar="P",
            help="worker count for the chosen backend ('auto' = host cores)",
        )
        p.add_argument(
            "--blocking",
            choices=("default", "tuned"),
            default="default",
            help="'tuned' applies this host's persisted autotuner result",
        )
        p.add_argument(
            "--memory-budget",
            type=str,
            default=None,
            metavar="BYTES",
            help="cap the kernel workspace (e.g. '64MiB'); budgeted solves "
            "stream reference panels and refuse allocations over the cap "
            "(gsknn only; see docs/MEMORY.md)",
        )

    kern = sub.add_parser("kernel", help="run one kernel on synthetic data")
    add_problem_args(kern)
    kern.add_argument(
        "--kernel", choices=("gsknn", "gemm"), default="gsknn"
    )
    kern.add_argument("--norm", default="l2")
    kern.add_argument("--variant", default="auto")
    add_backend_args(kern)
    kern.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="run the solve N times and report the cold/warm split "
        "(first call vs best repeat)",
    )
    kern.add_argument(
        "--plan",
        action="store_true",
        help="run through a reusable GsknnPlan (cached reference panels "
        "+ workspace arena); repeats then reuse the plan's state "
        "(gsknn only, in-process)",
    )
    kern.add_argument(
        "--trace-out",
        type=str,
        default=None,
        metavar="PATH",
        help="write a chrome://tracing JSON of the run to PATH",
    )
    kern.add_argument(
        "--recall-target",
        type=float,
        default=None,
        metavar="R",
        help="let the recall-aware planner route the solve through the "
        "approximate graph tier when calibration says it is cheaper "
        "(build charged too); default exact",
    )
    add_resilience_args(kern)

    comp = sub.add_parser("compare", help="GSKNN vs GEMM approach")
    add_problem_args(comp)
    comp.add_argument("--repeats", type=int, default=3)
    add_backend_args(comp)
    add_resilience_args(comp)
    comp.add_argument(
        "--trace-out",
        type=str,
        default=None,
        metavar="PATH",
        help="write a chrome://tracing JSON covering both kernels to PATH",
    )

    stats = sub.add_parser(
        "stats", help="run one kernel and print the metrics snapshot"
    )
    add_problem_args(stats)
    add_backend_args(stats)
    add_resilience_args(stats)
    stats.add_argument("--kernel", choices=("gsknn", "gemm"), default="gsknn")
    stats.add_argument("--norm", default="l2")
    stats.add_argument("--variant", default="auto")
    stats.add_argument(
        "--efficiency",
        action="store_true",
        help="print the model-anchored efficiency table "
        "(achieved vs predicted GFLOP/s per variant/scope)",
    )
    stats.add_argument(
        "--serve",
        type=int,
        default=None,
        metavar="PORT",
        help="serve a Prometheus /metrics endpoint on PORT (0 = ephemeral) "
        "while the kernel runs",
    )
    stats.add_argument(
        "--serve-seconds",
        type=float,
        default=0.0,
        help="keep the /metrics endpoint up this many seconds after the "
        "run so an external scraper can collect (needs --serve)",
    )
    stats.add_argument(
        "--json", action="store_true", help="print the raw snapshot dict"
    )

    aknn = sub.add_parser("allknn", help="approximate all-NN solver")
    aknn.add_argument("-N", type=int, default=8192)
    aknn.add_argument("-d", type=int, default=32)
    aknn.add_argument("-k", type=int, default=16)
    aknn.add_argument(
        "--method",
        choices=("rkdtree", "rptree", "lsh", "graph", "auto"),
        default="rkdtree",
    )
    aknn.add_argument("--kernel", choices=("gsknn", "gemm"), default="gsknn")
    aknn.add_argument("--leaf-size", type=int, default=512)
    aknn.add_argument("--iterations", type=int, default=8)
    aknn.add_argument("--seed", type=int, default=0)
    aknn.add_argument(
        "--recall-target",
        type=float,
        default=None,
        metavar="R",
        help="with --method auto: the recall the planner must meet "
        "(None or >= 0.999 means exact)",
    )
    aknn.add_argument(
        "--evaluate", action="store_true", help="also compute exact recall"
    )
    aknn.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="S",
        help="solve exactly through the scatter/gather shard router with "
        "S worker processes instead of an approximate method "
        "(--evaluate then asserts bit-identity to one in-process solve)",
    )
    aknn.add_argument(
        "--shard-transport",
        choices=("process", "local"),
        default="process",
        help="with --shards: worker processes over shared memory, or the "
        "in-process deterministic twin",
    )

    approx = sub.add_parser(
        "approx", help="approximate tier: graph index build / beam query"
    )
    asub = approx.add_subparsers(dest="approx_command", required=True)
    ab = asub.add_parser(
        "build", help="NN-descent graph index over synthetic data"
    )
    ab.add_argument("-N", type=int, default=8192)
    ab.add_argument("-d", type=int, default=16)
    ab.add_argument("--k-build", type=int, default=16)
    ab.add_argument("--rounds", type=int, default=8)
    ab.add_argument("--seed", type=int, default=0)
    ab.add_argument(
        "--out",
        type=str,
        default=None,
        metavar="PATH",
        help="save the index (.npz; self-contained, coordinates embedded)",
    )
    ab.add_argument(
        "--evaluate",
        action="store_true",
        help="also track the build's recall vs exact per round",
    )
    aq = asub.add_parser(
        "query", help="beam-search a saved index with sampled table rows"
    )
    aq.add_argument("--index", type=str, required=True, metavar="PATH")
    aq.add_argument(
        "-m", type=int, default=256, help="queries (sampled table rows)"
    )
    aq.add_argument("-k", type=int, default=10)
    aq.add_argument("--ef", type=int, default=None, help="beam pool width")
    aq.add_argument("--expand", type=int, default=4)
    aq.add_argument("--max-hops", type=int, default=None)
    aq.add_argument(
        "--no-rerank",
        action="store_true",
        help="skip the exact float64 re-rank of the final pool",
    )
    aq.add_argument("--seed", type=int, default=0)
    aq.add_argument(
        "--evaluate", action="store_true", help="recall vs brute force"
    )
    ac = asub.add_parser(
        "calibrate",
        help="measure recall/latency operating points on this host and "
        "persist them for the recall-aware planner",
    )
    ac.add_argument("-N", type=int, default=4096)
    ac.add_argument("-d", type=int, default=16)
    ac.add_argument("-k", type=int, default=10)
    ac.add_argument("--seed", type=int, default=0)
    ac.add_argument(
        "--sample-queries", type=int, default=128,
        help="rows sampled for recall measurement",
    )
    ac.add_argument(
        "--repeats", type=int, default=2, help="timing repeats per knob"
    )
    ac.add_argument(
        "--cache",
        type=str,
        default=None,
        metavar="PATH",
        help="planner cache file (default $REPRO_PLANNER_CACHE or "
        "planner.json next to the tuning cache)",
    )
    ac.add_argument(
        "--dry-run",
        action="store_true",
        help="measure and print but do not persist the calibration",
    )
    ac.add_argument(
        "--json", action="store_true", help="print the calibration as JSON"
    )

    model = sub.add_parser("model", help="performance-model prediction")
    add_problem_args(model)
    model.add_argument("--cores", type=int, default=1)

    trace = sub.add_parser("trace", help="cache-trace simulation")
    add_problem_args(trace)
    trace.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    tune = sub.add_parser(
        "tune",
        help="variant decision table, or (with --budget) the per-host "
        "autotuner",
    )
    add_problem_args(tune)
    tune.add_argument(
        "--measured",
        action="store_true",
        help="build the table from timings instead of the model",
    )
    tune.add_argument("--save", type=str, default=None, help="JSON output path")
    tune.add_argument(
        "--budget",
        choices=("small", "medium", "large"),
        default=None,
        help="run the persistent autotuner (blocking, workers/backend, "
        "switch-k) at this budget and save the winner per host",
    )
    tune.add_argument(
        "--cache",
        type=str,
        default=None,
        metavar="PATH",
        help="tuning cache file (default $REPRO_TUNE_CACHE or "
        "~/.cache/repro-gsknn/tuning.json)",
    )
    tune.add_argument(
        "--dry-run",
        action="store_true",
        help="with --budget: search but do not persist the winner",
    )

    serve = sub.add_parser(
        "serve",
        help="micro-batching query service under built-in closed-loop load",
    )
    serve.add_argument("-N", type=int, default=4096, help="reference rows")
    serve.add_argument("-d", type=int, default=32, help="dimension")
    serve.add_argument("-k", type=int, default=8, help="neighbors per query")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--rows", type=int, default=4, help="query rows per request"
    )
    serve.add_argument(
        "--clients", type=int, default=8, help="closed-loop client threads"
    )
    serve.add_argument(
        "--duration-seconds", type=float, default=5.0, help="load duration"
    )
    serve.add_argument(
        "--tenants",
        type=str,
        default=None,
        metavar="SPEC",
        help="client counts per tenant, e.g. 'search=4,batch=2,ads=2' "
        "(must sum to --clients; default: all on one tenant)",
    )
    serve.add_argument(
        "--weights",
        type=str,
        default=None,
        metavar="SPEC",
        help="weighted-round-robin dequeue weights, e.g. 'search=4,ads=1'",
    )
    serve.add_argument("--max-batch", type=int, default=64)
    serve.add_argument("--max-wait-ms", type=float, default=2.0)
    serve.add_argument("--max-queue-depth", type=int, default=256)
    serve.add_argument(
        "--policy",
        choices=("model", "fixed"),
        default="model",
        help="'model' closes windows when the performance model says "
        "batching stops paying; 'fixed' always waits the full window",
    )
    serve.add_argument(
        "--slo-ms",
        type=float,
        default=None,
        metavar="MS",
        help="per-request deadline; expired-in-queue requests fail fast",
    )
    serve.add_argument(
        "--fault-plan",
        type=str,
        default=None,
        metavar="SPEC",
        help="deterministic fault injection at window granularity "
        "(also read from $REPRO_FAULT_PLAN)",
    )
    serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve a Prometheus /metrics endpoint on PORT (0 = ephemeral) "
        "for the duration of the run",
    )
    serve.add_argument(
        "--serve-seconds",
        type=float,
        default=0.0,
        help="keep /metrics up this many seconds after the load finishes "
        "(needs --metrics-port)",
    )
    serve.add_argument(
        "--recall-target",
        type=float,
        default=None,
        metavar="R",
        help="build a graph index over the table before serving and tag "
        "every generated request with this recall target (the planner "
        "still decides exact-vs-graph per request)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="S",
        help="scatter/gather every exact window across S shard worker "
        "processes (bit-identical to the in-process solve; 0 = off)",
    )
    serve.add_argument(
        "--shard-transport",
        choices=("process", "local"),
        default="process",
        help="with --shards: worker processes over shared memory, or the "
        "in-process deterministic twin",
    )
    serve.add_argument(
        "--memory-budget",
        type=str,
        default=None,
        metavar="BYTES",
        help="cap the service's fused-solve workspace (e.g. '64MiB'); one "
        "budget is shared across every window (see docs/MEMORY.md)",
    )
    serve.add_argument(
        "--json", action="store_true", help="print the summary as JSON"
    )

    dist = sub.add_parser(
        "distributed", help="simulated multi-rank all-NN projection"
    )
    dist.add_argument("-N", type=int, default=8192)
    dist.add_argument("-d", type=int, default=32)
    dist.add_argument("-k", type=int, default=16)
    dist.add_argument("--ranks", type=int, default=8)
    dist.add_argument("--leaf-size", type=int, default=512)
    dist.add_argument("--iterations", type=int, default=2)
    dist.add_argument("--kernel", choices=("gsknn", "gemm"), default="gsknn")
    dist.add_argument("--seed", type=int, default=0)
    dist.add_argument(
        "--transport",
        choices=("sim", "process"),
        default="sim",
        help="'sim' runs ranks in-process with modelled communication; "
        "'process' backs each rank's leaf solves with a long-lived "
        "worker process (gsknn only; results are bit-identical)",
    )
    add_resilience_args(dist)

    return parser


def _parse_workers(value: str):
    return value if value == "auto" else int(value)


def _resilience_kwargs(args: argparse.Namespace) -> dict:
    """deadline/retry/fault_plan kwargs from CLI flags ({} when unused)."""
    kwargs: dict = {}
    deadline_ms = getattr(args, "deadline_ms", None)
    if deadline_ms is not None:
        kwargs["deadline"] = deadline_ms / 1e3
    fault_plan = getattr(args, "fault_plan", None)
    if fault_plan is not None:
        kwargs["fault_plan"] = fault_plan
    retries = getattr(args, "retries", None)
    if retries is not None:
        from .resilience import RetryPolicy

        kwargs["retry"] = RetryPolicy(max_attempts=retries)
    return kwargs


def _print_resilience_counters(snapshot: dict) -> None:
    rows = {
        name: value
        for name, value in snapshot["counters"].items()
        if name.startswith("resilience.")
    }
    if not rows:
        return
    print("resilience:")
    for name, value in sorted(rows.items()):
        print(f"  {name:<32} {value}")


def _print_budget_error(exc) -> int:
    """Render a MemoryBudgetError cleanly; exit code 4 = budget refused."""
    print(f"memory budget exceeded: {exc}", file=sys.stderr)
    return 4


def _print_timeout(exc) -> int:
    """Render a KernelTimeoutError cleanly; exit code 3 = deadline hit."""
    budget = f"{exc.budget * 1e3:.0f} ms" if exc.budget else "?"
    elapsed = f"{exc.elapsed * 1e3:.0f} ms" if exc.elapsed else "?"
    progress = (
        " ".join(f"{k}={v}" for k, v in exc.partial.items())
        if exc.partial
        else "none"
    )
    print(
        f"deadline exceeded: budget={budget} elapsed={elapsed} "
        f"site={exc.site or '?'} progress: {progress}",
        file=sys.stderr,
    )
    return 3


def _run_one_kernel(args: argparse.Namespace):
    from .core.gsknn import gsknn
    from .core.ref_kernel import ref_knn
    from .data import uniform_hypercube
    from .parallel.chunking import resolve_workers
    from .parallel.data_parallel import gsknn_data_parallel

    ds = uniform_hypercube(max(args.m, args.n), args.d, seed=args.seed)
    q = np.arange(args.m)
    r = np.arange(args.n)
    backend = getattr(args, "backend", "serial")
    workers = resolve_workers(_parse_workers(getattr(args, "workers", "1")))
    blocking = getattr(args, "blocking", "default")
    blocking = None if blocking == "default" else blocking
    kwargs = {"norm": args.norm}
    res_kwargs = _resilience_kwargs(args)
    membudget = getattr(args, "memory_budget", None)
    if membudget is not None and args.kernel != "gsknn":
        print("--memory-budget requires --kernel gsknn", file=sys.stderr)
        raise SystemExit(2)
    if args.kernel == "gsknn":
        kwargs["variant"] = args.variant
        if membudget is not None:
            kwargs["memory_budget"] = membudget
        # resilience flags route through the data-parallel driver even at
        # p=1/serial: that is where the deadline and retry machinery live
        if workers > 1 or backend != "serial" or res_kwargs:
            tuned = _load_tuned_blocks(blocking)
            if tuned is not None:
                kwargs.update(block_m=tuned[0], block_n=tuned[1])
            runner = lambda X, q, r, k, **kw: gsknn_data_parallel(  # noqa: E731
                X, q, r, k, p=workers, backend=backend, **res_kwargs, **kw
            )
        else:
            kwargs["blocking"] = blocking
            runner = gsknn
    else:
        runner = ref_knn
    t0 = time.perf_counter()
    result = runner(ds.points, q, r, args.k, **kwargs)
    elapsed = time.perf_counter() - t0
    return result, elapsed


def _load_tuned_blocks(blocking):
    """(block_m, block_n) from the tuning cache, or None for defaults."""
    if blocking != "tuned":
        return None
    from .tune import load_tuned_config

    config = load_tuned_config()
    return None if config is None else (config.block_m, config.block_n)


def _run_plan_kernel(args: argparse.Namespace, repeat: int):
    """Cold plan build+execute, then warm repeats against the same plan."""
    from .core.plan import GsknnPlan
    from .data import uniform_hypercube

    ds = uniform_hypercube(max(args.m, args.n), args.d, seed=args.seed)
    q = np.arange(args.m)
    r = np.arange(args.n)
    blocking = getattr(args, "blocking", "default")
    blocking = None if blocking == "default" else blocking
    t0 = time.perf_counter()
    plan = GsknnPlan(
        ds.points, r, norm=args.norm, variant=args.variant, blocking=blocking,
        memory_budget=getattr(args, "memory_budget", None),
    )
    result = plan.execute(q, args.k)
    cold = time.perf_counter() - t0
    warm: list[float] = []
    for _ in range(repeat - 1):
        t0 = time.perf_counter()
        result = plan.execute(q, args.k)
        warm.append(time.perf_counter() - t0)
    return result, cold, warm


def _cmd_kernel_approx(args: argparse.Namespace) -> int:
    """``kernel --recall-target R``: planner-routed solve.

    Consults the per-host calibration with the build cost charged
    (one-shot workload); a graph decision builds the index and beam
    searches, anything else (including every fallback) runs the exact
    kernel exactly as without the flag.
    """
    from .approx import QueryPlanner, beam_search, build_graph_index
    from .data import uniform_hypercube

    planner = QueryPlanner()
    decision = planner.plan(
        args.n, args.d, args.k, args.recall_target,
        workload="query", m_queries=args.m, include_build=True,
    )
    fb = " [fallback]" if decision.fallback else ""
    print(f"planner: {decision.method} ({decision.reason}){fb}")
    if decision.method != "graph":
        result, elapsed = _run_one_kernel(args)
        print(
            f"gsknn: m={args.m} n={args.n} d={args.d} k={args.k} "
            f"time={elapsed * 1e3:.1f} ms "
            f"gflops={gflops(args.m, args.n, args.d, elapsed):.2f}"
        )
        print(f"first query neighbors: {result.indices[0][: min(args.k, 8)]}")
        return 0
    ds = uniform_hypercube(max(args.m, args.n), args.d, seed=args.seed)
    t0 = time.perf_counter()
    index = build_graph_index(
        ds.points[: args.n],
        k_build=max(args.k, 16),
        seed=args.seed,
    )
    build_seconds = time.perf_counter() - t0
    Q = ds.points[: args.m]
    params = decision.params
    mh = params.get("max_hops")
    t0 = time.perf_counter()
    result = beam_search(
        index,
        Q,
        args.k,
        ef=params.get("ef"),
        expand=int(params.get("expand", 4)),
        max_hops=None if mh is None else int(mh),
    )
    elapsed = time.perf_counter() - t0
    print(
        f"graph: m={args.m} n={args.n} d={args.d} k={args.k} "
        f"build={build_seconds:.2f}s query={elapsed * 1e3:.1f} ms "
        f"(expected recall {decision.expected_recall:.3f})"
    )
    print(f"first query neighbors: {result.indices[0][: min(args.k, 8)]}")
    return 0


def _cmd_kernel(args: argparse.Namespace) -> int:
    if args.plan and args.kernel != "gsknn":
        print("--plan requires --kernel gsknn", file=sys.stderr)
        return 2
    if args.recall_target is not None:
        if args.kernel != "gsknn" or args.plan:
            print(
                "--recall-target requires --kernel gsknn without --plan",
                file=sys.stderr,
            )
            return 2
        return _cmd_kernel_approx(args)
    from .errors import KernelTimeoutError, MemoryBudgetError
    from .obs.context import RequestContext, request_scope

    repeat = max(1, int(args.repeat))
    registry = enable_metrics()
    tracer = enable_tracing()
    # one request id per CLI invocation: every span of the run (driver,
    # worker, retry rung) carries it, so a --trace-out file is greppable
    # by request even after merging with other traces
    ctx = RequestContext.new(tenant="cli")
    try:
        with request_scope(ctx):
            if args.plan:
                result, elapsed, warm = _run_plan_kernel(args, repeat)
            else:
                result, elapsed = _run_one_kernel(args)
                warm = []
                for _ in range(repeat - 1):
                    result, t_rep = _run_one_kernel(args)
                    warm.append(t_rep)
    except KernelTimeoutError as exc:
        return _print_timeout(exc)
    except MemoryBudgetError as exc:
        return _print_budget_error(exc)
    finally:
        disable_tracing()
    absorb_tracer(tracer, registry)
    backend = getattr(args, "backend", "serial")
    workers = getattr(args, "workers", "1")
    suffix = (
        f" backend={backend} p={workers}"
        if not args.plan and (backend != "serial" or workers not in ("1", 1))
        else ""
    )
    if args.plan:
        suffix += " [plan: cold build+execute]"
    print(
        f"{args.kernel}: m={args.m} n={args.n} d={args.d} k={args.k} "
        f"time={elapsed * 1e3:.1f} ms "
        f"gflops={gflops(args.m, args.n, args.d, elapsed):.2f}{suffix}"
    )
    if warm:
        best = min(warm)
        print(
            f"warm repeats: n={len(warm)} best={best * 1e3:.1f} ms "
            f"gflops={gflops(args.m, args.n, args.d, best):.2f} "
            f"warm-vs-cold speedup={elapsed / best:.2f}x"
        )
    snapshot = registry.snapshot()
    _print_phase_table(snapshot, elapsed + sum(warm))
    _print_resilience_counters(snapshot)
    print(f"first query neighbors: {result.indices[0][: min(args.k, 8)]}")
    if args.trace_out:
        return _export_trace(tracer, args.trace_out)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .core.gsknn import gsknn
    from .core.ref_kernel import ref_knn
    from .data import uniform_hypercube
    from .parallel.chunking import resolve_workers
    from .parallel.data_parallel import gsknn_data_parallel

    ds = uniform_hypercube(max(args.m, args.n), args.d, seed=args.seed)
    q = np.arange(args.m)
    r = np.arange(args.n)
    workers = resolve_workers(_parse_workers(args.workers))
    blocking = None if args.blocking == "default" else args.blocking
    gsknn_kwargs = {}
    res_kwargs = _resilience_kwargs(args)
    if args.memory_budget is not None:
        gsknn_kwargs["memory_budget"] = args.memory_budget
    if workers > 1 or args.backend != "serial" or res_kwargs:
        tuned = _load_tuned_blocks(blocking)
        if tuned is not None:
            gsknn_kwargs.update(block_m=tuned[0], block_n=tuned[1])
        gsknn_runner = lambda X, q, r, k: gsknn_data_parallel(  # noqa: E731
            X, q, r, k, p=workers, backend=args.backend,
            **res_kwargs, **gsknn_kwargs
        )
        label = f"gsknn[{args.backend} p={workers}]"
    else:
        gsknn_runner = lambda X, q, r, k: gsknn(  # noqa: E731
            X, q, r, k, blocking=blocking, **gsknn_kwargs
        )
        label = "gsknn"
    registry = enable_metrics()
    tracer = enable_tracing()

    def best_of(fn, name: str) -> float:
        times = []
        for _ in range(args.repeats):
            t0 = time.perf_counter()
            with tracer.span("run", kernel=name):
                fn(ds.points, q, r, args.k)
            times.append(time.perf_counter() - t0)
        return min(times)

    from .errors import KernelTimeoutError
    from .obs.context import RequestContext, request_scope

    try:
        with request_scope(RequestContext.new(tenant="cli")):
            t_gsknn = best_of(gsknn_runner, "gsknn")
            t_gemm = best_of(ref_knn, "gemm")
    except KernelTimeoutError as exc:
        return _print_timeout(exc)
    finally:
        disable_tracing()
    absorb_tracer(tracer, registry)
    print(
        f"m={args.m} n={args.n} d={args.d} k={args.k}  "
        f"{label}={t_gsknn * 1e3:.1f} ms  gemm={t_gemm * 1e3:.1f} ms  "
        f"speedup={t_gemm / t_gsknn:.2f}x"
    )
    # phase totals cover every repeat of both kernels
    total = sum(s.duration for s in tracer.roots())
    snapshot = registry.snapshot()
    _print_phase_table(snapshot, total)
    _print_resilience_counters(snapshot)
    if args.trace_out:
        return _export_trace(tracer, args.trace_out)
    return 0


def _print_efficiency_table(snapshot: dict) -> None:
    """Render ``efficiency.*`` series as an achieved-vs-model table."""
    from .obs.efficiency import efficiency_floor
    from .obs.metrics import split_key

    rows: dict[tuple[str, str], dict] = {}

    def absorb(key: str, value) -> None:
        name, labels = split_key(key)
        if not name.startswith("efficiency."):
            return
        slot = rows.setdefault(
            (labels.get("variant", "?"), labels.get("scope", "?")), {}
        )
        slot[name[len("efficiency."):]] = value

    for key, value in snapshot["gauges"].items():
        absorb(key, value)
    for key, value in snapshot["counters"].items():
        absorb(key, value)
    if not rows:
        print("efficiency: no solves recorded")
        return

    def fmt(value, width: int, spec: str) -> str:
        if value is None:
            return f"{'-':>{width}}"
        return f"{value:>{width}{spec}}"

    print(f"efficiency (model-anchored, anomaly floor {efficiency_floor():g}):")
    print(
        f"{'variant':>8} {'scope':>7} {'solves':>7} {'achieved':>9} "
        f"{'model':>8} {'ratio':>6} {'MB moved':>9} {'anom':>5}"
    )
    for (variant, scope), slot in sorted(rows.items()):
        print(
            f"{variant:>8} {scope:>7} {int(slot.get('solves', 0)):>7} "
            + fmt(slot.get("achieved_gflops"), 9, ".2f") + " "
            + fmt(slot.get("model_gflops"), 8, ".2f") + " "
            + fmt(slot.get("model_ratio"), 6, ".3f") + " "
            + f"{slot.get('est_bytes_moved', 0) / 1e6:>9.2f} "
            + f"{int(slot.get('anomalies', 0)):>5}"
        )


def _cmd_stats(args: argparse.Namespace) -> int:
    from .obs.context import RequestContext, request_scope
    from .obs.exporters import MetricsHTTPServer

    registry = enable_metrics()
    tracer = enable_tracing()
    ctx = RequestContext.new(tenant="cli")
    server = None
    if args.serve is not None:
        server = MetricsHTTPServer(port=args.serve, registry=registry)
        server.start()
        print(f"serving metrics at {server.url}")
    try:
        try:
            with request_scope(ctx):
                _, elapsed = _run_one_kernel(args)
        finally:
            disable_tracing()
        absorb_tracer(tracer, registry)
        snapshot = registry.snapshot()
        if args.json:
            print(json.dumps(snapshot, indent=1, sort_keys=True))
        else:
            _print_stats_tables(args, snapshot, elapsed)
        if server is not None and args.serve_seconds > 0:
            time.sleep(args.serve_seconds)
    finally:
        if server is not None:
            server.stop()
    return 0


def _print_stats_tables(
    args: argparse.Namespace, snapshot: dict, elapsed: float
) -> None:
    print(
        f"{args.kernel}: m={args.m} n={args.n} d={args.d} k={args.k} "
        f"time={elapsed * 1e3:.1f} ms"
    )
    if args.efficiency:
        _print_efficiency_table(snapshot)
    _print_phase_table(snapshot, elapsed)
    if snapshot["counters"]:
        print("counters:")
        for name, value in snapshot["counters"].items():
            print(f"  {name:<32} {value}")
    if snapshot["gauges"]:
        print("gauges:")
        for name, value in snapshot["gauges"].items():
            print(f"  {name:<32} {value:.4g}")
    hist_rows = [
        (name, h)
        for name, h in snapshot["histograms"].items()
        if not name.startswith("phase.")
    ]
    if hist_rows:
        print("histograms:")
        for name, h in hist_rows:
            print(
                f"  {name:<32} count={h['count']} mean={h['mean']:.4g} "
                f"max={h['max']:.4g}"
            )


def _cmd_allknn(args: argparse.Namespace) -> int:
    from .data import embedded_gaussian
    from .trees import all_nearest_neighbors, exact_all_knn
    from .core.neighbors import recall

    ds = embedded_gaussian(
        args.N, args.d, intrinsic_dim=min(10, args.d), seed=args.seed
    )
    if args.shards:
        return _cmd_allknn_sharded(args, ds.points)
    truth = exact_all_knn(ds.points, args.k) if args.evaluate else None
    report = all_nearest_neighbors(
        ds.points,
        args.k,
        method=args.method,
        kernel=args.kernel,
        leaf_size=args.leaf_size,
        iterations=args.iterations,
        seed=args.seed,
        truth=truth,
        recall_target=args.recall_target,
    )
    label = args.method
    if report.method_used and report.method_used != args.method:
        label = f"{args.method}->{report.method_used}"
    print(
        f"{label}+{args.kernel}: N={args.N} d={args.d} k={args.k} "
        f"iters={report.iterations} total={report.total_seconds:.2f}s "
        f"kernel={report.kernel_seconds:.2f}s "
        f"({report.kernel_fraction:.0%} in kernel)"
    )
    if report.decision is not None:
        fb = " [fallback]" if report.decision.fallback else ""
        print(f"  planner: {report.decision.reason}{fb}")
    if truth is not None:
        print(f"final recall: {recall(report.result, truth):.4f}")
    return 0


def _cmd_allknn_sharded(args: argparse.Namespace, X: np.ndarray) -> int:
    """``allknn --shards S``: exact all-NN through the shard router."""
    from .shard import ShardedAllKnn

    q = np.arange(args.N, dtype=np.intp)
    with ShardedAllKnn(
        X, args.shards, transport=args.shard_transport
    ) as router:
        t0 = time.perf_counter()
        result = router.solve(q, args.k)
        elapsed = time.perf_counter() - t0
        sizes = router.stats()["shard_sizes"]
        print(
            f"sharded gsknn [{args.shard_transport} x{args.shards}]: "
            f"N={args.N} d={args.d} k={args.k} "
            f"time={elapsed * 1e3:.1f} ms "
            f"gflops={gflops(args.N, args.N, args.d, elapsed):.2f}"
        )
        print(
            f"  shard rows: {sizes} "
            f"(panel width {router.stats()['panel_width']})"
        )
        if args.evaluate:
            t0 = time.perf_counter()
            single = router.solve_reference(q, args.k)
            t_single = time.perf_counter() - t0
            identical = np.array_equal(
                result.indices, single.indices
            ) and np.array_equal(result.distances, single.distances)
            print(
                f"  single-process: {t_single * 1e3:.1f} ms  "
                f"bit-identical: {identical}"
            )
            if not identical:
                print(
                    "error: sharded result diverged from the "
                    "single-process solve",
                    file=sys.stderr,
                )
                return 1
    return 0


def _cmd_approx(args: argparse.Namespace) -> int:
    return {
        "build": _cmd_approx_build,
        "query": _cmd_approx_query,
        "calibrate": _cmd_approx_calibrate,
    }[args.approx_command](args)


def _cmd_approx_build(args: argparse.Namespace) -> int:
    from .approx import build_graph_index
    from .data import embedded_gaussian
    from .trees import exact_all_knn

    ds = embedded_gaussian(
        args.N, args.d, intrinsic_dim=min(10, args.d), seed=args.seed
    )
    truth = None
    if args.evaluate:
        truth = exact_all_knn(ds.points, min(args.k_build, args.N - 1))
    index = build_graph_index(
        ds.points,
        k_build=args.k_build,
        rounds=args.rounds,
        seed=args.seed,
        truth=truth,
    )
    rep = index.build_report
    print(
        f"graph: N={args.N} d={args.d} k_build={args.k_build} "
        f"rounds={rep.rounds} converged={rep.converged}"
    )
    print(
        f"  init {rep.init_seconds:.2f}s + refine {rep.refine_seconds:.2f}s "
        f"= {rep.total_seconds:.2f}s "
        f"({rep.candidate_evals} candidate evals, "
        f"{index.entry_points.size} entry points, "
        f"adjacency width {index.adjacency.shape[1]})"
    )
    if rep.recall_curve:
        print(f"  build recall: {rep.recall_curve[-1]:.4f}")
    if args.out:
        path = index.save(args.out)
        print(f"  saved to {path}")
    return 0


def _cmd_approx_query(args: argparse.Namespace) -> int:
    from .approx import GraphIndex, beam_search
    from .core.gsknn import gsknn
    from .core.neighbors import recall

    try:
        index = GraphIndex.load(args.index)
    except (OSError, KeyError, ValueError) as exc:
        print(f"error: cannot load index {args.index}: {exc}", file=sys.stderr)
        return 2
    n = index.X.shape[0]
    rng = np.random.default_rng(args.seed)
    q = np.sort(rng.choice(n, size=min(args.m, n), replace=False))
    Q = index.X[q]
    t0 = time.perf_counter()
    result, stats = beam_search(
        index,
        Q,
        args.k,
        ef=args.ef,
        expand=args.expand,
        max_hops=args.max_hops,
        rerank=not args.no_rerank,
        return_stats=True,
    )
    elapsed = time.perf_counter() - t0
    per_query_us = elapsed / max(q.size, 1) * 1e6
    print(
        f"beam: m={q.size} k={args.k} ef={args.ef or 'auto'} "
        f"expand={args.expand} rerank={not args.no_rerank} "
        f"time={elapsed * 1e3:.1f} ms ({per_query_us:.0f} us/query)"
    )
    print(
        f"  hops={stats.hops} candidate_evals={stats.candidate_evals} "
        f"entry_evals={stats.entry_evals} "
        f"rerank_fraction={stats.rerank_fraction:.3f}"
    )
    if args.evaluate:
        truth = gsknn(index.X, q, np.arange(n, dtype=np.intp), args.k)
        print(f"recall@{args.k}: {recall(result, truth):.4f}")
    return 0


def _cmd_approx_calibrate(args: argparse.Namespace) -> int:
    """``approx calibrate``: measure and persist planner operating points."""
    from .approx.planner import calibrate_planner
    from .approx.store import default_planner_path
    from .data import embedded_gaussian

    ds = embedded_gaussian(
        args.N, args.d, intrinsic_dim=min(10, args.d), seed=args.seed
    )
    t0 = time.perf_counter()
    cal = calibrate_planner(
        ds.points,
        args.k,
        seed=args.seed,
        sample_queries=args.sample_queries,
        repeats=args.repeats,
        save=not args.dry_run,
        cache_path=args.cache,
    )
    elapsed = time.perf_counter() - t0
    if args.json:
        print(json.dumps(cal.to_dict(), indent=1, sort_keys=True))
        return 0
    print(
        f"calibrated N={cal.n} d={cal.d} k={cal.k} "
        f"({cal.m_queries} sampled queries) in {elapsed:.1f}s"
    )
    print(
        f"  exact: {cal.exact_query_seconds * 1e6:.0f} us/query "
        f"(model ratio {cal.model_ratio:.2f}), graph build "
        f"{cal.graph_build_seconds:.2f}s"
    )
    print(f"{'method':>9} {'workload':>9} {'recall':>7} {'cost':>12}  params")
    for p in cal.points:
        cost = (
            f"{p.query_seconds * 1e6:>9.0f} us/q"
            if p.workload == "query"
            else f"{p.solve_seconds:>10.2f} s"
        )
        params = " ".join(f"{k}={v}" for k, v in p.params.items())
        print(
            f"{p.method:>9} {p.workload:>9} {p.recall:>7.4f} {cost}  {params}"
        )
    if args.dry_run:
        print("  dry run: calibration NOT persisted")
    else:
        path = args.cache if args.cache else default_planner_path()
        print(
            f"  persisted to {path} (QueryPlanner and --method auto / "
            "--recall-target pick it up on this host)"
        )
    return 0


def _cmd_model(args: argparse.Namespace) -> int:
    from .model import PerformanceModel, predict_variant_threshold

    machine = IVY_BRIDGE.scaled(args.cores, 3.10e9 if args.cores > 1 else None)
    model = PerformanceModel(machine, IVY_BRIDGE_BLOCKING)
    print(
        f"machine: {machine.name} x{args.cores} cores, "
        f"peak {machine.peak_gflops:.0f} GFLOPS"
    )
    for kernel in ("var1", "var6", "gemm"):
        pred = model.predict(kernel, args.m, args.n, args.d, args.k)
        print(
            f"  {kernel:5s}: {pred.seconds * 1e3:8.2f} ms  "
            f"{pred.gflops:7.1f} GFLOPS"
        )
    thr = predict_variant_threshold(
        args.m, args.n, args.d, machine=machine, k_max=min(args.n, 4096)
    )
    print(f"predicted Var#1->Var#6 threshold: k = {thr}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    blk = BlockingParams(m_r=4, n_r=4, d_c=16, m_c=32, n_c=64)
    sim = KnnTraceSimulator(TINY_MACHINE, blk)
    records = []
    for kernel in ("gsknn-var1", "gsknn-var6", "gemm"):
        res = sim.run(kernel, m=args.m, n=args.n, d=args.d, k=args.k)
        records.append(
            {
                "kernel": kernel,
                "m": args.m,
                "n": args.n,
                "d": args.d,
                "k": args.k,
                "dram_bytes": res.dram_total_bytes,
                "microkernels": res.counts["microkernels"],
            }
        )
    if args.json:
        print(json.dumps(records, indent=1, sort_keys=True))
        return 0
    for rec in records:
        print(
            f"  {rec['kernel']:10s}: DRAM {rec['dram_bytes'] / 1024:8.1f} KiB  "
            f"micro-kernels {rec['microkernels']}"
        )
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    if args.budget is not None:
        return _cmd_autotune(args)
    from .core.autotune import DecisionTable
    from .model import predict_variant_threshold

    d_grid = sorted({16, 64, 256, args.d})
    k_grid = sorted({16, 128, 1024, args.k} & set(range(1, args.n + 1)))
    if args.measured:
        table = DecisionTable.from_measurements(
            args.m, args.n, d_grid, k_grid, repeats=2
        )
    else:
        table = DecisionTable.from_model(args.m, args.n, d_grid, k_grid)
    print(f"decision table ({table.source}) for m={args.m}, n={args.n}:")
    header = "      " + "".join(f"{f'k={k}':>8}" for k in k_grid)
    print(header)
    for d in d_grid:
        row = "".join(
            f"{('v' + str(table.choices[(d, k)])) if (d, k) in table.choices else '-':>8}"
            for k in k_grid
        )
        print(f"d={d:>4}{row}")
    thr = predict_variant_threshold(args.m, args.n, args.d, k_max=args.n)
    print(f"model threshold at d={args.d}: k* = {thr}")
    print(f"this problem (d={args.d}, k={args.k}): {table.lookup(args.d, args.k)}")
    if args.save:
        path = table.save(args.save)
        print(f"saved to {path}")
    return 0


def _cmd_autotune(args: argparse.Namespace) -> int:
    """``tune --budget X``: the persistent per-host autotuner."""
    from .tune import Autotuner, default_cache_path, fingerprint_key

    registry = enable_metrics()
    tuner = Autotuner(budget=args.budget, seed=args.seed)
    report = tuner.run(persist=not args.dry_run, cache_path=args.cache)
    cfg = report.config
    print(
        f"autotune budget={args.budget}: searched "
        f"{len(report.candidates)} candidates in {report.seconds:.1f}s"
    )
    print(f"  host: {fingerprint_key()}")
    print(
        f"  winner: block_m={cfg.block_m} block_n={cfg.block_n} "
        f"p={cfg.p} chunks/worker={cfg.chunks_per_worker} "
        f"backend={cfg.backend} switch_k={cfg.switch_k}"
    )
    for stage in ("blocking", "execution", "switch"):
        best = report.best_seconds(stage)
        print(f"  best {stage:>9} candidate: {best * 1e3:8.1f} ms")
    if args.dry_run:
        print("  dry run: winner NOT persisted")
    else:
        cache = args.cache if args.cache else default_cache_path()
        print(f"  persisted to {cache} (use gsknn(..., blocking='tuned'))")
    snapshot = registry.snapshot()
    candidates = snapshot["counters"].get("tune.candidates")
    if candidates:
        print(f"  obs: {candidates} timed candidates in the metrics registry")
    return 0


def _parse_kv_int_spec(text: str, flag: str) -> dict[str, int]:
    """Parse ``name=count,name=count`` specs (--tenants / --weights)."""
    out: dict[str, int] = {}
    for part in filter(None, (p.strip() for p in text.split(","))):
        key, sep, value = part.partition("=")
        try:
            if not sep:
                raise ValueError("missing '='")
            out[key.strip()] = int(value)
        except ValueError as exc:
            print(
                f"error: bad {flag} entry {part!r}: {exc}", file=sys.stderr
            )
            raise SystemExit(2) from None
    return out


def _cmd_serve(args: argparse.Namespace) -> int:
    from .data import uniform_hypercube
    from .errors import ValidationError
    from .obs.exporters import MetricsHTTPServer
    from .serve import KnnQueryService, ServeConfig, run_closed_loop

    registry = enable_metrics()
    tenants = (
        _parse_kv_int_spec(args.tenants, "--tenants") if args.tenants else None
    )
    weights = (
        _parse_kv_int_spec(args.weights, "--weights") if args.weights else {}
    )
    ds = uniform_hypercube(args.N, args.d, seed=args.seed)
    try:
        config = ServeConfig(
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            max_queue_depth=args.max_queue_depth,
            slo_ms=args.slo_ms,
            tenant_weights=weights,
            policy=args.policy,
            shards=args.shards,
            shard_transport=args.shard_transport,
            memory_budget=args.memory_budget,
        )
    except ValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    server = None
    if args.metrics_port is not None:
        server = MetricsHTTPServer(port=args.metrics_port, registry=registry)
        server.start()
        # stderr: with --json, stdout must stay one parseable document
        print(f"serving metrics at {server.url}", file=sys.stderr)
    graph_index = None
    if args.recall_target is not None:
        from .approx import build_graph_index

        t0 = time.perf_counter()
        graph_index = build_graph_index(
            ds.points, k_build=max(args.k, 16), seed=args.seed
        )
        print(
            f"graph index built in {time.perf_counter() - t0:.1f}s "
            f"(k_build={graph_index.k_build})",
            file=sys.stderr,
        )
    try:
        with KnnQueryService(
            ds.points, config, fault_plan=args.fault_plan,
            graph_index=graph_index,
        ) as svc:
            try:
                report = run_closed_loop(
                    svc,
                    clients=args.clients,
                    duration_seconds=args.duration_seconds,
                    k=args.k,
                    rows=args.rows,
                    tenants=tenants,
                    seed=args.seed,
                    recall_target=args.recall_target,
                )
            except ValidationError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            service_stats = svc.stats()
        summary = report.summary()
        if args.json:
            summary["service"] = {
                k: round(v, 6) if isinstance(v, float) else v
                for k, v in service_stats.items()
            }
            print(json.dumps(summary, indent=1, sort_keys=True))
        else:
            print(
                f"serve: N={args.N} d={args.d} k={args.k} rows={args.rows} "
                f"clients={args.clients} duration={args.duration_seconds}s "
                f"policy={args.policy}"
                + (
                    f" shards={args.shards}[{args.shard_transport}]"
                    if args.shards
                    else ""
                )
            )
            print(
                f"  completed {summary['completed']} "
                f"({summary['throughput_rps']} rps)  "
                f"shed {summary['shed']}  expired {summary['expired']}  "
                f"failed {summary['failed']}"
            )
            print(
                f"  latency ms: p50={summary['latency_p50_ms']:.2f} "
                f"p95={summary['latency_p95_ms']:.2f} "
                f"p99={summary['latency_p99_ms']:.2f}"
            )
            print(
                f"  windows {service_stats['windows']}  "
                f"solves {service_stats['solve_calls']}  "
                f"coalescing {service_stats['coalescing_ratio']:.1f}x  "
                f"occupancy ~{service_stats['occupancy_ewma']:.1f}"
            )
            if len(summary["per_tenant"]) > 1:
                goodput = "  ".join(
                    f"{name}={t['completed']}"
                    for name, t in summary["per_tenant"].items()
                )
                print(f"  per-tenant goodput: {goodput}")
            if args.recall_target is not None:
                snap = registry.snapshot()
                achieved = snap["gauges"].get("approx.achieved_recall")
                approx_reqs = sum(
                    v
                    for name, v in snap["counters"].items()
                    if name.startswith("serve.approx_requests")
                )
                print(
                    f"  approx: {approx_reqs} requests routed, sampled "
                    f"recall "
                    + (f"{achieved:.4f}" if achieved is not None else "n/a")
                )
        if server is not None and args.serve_seconds > 0:
            time.sleep(args.serve_seconds)
    finally:
        if server is not None:
            server.stop()
    return 0


def _cmd_distributed(args: argparse.Namespace) -> int:
    from .data import embedded_gaussian
    from .distributed import DistributedAllKnn
    from .errors import KernelTimeoutError

    ds = embedded_gaussian(
        args.N, args.d, intrinsic_dim=min(10, args.d), seed=args.seed
    )
    try:
        solver = DistributedAllKnn(
            args.ranks,
            leaf_size=args.leaf_size,
            iterations=args.iterations,
            kernel=args.kernel,
            seed=args.seed,
            transport=args.transport,
        )
    except Exception as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    from .obs.context import RequestContext

    res_kwargs = _resilience_kwargs(args)
    registry = enable_metrics() if res_kwargs else None
    try:
        report = solver.solve(
            ds.points, args.k,
            request=RequestContext.new(tenant="cli"),
            **res_kwargs,
        )
    except KernelTimeoutError as exc:
        return _print_timeout(exc)
    ranks_label = (
        "simulated ranks"
        if args.transport == "sim"
        else "process-backed ranks"
    )
    print(
        f"{args.kernel} on {args.ranks} {ranks_label}: "
        f"N={args.N} d={args.d} k={args.k}"
    )
    print(
        f"  serial kernel time:   {report.serial_kernel_seconds:7.2f} s\n"
        f"  busiest rank kernel:  {max(report.rank_kernel_seconds):7.2f} s\n"
        f"  communication (a-b):  {report.comm_seconds:7.4f} s "
        f"({report.comm_bytes / 1e6:.1f} MB moved)\n"
        f"  projected wall clock: {report.projected_seconds:7.2f} s "
        f"({report.projected_speedup:.1f}x over serial)"
    )
    if registry is not None:
        _print_resilience_counters(registry.snapshot())
    return 0


_COMMANDS = {
    "kernel": _cmd_kernel,
    "compare": _cmd_compare,
    "stats": _cmd_stats,
    "allknn": _cmd_allknn,
    "approx": _cmd_approx,
    "model": _cmd_model,
    "trace": _cmd_trace,
    "tune": _cmd_tune,
    "serve": _cmd_serve,
    "distributed": _cmd_distributed,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
