"""Micro-batching query service: coalesce concurrent kNN queries into
fused batched solves.

An online serving workload inverts the shapes this repo's kernels were
tuned on: instead of one big ``(m, n, k)`` solve, thousands of tiny
independent requests — a handful of query rows each — arrive
concurrently against one shared reference table. Solving each alone
pays the kernel's fixed costs (dispatch, plan lookup, panel streaming,
the small-GEMM efficiency cliff of §2.3) once *per request*;
:class:`KnnQueryService` pays them once per *window* by fusing every
in-flight request into one batched solve and demultiplexing per-request
slices of the result.

The moving parts, each in its own module:

* admission — a bounded queue; at the bound :meth:`submit` sheds with
  :class:`~repro.errors.OverloadError` carrying a measured
  ``retry_after`` instead of queueing into collapse;
* fairness — :class:`~repro.serve.queueing.FairQueue` dequeues
  weighted-round-robin across tenants, so one chatty tenant cannot
  starve the rest out of every coalescing window;
* the window policy — :class:`~repro.serve.policy.CoalescingPolicy`
  keeps a window open only while the §2.6 performance model predicts
  the marginal amortization gain beats the expected wait for the next
  arrival (``policy="fixed"`` reverts to dumb time/size windows);
* SLOs — each request carries a :class:`~repro.resilience.Deadline`
  through its :class:`~repro.obs.context.RequestContext`; requests that
  expire while queued fail fast (the budget is already lost — burning
  kernel time on them only hurts everyone behind);
* solves — index requests fuse through
  :func:`~repro.core.batch.gsknn_batch` (one
  :class:`~repro.core.batch.KnnProblem` per distinct ``k``) against a
  service-owned :class:`~repro.core.plan.PlanCache`, so reference
  panels stay packed across windows; literal-row requests fuse through
  :meth:`~repro.core.plan.GsknnPlan.execute_rows` on plans from the
  same cache;
* faults — an active :class:`~repro.resilience.FaultPlan` (e.g. from
  ``$REPRO_FAULT_PLAN``) injects at window granularity and the solve
  retries with fresh dice, so one faulted window degrades one window's
  latency instead of failing its requests;
* sharding — with ``config.shards > 0`` the service mounts a
  :class:`~repro.shard.router.ShardedAllKnn` over the table and every
  exact window (index and row groups alike) is scatter/gathered across
  the shard workers instead of solved in-process. Results are
  bit-identical to the unsharded solve (see docs/DISTRIBUTED.md);
  shard-level failures recover inside the router's per-shard ladder
  without failing the window.

Everything observable flows through the ordinary metrics registry under
the ``serve.*`` namespace (latency quantiles, queue depth, occupancy,
coalescing ratio, shed/SLO counters) — the existing ``/metrics``
exporter serves them with zero extra wiring.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.batch import KnnProblem, gsknn_batch
from ..core.membudget import MemoryBudget
from ..core.neighbors import KnnResult
from ..core.norm_cache import cached_squared_norms
from ..core.plan import PlanCache
from ..errors import (
    BackendError,
    InjectedFault,
    KernelTimeoutError,
    OverloadError,
    ValidationError,
)
from ..model.perf_model import PerformanceModel
from ..obs.context import RequestContext, request_scope
from ..obs.metrics import get_registry as _get_registry
from ..resilience import Deadline, FaultPlan
from ..validation import as_coordinate_table, as_index_array, check_finite, check_k
from .config import ServeConfig
from .policy import CoalescingPolicy
from .queueing import FairQueue, PendingRequest

__all__ = ["KnnQueryService", "ServeHandle"]

#: Bucket layout for serving-latency histograms: finer than the default
#: power-of-two edges so p99 gauges resolve to ~±40% at the
#: sub-millisecond latencies micro-batching produces.
_LATENCY_BUCKETS = dict(start=1e-5, factor=1.4, count=45)

#: Attempts per window solve when a fault plan is active (attempt 0 plus
#: retries with fresh deterministic dice — converges for any rate < 1).
_WINDOW_ATTEMPTS = 3


@dataclass
class ServeHandle:
    """Caller's side of one submitted request.

    ``result()`` blocks until the fused solve that carried the request
    completes, returning the per-request :class:`KnnResult` slice;
    failures (deadline expiry, solve errors, shutdown) re-raise here.
    """

    request_id: str
    tenant: str
    future: Any

    def result(self, timeout: float | None = None) -> KnnResult:
        return self.future.result(timeout)

    def exception(self, timeout: float | None = None):
        return self.future.exception(timeout)

    def done(self) -> bool:
        return self.future.done()


class KnnQueryService:
    """Admission-controlled micro-batching front-end over one table.

    Parameters
    ----------
    X:
        The shared ``(n, d)`` reference table every request queries.
    config:
        A :class:`~repro.serve.config.ServeConfig`; default tunables
        otherwise.
    norm, variant:
        Forwarded to the fused solves (same semantics as
        :func:`~repro.core.gsknn.gsknn`).
    model:
        :class:`~repro.model.PerformanceModel` for the coalescing
        policy; default paper-constants model otherwise.
    fault_plan:
        Explicit :class:`~repro.resilience.FaultPlan` (or spec string);
        default is ``FaultPlan.from_env()`` like the other driver entry
        points.
    graph_index:
        A :class:`~repro.approx.nndescent.GraphIndex` built over ``X``.
        When set, requests carrying a ``recall_target`` may be routed
        (by the planner, per calibrated cost) through beam search on
        the graph instead of the exact fused solve. Requests without a
        target always solve exactly.
    planner:
        The :class:`~repro.approx.planner.QueryPlanner` deciding
        exact-vs-graph per request; default loads the persisted
        per-host calibration. With no calibration every request falls
        back to exact — approximate serving degrades silently, it
        never errors.

    Use as a context manager (or call :meth:`start`/:meth:`stop`)::

        with KnnQueryService(X, config) as svc:
            handle = svc.submit([3, 17], k=8, tenant="search")
            result = handle.result()
    """

    def __init__(
        self,
        X: np.ndarray,
        config: ServeConfig | None = None,
        *,
        norm: str | float = "l2",
        variant: int | str = "auto",
        model: PerformanceModel | None = None,
        fault_plan: FaultPlan | str | None = None,
        graph_index: Any = None,
        planner: Any = None,
    ) -> None:
        self.X = as_coordinate_table(X)
        check_finite(self.X)
        self.config = config if config is not None else ServeConfig()
        if graph_index is not None and graph_index.X.shape != self.X.shape:
            raise ValidationError(
                f"graph_index was built over a {graph_index.X.shape} table "
                f"but the service serves {self.X.shape}"
            )
        self._graph = graph_index
        self._planner = planner
        self._approx_windows = 0
        self._norm = norm
        self._variant = variant
        self._r_all = np.arange(self.X.shape[0], dtype=np.intp)
        # One budget object for the whole service: every window's plans
        # and arenas charge against the same cap (ServeConfig validated
        # the spec at construction, so this coerce cannot fail late).
        self._budget = MemoryBudget.coerce(self.config.memory_budget)
        self._plans = PlanCache(max_plans=self.config.plan_cache_size)
        self._policy = CoalescingPolicy(
            model,
            n_refs=self.X.shape[0],
            d=self.X.shape[1],
            fixed=self.config.policy == "fixed",
        )
        plan = FaultPlan.coerce(fault_plan)
        if plan is None:
            plan = FaultPlan.from_env()
        self._fault_plan = plan if plan is not None and plan.active else None
        self._sharded = None
        self._queue = FairQueue(self.config.weight_of)
        self._cond = threading.Condition()
        self._thread: threading.Thread | None = None
        self._running = False
        self._stopping = False
        # Running tallies for retry_after estimation and the
        # coalescing-ratio gauge (mutated only under self._cond or by
        # the single dispatcher).
        self._windows = 0
        self._window_seq = 0
        self._solve_calls = 0
        self._completed = 0
        self._shed = 0
        self._batch_seconds_ewma = 0.0
        self._occupancy_ewma = 1.0

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "KnnQueryService":
        if self.config.shards > 0 and self._sharded is None:
            from ..shard import ShardedAllKnn

            self._sharded = ShardedAllKnn(
                self.X,
                self.config.shards,
                transport=self.config.shard_transport,
                norm=self._norm,
                variant=self._variant,
                fault_plan=self._fault_plan,
            )
        with self._cond:
            if self._running:
                return self
            self._running = True
            self._stopping = False
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Stop the dispatcher; drain or fail queued requests per config."""
        with self._cond:
            if not self._running:
                return
            self._stopping = True
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
        with self._cond:
            self._running = False
        if self._sharded is not None:
            self._sharded.close()
            self._sharded = None

    def __enter__(self) -> "KnnQueryService":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._running and not self._stopping

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    # -- submission -------------------------------------------------------

    def submit(
        self,
        q_idx: Any,
        k: int,
        *,
        tenant: str = "default",
        deadline: Deadline | float | None = None,
        recall_target: float | None = None,
    ) -> ServeHandle:
        """Submit a query by table indices; returns immediately.

        ``q_idx`` is one index or an array of them (one result row
        each); ``deadline`` a :class:`Deadline` or budget-seconds float,
        defaulting to the config's ``slo_ms``; ``recall_target`` opts
        the request into the approximate tier (see ``graph_index`` on
        the constructor), defaulting to the config's
        ``default_recall_target`` — i.e. exact. Raises
        :class:`~repro.errors.OverloadError` when shed at admission and
        :class:`~repro.errors.ValidationError` on malformed input —
        both synchronously, before anything is queued.
        """
        q_idx = np.atleast_1d(np.asarray(q_idx))
        q_idx = as_index_array(q_idx, self.X.shape[0], name="q_idx")
        k = check_k(k, self.X.shape[0])
        return self._admit(q_idx=q_idx, Q=None, k=k, tenant=tenant,
                           deadline=deadline, recall_target=recall_target)

    def submit_rows(
        self,
        Q: np.ndarray,
        k: int,
        *,
        tenant: str = "default",
        deadline: Deadline | float | None = None,
        recall_target: float | None = None,
    ) -> ServeHandle:
        """Submit literal query coordinates (the out-of-table shape).

        ``Q`` is ``(rows, d)`` (a single ``(d,)`` row is promoted);
        solved via :meth:`~repro.core.plan.GsknnPlan.execute_rows`
        against the same cached plans as index requests.
        """
        Q = np.ascontiguousarray(np.atleast_2d(np.asarray(Q)), dtype=np.float64)
        if Q.ndim != 2 or Q.shape[1] != self.X.shape[1]:
            raise ValidationError(
                f"Q must be ({self.X.shape[1]},) or (rows, {self.X.shape[1]}) "
                f"to match the table, got shape {Q.shape}"
            )
        check_finite(Q, name="Q")
        k = check_k(k, self.X.shape[0])
        return self._admit(q_idx=None, Q=Q, k=k, tenant=tenant,
                           deadline=deadline, recall_target=recall_target)

    def _plan_request(self, k: int, rows: int, recall_target: float | None):
        """Exact-vs-graph decision for one request; None means exact.

        Only consulted when a graph index is mounted and the request
        carries a target; the planner's ladder (no calibration, regime
        mismatch, infeasible target) lands on exact, so the worst case
        here is always the correct answer, never an error.
        """
        if (
            self._graph is None
            or recall_target is None
            or self._norm != "l2"
            or k > self._graph.k_build
        ):
            return None
        if self._planner is None:
            from ..approx.planner import QueryPlanner

            self._planner = QueryPlanner()
        return self._planner.plan(
            self.X.shape[0], self.X.shape[1], k, recall_target,
            workload="query", m_queries=rows,
        )

    def _admit(
        self,
        *,
        q_idx: np.ndarray | None,
        Q: np.ndarray | None,
        k: int,
        tenant: str,
        deadline: Deadline | float | None,
        recall_target: float | None = None,
    ) -> ServeHandle:
        from concurrent.futures import Future

        registry = _get_registry()
        dl = Deadline.coerce(deadline)
        if dl is None and self.config.slo_seconds is not None:
            dl = Deadline(self.config.slo_seconds)
        if recall_target is None:
            recall_target = self.config.default_recall_target
        elif not 0.0 < recall_target <= 1.0:
            raise ValidationError(
                f"recall_target must be in (0, 1], got {recall_target}"
            )
        ctx = RequestContext.new(tenant=tenant, deadline=dl)
        rows = Q.shape[0] if Q is not None else q_idx.size
        decision = self._plan_request(k, int(rows), recall_target)
        req = PendingRequest(
            ctx=ctx, k=k, future=Future(), q_idx=q_idx, Q=Q,
            recall_target=recall_target, decision=decision,
        )
        with self._cond:
            if not self._running or self._stopping:
                raise OverloadError(
                    "service is not accepting requests (not started or "
                    "stopping)",
                    tenant=tenant,
                )
            depth = len(self._queue)
            if depth >= self.config.max_queue_depth:
                self._shed += 1
                retry_after = self._estimate_drain_seconds(depth)
                if registry.enabled:
                    registry.inc("serve.shed", labels={"tenant": tenant})
                raise OverloadError(
                    f"admission queue full ({depth} queued, bound "
                    f"{self.config.max_queue_depth}); retry after "
                    f"{retry_after if retry_after is not None else '?'}s",
                    retry_after=retry_after,
                    queue_depth=depth,
                    tenant=tenant,
                )
            depth = self._queue.push(req)
            self._policy.note_request(req.rows)
            self._cond.notify()
        if registry.enabled:
            registry.inc("serve.requests", labels={"tenant": tenant})
            if req.is_approx:
                registry.inc(
                    "serve.approx_requests", labels={"tenant": tenant}
                )
            registry.gauge("serve.queue_depth").set(depth)
        return ServeHandle(
            request_id=ctx.request_id, tenant=tenant, future=req.future
        )

    def _estimate_drain_seconds(self, depth: int) -> float | None:
        """Expected seconds to drain ``depth`` queued requests, from the
        measured service rate; ``None`` before the first window."""
        if self._windows == 0 or self._batch_seconds_ewma <= 0:
            return None
        per_request = self._batch_seconds_ewma / max(self._occupancy_ewma, 1.0)
        return round(max(depth * per_request, 1e-3), 4)

    # -- dispatcher -------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                while len(self._queue) == 0 and not self._stopping:
                    self._cond.wait(0.05)
            if len(self._queue) == 0:
                if self._stopping:
                    return
                continue
            if self._stopping and not self.config.drain_on_stop:
                for req in self._queue.drain_all():
                    req.future.set_exception(
                        OverloadError(
                            "service stopped before this request was served",
                            tenant=req.tenant,
                        )
                    )
                return
            batch = self._collect_window()
            if batch:
                self._execute_window(batch)

    def _collect_window(self) -> list[PendingRequest]:
        """Hold the window open per policy, then take one WRR batch."""
        cfg = self.config
        close_at = time.perf_counter() + cfg.max_wait_seconds
        while not self._stopping:
            depth = len(self._queue)
            if depth >= cfg.max_batch:
                break
            now = time.perf_counter()
            if now >= close_at:
                break
            if not self._policy.should_wait(max(depth, 1)):
                break
            with self._cond:
                if len(self._queue) == depth:
                    self._cond.wait(min(close_at - now, 5e-4))
        if self._stopping and not cfg.drain_on_stop:
            # leave everything queued: the dispatch loop fails the
            # stragglers explicitly instead of racing stop() into one
            # last solve
            return []
        return self._queue.take(cfg.max_batch, cfg.max_batch_rows)

    def _execute_window(self, batch: list[PendingRequest]) -> None:
        registry = _get_registry()
        t0 = time.perf_counter()
        self._window_seq += 1
        live: list[PendingRequest] = []
        for req in batch:
            if self._expire_queued(req, registry):
                continue
            if registry.enabled:
                registry.observe(
                    "serve.queue_wait_seconds", req.queue_wait(),
                    **_LATENCY_BUCKETS,
                )
            live.append(req)
        if not live:
            self._finish_window(registry, t0, live, 0)
            return

        idx_groups: dict[int, list[PendingRequest]] = {}
        row_groups: dict[int, list[PendingRequest]] = {}
        # approx requests fuse per beam shape: one beam_search call per
        # distinct (k, ef, expand, max_hops) in the window
        approx_groups: dict[tuple, list[PendingRequest]] = {}
        for req in live:
            if req.is_approx:
                p = req.decision.params
                mh = p.get("max_hops")
                key = (
                    req.k,
                    max(int(p.get("ef", self.config.approx_ef)), req.k),
                    int(p.get("expand", self.config.approx_expand)),
                    -1 if mh is None else int(mh),
                )
                approx_groups.setdefault(key, []).append(req)
                continue
            target = row_groups if req.is_rows else idx_groups
            target.setdefault(req.k, []).append(req)

        batch_ctx = RequestContext.new(tenant="serve.batch")
        solve_calls = 0
        if idx_groups:
            ks = sorted(idx_groups)
            solve_calls += len(ks)
            try:
                if self._sharded is not None:
                    with request_scope(batch_ctx):
                        results = [
                            self._solve_with_faults(
                                lambda k=k: self._sharded.solve(
                                    np.concatenate(
                                        [r.q_idx for r in idx_groups[k]]
                                    ),
                                    k,
                                ),
                                registry,
                            )
                            for k in ks
                        ]
                else:
                    problems = [
                        KnnProblem(
                            np.concatenate([r.q_idx for r in idx_groups[k]]),
                            self._r_all,
                            k,
                        )
                        for k in ks
                    ]
                    results = self._solve_with_faults(
                        lambda: gsknn_batch(
                            self.X,
                            problems,
                            p=self.config.p,
                            norm=self._norm,
                            variant=self._variant,
                            backend=self.config.backend,
                            plan_cache=self._plans,
                            request=batch_ctx,
                            memory_budget=self._budget,
                        ),
                        registry,
                    )
            except Exception as exc:
                self._fail_members(
                    [r for k in ks for r in idx_groups[k]], exc, registry
                )
            else:
                for k, result in zip(ks, results):
                    self._demux(idx_groups[k], result, registry)
        for k in sorted(row_groups):
            members = row_groups[k]
            Q_cat = (
                members[0].Q
                if len(members) == 1
                else np.vstack([r.Q for r in members])
            )
            solve_calls += 1
            try:
                if self._sharded is not None:
                    with request_scope(batch_ctx):
                        result = self._solve_with_faults(
                            lambda: self._sharded.solve_rows(Q_cat, k),
                            registry,
                        )
                else:
                    plan = self._plans.get(
                        self.X, self._r_all, norm=self._norm,
                        variant=self._variant, X2=cached_squared_norms(self.X),
                        memory_budget=self._budget,
                    )
                    with request_scope(batch_ctx):
                        result = self._solve_with_faults(
                            lambda: plan.execute_rows(Q_cat, k, validate=False),
                            registry,
                        )
            except Exception as exc:
                self._fail_members(members, exc, registry)
            else:
                self._demux(members, result, registry)
        for key in sorted(approx_groups):
            k, ef, expand, mh = key
            members = approx_groups[key]
            Q_cat = np.vstack(
                [(r.Q if r.is_rows else self.X[r.q_idx]) for r in members]
            )
            solve_calls += 1
            try:
                from ..approx.search import beam_search

                with request_scope(batch_ctx):
                    result = self._solve_with_faults(
                        lambda: beam_search(
                            self._graph, Q_cat, k,
                            ef=ef, expand=expand,
                            max_hops=None if mh < 0 else mh,
                            validate=False,
                        ),
                        registry,
                    )
            except Exception as exc:
                self._fail_members(members, exc, registry)
            else:
                self._demux(members, result, registry)
                self._maybe_sample_recall(Q_cat, k, result, registry)
        self._finish_window(registry, t0, live, solve_calls)

    def _maybe_sample_recall(
        self, Q_cat: np.ndarray, k: int, approx: KnnResult, registry
    ) -> None:
        """Every Nth approximate window, re-solve a few of its rows
        exactly and publish the measured recall — a production
        spot-check that the calibrated operating point still holds."""
        every = self.config.recall_sample_every
        seq = self._approx_windows
        self._approx_windows += 1
        if every == 0 or seq % every != 0 or not registry.enabled:
            return
        rows = min(8, Q_cat.shape[0])
        Qs = np.ascontiguousarray(Q_cat[:rows])
        plan = self._plans.get(
            self.X, self._r_all, norm=self._norm,
            variant=self._variant, X2=cached_squared_norms(self.X),
            memory_budget=self._budget,
        )
        exact = plan.execute_rows(Qs, k, validate=False)
        from ..core.neighbors import recall as _recall

        achieved = _recall(
            KnnResult(approx.distances[:rows], approx.indices[:rows]), exact
        )
        registry.gauge("approx.achieved_recall").set(round(achieved, 4))
        registry.inc("approx.recall_samples")

    def _solve_with_faults(self, solve, registry):
        """Run one fused solve, injecting/absorbing planned faults.

        Window-granular injection: the whole window retries with fresh
        deterministic dice, so a faulted window costs its requests one
        solve's latency, never their results.
        """
        plan = self._fault_plan
        if plan is None:
            return solve()
        last: Exception | None = None
        for attempt in range(_WINDOW_ATTEMPTS):
            try:
                plan.apply("serve.window", self._window_seq, attempt)
                return solve()
            except (InjectedFault, MemoryError, BackendError) as exc:
                last = exc
                if registry.enabled:
                    registry.inc("serve.window_retries")
        assert last is not None
        raise last

    def _expire_queued(self, req: PendingRequest, registry) -> bool:
        """Fail-fast a request whose deadline died in the queue."""
        dl = req.ctx.deadline
        if dl is None or not dl.expired():
            return False
        with request_scope(req.ctx):
            try:
                dl.raise_expired(
                    "serve.queue", queue_wait=round(req.queue_wait(), 6)
                )
            except KernelTimeoutError as exc:
                req.future.set_exception(exc)
        if registry.enabled:
            labels = {"tenant": req.tenant}
            registry.inc("serve.expired_in_queue", labels=labels)
            registry.inc("serve.slo_misses", labels=labels)
        return True

    def _fail_members(
        self, members: list[PendingRequest], exc: Exception, registry
    ) -> None:
        for req in members:
            req.future.set_exception(exc)
        if registry.enabled:
            registry.inc("serve.batch_failures")
            for req in members:
                registry.inc("serve.failed", labels={"tenant": req.tenant})

    def _demux(
        self, members: list[PendingRequest], result: KnnResult, registry
    ) -> None:
        """Slice the fused result back into per-request results."""
        offset = 0
        for req in members:
            rows = req.rows
            piece = KnnResult(
                result.distances[offset : offset + rows],
                result.indices[offset : offset + rows],
            )
            offset += rows
            latency = time.perf_counter() - req.enqueued_at
            req.future.set_result(piece)
            self._completed += 1
            if registry.enabled:
                labels = {"tenant": req.tenant}
                registry.inc("serve.completed", labels=labels)
                registry.observe(
                    "serve.latency_seconds", latency, **_LATENCY_BUCKETS
                )
                dl = req.ctx.deadline
                if dl is not None and dl.expired():
                    # Result still delivered — the budget died during
                    # the solve, not the queue — but the SLO was missed.
                    registry.inc("serve.slo_misses", labels=labels)

    def _finish_window(
        self, registry, t0: float, live: list[PendingRequest], solve_calls: int
    ) -> None:
        service_seconds = time.perf_counter() - t0
        self._windows += 1
        self._solve_calls += solve_calls
        if live:
            if self._batch_seconds_ewma == 0.0:
                self._batch_seconds_ewma = service_seconds
            else:
                self._batch_seconds_ewma += 0.2 * (
                    service_seconds - self._batch_seconds_ewma
                )
            self._occupancy_ewma += 0.2 * (len(live) - self._occupancy_ewma)
        if not registry.enabled:
            return
        registry.inc("serve.windows")
        if solve_calls:
            registry.inc("serve.solves", solve_calls)
        if live:
            registry.observe("serve.batch_occupancy", len(live))
            registry.observe(
                "serve.batch_rows", sum(r.rows for r in live)
            )
            registry.observe(
                "serve.batch_service_seconds", service_seconds,
                **_LATENCY_BUCKETS,
            )
        registry.gauge("serve.queue_depth").set(len(self._queue))
        if self._solve_calls:
            registry.gauge("serve.coalescing_ratio").set(
                round(self._completed / self._solve_calls, 4)
            )
        hist = registry.histogram("serve.latency_seconds", **_LATENCY_BUCKETS)
        if hist.count:
            for q, name in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
                registry.gauge(f"serve.latency_{name}").set(hist.quantile(q))

    # -- introspection ----------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Registry-independent snapshot of service accounting."""
        with self._cond:
            return {
                "queue_depth": len(self._queue),
                "windows": self._windows,
                "solve_calls": self._solve_calls,
                "completed": self._completed,
                "shed": self._shed,
                "coalescing_ratio": (
                    self._completed / self._solve_calls
                    if self._solve_calls
                    else 0.0
                ),
                "batch_seconds_ewma": self._batch_seconds_ewma,
                "occupancy_ewma": self._occupancy_ewma,
                "shards": (
                    self._sharded.stats() if self._sharded is not None else None
                ),
            }
