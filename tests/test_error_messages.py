"""Error-message quality: failures must name the offending value.

A library a downstream user adopts is one whose errors say what went
wrong with the actual numbers in hand — these tests pin that contract
for the most common mistakes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import gsknn
from repro.core.variants import resolve_variant
from repro.errors import ValidationError


@pytest.fixture
def X(rng):
    return rng.random((20, 4))


def _message(excinfo):
    return str(excinfo.value)


def test_k_too_large_names_both_numbers(X):
    with pytest.raises(ValidationError) as excinfo:
        gsknn(X, np.arange(3), np.arange(5), 9)
    msg = _message(excinfo)
    assert "9" in msg and "5" in msg


def test_out_of_range_index_names_the_index(X):
    with pytest.raises(ValidationError) as excinfo:
        gsknn(X, np.array([77]), np.arange(5), 2)
    msg = _message(excinfo)
    assert "77" in msg and "20" in msg


def test_bad_norm_lists_alternatives(X):
    with pytest.raises(ValidationError) as excinfo:
        gsknn(X, np.arange(3), np.arange(5), 2, norm="l7x")
    msg = _message(excinfo)
    assert "l7x" in msg and "cosine" in msg


def test_bad_variant_explains_why(X):
    with pytest.raises(ValidationError) as excinfo:
        gsknn(X, np.arange(3), np.arange(5), 2, variant=4)
    # the message carries the paper's reason, not just "invalid"
    assert "5th loop" in _message(excinfo)


def test_unknown_variant_string():
    with pytest.raises(ValidationError) as excinfo:
        resolve_variant("varx")
    assert "varx" in _message(excinfo)


def test_shape_errors_name_shapes(X):
    with pytest.raises(ValidationError) as excinfo:
        gsknn(X, np.arange(3), np.arange(5), 2, X2=np.ones(7))
    msg = _message(excinfo)
    assert "(20,)" in msg and "(7,)" in msg


def test_nonfinite_error_names_the_table():
    bad = np.ones((4, 2))
    bad[1, 1] = np.nan
    with pytest.raises(ValidationError) as excinfo:
        gsknn(bad, np.arange(2), np.arange(4), 1)
    assert "non-finite" in _message(excinfo)
