"""Performance-model tour: parameter selection, prediction, calibration.

Walks through the paper's §2.4/§2.6 tooling:

1. derive the Goto blocking parameters for the Ivy Bridge geometry and
   compare with the paper's published numbers;
2. predict runtime/GFLOPS for the kernels across (d, k) and print the
   Var#1/Var#6 switching thresholds (Figure 5's pre-tuning step);
3. calibrate the model to *this* host (measured tau_f/tau_b/tau_l) and
   show how the absolute predictions re-base while the shapes persist;
4. sanity-check one prediction against a real kernel run.

Run:  python examples/performance_tuning.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.config import IVY_BRIDGE_BLOCKING
from repro.core.gsknn import gsknn
from repro.core.tuning import select_blocking
from repro.machine import IVY_BRIDGE, calibrate_host
from repro.model import PerformanceModel, threshold_table
from repro.perf.gflops import gflops


def main() -> None:
    print("== 1. blocking parameters from cache geometry (paper §2.4) ==")
    derived = select_blocking(IVY_BRIDGE)
    print(f"  paper:   {IVY_BRIDGE_BLOCKING}")
    print(f"  derived: {derived}")

    print("\n== 2. predictions and variant thresholds (paper §2.6) ==")
    ten_core = IVY_BRIDGE.scaled(10, clock_hz=3.10e9)
    model = PerformanceModel(ten_core)
    for kernel in ("var1", "var6", "gemm"):
        pred = model.predict(kernel, 8192, 8192, 64, 16)
        print(
            f"  {kernel:5s} @ m=n=8192 d=64 k=16: "
            f"{pred.seconds * 1e3:7.1f} ms, {pred.gflops:6.1f} GFLOPS "
            f"(peak {ten_core.peak_gflops:.0f})"
        )
    print("  Var#1 -> Var#6 thresholds:")
    for point in threshold_table(8192, 8192, [16, 64, 256, 1024],
                                 machine=ten_core, k_max=4096):
        print(f"    d={point.d:>5}: k* = {point.k_threshold}")

    print("\n== 3. host calibration ==")
    host = calibrate_host(quick=True)
    print(
        f"  measured: peak {host.peak_gflops:.1f} GFLOPS, "
        f"tau_b {host.tau_b:.2e} s/double, tau_l {host.tau_l:.2e} s/access"
    )
    host_model = PerformanceModel(host)
    for d in (16, 256):
        paper_scale = model.predict("var1", 8192, 8192, d, 16).gflops
        host_scale = host_model.predict("var1", 8192, 8192, d, 16).gflops
        print(
            f"  d={d:>4}: Ivy Bridge model {paper_scale:6.1f} GFLOPS, "
            f"host model {host_scale:6.1f} GFLOPS"
        )

    print("\n== 4. prediction vs one real run ==")
    m = n = 2048
    d, k = 64, 16
    X = np.random.default_rng(0).random((n, d))
    idx = np.arange(n)
    gsknn(X, idx[:m], idx, k)  # warm up
    t0 = time.perf_counter()
    gsknn(X, idx[:m], idx, k)
    measured = time.perf_counter() - t0
    predicted = host_model.predict("var1", m, n, d, k).seconds
    print(
        f"  m=n={m} d={d} k={k}: measured {measured * 1e3:6.1f} ms "
        f"({gflops(m, n, d, measured):.2f} GFLOPS), "
        f"host model {predicted * 1e3:6.1f} ms"
    )
    print(
        "  (the model brackets the real kernel; exact agreement is not\n"
        "   expected — numpy's batched selection is cheaper per candidate\n"
        "   than the scalar heap the model prices)"
    )


if __name__ == "__main__":
    main()
