"""Cross-process trace merging: pid lanes, re-parenting, request ids.

The acceptance path for the observability pipeline: a processes-backend
solve must yield ONE merged trace in the driver's tracer, with worker
spans on their own pid lanes, re-parented under the driver's ``solve``
span, and every span carrying the originating request id.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.obs.context import RequestContext, request_scope
from repro.obs.metrics import disable_metrics, enable_metrics
from repro.obs.trace import Tracer, disable_tracing, enable_tracing
from repro.parallel.data_parallel import gsknn_data_parallel


@pytest.fixture
def clean_env(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
    monkeypatch.delenv("REPRO_BACKEND_TEST_CRASH_AT", raising=False)


@pytest.fixture
def obs():
    registry = enable_metrics()
    tracer = enable_tracing()
    try:
        yield tracer, registry
    finally:
        disable_tracing()
        disable_metrics()


@pytest.fixture
def problem():
    rng = np.random.default_rng(11)
    X = rng.standard_normal((420, 12))
    return X, np.arange(240, dtype=np.intp), np.arange(420, dtype=np.intp), 5


def run_processes_solve(problem, ctx, **kwargs):
    X, q, r, k = problem
    kwargs.setdefault("p", 2)
    kwargs.setdefault("backend", "processes")
    kwargs.setdefault("chunks_per_worker", 4)
    return gsknn_data_parallel(X, q, r, k, request=ctx, **kwargs)


class TestProcessesTraceMerge:
    def test_worker_spans_land_on_distinct_pid_lanes(
        self, problem, obs, clean_env
    ):
        tracer, _ = obs
        ctx = RequestContext.new()
        run_processes_solve(problem, ctx)
        spans = tracer.spans
        workers = [s for s in spans if s.name == "worker.chunk"]
        assert len(workers) == 8  # p=2 x chunks_per_worker=4
        worker_pids = {s.pid for s in workers}
        assert os.getpid() not in worker_pids
        assert len(worker_pids) >= 2, (
            f"expected workers on >= 2 process lanes, got {worker_pids}"
        )
        driver = [s for s in spans if s.name == "solve"]
        assert len(driver) == 1
        assert driver[0].pid == os.getpid()

    def test_worker_spans_reparent_under_solve(self, problem, obs, clean_env):
        tracer, _ = obs
        run_processes_solve(problem, RequestContext.new())
        spans = tracer.spans
        solve_id = next(s.span_id for s in spans if s.name == "solve")
        for s in spans:
            if s.name == "worker.chunk":
                assert s.parent_id == solve_id

    def test_every_span_carries_the_request_id(self, problem, obs, clean_env):
        tracer, _ = obs
        ctx = RequestContext.new(tenant="suite")
        run_processes_solve(problem, ctx)
        for s in tracer.spans:
            assert s.attrs.get("request_id") == ctx.request_id, (
                f"span {s.name!r} missing request id: {s.attrs}"
            )

    def test_span_ids_globally_unique_after_merge(
        self, problem, obs, clean_env
    ):
        tracer, _ = obs
        run_processes_solve(problem, RequestContext.new())
        ids = [s.span_id for s in tracer.spans]
        assert len(ids) == len(set(ids))

    def test_chrome_export_has_worker_lanes(
        self, problem, obs, clean_env, tmp_path
    ):
        import json

        tracer, _ = obs
        run_processes_solve(problem, RequestContext.new())
        path = tracer.export_chrome(tmp_path / "trace.json")
        events = json.loads(path.read_text())["traceEvents"]
        worker_events = [e for e in events if e["name"] == "worker.chunk"]
        assert {e["pid"] for e in worker_events} == {
            s.pid for s in tracer.spans if s.name == "worker.chunk"
        }
        # request ids survive into the chrome args
        assert all("request_id" in e["args"] for e in events)

    def test_worker_metrics_merge_into_driver_registry(
        self, problem, obs, clean_env
    ):
        _, registry = obs
        run_processes_solve(problem, RequestContext.new())
        counters = registry.snapshot()["counters"]
        # gsknn.calls happen only inside worker processes here; they are
        # visible in the driver registry only via the shipped snapshots
        assert counters.get("gsknn.calls", 0) >= 8

    def test_results_match_serial(self, problem, obs, clean_env):
        # observability shipping must not perturb the answer (indices
        # exact; distances to FP tolerance — the 30-row chunks of this
        # trace-heavy decomposition round differently than one kernel)
        from repro.core.gsknn import gsknn

        X, q, r, k = problem
        got = run_processes_solve(problem, RequestContext.new())
        truth = gsknn(X, q, r, k)
        assert np.array_equal(got.indices, truth.indices)
        np.testing.assert_allclose(got.distances, truth.distances)


class TestFaultedRun:
    def test_retry_rung_spans_carry_request_id(self, problem, obs, clean_env):
        from repro.resilience import FaultPlan, RetryPolicy

        tracer, _ = obs
        ctx = RequestContext.new(tenant="faulted")
        run_processes_solve(
            problem,
            ctx,
            fault_plan=FaultPlan(crash_at=(0,)),
            retry=RetryPolicy(backoff_base=0.001),
        )
        rungs = [s for s in tracer.spans if s.name == "resilience.rung"]
        assert len(rungs) >= 2  # processes rung failed, a fallback ran
        for s in rungs:
            assert s.attrs.get("request_id") == ctx.request_id
        backends = {s.attrs.get("backend") for s in rungs}
        assert "processes" in backends

    def test_crash_env_recovery_trace_exports_cleanly(
        self, problem, obs, clean_env, monkeypatch, tmp_path
    ):
        """A worker killed by the legacy crash hook leaves a merged trace
        that still exports: any span it never closed is flagged
        incomplete instead of raising."""
        from repro.core.gsknn import gsknn
        from repro.resilience import RetryPolicy

        monkeypatch.setenv("REPRO_BACKEND_TEST_CRASH_AT", "0")
        tracer, _ = obs
        X, q, r, k = problem
        got = run_processes_solve(
            problem, RequestContext.new(), retry=RetryPolicy(backoff_base=0.001)
        )
        monkeypatch.delenv("REPRO_BACKEND_TEST_CRASH_AT")
        truth = gsknn(X, q, r, k)
        assert np.array_equal(got.indices, truth.indices)
        # exports and aggregation must not raise on whatever the dead
        # worker left behind
        tracer.aggregate()
        path = tracer.export_chrome(tmp_path / "crash_trace.json")
        assert path.exists()


class TestCollisionRegression:
    def test_same_pid_payloads_are_remapped(self):
        """Two tracers minting from the same (pid, counter) space — the
        pathological case the pid-prefix scheme cannot distinguish —
        must still merge without id collisions."""
        parent = Tracer(enabled=True, pid=7)
        with parent.span("driver"):
            pass
        twin = Tracer(enabled=True, pid=7)  # deliberately colliding
        with twin.span("impostor"):
            pass
        assert parent.spans[0].span_id == twin.spans[0].span_id  # the setup
        adopted = parent.adopt_payload(twin.export_payload())
        assert adopted == 1
        ids = [s.span_id for s in parent.spans]
        assert len(ids) == len(set(ids))

    def test_distinct_pids_never_collide(self):
        tracers = [Tracer(enabled=True, pid=p) for p in (1, 2, 3)]
        for t in tracers:
            for i in range(50):
                with t.span(f"s{i}"):
                    pass
        parent = Tracer(enabled=True, pid=99)
        for t in tracers:
            parent.adopt_payload(t.export_payload())
        ids = [s.span_id for s in parent.spans]
        assert len(ids) == 150
        assert len(ids) == len(set(ids))

    def test_parent_links_follow_a_remap(self):
        parent = Tracer(enabled=True, pid=5)
        with parent.span("root"):
            pass
        twin = Tracer(enabled=True, pid=5)
        with twin.span("outer"):
            with twin.span("inner"):
                pass
        parent.adopt_payload(twin.export_payload())
        spans = {s.name: s for s in parent.spans}
        assert spans["inner"].parent_id == spans["outer"].span_id


class TestIncompleteSpans:
    def test_aggregate_skips_never_ended_spans(self):
        tracer = Tracer(enabled=True)
        with tracer.span("done"):
            pass
        tracer.span("never_ends").__enter__()
        agg = tracer.aggregate()
        assert "done" in agg
        assert "never_ends" not in agg

    def test_chrome_export_flags_incomplete(self, tmp_path):
        import json

        tracer = Tracer(enabled=True)
        tracer.span("stuck", chunk=3).__enter__()
        path = tracer.export_chrome(tmp_path / "incomplete.json")
        events = json.loads(path.read_text())["traceEvents"]
        stuck = [e for e in events if e["name"] == "stuck"]
        assert len(stuck) == 1
        assert stuck[0]["args"].get("incomplete") is True

    def test_export_payload_ships_open_spans(self):
        worker = Tracer(enabled=True, pid=123)
        worker.span("mid_chunk").__enter__()
        payload = worker.export_payload()
        assert payload is not None
        (event,) = payload["events"]
        assert event["incomplete"] is True
        parent = Tracer(enabled=True)
        parent.adopt_payload(payload, parent_id=None)
        (span,) = parent.spans
        assert span.incomplete
        assert span.pid == 123
