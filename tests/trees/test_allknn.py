"""Unit and integration tests for the all-NN driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.neighbors import recall
from repro.data import embedded_gaussian, uniform_hypercube
from repro.errors import ValidationError
from repro.trees import all_nearest_neighbors, exact_all_knn


@pytest.fixture(scope="module")
def cloud():
    return embedded_gaussian(600, 16, intrinsic_dim=6, seed=3).points


@pytest.fixture(scope="module")
def truth(cloud):
    return exact_all_knn(cloud, 6)


class TestExactAllKnn:
    def test_self_is_nearest(self, cloud, truth):
        np.testing.assert_array_equal(truth.indices[:, 0], np.arange(len(cloud)))
        np.testing.assert_allclose(truth.distances[:, 0], 0.0, atol=1e-9)

    def test_gemm_kernel_agrees(self, cloud, truth):
        alt = exact_all_knn(cloud, 6, kernel="gemm")
        np.testing.assert_allclose(alt.distances, truth.distances, atol=1e-9)

    def test_batching_invariant(self, cloud, truth):
        small_batches = exact_all_knn(cloud, 6, batch=97)
        np.testing.assert_allclose(
            small_batches.distances, truth.distances, atol=1e-9
        )

    def test_unknown_kernel(self, cloud):
        with pytest.raises(ValidationError):
            exact_all_knn(cloud, 3, kernel="magic")


class TestAllNearestNeighbors:
    @pytest.mark.parametrize("method", ["rkdtree", "lsh"])
    def test_recall_improves_over_iterations(self, cloud, truth, method):
        report = all_nearest_neighbors(
            cloud, 6, method=method, leaf_size=128, iterations=6,
            truth=truth, tol=0.0,
        )
        curve = report.recall_curve
        assert len(curve) >= 2
        assert curve[-1] >= curve[0]
        assert curve[-1] > 0.8

    def test_rkdtree_reaches_high_recall(self, cloud, truth):
        report = all_nearest_neighbors(
            cloud, 6, leaf_size=128, iterations=10, truth=truth, tol=0.0
        )
        assert report.recall_curve[-1] > 0.95

    def test_gemm_kernel_gives_same_answer_as_gsknn(self, cloud):
        a = all_nearest_neighbors(
            cloud, 4, leaf_size=100, iterations=3, seed=11, kernel="gsknn"
        )
        b = all_nearest_neighbors(
            cloud, 4, leaf_size=100, iterations=3, seed=11, kernel="gemm"
        )
        np.testing.assert_allclose(
            a.result.distances, b.result.distances, atol=1e-9
        )

    def test_lists_complete_after_first_iteration(self, cloud):
        report = all_nearest_neighbors(cloud, 4, leaf_size=64, iterations=1)
        assert (report.result.indices >= 0).all()

    def test_kernel_time_accounted(self, cloud):
        report = all_nearest_neighbors(cloud, 4, leaf_size=128, iterations=2)
        assert 0 < report.kernel_seconds <= report.total_seconds
        assert 0 < report.kernel_fraction <= 1.0

    def test_convergence_stops_early(self, cloud):
        report = all_nearest_neighbors(
            cloud, 4, leaf_size=200, iterations=50, tol=0.05
        )
        assert report.converged
        assert report.iterations < 50

    def test_group_statistics(self, cloud):
        report = all_nearest_neighbors(cloud, 4, leaf_size=100, iterations=2)
        assert report.group_count > 0
        assert 0 < report.mean_group_size <= 100

    def test_validation(self, cloud):
        with pytest.raises(ValidationError):
            all_nearest_neighbors(cloud, 4, method="quantum")
        with pytest.raises(ValidationError):
            all_nearest_neighbors(cloud, 4, iterations=0)
        with pytest.raises(ValidationError):
            all_nearest_neighbors(cloud, 10, leaf_size=10)
        with pytest.raises(ValidationError):
            all_nearest_neighbors(cloud, 0, leaf_size=64)

    def test_lazy_top_level_alias(self, cloud):
        import repro

        report = repro.all_nearest_neighbors(
            cloud, 3, leaf_size=64, iterations=1
        )
        assert report.result.k == 3


class TestUniformDataHarder:
    def test_uniform_needs_more_iterations_than_embedded(self):
        """Low intrinsic dimension is what makes tree-based grouping
        effective; full-dimensional uniform data converges more slowly."""
        k, n = 4, 500
        uni = uniform_hypercube(n, 16, seed=0).points
        emb = embedded_gaussian(n, 16, intrinsic_dim=4, seed=0).points
        r_uni = all_nearest_neighbors(
            uni, k, leaf_size=64, iterations=4,
            truth=exact_all_knn(uni, k), tol=0.0,
        ).recall_curve[-1]
        r_emb = all_nearest_neighbors(
            emb, k, leaf_size=64, iterations=4,
            truth=exact_all_knn(emb, k), tol=0.0,
        ).recall_curve[-1]
        assert r_emb >= r_uni
