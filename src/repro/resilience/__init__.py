"""Fault tolerance for the execution layer (deadlines, retry, fault injection).

The paper positions GSKNN as the kernel inside long-running production
solvers — the tree-based all-NN iteration and "streaming datasets
[with] frequent updates of X". At that altitude partial failure and
bounded latency are first-class concerns, so this package threads three
primitives through every execution path:

* :class:`Deadline` — one monotonic wall-clock budget shared by the
  data-parallel driver, the backend wait loops, the schedule executor,
  and the distributed solver; expiry raises
  :class:`~repro.errors.KernelTimeoutError` with partial-result
  metadata instead of hanging, with workers reaped and shared-memory
  segments unlinked;
* :class:`RetryPolicy` + the ``processes -> threads -> serial``
  fallback ladder (:data:`FALLBACK_LADDER`) — failed ``(chunk_m, k)``
  chunks are resubmitted with exponential backoff and degraded
  per-chunk, so a dead worker costs one chunk's recomputation, not the
  solve, and the answer stays bit-identical (the variant and chunk
  decomposition were resolved once on the full problem);
* :class:`FaultPlan` — a seeded, deterministic schedule of worker
  crashes, slow chunks, and injected allocation failures, consumed by
  all three backends, the scheduler, and the distributed rank loop, so
  every recovery path is pinned by tests (and the CI fault-matrix job)
  rather than luck.

Recovery is observable through the standard :mod:`repro.obs` registry:
the ``resilience.*`` counter family (``retries``, ``fallbacks``,
``chunks_recovered``, ``deadline_hits``, ``faults_injected``,
``pool_rebuilds``, ...) and ``resilience.rung`` spans. See
``docs/RESILIENCE.md``.
"""

from .deadline import Deadline
from .faults import FAULT_PLAN_ENV, FaultPlan
from .retry import FALLBACK_LADDER, RetryPolicy, is_retryable
from .executor import solve_chunks_resilient

__all__ = [
    "Deadline",
    "FaultPlan",
    "FAULT_PLAN_ENV",
    "RetryPolicy",
    "FALLBACK_LADDER",
    "is_retryable",
    "solve_chunks_resilient",
]
