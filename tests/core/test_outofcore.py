"""The out-of-core tier's contract, end to end.

Three falsifiable claims, each pinned here:

1. **Bit-identity** — a budgeted solve over a memmapped table returns
   indices AND distances bit-identical to the in-RAM fused solve at the
   same blocking (streamed panels are gathered with ``np.take(...,
   out=)`` into the same dtype/layout the cached path uses, so not even
   the floating-point summation order differs).
2. **Enforcement** — peak workspace (arena accounting) stays under the
   budget, asserted by the :func:`repro.perf.memory_checker` harness;
   reservations that would cross the line raise
   :class:`~repro.errors.MemoryBudgetError` *before* allocating.
3. **Steady state** — a budgeted plan's repeat executions perform no
   large allocations (tracemalloc) and no repeat budget charges.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gsknn import gsknn
from repro.core.membudget import MemoryBudget
from repro.core.plan import GsknnPlan, PlanCache
from repro.data import uniform_hypercube
from repro.data.loaders import load_dataset, save_dataset
from repro.errors import MemoryBudgetError, ValidationError
from repro.perf import memory_checker


@pytest.fixture(scope="module")
def table(tmp_path_factory):
    """An on-disk .npy table plus its in-RAM twin."""
    ds = uniform_hypercube(4096, 24, seed=7)
    path = tmp_path_factory.mktemp("ooc") / "table.npy"
    save_dataset(ds, path, chunk_rows=997)
    mm = load_dataset(path, mmap_mode="r")
    return ds.points, mm.points


def _assert_identical(a, b):
    np.testing.assert_array_equal(a.indices, b.indices)
    np.testing.assert_array_equal(a.distances, b.distances)


class TestBitIdentity:
    def test_budgeted_memmap_equals_in_ram(self, table):
        ram, mm = table
        q = np.arange(600, dtype=np.intp)
        r = np.arange(4096, dtype=np.intp)
        budget = MemoryBudget("8MiB")
        got = gsknn(mm, q, r, 16, memory_budget=budget)
        # reference at the SAME blocking the budget fitted, so the
        # comparison isolates streaming, not block-size effects
        plan = GsknnPlan(ram, r, memory_budget="8MiB")
        ref = gsknn(ram, q, r, 16, block_m=plan.block_m, block_n=plan.block_n)
        _assert_identical(got, ref)
        assert budget.peak_bytes <= budget.limit_bytes
        plan.release()

    def test_streamed_plan_equals_cached_plan(self, table):
        ram, mm = table
        q = np.arange(400, dtype=np.intp)
        r = np.arange(0, 4096, 3, dtype=np.intp)  # strided gather path
        # panels are ~270 KiB; a 512 KiB budget cannot hold 2x that, so
        # the plan must stream them from the memmap
        budgeted = GsknnPlan(mm, r, memory_budget="512KiB")
        assert budgeted.streams_panels
        cached = GsknnPlan(
            ram, r, block_m=budgeted.block_m, block_n=budgeted.block_n
        )
        assert not cached.streams_panels
        _assert_identical(budgeted.execute(q, 10), cached.execute(q, 10))
        # repeat executes stay identical (arena reuse, panels re-streamed)
        _assert_identical(budgeted.execute(q, 10), cached.execute(q, 10))
        budgeted.release()

    def test_norms_match_on_streamed_path(self, table):
        # cosine exercises the streamed-R2c einsum branch
        ram, mm = table
        q = np.arange(128, dtype=np.intp)
        r = np.arange(2048, dtype=np.intp)
        plan = GsknnPlan(mm, r, norm="cosine", memory_budget="8MiB")
        got = plan.execute(q, 8)
        ref = gsknn(
            ram, q, r, 8, norm="cosine",
            block_m=plan.block_m, block_n=plan.block_n,
        )
        _assert_identical(got, ref)
        plan.release()


class TestCacheVsStreamDecision:
    def test_large_budget_caches_panels(self, table):
        _, mm = table
        r = np.arange(1024, dtype=np.intp)
        plan = GsknnPlan(mm, r, memory_budget="64MiB")
        assert plan.panels_cached and not plan.streams_panels
        plan.release()

    def test_small_budget_streams(self, table):
        _, mm = table
        r = np.arange(4096, dtype=np.intp)
        # panels are ~4096*25*8 = 800 KiB; 2x must not fit -> stream
        plan = GsknnPlan(mm, r, memory_budget="1MiB")
        assert plan.streams_panels and not plan.panels_cached
        plan.release()

    def test_block_autofit_under_tight_budget(self, table):
        _, mm = table
        r = np.arange(4096, dtype=np.intp)
        plan = GsknnPlan(
            mm, r, block_m=1024, block_n=2048, memory_budget="2MiB"
        )
        # default 1024x2048 f64 tile alone is 16 MiB; the fit must have
        # shrunk the blocks until a pass fits half the budget
        per_pass = plan.block_m * plan.block_n * 9 + plan.block_n * 25 * 8
        assert per_pass <= (2 << 20) // 2
        assert plan.block_m >= 64 and plan.block_n >= 64
        plan.release()


class TestEnforcement:
    def test_memory_checker_asserts_budget(self, table):
        _, mm = table
        q = np.arange(512, dtype=np.intp)
        r = np.arange(4096, dtype=np.intp)
        with memory_checker("8MiB") as report:
            gsknn(mm, q, r, 16, memory_budget=report.budget)
        report.assert_within()
        assert 0 < report.workspace_peak_bytes <= 8 << 20

    def test_memory_checker_raises_over_limit(self):
        budget = MemoryBudget("1MiB")
        with memory_checker(budget) as report:
            budget.reserve(budget.limit_bytes)  # legitimately at the cap
        # asserting against a tighter limit than the budget must trip
        with pytest.raises(MemoryBudgetError):
            report.assert_within(512 << 10)

    def test_explicit_var6_over_budget_refused(self, table):
        _, mm = table
        q = np.arange(2048, dtype=np.intp)
        r = np.arange(4096, dtype=np.intp)
        # scores matrix alone is 2048*4096*8 = 64 MiB
        with pytest.raises(MemoryBudgetError) as info:
            gsknn(mm, q, r, 512, variant=6, memory_budget="8MiB")
        assert info.value.site == "plan.variant#6"

    def test_inferred_var6_downgrades_to_var1(self, table):
        ram, mm = table
        q = np.arange(2048, dtype=np.intp)
        r = np.arange(4096, dtype=np.intp)
        k = 1024  # deep-k regime where "auto" would pick Var#6
        # Var#6 needs 128 MiB for its (2048, 4096) scores + argpartition
        # pair; 96 MiB holds Var#1's ~69 MiB workspace but not that, so
        # "auto" must downgrade instead of raising.
        got = gsknn(mm, q, r, k, variant="auto", memory_budget="96MiB")
        plan = GsknnPlan(ram, r, memory_budget="96MiB")
        ref = gsknn(
            ram, q, r, k, variant=1,
            block_m=plan.block_m, block_n=plan.block_n,
        )
        _assert_identical(got, ref)
        plan.release()

    def test_budget_too_small_for_lists_raises(self, table):
        _, mm = table
        q = np.arange(1024, dtype=np.intp)
        r = np.arange(4096, dtype=np.intp)
        # k=512 neighbor lists alone exceed 1 MiB: enforcement must
        # refuse rather than quietly overshoot
        with pytest.raises(MemoryBudgetError):
            gsknn(mm, q, r, 512, memory_budget="1MiB")


class TestSteadyState:
    def test_no_new_charges_after_first_execute(self, table):
        _, mm = table
        q = np.arange(512, dtype=np.intp)
        r = np.arange(4096, dtype=np.intp)
        budget = MemoryBudget("8MiB")
        plan = GsknnPlan(mm, r, memory_budget=budget)
        plan.execute(q, 16)
        settled = budget.used_bytes
        peak = budget.peak_bytes
        for _ in range(3):
            plan.execute(q, 16)
        assert budget.used_bytes == settled
        assert budget.peak_bytes == peak
        plan.release()

    def test_tracemalloc_no_large_allocs_at_steady_state(self, table):
        import tracemalloc

        _, mm = table
        q = np.arange(512, dtype=np.intp)
        r = np.arange(4096, dtype=np.intp)
        plan = GsknnPlan(mm, r, memory_budget="8MiB")
        plan.execute(q, 16)  # warm: arena buffers grow to their max
        tracemalloc.start()
        tracemalloc.reset_peak()
        base, _ = tracemalloc.get_traced_memory()
        plan.execute(q, 16)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # result arrays (indices + distances + temporaries of the final
        # argsort) are legitimate; workspace-sized allocations are not.
        result_bytes = 512 * 16 * 8 * 2
        assert peak - base < result_bytes * 8 + (1 << 20)
        plan.release()


class TestDrivers:
    def test_data_parallel_budgeted_equals_serial(self, table):
        from repro.parallel.data_parallel import gsknn_data_parallel

        ram, mm = table
        q = np.arange(800, dtype=np.intp)
        r = np.arange(4096, dtype=np.intp)
        ref = gsknn_data_parallel(ram, q, r, 12, p=2, backend="threads")
        got = gsknn_data_parallel(
            mm, q, r, 12, p=2, backend="threads", memory_budget="32MiB"
        )
        np.testing.assert_array_equal(got.indices, ref.indices)
        np.testing.assert_array_equal(got.distances, ref.distances)

    def test_data_parallel_budget_too_small_to_split(self, table):
        from repro.parallel.data_parallel import gsknn_data_parallel

        _, mm = table
        q = np.arange(64, dtype=np.intp)
        r = np.arange(256, dtype=np.intp)
        with pytest.raises(ValidationError, match="too small to split"):
            gsknn_data_parallel(
                mm, q, r, 4, p=8, backend="processes", memory_budget=4
            )

    def test_batch_budgeted_equals_unbudgeted(self, table):
        from repro.core.batch import KnnProblem, gsknn_batch

        ram, mm = table
        problems = [
            KnnProblem(np.arange(100), np.arange(2048), 8),
            KnnProblem(np.arange(50, 250), np.arange(0, 4096, 2), 12),
        ]
        ref = gsknn_batch(ram, problems, plan_reuse=False)
        got = gsknn_batch(
            mm, problems, plan_reuse=False, memory_budget="32MiB"
        )
        for a, b in zip(got, ref):
            np.testing.assert_array_equal(a.indices, b.indices)
            np.testing.assert_array_equal(a.distances, b.distances)

    def test_plan_cache_keys_and_releases_budgeted_plans(self, table):
        _, mm = table
        r = np.arange(1024, dtype=np.intp)
        cache = PlanCache(max_plans=2)
        a = cache.get(mm, r, memory_budget="64MiB")
        b = cache.get(mm, r, memory_budget="64MiB")
        assert a is b  # same limit -> same cache entry
        c = cache.get(mm, r, memory_budget="32MiB")
        assert c is not a  # different limit -> different plan
        budget = a.memory_budget
        assert budget.used_bytes > 0  # cached panels are charged
        cache.clear()
        assert budget.used_bytes == 0  # eviction returned the charge

    def test_streaming_allknn_budgeted_matches_unbudgeted(self):
        from repro.trees.streaming import StreamingAllKnn

        ds = uniform_hypercube(800, 16, seed=3)
        plain = StreamingAllKnn(16, 8, seed=1)
        budgeted = StreamingAllKnn(16, 8, seed=1, memory_budget="16MiB")
        plain.insert(ds.points)
        budgeted.insert(ds.points)
        q = np.arange(64, dtype=np.intp)
        a = plain.exact_solve(q, 8)
        b = budgeted.exact_solve(q, 8)
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.distances, b.distances)

    def test_serve_config_validates_budget_spec(self):
        from repro.serve import ServeConfig

        assert ServeConfig(memory_budget="16MiB").memory_budget == "16MiB"
        with pytest.raises(ValidationError):
            ServeConfig(memory_budget="16 parsecs")

    def test_serve_budgeted_service_solves(self, table):
        from repro.serve import KnnQueryService, ServeConfig

        ram, _ = table
        cfg = ServeConfig(memory_budget="32MiB", max_wait_ms=1.0)
        with KnnQueryService(ram, cfg) as svc:
            got = svc.submit(np.arange(8), k=8).result(timeout=30)
        ref = gsknn(
            ram, np.arange(8, dtype=np.intp),
            np.arange(ram.shape[0], dtype=np.intp), 8,
        )
        np.testing.assert_array_equal(got.indices, ref.indices)
        np.testing.assert_array_equal(got.distances, ref.distances)
        assert svc._budget.peak_bytes <= svc._budget.limit_bytes
