"""Tests for the batch kNN API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import KnnProblem, gsknn_batch, reset_plan_cache
from repro.core.gsknn import gsknn
from repro.core.plan import PlanCache
from repro.errors import ValidationError


@pytest.fixture
def table(rng):
    return rng.random((200, 8))


def _problems(rng, count=6):
    out = []
    for _ in range(count):
        m = int(rng.integers(2, 30))
        n = int(rng.integers(5, 80))
        q = rng.integers(0, 200, m)
        r = rng.choice(200, size=n, replace=False)
        out.append(KnnProblem(q, r, int(rng.integers(1, min(n, 8) + 1))))
    return out


class TestKnnProblem:
    def test_validation(self):
        with pytest.raises(ValidationError):
            KnnProblem(np.array([], dtype=int), np.arange(3), 1)
        with pytest.raises(ValidationError):
            KnnProblem(np.arange(3), np.arange(3), 4)
        with pytest.raises(ValidationError):
            KnnProblem(np.zeros((2, 2), dtype=int), np.arange(3), 1)

    def test_duplicate_indices_allowed_and_solved(self, table):
        """Duplicates are legitimate (repeated queries, references seen
        twice) — each occurrence gets its own result row / list slot."""
        prob = KnnProblem(np.array([5, 5, 7, 5]), np.array([1, 2, 2, 9]), 2)
        (res,) = gsknn_batch(table, [prob])
        assert res.m == 4
        np.testing.assert_array_equal(res.distances[0], res.distances[1])
        np.testing.assert_array_equal(res.distances[0], res.distances[3])

    def test_k_equals_reference_count(self, table):
        """k == r_idx.size is the full-sort edge, not an error."""
        r = np.arange(10, 22)
        prob = KnnProblem(np.array([0, 3]), r, r.size)
        (res,) = gsknn_batch(table, [prob])
        assert res.k == r.size
        assert set(res.indices[0]) == set(r)

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_whole_valued_float_indices_coerced(self, dtype):
        prob = KnnProblem(
            np.array([0.0, 3.0], dtype=dtype),
            np.array([1.0, 2.0, 5.0], dtype=dtype),
            2,
        )
        assert prob.q_idx.dtype == np.intp
        assert prob.r_idx.dtype == np.intp
        np.testing.assert_array_equal(prob.q_idx, [0, 3])

    def test_fractional_float_indices_rejected(self):
        """Never silently truncate: 2.5 must not become index 2."""
        with pytest.raises(ValidationError, match="non-integral"):
            KnnProblem(np.array([0.0, 2.5]), np.arange(5), 1)

    def test_nonfinite_float_indices_rejected(self):
        with pytest.raises(ValidationError, match="non-finite"):
            KnnProblem(np.array([0.0, np.nan]), np.arange(5), 1)
        with pytest.raises(ValidationError, match="non-finite"):
            KnnProblem(np.arange(3.0), np.array([np.inf, 1.0]), 1)

    def test_float_beyond_exact_integer_range_rejected(self):
        """float32 can only represent integers exactly below 2**24 —
        larger magnitudes would round to a *different* index."""
        with pytest.raises(ValidationError, match="exact"):
            KnnProblem(
                np.array([0.0, 2.0**25], dtype=np.float32), np.arange(5), 1
            )

    def test_non_numeric_dtype_rejected(self):
        with pytest.raises(ValidationError, match="integer index"):
            KnnProblem(np.array(["0", "1"]), np.arange(5), 1)

    def test_negative_indices_rejected(self):
        with pytest.raises(ValidationError, match="negative"):
            KnnProblem(np.array([0, -1]), np.arange(5), 1)

    def test_smaller_integer_dtypes_coerced(self):
        prob = KnnProblem(
            np.array([0, 3], dtype=np.int16),
            np.array([1, 2, 5], dtype=np.uint8),
            2,
        )
        assert prob.q_idx.dtype == np.intp
        assert prob.r_idx.dtype == np.intp


class TestGsknnBatch:
    def test_matches_individual_solves(self, table, rng):
        problems = _problems(rng)
        batch = gsknn_batch(table, problems)
        for prob, res in zip(problems, batch):
            single = gsknn(table, prob.q_idx, prob.r_idx, prob.k)
            np.testing.assert_allclose(
                res.distances, single.distances, atol=1e-12
            )

    @pytest.mark.parametrize("p", [2, 4])
    def test_parallel_matches_serial(self, table, rng, p):
        problems = _problems(rng)
        serial = gsknn_batch(table, problems, p=1)
        parallel = gsknn_batch(table, problems, p=p)
        for a, b in zip(serial, parallel):
            np.testing.assert_allclose(a.distances, b.distances, atol=1e-12)

    def test_order_preserved(self, table, rng):
        problems = _problems(rng, count=10)
        results = gsknn_batch(table, problems, p=3)
        for prob, res in zip(problems, results):
            assert res.m == prob.q_idx.size
            assert res.k == prob.k

    def test_empty_batch(self, table):
        assert gsknn_batch(table, []) == []

    def test_index_range_checked(self, table):
        with pytest.raises(ValidationError):
            gsknn_batch(table, [KnnProblem(np.array([500]), np.arange(5), 2)])

    def test_invalid_workers(self, table, rng):
        with pytest.raises(ValidationError):
            gsknn_batch(table, _problems(rng), p=0)

    def test_norms_pass_through(self, table, rng):
        problems = _problems(rng, count=3)
        results = gsknn_batch(table, problems, norm="l1", p=2)
        for prob, res in zip(problems, results):
            single = gsknn(table, prob.q_idx, prob.r_idx, prob.k, norm="l1")
            np.testing.assert_allclose(
                res.distances, single.distances, atol=1e-12
            )

    def test_backend_validated_early(self, table, rng):
        with pytest.raises(ValidationError, match="threads.*serial"):
            gsknn_batch(table, _problems(rng, count=2), backend="processes")
        with pytest.raises(ValidationError, match="threads.*serial"):
            gsknn_batch(table, [], backend="bogus")


class TestPlanCacheInjection:
    def test_injected_cache_is_used(self, table, rng):
        problems = _problems(rng, count=4)
        mine = PlanCache(max_plans=4)
        results = gsknn_batch(table, problems, plan_cache=mine)
        assert len(mine) > 0
        for prob, res in zip(problems, results):
            single = gsknn(table, prob.q_idx, prob.r_idx, prob.k)
            np.testing.assert_allclose(
                res.distances, single.distances, atol=1e-12
            )

    def test_injected_cache_ignored_without_plan_reuse(self, table, rng):
        mine = PlanCache(max_plans=4)
        gsknn_batch(
            table, _problems(rng, count=2), plan_reuse=False, plan_cache=mine
        )
        assert len(mine) == 0

    def test_repeat_reference_sets_hit_injected_cache(self, table):
        r = np.arange(0, 60)
        problems = [
            KnnProblem(np.array([1, 2]), r, 3),
            KnnProblem(np.array([7]), r, 3),
        ]
        mine = PlanCache(max_plans=4)
        gsknn_batch(table, problems, plan_cache=mine)
        gsknn_batch(table, problems, plan_cache=mine)
        assert len(mine) == 1  # one reference set -> one plan, reused

    def test_reset_plan_cache_drops_default_cache(self, table, rng):
        from repro.core import batch as batch_mod

        gsknn_batch(table, _problems(rng, count=2))
        assert batch_mod._PLAN_CACHE is not None
        assert len(batch_mod._PLAN_CACHE) > 0
        reset_plan_cache()
        assert batch_mod._PLAN_CACHE is None
        # and the path rebuilds cleanly afterwards
        gsknn_batch(table, _problems(rng, count=2))
        assert batch_mod._PLAN_CACHE is not None

    def test_reset_leaves_injected_caches_alone(self, table, rng):
        mine = PlanCache(max_plans=4)
        gsknn_batch(table, _problems(rng, count=2), plan_cache=mine)
        populated = len(mine)
        reset_plan_cache()
        assert len(mine) == populated
