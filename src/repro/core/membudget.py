"""An explicit workspace memory budget, threaded like ``Deadline``.

Everything in the seed assumed the reference table, its packed panels,
and every per-call workspace fit in RAM: on a smaller host the system
did not degrade, it OOMed. A :class:`MemoryBudget` makes the limit
explicit and *enforced*: workspace arenas charge every buffer growth
against it, plans consult it to decide whether reference panels may be
cached whole or must be streamed tile-by-tile from a memmapped table,
and any reservation that would cross the line raises
:class:`~repro.errors.MemoryBudgetError` before the allocation happens.

The budget mirrors :class:`repro.resilience.Deadline` deliberately —
``coerce`` accepts a ready budget, a raw byte count, a human spec like
``"64MiB"``, or ``None``, so every layer of the stack (config →
plan/arena → data-parallel driver → batch/streaming/serve → CLI) can
thread one optional parameter without caring which form the caller
used.

Scope: the budget caps *workspace* — panels, distance tiles, neighbor
lists, gather buffers — not the memmapped table itself (the OS pages
that in and out beneath us; that is the point) and not small O(m) or
O(k) bookkeeping outside the arena. Accounting is byte-exact for every
arena-managed buffer, which is where all the asymptotically large
allocations live.
"""

from __future__ import annotations

import re
import threading

from ..errors import MemoryBudgetError, ValidationError
from ..obs.metrics import get_registry as _get_registry

__all__ = ["MemoryBudget", "parse_bytes"]

_UNITS = {
    "": 1,
    "b": 1,
    "k": 1 << 10,
    "kb": 1 << 10,
    "kib": 1 << 10,
    "m": 1 << 20,
    "mb": 1 << 20,
    "mib": 1 << 20,
    "g": 1 << 30,
    "gb": 1 << 30,
    "gib": 1 << 30,
    "t": 1 << 40,
    "tb": 1 << 40,
    "tib": 1 << 40,
}

_SPEC_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([a-zA-Z]*)\s*$")


def parse_bytes(spec: int | float | str) -> int:
    """Parse a byte-count spec: ``67108864``, ``"64MiB"``, ``"1.5g"``.

    Unit suffixes are case-insensitive and binary (``KB`` == ``KiB`` ==
    1024 bytes — nobody configuring a workspace cap wants decimal
    megabytes silently 5% smaller than the power of two they reasoned
    about).
    """
    if isinstance(spec, bool):
        raise ValidationError(f"cannot parse a memory size from {spec!r}")
    if isinstance(spec, (int, float)):
        nbytes = int(spec)
    else:
        match = _SPEC_RE.match(str(spec))
        if match is None:
            raise ValidationError(
                f"cannot parse a memory size from {spec!r} "
                "(expected e.g. 67108864, '64MiB', '1.5GB')"
            )
        number, unit = match.groups()
        factor = _UNITS.get(unit.lower())
        if factor is None:
            raise ValidationError(
                f"unknown memory unit {unit!r} in {spec!r} "
                f"(known: {', '.join(sorted(u for u in _UNITS if u))})"
            )
        nbytes = int(float(number) * factor)
    if nbytes <= 0:
        raise ValidationError(f"memory budget must be positive, got {spec!r}")
    return nbytes


class MemoryBudget:
    """A byte cap on kernel workspace, with live reserve/release accounting.

    Thread-safe: one budget may be shared by every arena of a plan's
    pool (thread backends borrow concurrent arenas; their combined
    footprint is what must stay under the limit).

    Parameters
    ----------
    limit:
        The cap — raw bytes or a spec accepted by :func:`parse_bytes`.
    """

    __slots__ = ("limit_bytes", "_lock", "_used", "_peak", "_denials")

    def __init__(self, limit: int | float | str) -> None:
        self.limit_bytes = parse_bytes(limit)
        self._lock = threading.Lock()
        self._used = 0
        self._peak = 0
        self._denials = 0

    @classmethod
    def coerce(
        cls, value: "MemoryBudget | int | float | str | None"
    ) -> "MemoryBudget | None":
        """Accept a ready budget, a byte count / spec, or ``None``.

        The threading idiom (same as ``Deadline.coerce``): every layer
        takes ``memory_budget=None`` and coerces, so callers pass
        whatever form they have and a shared budget object survives the
        descent through driver → plan → arena.
        """
        if value is None:
            return None
        if isinstance(value, cls):
            return value
        return cls(value)

    # -- accounting ----------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        """Bytes currently reserved against the budget."""
        return self._used

    @property
    def peak_bytes(self) -> int:
        """High-water mark of reserved bytes over the budget's lifetime."""
        return self._peak

    @property
    def remaining_bytes(self) -> int:
        return max(0, self.limit_bytes - self._used)

    @property
    def denials(self) -> int:
        """How many reservations were refused."""
        return self._denials

    def would_fit(self, nbytes: int) -> bool:
        return self._used + int(nbytes) <= self.limit_bytes

    def reserve(self, nbytes: int, site: str = "") -> None:
        """Charge ``nbytes``; raise :class:`MemoryBudgetError` if over cap.

        Nothing is allocated here — callers reserve first, allocate
        second, so denial happens before memory pressure, not after.
        """
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValidationError(f"cannot reserve {nbytes} bytes")
        with self._lock:
            if self._used + nbytes > self.limit_bytes:
                self._denials += 1
                used = self._used
                self._emit(denied=True)
                raise MemoryBudgetError(
                    f"memory budget exhausted at {site or 'reserve'}: "
                    f"requested {nbytes} bytes with {used} of "
                    f"{self.limit_bytes} already reserved",
                    limit=self.limit_bytes,
                    requested=nbytes,
                    used=used,
                    site=site or None,
                )
            self._used += nbytes
            if self._used > self._peak:
                self._peak = self._used
            self._emit()

    def release(self, nbytes: int) -> None:
        """Return ``nbytes`` to the budget (clamped at zero)."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValidationError(f"cannot release {nbytes} bytes")
        with self._lock:
            self._used = max(0, self._used - nbytes)
            self._emit()

    def _emit(self, denied: bool = False) -> None:
        # Called with the lock held; growth events are rare (buffers are
        # grow-only), so this is off the steady-state hot path entirely.
        registry = _get_registry()
        if not registry.enabled:
            return
        registry.set("budget.used_bytes", float(self._used))
        registry.set("budget.peak_bytes", float(self._peak))
        registry.set("budget.limit_bytes", float(self.limit_bytes))
        if denied:
            registry.inc("budget.denials")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoryBudget(limit={self.limit_bytes}, used={self._used}, "
            f"peak={self._peak})"
        )
