"""Roofline analysis of the kNN kernels.

The paper's performance story is a roofline story told longhand: at low
``d`` the GEMM approach's arithmetic intensity (flops per byte of slow
traffic) sits under the memory-bandwidth roof, and GSKNN's fusion wins
by removing bytes, not flops. This module makes that explicit:

* :func:`arithmetic_intensity` — useful flops over modeled slow-memory
  bytes for any of the costed kernels;
* :func:`roofline_bound` — the attainable GFLOPS at a given intensity:
  ``min(peak, intensity * bandwidth)``;
* :func:`ridge_intensity` — where the two roofs meet;
* :func:`classify` — "memory-bound" / "compute-bound" per kernel and
  problem size, the §2.1 statement ("the kNN search can be memory
  bound, depending on the sizes of m, n, d and k") as a function.
"""

from __future__ import annotations

from ..config import BlockingParams, IVY_BRIDGE_BLOCKING
from ..errors import ValidationError
from ..machine.params import IVY_BRIDGE, MachineParams
from ..model.costs import memory_terms
from .gflops import knn_flops

__all__ = [
    "arithmetic_intensity",
    "roofline_bound",
    "ridge_intensity",
    "classify",
]

_BYTES_PER_DOUBLE = 8


def _bandwidth_bytes_per_second(machine: MachineParams) -> float:
    """tau_b is seconds per double of contiguous movement."""
    return _BYTES_PER_DOUBLE / machine.tau_b


def arithmetic_intensity(
    m: int,
    n: int,
    d: int,
    k: int,
    kernel: str = "var1",
    machine: MachineParams = IVY_BRIDGE,
    blocking: BlockingParams = IVY_BRIDGE_BLOCKING,
) -> float:
    """Useful flops per byte of modeled slow-memory traffic."""
    terms = memory_terms(m, n, d, k, machine, blocking, kernel)
    slow_bytes = terms.t_m / machine.tau_b * _BYTES_PER_DOUBLE
    if slow_bytes <= 0:
        raise ValidationError("modeled memory traffic must be positive")
    return knn_flops(m, n, d) / slow_bytes


def roofline_bound(
    intensity: float, machine: MachineParams = IVY_BRIDGE
) -> float:
    """Attainable GFLOPS at ``intensity`` flops/byte on ``machine``."""
    if intensity <= 0:
        raise ValidationError(f"intensity must be positive, got {intensity}")
    return (
        min(machine.tau_f, intensity * _bandwidth_bytes_per_second(machine))
        / 1e9
    )


def ridge_intensity(machine: MachineParams = IVY_BRIDGE) -> float:
    """Flops/byte where the bandwidth roof meets the compute roof."""
    return machine.tau_f / _bandwidth_bytes_per_second(machine)


def classify(
    m: int,
    n: int,
    d: int,
    k: int,
    kernel: str = "var1",
    machine: MachineParams = IVY_BRIDGE,
    blocking: BlockingParams = IVY_BRIDGE_BLOCKING,
) -> str:
    """``"memory-bound"`` or ``"compute-bound"`` for this configuration."""
    intensity = arithmetic_intensity(m, n, d, k, kernel, machine, blocking)
    return (
        "memory-bound" if intensity < ridge_intensity(machine) else "compute-bound"
    )
